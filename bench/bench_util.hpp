// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "analyzer/analyzer.hpp"
#include "core/composite.hpp"
#include "gen/registry.hpp"
#include "report/cube_view.hpp"
#include "report/timeline.hpp"

namespace ats::benchutil {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n\n");
}

/// Default run configuration used by the reproduction benches: the stock
/// cost model (realistic overheads), four-rank minimum.
inline gen::RunConfig default_config(int nprocs) {
  gen::RunConfig cfg;
  cfg.nprocs = nprocs;
  return cfg;
}

}  // namespace ats::benchutil
