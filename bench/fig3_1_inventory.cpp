// FIG-3.1 — the framework structure (paper Fig. 3.1).
//
// The paper's figure is a block diagram of the ATS module layering.  This
// bench prints the same structure from the *live* system: the module
// layers, the property-function catalog grouped by paradigm (from the
// registry), and the analyzer's property tree — evidence that every box in
// the figure exists in code.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "gen/source_gen.hpp"

int main() {
  using namespace ats;
  benchutil::heading("FIG-3.1: structure of the ATS framework (live inventory)");

  std::printf(
      "layer 5  test programs      single-property driver (gen), composite\n"
      "                            programs (core/composite), examples/\n"
      "layer 4  property functions %zu registered (see below)\n"
      "layer 3  parallel support   mpisim (MPI-like), ompsim (OpenMP-like),\n"
      "                            buffers + communication patterns (core)\n"
      "layer 2  distribution       9 distribution functions x 5 descriptors\n"
      "layer 1  work               do_work / par_do_mpi_work / par_do_omp_work\n"
      "substrate                   simt virtual-time engine, trace model,\n"
      "                            analyzer (the tool under test), report\n\n",
      gen::Registry::instance().all().size());

  std::map<std::string, std::vector<std::string>> by_paradigm;
  for (const auto& def : gen::Registry::instance().all()) {
    std::string group = gen::to_string(def.paradigm);
    if (!def.expected.has_value()) group += " (negative)";
    by_paradigm[group].push_back(def.name);
  }
  for (const auto& [group, names] : by_paradigm) {
    std::printf("property functions [%s]:\n", group.c_str());
    for (const auto& n : names) std::printf("  %s\n", n.c_str());
    std::printf("\n");
  }

  std::printf("distribution functions:\n ");
  for (const auto& n : core::distr_func_names()) std::printf(" %s", n.c_str());
  std::printf("\n\nanalyzer property hierarchy:\n");
  for (analyze::PropertyId p : analyze::property_preorder()) {
    std::printf("  %*s%s\n", 2 * analyze::property_depth(p), "",
                analyze::property_name(p));
  }
  return 0;
}
