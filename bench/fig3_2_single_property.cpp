// FIG-3.2 — two executions of the generated single-property test program
// for imbalance_at_mpi_barrier with different command-line parameters
// (paper Fig. 3.2: Vampir timelines of both runs).
//
// Run A: block2 distribution, mild severity, 4 repetitions.
// Run B: linear distribution, strong severity, 2 repetitions.
//
// Reproduced shape:
//  * per-rank work time follows the requested distribution,
//  * per-rank barrier wait = (max work - own work) x repetitions,
//  * changing the descriptor changes the measured severity proportionally,
//  * the "High MPI Init/Finalize Overhead" side property the paper remarks
//    on is visible in both runs.
#include <cstdio>

#include "bench_util.hpp"

using namespace ats;

namespace {

void one_run(const char* label, const std::string& df_spec, int r,
             int nprocs) {
  benchutil::heading(std::string("FIG-3.2 run ") + label +
                     ": imbalance_at_mpi_barrier df=" + df_spec +
                     " r=" + std::to_string(r) +
                     " np=" + std::to_string(nprocs));
  gen::ParamMap pm;
  pm.set("df", df_spec);
  pm.set("r", std::to_string(r));
  const trace::Trace tr = gen::run_single_property(
      "imbalance_at_mpi_barrier", pm, benchutil::default_config(nprocs));
  report::TimelineOptions topt;
  topt.legend = false;
  std::printf("%s\n", report::render_timeline(tr, topt).c_str());

  const auto result = analyze::analyze(tr);
  std::printf("%s\n", report::render_findings(result, tr).c_str());

  // Per-rank table: requested work vs measured barrier wait.
  const core::Distribution d = gen::parse_distribution(df_spec);
  const auto nodes = result.cube.nodes_of(analyze::PropertyId::kWaitAtBarrier);
  std::printf("rank   requested work/iter   measured barrier wait   expected wait\n");
  std::printf("----------------------------------------------------------------\n");
  double max_work = 0;
  for (int rank = 0; rank < nprocs; ++rank) {
    max_work = std::max(max_work, d(rank, nprocs));
  }
  for (int rank = 0; rank < nprocs; ++rank) {
    VDur wait = VDur::zero();
    for (auto n : nodes) {
      wait += result.cube.locations_of(analyze::PropertyId::kWaitAtBarrier,
                                       n)[static_cast<std::size_t>(rank)];
    }
    const double expected = (max_work - d(rank, nprocs)) * r;
    std::printf("%4d   %15.3f ms   %18s   %10.3f ms\n", rank,
                1e3 * d(rank, nprocs), wait.str().c_str(), 1e3 * expected);
  }
}

}  // namespace

int main() {
  one_run("A", "block2:low=0.02,high=0.05", 4, 8);
  one_run("B", "linear:low=0.01,high=0.09", 2, 8);
  return 0;
}
