// FIG-3.3 — composite program calling every MPI property function in
// sequence (paper Fig. 3.3: one Vampir timeline of the whole collection).
//
// Reproduced shape: the timeline shows the programmed sequence of
// compute/communicate phases, and the analyzer reports (at least) every
// wait-state family the catalog injects — the paper's "how many different
// performance properties can be detected" smoke test.
#include <cstdio>
#include <set>

#include "bench_util.hpp"

int main() {
  using namespace ats;
  benchutil::heading("FIG-3.3: all MPI property functions in one program (np=8)");

  mpi::MpiRunOptions options;
  options.nprocs = 8;
  std::vector<std::string> order;
  auto run = mpi::run_mpi(options, [&](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    core::CompositeParams params;
    params.basework = 0.01;
    params.extrawork = 0.04;
    params.repeats = 2;
    auto names = core::run_all_mpi_properties(ctx, params, p.comm_world());
    if (p.world_rank() == 0) order = names;
  });

  std::printf("executed %zu property functions:", order.size());
  for (const auto& n : order) std::printf(" %s", n.c_str());
  std::printf("\n\n%s\n", report::render_timeline(run.trace).c_str());

  const auto result = analyze::analyze(run.trace);
  std::printf("%s\n", report::render_property_tree(result, run.trace).c_str());
  std::printf("%s\n", report::render_findings(result, run.trace).c_str());

  std::set<analyze::PropertyId> found;
  for (const auto& f : result.findings) {
    if (!analyze::property_info(f.prop).is_overhead) found.insert(f.prop);
  }
  std::printf("detected %zu distinct wait-state properties from %zu "
              "injected functions\n",
              found.size(), order.size());
  return 0;
}
