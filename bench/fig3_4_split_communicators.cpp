// FIG-3.4 — two collections of MPI property functions executing in
// parallel in different communicators (paper Fig. 3.4).
//
// MPI_COMM_WORLD (16 ranks) splits into halves; the lower half runs
// {late_sender, imbalance_at_mpi_barrier, early_reduce} while the upper
// half concurrently runs {late_broadcast(root=1), imbalance_at_mpi_alltoall,
// late_receiver}.  Reproduced shape: the timeline shows two concurrent,
// *different* phase structures; the analyzer attributes each property to
// the correct half.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace ats;
  benchutil::heading(
      "FIG-3.4: different property sets in two communicators (np=16)");

  mpi::MpiRunOptions options;
  options.nprocs = 16;
  auto run = mpi::run_mpi(options, [](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    core::CompositeParams params;
    params.basework = 0.01;
    params.extrawork = 0.04;
    params.repeats = 2;
    core::run_split_communicator_program(ctx, params);
  });

  std::printf("%s\n", report::render_timeline(run.trace).c_str());

  const auto result = analyze::analyze(run.trace);
  std::printf("%s\n", report::render_findings(result, run.trace).c_str());

  // Half-attribution check: late_sender waits must sit in ranks 0..7,
  // late_broadcast and alltoall waits in ranks 8..15.
  auto half_of = [&](analyze::PropertyId prop) {
    VDur lower = VDur::zero(), upper = VDur::zero();
    for (auto n : result.cube.nodes_of(prop)) {
      const auto locs = result.cube.locations_of(prop, n);
      for (std::size_t l = 0; l < locs.size(); ++l) {
        (l < 8 ? lower : upper) += locs[l];
      }
    }
    return std::make_pair(lower, upper);
  };
  struct Row {
    analyze::PropertyId prop;
    const char* expect;
  };
  std::printf("property                      lower half     upper half   expected side\n");
  std::printf("-----------------------------------------------------------------------\n");
  for (const Row& row :
       {Row{analyze::PropertyId::kLateSender, "lower"},
        Row{analyze::PropertyId::kWaitAtBarrier, "lower"},
        Row{analyze::PropertyId::kEarlyReduce, "lower"},
        Row{analyze::PropertyId::kLateBroadcast, "upper"},
        Row{analyze::PropertyId::kWaitAtNxN, "upper"},
        Row{analyze::PropertyId::kLateReceiver, "upper"}}) {
    const auto [lower, upper] = half_of(row.prop);
    std::printf("%-28s %12s %14s   %s\n",
                analyze::property_name(row.prop), lower.str().c_str(),
                upper.str().c_str(), row.expect);
  }
  return 0;
}
