// FIG-3.5 — the EXPERT analysis of the split-communicator program (paper
// Fig. 3.5: three linked panes).
//
// Reproduced shape, quoted from the paper: "EXPERT found (among others)
// the Late Broadcast performance property ... located it correctly at the
// MPI_Bcast() function call inside the performance property function
// late_broadcast() ... at MPI ranks 8 and 9 to 15 ... as late_broadcast()
// was executed on the communicator with the upper half of the MPI ranks
// with an (communicator-local) root rank 1."  With local root 1 == global
// rank 9, the waiting locations must be exactly {8, 10..15}.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace ats;
  benchutil::heading("FIG-3.5: EXPERT-style analysis of the FIG-3.4 program");

  mpi::MpiRunOptions options;
  options.nprocs = 16;
  auto run = mpi::run_mpi(options, [](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    core::CompositeParams params;
    params.basework = 0.01;
    params.extrawork = 0.04;
    params.repeats = 2;
    core::run_split_communicator_program(ctx, params);
  });

  const auto result = analyze::analyze(run.trace);
  // The full three-pane presentation.
  std::printf("%s", report::render_analysis(result, run.trace).c_str());

  // The paper's specific claim, as a checked table.
  benchutil::heading("Late Broadcast localisation check (paper's claim)");
  const auto nodes =
      result.cube.nodes_of(analyze::PropertyId::kLateBroadcast);
  analyze::NodeId best = -1;
  VDur best_sev = VDur::zero();
  for (auto n : nodes) {
    const VDur s =
        result.cube.node_total(analyze::PropertyId::kLateBroadcast, n);
    if (s > best_sev) {
      best_sev = s;
      best = n;
    }
  }
  if (best < 0) {
    std::printf("FAILED: Late Broadcast not found at all\n");
    return 1;
  }
  std::printf("call path: %s\n",
              result.profile.path_string(best, run.trace).c_str());
  const auto locs =
      result.cube.locations_of(analyze::PropertyId::kLateBroadcast, best);
  bool ok = true;
  std::printf("rank   wait          expected\n");
  for (std::size_t l = 0; l < locs.size(); ++l) {
    const bool should_wait = (l >= 8 && l != 9);
    const bool waits = locs[l] > VDur::zero();
    if (waits != should_wait) ok = false;
    std::printf("%4zu   %-12s  %s\n", l, locs[l].str().c_str(),
                should_wait ? "waits (non-root of upper bcast)"
                            : (l == 9 ? "no wait (local root 1)"
                                      : "no wait (lower half)"));
  }
  std::printf("\nlocalisation %s the paper's description\n",
              ok ? "MATCHES" : "DOES NOT MATCH");
  return ok ? 0 : 1;
}
