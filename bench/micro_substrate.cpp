// MICRO — google-benchmark microbenchmarks of the substrate: scheduler
// handoff cost, p2p message rate, collective rate, trace recording and
// serialisation, distribution evaluation, analyzer replay rate.  These
// quantify the simulator's own performance (events/second), which bounds
// how large a synthetic test program the suite can generate per second of
// host time.
#include <benchmark/benchmark.h>

#include <sstream>

#include "analyzer/analyzer.hpp"
#include "core/distribution.hpp"
#include "core/properties.hpp"
#include "mpisim/world.hpp"
#include "report/timeline.hpp"
#include "simt/engine.hpp"

namespace {

using namespace ats;

void BM_SchedulerHandoff(benchmark::State& state) {
  // Cost of one yield (two OS context switches) measured over a batch.
  const int yields_per_run = 1000;
  for (auto _ : state) {
    simt::Engine eng;
    eng.add_location("a", [&](simt::Context& c) {
      for (int i = 0; i < yields_per_run; ++i) c.yield();
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * yields_per_run);
}
BENCHMARK(BM_SchedulerHandoff)->Unit(benchmark::kMillisecond);

void BM_P2PMessageRate(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::MpiRunOptions opt;
    opt.nprocs = 2;
    mpi::run_mpi(opt, [&](mpi::Proc& p) {
      int v = 0;
      if (p.world_rank() == 0) {
        for (int i = 0; i < msgs; ++i) {
          p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
        }
      } else {
        for (int i = 0; i < msgs; ++i) {
          p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_P2PMessageRate)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_CollectiveRate(benchmark::State& state) {
  const int np = static_cast<int>(state.range(0));
  const int colls = 50;
  for (auto _ : state) {
    mpi::MpiRunOptions opt;
    opt.nprocs = np;
    mpi::run_mpi(opt, [&](mpi::Proc& p) {
      for (int i = 0; i < colls; ++i) p.barrier(p.comm_world());
    });
  }
  state.SetItemsProcessed(state.iterations() * colls * np);
}
BENCHMARK(BM_CollectiveRate)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_DistributionEval(benchmark::State& state) {
  const core::Distribution d = core::Distribution::linear(0.01, 0.05);
  int me = 0;
  double acc = 0;
  for (auto _ : state) {
    acc += d(me, 64);
    me = (me + 1) % 64;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DistributionEval);

trace::Trace make_trace(int np, int reps) {
  mpi::MpiRunOptions opt;
  opt.nprocs = np;
  return mpi::run_mpi(opt,
                      [&](mpi::Proc& p) {
                        core::PropCtx ctx = core::PropCtx::from(p);
                        core::late_sender(ctx, 0.001, 0.002, reps,
                                          p.comm_world());
                        core::imbalance_at_mpi_barrier(
                            ctx, core::Distribution::linear(0.001, 0.004),
                            reps, p.comm_world());
                      })
      .trace;
}

void BM_AnalyzerReplay(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  for (auto _ : state) {
    const auto result = analyze::analyze(tr);
    benchmark::DoNotOptimize(result.total_time);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
  state.counters["events"] = static_cast<double>(tr.event_count());
}
BENCHMARK(BM_AnalyzerReplay)->Unit(benchmark::kMillisecond);

void BM_TraceSerialise(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  for (auto _ : state) {
    std::ostringstream os;
    tr.save(os);
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
}
BENCHMARK(BM_TraceSerialise)->Unit(benchmark::kMillisecond);

void BM_TraceParse(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  std::ostringstream os;
  tr.save(os);
  const std::string text = os.str();
  for (auto _ : state) {
    std::istringstream is(text);
    const trace::Trace loaded = trace::Trace::load(is);
    benchmark::DoNotOptimize(loaded.event_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
}
BENCHMARK(BM_TraceParse)->Unit(benchmark::kMillisecond);

void BM_TimelineRender(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(report::render_timeline(tr).size());
  }
}
BENCHMARK(BM_TimelineRender)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
