// MICRO — google-benchmark microbenchmarks of the substrate: scheduler
// handoff cost, p2p message rate, collective rate, trace recording and
// serialisation, distribution evaluation, analyzer replay rate.  These
// quantify the simulator's own performance (events/second), which bounds
// how large a synthetic test program the suite can generate per second of
// host time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "core/distribution.hpp"
#include "core/properties.hpp"
#include "gen/experiment.hpp"
#include "mpisim/world.hpp"
#include "report/timeline.hpp"
#include "simt/engine.hpp"

namespace {

using namespace ats;

// The substrate benchmarks run once per execution backend: a handoff is
// two fiber switches (userspace register swaps) on kFiber and two OS
// context switches (condition-variable + futex) on kThread.  Both produce
// bit-identical simulations; only wall time moves.

void BM_SchedulerHandoff(benchmark::State& state,
                         simt::EngineBackend backend) {
  // Cost of one yield (one scheduler round-trip) measured over a batch.
  const int yields_per_run = 1000;
  for (auto _ : state) {
    simt::EngineOptions opt;
    opt.backend = backend;
    simt::Engine eng(opt);
    eng.add_location("a", [&](simt::Context& c) {
      for (int i = 0; i < yields_per_run; ++i) c.yield();
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * yields_per_run);
}
BENCHMARK_CAPTURE(BM_SchedulerHandoff, fiber, simt::EngineBackend::kFiber)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SchedulerHandoff, thread, simt::EngineBackend::kThread)
    ->Unit(benchmark::kMillisecond);

void BM_P2PMessageRate(benchmark::State& state,
                       simt::EngineBackend backend) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::MpiRunOptions opt;
    opt.engine.backend = backend;
    opt.nprocs = 2;
    mpi::run_mpi(opt, [&](mpi::Proc& p) {
      int v = 0;
      if (p.world_rank() == 0) {
        for (int i = 0; i < msgs; ++i) {
          p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
        }
      } else {
        for (int i = 0; i < msgs; ++i) {
          p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK_CAPTURE(BM_P2PMessageRate, fiber, simt::EngineBackend::kFiber)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_P2PMessageRate, thread, simt::EngineBackend::kThread)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_CollectiveRate(benchmark::State& state,
                       simt::EngineBackend backend) {
  const int np = static_cast<int>(state.range(0));
  const int colls = 50;
  for (auto _ : state) {
    mpi::MpiRunOptions opt;
    opt.engine.backend = backend;
    opt.nprocs = np;
    mpi::run_mpi(opt, [&](mpi::Proc& p) {
      for (int i = 0; i < colls; ++i) p.barrier(p.comm_world());
    });
  }
  state.SetItemsProcessed(state.iterations() * colls * np);
}
BENCHMARK_CAPTURE(BM_CollectiveRate, fiber, simt::EngineBackend::kFiber)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectiveRate, thread, simt::EngineBackend::kThread)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_DistributionEval(benchmark::State& state) {
  const core::Distribution d = core::Distribution::linear(0.01, 0.05);
  int me = 0;
  double acc = 0;
  for (auto _ : state) {
    acc += d(me, 64);
    me = (me + 1) % 64;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DistributionEval);

trace::Trace make_trace(int np, int reps) {
  mpi::MpiRunOptions opt;
  opt.nprocs = np;
  return mpi::run_mpi(opt,
                      [&](mpi::Proc& p) {
                        core::PropCtx ctx = core::PropCtx::from(p);
                        core::late_sender(ctx, 0.001, 0.002, reps,
                                          p.comm_world());
                        core::imbalance_at_mpi_barrier(
                            ctx, core::Distribution::linear(0.001, 0.004),
                            reps, p.comm_world());
                      })
      .trace;
}

void BM_AnalyzerReplay(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  for (auto _ : state) {
    const auto result = analyze::analyze(tr);
    benchmark::DoNotOptimize(result.total_time);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
  state.counters["events"] = static_cast<double>(tr.event_count());
}
BENCHMARK(BM_AnalyzerReplay)->Unit(benchmark::kMillisecond);

void BM_TraceMerge(benchmark::State& state) {
  // Streaming k-way heap merge over the per-location buffers (the replay's
  // event source); compare with BM_TraceMergeStableSort below.
  const trace::Trace tr = make_trace(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t n = 0;
    VTime last = VTime::zero();
    tr.for_each_merged([&](const trace::Event& e) {
      ++n;
      last = e.t;
    });
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
}
BENCHMARK(BM_TraceMerge)
    ->ArgName("reps")
    ->Arg(20)
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_TraceMergeStableSort(benchmark::State& state) {
  // The seed's merged(): collect every event pointer, stable_sort by
  // (t, loc).  Kept as the O(n log n) reference the k-way merge replaced.
  const trace::Trace tr = make_trace(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<const trace::Event*> out;
    out.reserve(tr.event_count());
    for (std::size_t l = 0; l < tr.location_count(); ++l) {
      for (const auto& e : tr.events_of(static_cast<trace::LocId>(l))) {
        out.push_back(&e);
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const trace::Event* a, const trace::Event* b) {
                       if (a->t != b->t) return a->t < b->t;
                       return a->loc < b->loc;
                     });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
}
BENCHMARK(BM_TraceMergeStableSort)
    ->ArgName("reps")
    ->Arg(20)
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_SeverityCubeAdd(benchmark::State& state) {
  // The replay's hot severity-attribution path: one add() per event,
  // hitting a few dozen distinct (property, node) cells.
  const int adds = 4096;
  const int nodes = 48;
  const int nlocs = 16;
  for (auto _ : state) {
    analyze::SeverityCube cube(nlocs);
    for (int i = 0; i < adds; ++i) {
      cube.add(analyze::PropertyId::kLateSender,
               static_cast<analyze::NodeId>(i % nodes),
               static_cast<trace::LocId>(i % nlocs), VDur::nanos(i + 1));
    }
    benchmark::DoNotOptimize(
        cube.total(analyze::PropertyId::kLateSender));
  }
  state.SetItemsProcessed(state.iterations() * adds);
}
BENCHMARK(BM_SeverityCubeAdd);

void BM_ExperimentGrid(benchmark::State& state) {
  // A full sweep (grid of independent simulations) at a given worker
  // count; results are bit-identical across counts, only wall time moves.
  gen::ExperimentPlan plan;
  plan.property = "late_sender";
  plan.base.set("basework", "0.005");
  plan.base.set("r", "2");
  plan.axis = {"extrawork",
               {"0.005", "0.01", "0.015", "0.02", "0.025", "0.03", "0.035",
                "0.04"}};
  plan.config.nprocs = 4;
  plan.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto rows = gen::run_experiment(plan);
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(plan.axis.values.size()));
}
BENCHMARK(BM_ExperimentGrid)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TraceSerialise(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  for (auto _ : state) {
    std::ostringstream os;
    tr.save(os);
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
}
BENCHMARK(BM_TraceSerialise)->Unit(benchmark::kMillisecond);

void BM_TraceParse(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  std::ostringstream os;
  tr.save(os);
  const std::string text = os.str();
  for (auto _ : state) {
    std::istringstream is(text);
    const trace::Trace loaded = trace::Trace::load(is);
    benchmark::DoNotOptimize(loaded.event_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.event_count()));
}
BENCHMARK(BM_TraceParse)->Unit(benchmark::kMillisecond);

void BM_TimelineRender(benchmark::State& state) {
  const trace::Trace tr = make_trace(8, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(report::render_timeline(tr).size());
  }
}
BENCHMARK(BM_TimelineRender)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
