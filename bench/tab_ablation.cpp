// TAB-ABL — ablations of the design choices DESIGN.md §6 lists.
//
// 1. Protocol threshold: a fixed 8 KiB message with a 25 ms late receiver,
//    swept over the eager/rendezvous threshold — the late-receiver wait
//    state exists only on the rendezvous side of the crossover.
// 2. Analyzer sensitivity: detection of a fixed mild property vs the
//    reporting threshold (the paper's "tools have different
//    thresholds/sensitivities").
// 3. Tracing cost per event (the overhead knob of the trace design).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

using namespace ats;

int main() {
  benchutil::heading("TAB-ABL 1: eager/rendezvous threshold vs late-receiver "
                     "visibility (8 KiB message, receiver 25 ms late)");
  std::printf("eager threshold   protocol     late-receiver severity\n");
  std::printf("----------------------------------------------------\n");
  for (std::size_t threshold :
       {std::size_t{1} << 10, std::size_t{1} << 12, std::size_t{1} << 13,
        std::size_t{1} << 14, std::size_t{1} << 16}) {
    mpi::MpiRunOptions opt;
    opt.nprocs = 2;
    opt.cost.eager_threshold = threshold;
    auto run = mpi::run_mpi(opt, [](mpi::Proc& p) {
      std::vector<double> buf(1024);
      if (p.world_rank() == 0) {
        p.send(buf.data(), 1024, mpi::Datatype::kDouble, 1, 0,
               p.comm_world());
      } else {
        p.sim().advance(VDur::millis(25));
        p.recv(buf.data(), 1024, mpi::Datatype::kDouble, 0, 0,
               p.comm_world());
      }
    });
    const auto result = analyze::analyze(run.trace);
    const VDur lr = result.cube.total(analyze::PropertyId::kLateReceiver);
    std::printf("%10zu KiB   %-10s %s\n", threshold / 1024,
                threshold < 8 * 1024 ? "rendezvous" : "eager",
                lr.str().c_str());
  }
  std::printf("(the property function late_receiver uses ssend and is "
              "threshold independent)\n");

  benchutil::heading("TAB-ABL 2: analyzer sensitivity sweep (late_sender, "
                     "injection share ~8%)");
  gen::ParamMap pm;
  pm.set("basework", "0.05");
  pm.set("extrawork", "0.01");
  const trace::Trace tr = gen::run_single_property(
      "late_sender", pm, benchutil::default_config(4));
  std::printf("threshold   reported?   dominant finding\n");
  std::printf("-----------------------------------------\n");
  for (double threshold : {0.001, 0.01, 0.05, 0.10, 0.25}) {
    analyze::AnalyzerOptions opt;
    opt.threshold = threshold;
    const auto result = analyze::analyze(tr, opt);
    const auto dom = result.dominant();
    std::printf("%9.3f   %-9s   %s\n", threshold, dom ? "yes" : "no",
                dom ? analyze::property_name(dom->prop) : "-");
  }

  benchutil::heading("TAB-ABL 3: host cost of tracing per simulated event");
  using Clock = std::chrono::steady_clock;
  for (bool traced : {false, true}) {
    mpi::MpiRunOptions opt;
    opt.nprocs = 4;
    opt.trace_enabled = traced;
    const auto t0 = Clock::now();
    auto run = mpi::run_mpi(opt, [](mpi::Proc& p) {
      core::PropCtx ctx = core::PropCtx::from(p);
      core::late_sender(ctx, 0.0001, 0.0002, 200, p.comm_world());
    });
    const double dt =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("tracing %-3s: %7.2f ms host time, %6zu events\n",
                traced ? "on" : "off", 1e3 * dt, run.trace.event_count());
  }
  return 0;
}
