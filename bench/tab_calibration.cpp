// TAB-CAL — busy-work calibration accuracy (paper §3.1.1).
//
// The paper's do_work approximates real time "up to a certain degree
// (approx. milliseconds)" using a calibrated loop of random array accesses.
// This bench reproduces the calibration procedure and measures, per
// requested duration, the actual wall-clock time of the busy loop — the
// accuracy table the paper's description implies.  (Tolerances are loose:
// this runs on whatever machine executes the suite.)
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/work.hpp"

int main() {
  using namespace ats;
  using Clock = std::chrono::steady_clock;

  benchutil::heading("TAB-CAL: busy-work calibration accuracy");

  const std::size_t elems = 1 << 14;
  const double ips = core::calibrate_busy_work(elems, 0.15);
  std::printf("calibration: %.3g iterations/second (arrays of %zu doubles)\n\n",
              ips, elems);

  std::printf("requested [ms]   measured [ms]   error [ms]   error [%%]\n");
  std::printf("------------------------------------------------------\n");
  for (double req : {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    const auto iters = static_cast<std::uint64_t>(req * ips);
    const auto t0 = Clock::now();
    (void)core::busy_work_iterations(iters, elems, /*seed=*/7);
    const double got =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("%14.1f   %13.3f   %10.3f   %9.1f\n", 1e3 * req, 1e3 * got,
                1e3 * (got - req), 100.0 * (got - req) / req);
  }
  std::printf("\n(the paper promises ~millisecond accuracy under low load;\n"
              " virtual-time mode, the library default, is exact by "
              "construction)\n");

  benchutil::heading("TAB-CAL addendum: per-kernel calibration (sequential "
                     "performance characters, paper §5 future work)");
  std::printf("kernel    iterations/second   note\n");
  std::printf("---------------------------------------------------------\n");
  for (core::BusyKernel k :
       {core::BusyKernel::kMixed, core::BusyKernel::kMemoryBound,
        core::BusyKernel::kComputeBound}) {
    const double kips = core::calibrate_busy_work(1 << 18, 0.1, k);
    const char* note =
        k == core::BusyKernel::kMemoryBound
            ? "dependent pointer chase (latency bound)"
            : (k == core::BusyKernel::kComputeBound
                   ? "register FP chain (ALU bound)"
                   : "the paper's random read/write loop");
    std::printf("%-9s %18.3g   %s\n", core::to_string(k), kips, note);
  }
  std::printf("(a memory-bound iteration should be substantially slower "
              "than a compute-bound one on cached hardware)\n");
  return 0;
}
