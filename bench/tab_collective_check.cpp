// TAB-CC — collective-correctness checker: detection matrix and overhead.
//
// Two claims from docs/DEFECTS.md are measured here.  First, detection: every
// defect program family entry, at every rank count it supports, must yield a
// structural-defect report citing its declared DefectKind from the salvaged
// trace.  Second, cost: the checker retires clean collective instances as
// they complete, so analysing the full clean registry corpus with the
// checker on must stay within 2% of analysing it with the checker off — and
// must report zero defects (no false positives).  A collective-only
// microtrace is also timed as the adversarial worst case (every event feeds
// the checker); that row is reported but not gated, since no workload where
// the checker touches ~100% of events can hide inside a 2% envelope.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double median_ms(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename F>
double time_ms(F&& f) {
  const auto t0 = Clock::now();
  f();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace ats;
  benchutil::heading(
      "TAB-CC: collective-correctness detection matrix and checker overhead");

  const auto& reg = gen::Registry::instance();
  const std::vector<int> rank_counts = {2, 4, 8, 16};

  // --- detection matrix: defect kind x rank count -------------------------
  std::printf("%-34s %-22s", "defect program", "expected kind");
  for (const int np : rank_counts) std::printf(" %7s", ("np=" + std::to_string(np)).c_str());
  std::printf("\n%s\n", std::string(86, '-').c_str());

  std::size_t cells = 0;
  std::size_t detected = 0;
  for (const std::string& name : reg.defect_names()) {
    const gen::PropertyDef& def = reg.find(name);
    std::printf("%-34s %-22s", name.c_str(),
                analyze::to_string(*def.expected_defect));
    for (const int np : rank_counts) {
      if (np < def.min_procs) {
        std::printf(" %7s", "-");
        continue;
      }
      gen::RunConfig cfg;
      cfg.nprocs = np;
      cfg.engine.virtual_time_limit = VDur::seconds(120.0);
      cfg.engine.yield_limit = 2'000'000;
      const gen::SalvagedRun run =
          gen::run_single_property_salvaged(def, def.positive, cfg);
      analyze::AnalyzerOptions aopt;
      aopt.lenient = true;
      const analyze::AnalysisResult result = analyze::analyze(run.trace, aopt);
      const bool hit =
          run.outcome == def.expected_outcome &&
          std::any_of(result.defects.begin(), result.defects.end(),
                      [&](const analyze::StructuralDefect& d) {
                        return d.kind == *def.expected_defect;
                      });
      ++cells;
      detected += hit ? 1 : 0;
      std::printf(" %7s", hit ? "yes" : "MISS");
    }
    std::printf("\n");
  }
  std::printf("\ndetection rate: %zu/%zu cells\n", detected, cells);

  // --- checker overhead on structurally sound traces ----------------------
  // Representative case: every clean registry program at its canonical
  // positive configuration — the same corpus the golden sweep pins.
  std::vector<trace::Trace> corpus;
  std::size_t corpus_events = 0;
  for (const std::string& name : reg.names()) {
    const gen::PropertyDef& def = reg.find(name);
    gen::RunConfig cfg;
    cfg.nprocs = std::max(def.min_procs, 8);
    corpus.push_back(gen::run_single_property(def, def.positive, cfg));
    corpus_events += corpus.back().event_count();
  }
  // Adversarial case: a collective-only microtrace, so the checker sees
  // (nearly) every event and nothing amortises its bookkeeping.
  const gen::PropertyDef& stress_def = reg.find("balanced_collectives");
  gen::ParamMap pm = stress_def.positive;
  pm.set("r", "300");
  gen::RunConfig scfg;
  scfg.nprocs = 8;
  const trace::Trace stress = gen::run_single_property(stress_def, pm, scfg);

  analyze::AnalyzerOptions with;    // check_collectives defaults to true
  analyze::AnalyzerOptions without;
  without.check_collectives = false;

  bool clean_quiet = true;
  bool identical = true;
  for (const trace::Trace& tr : corpus) {
    const analyze::AnalysisResult checked = analyze::analyze(tr, with);
    clean_quiet = clean_quiet && checked.defects.empty();
    identical = identical && report::severity_csv(checked, tr) ==
                                 report::severity_csv(
                                     analyze::analyze(tr, without), tr);
  }

  constexpr int kReps = 7;
  std::vector<double> on_ms, off_ms, stress_on_ms, stress_off_ms;
  for (int i = 0; i < kReps; ++i) {
    off_ms.push_back(time_ms([&] {
      for (const trace::Trace& tr : corpus) analyze::analyze(tr, without);
    }));
    on_ms.push_back(time_ms([&] {
      for (const trace::Trace& tr : corpus) analyze::analyze(tr, with);
    }));
    stress_off_ms.push_back(time_ms([&] { analyze::analyze(stress, without); }));
    stress_on_ms.push_back(time_ms([&] { analyze::analyze(stress, with); }));
  }
  const double off = median_ms(off_ms);
  const double on = median_ms(on_ms);
  const double ovh = 100.0 * (on - off) / off;
  const double s_off = median_ms(stress_off_ms);
  const double s_on = median_ms(stress_on_ms);
  const double s_ovh = 100.0 * (s_on - s_off) / s_off;

  std::printf("\n%-44s %10s %10s %10s\n", "clean workload", "off ms", "on ms",
              "overhead");
  std::printf("%s\n", std::string(78, '-').c_str());
  std::printf("%-44s %10.2f %10.2f %+9.2f%%\n",
              ("registry corpus (" + std::to_string(corpus.size()) +
               " programs, " + std::to_string(corpus_events) + " events)")
                  .c_str(),
              off, on, ovh);
  std::printf("%-44s %10.2f %10.2f %+9.2f%%\n",
              ("collective-only stress (" +
               std::to_string(stress.event_count()) + " events)")
                  .c_str(),
              s_off, s_on, s_ovh);
  std::printf("\ndefects reported across the clean corpus: %s\n",
              clean_quiet ? "0" : "NONZERO");
  std::printf("severity CSV identical with checker on/off: %s\n",
              identical ? "yes" : "NO");
  std::printf(
      "checker overhead, representative corpus: %.2f%% (budget: < 2%%)\n",
      ovh);

  const bool ok =
      detected == cells && clean_quiet && identical && ovh < 2.0;
  return ok ? 0 : 1;
}
