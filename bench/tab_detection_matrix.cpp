// TAB-DM — the detection matrix (positive & negative correctness, paper
// Ch. 1 and §3.2).
//
// For every registered property function: run the canonical positive
// configuration and check the analyzer reports the expected property as
// dominant; run the canonical negative configuration and check the
// analyzer stays below threshold.  This is the headline quantitative
// result of the reproduction: a correct tool scores 100% on both columns.
//
// Every matrix cell is an independent deterministic simulation, so the
// sweep fans out across a thread pool (ATS_JOBS / hardware threads); each
// cell writes a pre-sized slot and the report is printed sequentially, so
// the output is byte-identical for any worker count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/strutil.hpp"
#include "runner/supervisor.hpp"

namespace {

struct MatrixRow {
  std::string pos_verdict = "-";
  std::string dominant_name = "-";
  bool pos_counted = false;
  bool pos_hit = false;
  bool neg_quiet = false;
};

}  // namespace

int main() {
  using namespace ats;
  benchutil::heading("TAB-DM: detection matrix over the property catalog");

  std::printf(
      "%-30s %-10s %-26s %-9s %-9s %s\n", "property function", "paradigm",
      "expected property", "positive", "negative", "dominant finding (pos)");
  std::printf("%s\n", std::string(110, '-').c_str());

  // The matrix covers the functions expected to complete; pathological
  // entries (deadlock/hang generators) are classified separately below
  // under the supervised runner.
  std::vector<const gen::PropertyDef*> defs;
  for (const auto& def : gen::Registry::instance().all()) {
    if (def.expected_outcome == gen::RunOutcome::kOk) defs.push_back(&def);
  }
  std::vector<MatrixRow> rows(defs.size());
  par::ThreadPool pool;
  pool.parallel_for(defs.size(), [&](std::size_t i) {
    const auto& def = *defs[i];
    MatrixRow& row = rows[i];
    const gen::RunConfig cfg =
        benchutil::default_config(std::max(def.min_procs, 4));

    // Positive run.
    if (def.expected.has_value()) {
      row.pos_counted = true;
      const trace::Trace tr =
          gen::run_single_property(def, def.positive, cfg);
      const auto result = analyze::analyze(tr);
      const auto dom = result.dominant();
      if (dom.has_value()) {
        row.dominant_name = std::string(analyze::property_name(dom->prop)) +
                            " (" + fmt_percent(dom->fraction, 1) + ")";
      }
      row.pos_hit = dom && dom->prop == *def.expected;
      row.pos_verdict = row.pos_hit ? "DETECTED" : "MISSED";
    }

    // Negative run.
    const trace::Trace tr = gen::run_single_property(def, def.negative, cfg);
    const auto result = analyze::analyze(tr);
    const auto dom = result.dominant();
    row.neg_quiet = !dom || dom->fraction < 0.02;
  });

  int pos_ok = 0, pos_total = 0, neg_ok = 0, neg_total = 0;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    const auto& def = *defs[i];
    const MatrixRow& row = rows[i];
    if (row.pos_counted) {
      ++pos_total;
      if (row.pos_hit) ++pos_ok;
    }
    ++neg_total;
    if (row.neg_quiet) ++neg_ok;
    std::printf("%-30s %-10s %-26s %-9s %-9s %s\n", def.name.c_str(),
                gen::to_string(def.paradigm),
                def.expected ? analyze::property_name(*def.expected)
                             : "(none)",
                row.pos_verdict.c_str(), row.neg_quiet ? "quiet" : "FLAGGED",
                row.dominant_name.c_str());
  }

  std::printf("%s\n", std::string(110, '-').c_str());
  std::printf("positive correctness: %d/%d detected\n", pos_ok, pos_total);
  std::printf("negative correctness: %d/%d quiet\n", neg_ok, neg_total);

  // ---- the suite against a DEFECTIVE tool --------------------------------
  // Disable the late-sender and wait-at-barrier patterns in the analyzer
  // (fault injection) and rerun the matrix: the suite must now report the
  // corresponding property functions as MISSED.  A test suite that cannot
  // fail a broken tool tests nothing.
  benchutil::heading(
      "TAB-DM (control): same matrix against a crippled analyzer\n"
      "(late-sender and wait-at-barrier patterns disabled)");
  analyze::AnalyzerOptions crippled;
  crippled.disabled_patterns = {analyze::PropertyId::kLateSender,
                                analyze::PropertyId::kWaitAtBarrier};
  std::vector<const gen::PropertyDef*> affected;
  for (const auto* def : defs) {
    if (def->expected.has_value() &&
        (*def->expected == analyze::PropertyId::kLateSender ||
         *def->expected == analyze::PropertyId::kWaitAtBarrier)) {
      affected.push_back(def);
    }
  }
  // vector<char>, not vector<bool>: cells write concurrently and
  // vector<bool> packs bits.
  std::vector<char> still_hit(affected.size(), 0);
  pool.parallel_for(affected.size(), [&](std::size_t i) {
    const auto& def = *affected[i];
    const gen::RunConfig cfg =
        benchutil::default_config(std::max(def.min_procs, 4));
    const trace::Trace tr = gen::run_single_property(def, def.positive, cfg);
    const auto result = analyze::analyze(tr, crippled);
    const auto dom = result.dominant();
    still_hit[i] = dom && dom->prop == *def.expected;
  });
  int missed_as_expected = 0;
  const int should_miss = static_cast<int>(affected.size());
  for (std::size_t i = 0; i < affected.size(); ++i) {
    if (!still_hit[i]) ++missed_as_expected;
    std::printf("%-30s -> %s\n", affected[i]->name.c_str(),
                still_hit[i] ? "still detected (fault injection failed?)"
                             : "MISSED — the suite exposes the defect");
  }
  std::printf("\ncrippled tool failed %d/%d affected positive tests — the "
              "suite works\n",
              missed_as_expected, should_miss);

  // ---- pathological programs under the supervised runner -----------------
  // The registry's negative-test idea extended to fault classes: programs
  // whose *declared* result is a failure outcome.  Each runs as a
  // supervised one-cell sweep under tight budgets; the runner must survive
  // it and classify it exactly as declared.
  benchutil::heading(
      "TAB-DM (faults): pathological programs classified under supervision");
  runner::SupervisorOptions sup;
  sup.virtual_time_limit = VDur::seconds(1.0);
  sup.yield_limit = 200'000;
  // Retry once with a derived seed (SplitSeed child of the plan seed).  The
  // pathological outcomes are declared properties of the programs, so the
  // retry burns one deterministic extra attempt and the classification
  // stays as declared — and no seed value, base or derived, appears in the
  // table, keeping this report byte-identical across worker counts.
  sup.retry.max_attempts = 2;
  sup.retry.perturb_seed = true;
  const runner::SupervisedRunner supervised(sup);
  const auto patho = gen::Registry::instance().pathological_names();
  int classified_ok = 0;
  std::printf("%-30s %-14s %-14s %s\n", "program", "declared", "classified",
              "note");
  std::printf("%s\n", std::string(90, '-').c_str());
  for (const auto& name : patho) {
    const auto& def = gen::Registry::instance().find(name);
    gen::ExperimentPlan plan;
    plan.property = name;
    plan.axis = {def.params.front().name, {def.params.front().default_value}};
    plan.config.nprocs = std::max(def.min_procs, 2);
    plan.jobs = 1;
    const auto cells = supervised.run_sweep(plan);
    const auto& row = cells.front();
    const bool match = row.outcome == def.expected_outcome;
    if (match) ++classified_ok;
    std::printf("%-30s %-14s %-14s %s\n", name.c_str(),
                gen::to_string(def.expected_outcome),
                gen::to_string(row.outcome), row.note.c_str());
  }
  std::printf("\nfault classification: %d/%zu as declared\n", classified_ok,
              patho.size());

  return (pos_ok == pos_total && neg_ok == neg_total &&
          missed_as_expected == should_miss &&
          classified_ok == static_cast<int>(patho.size()))
             ? 0
             : 1;
}
