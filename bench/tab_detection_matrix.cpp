// TAB-DM — the detection matrix (positive & negative correctness, paper
// Ch. 1 and §3.2).
//
// For every registered property function: run the canonical positive
// configuration and check the analyzer reports the expected property as
// dominant; run the canonical negative configuration and check the
// analyzer stays below threshold.  This is the headline quantitative
// result of the reproduction: a correct tool scores 100% on both columns.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/strutil.hpp"

int main() {
  using namespace ats;
  benchutil::heading("TAB-DM: detection matrix over the property catalog");

  std::printf(
      "%-30s %-10s %-26s %-9s %-9s %s\n", "property function", "paradigm",
      "expected property", "positive", "negative", "dominant finding (pos)");
  std::printf("%s\n", std::string(110, '-').c_str());

  int pos_ok = 0, pos_total = 0, neg_ok = 0, neg_total = 0;
  for (const auto& def : gen::Registry::instance().all()) {
    const gen::RunConfig cfg =
        benchutil::default_config(std::max(def.min_procs, 4));

    // Positive run.
    std::string pos_verdict = "-";
    std::string dominant_name = "-";
    if (def.expected.has_value()) {
      ++pos_total;
      const trace::Trace tr =
          gen::run_single_property(def, def.positive, cfg);
      const auto result = analyze::analyze(tr);
      const auto dom = result.dominant();
      if (dom.has_value()) {
        dominant_name = std::string(analyze::property_name(dom->prop)) +
                        " (" + fmt_percent(dom->fraction, 1) + ")";
      }
      const bool hit = dom && dom->prop == *def.expected;
      pos_verdict = hit ? "DETECTED" : "MISSED";
      if (hit) ++pos_ok;
    }

    // Negative run.
    ++neg_total;
    const trace::Trace tr = gen::run_single_property(def, def.negative, cfg);
    const auto result = analyze::analyze(tr);
    const auto dom = result.dominant();
    const bool quiet = !dom || dom->fraction < 0.02;
    if (quiet) ++neg_ok;

    std::printf("%-30s %-10s %-26s %-9s %-9s %s\n", def.name.c_str(),
                gen::to_string(def.paradigm),
                def.expected ? analyze::property_name(*def.expected)
                             : "(none)",
                pos_verdict.c_str(), quiet ? "quiet" : "FLAGGED",
                dominant_name.c_str());
  }

  std::printf("%s\n", std::string(110, '-').c_str());
  std::printf("positive correctness: %d/%d detected\n", pos_ok, pos_total);
  std::printf("negative correctness: %d/%d quiet\n", neg_ok, neg_total);

  // ---- the suite against a DEFECTIVE tool --------------------------------
  // Disable the late-sender and wait-at-barrier patterns in the analyzer
  // (fault injection) and rerun the matrix: the suite must now report the
  // corresponding property functions as MISSED.  A test suite that cannot
  // fail a broken tool tests nothing.
  benchutil::heading(
      "TAB-DM (control): same matrix against a crippled analyzer\n"
      "(late-sender and wait-at-barrier patterns disabled)");
  analyze::AnalyzerOptions crippled;
  crippled.disabled_patterns = {analyze::PropertyId::kLateSender,
                                analyze::PropertyId::kWaitAtBarrier};
  int missed_as_expected = 0, should_miss = 0;
  for (const auto& def : gen::Registry::instance().all()) {
    if (!def.expected.has_value()) continue;
    const bool affected =
        *def.expected == analyze::PropertyId::kLateSender ||
        *def.expected == analyze::PropertyId::kWaitAtBarrier;
    if (!affected) continue;
    ++should_miss;
    const gen::RunConfig cfg =
        benchutil::default_config(std::max(def.min_procs, 4));
    const trace::Trace tr = gen::run_single_property(def, def.positive, cfg);
    const auto result = analyze::analyze(tr, crippled);
    const auto dom = result.dominant();
    const bool hit = dom && dom->prop == *def.expected;
    if (!hit) ++missed_as_expected;
    std::printf("%-30s -> %s\n", def.name.c_str(),
                hit ? "still detected (fault injection failed?)"
                    : "MISSED — the suite exposes the defect");
  }
  std::printf("\ncrippled tool failed %d/%d affected positive tests — the "
              "suite works\n",
              missed_as_expected, should_miss);

  return (pos_ok == pos_total && neg_ok == neg_total &&
          missed_as_expected == should_miss)
             ? 0
             : 1;
}
