// TAB-DIFF: cost and fidelity of the cross-run differ (docs/DIFF.md).
//
// Three phases, each timed and self-checked:
//
//   snapshot    analyze a late_sender run and build the diffable Snapshot,
//               plus a severity-CSV round-trip — checks the round-trip
//               diffs empty,
//   corpus      self-diff the golden corpus directory — checks the result
//               is clean (the CI golden-diff job's hot path),
//   regression  re-run late_sender with +20% extrawork and diff the two
//               snapshots — checks the regression is detected and
//               attributed to exactly "late sender".
//
// Prints the table and writes BENCH_diff.json (one object per phase:
// wall seconds, cells/entries processed, plus the self-check verdicts)
// for the ctest smoke gate and PR-to-PR diffing.  Any failed self-check
// exits 1 so bench_diff_smoke goes red.
//
// Usage: tab_diff [--golden <dir>] [--out <path>] [--repeat <n>]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "diff/diff.hpp"

namespace {

using namespace ats;
using Clock = std::chrono::steady_clock;

struct Phase {
  std::string name;
  double wall_s = 0.0;
  std::size_t items = 0;   ///< cells diffed / corpus entries compared
  bool check_ok = false;
  std::string check;       ///< what the self-check asserted
};

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

trace::Trace run_late_sender(double extrawork_scale) {
  const gen::PropertyDef& def =
      gen::Registry::instance().find("late_sender");
  gen::ParamMap params = def.positive;
  const double base = params.get_double("extrawork", 0.05);
  params.set("extrawork", std::to_string(base * extrawork_scale));
  return gen::run_single_property(def, params,
                                  benchutil::default_config(4));
}

}  // namespace

int main(int argc, char** argv) {
  std::string golden_dir, out_path;
  int repeat = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--golden") == 0 && i + 1 < argc) {
      golden_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: tab_diff [--golden <dir>] [--out <path>] "
                   "[--repeat <n>]\n");
      return gen::kExitUsage;
    }
  }

  benchutil::heading("TAB-DIFF: cross-run differ cost and fidelity");
  std::vector<Phase> phases;

  // -------------------------------------------------------- snapshot
  {
    Phase p;
    p.name = "snapshot";
    p.check = "severity-CSV round-trip diffs empty";
    const auto t0 = Clock::now();
    diff::Snapshot snap;
    bool ok = true;
    for (int r = 0; r < repeat; ++r) {
      const trace::Trace tr = run_late_sender(1.0);
      snap = diff::Snapshot::from_result(analyze::analyze(tr), tr);
      const diff::Snapshot parsed =
          diff::Snapshot::from_severity_csv(snap.severity_csv());
      ok = ok && diff::diff_snapshots(snap, parsed).empty();
    }
    p.wall_s = secs_since(t0) / repeat;
    p.items = snap.cells.size();
    p.check_ok = ok;
    phases.push_back(p);
  }

  // ---------------------------------------------------------- corpus
  if (!golden_dir.empty()) {
    Phase p;
    p.name = "corpus";
    p.check = "golden corpus self-diff is clean";
    const auto t0 = Clock::now();
    diff::CorpusDiff cd;
    for (int r = 0; r < repeat; ++r) {
      cd = diff::diff_corpus(golden_dir, golden_dir);
    }
    p.wall_s = secs_since(t0) / repeat;
    p.items = cd.entries_compared;
    p.check_ok = cd.clean() && cd.entries_compared > 0;
    phases.push_back(p);
  }

  // ------------------------------------------------------ regression
  {
    Phase p;
    p.name = "regression";
    p.check = "+20% extrawork attributed to 'late sender'";
    const trace::Trace a = run_late_sender(1.0);
    const trace::Trace b = run_late_sender(1.2);
    const diff::Snapshot sa = diff::Snapshot::from_result(analyze::analyze(a), a);
    const diff::Snapshot sb = diff::Snapshot::from_result(analyze::analyze(b), b);
    const auto t0 = Clock::now();
    diff::DiffResult d;
    for (int r = 0; r < repeat; ++r) {
      d = diff::diff_snapshots(sa, sb);
    }
    p.wall_s = secs_since(t0) / repeat;
    p.items = d.cells_compared;
    p.check_ok = d.regression() && d.attribution == "late sender";
    phases.push_back(p);
  }

  bool all_ok = true;
  std::printf("%-12s %12s %10s  %s\n", "phase", "wall_s", "items", "check");
  for (const Phase& p : phases) {
    all_ok = all_ok && p.check_ok;
    std::printf("%-12s %12.6f %10zu  [%s] %s\n", p.name.c_str(), p.wall_s,
                p.items, p.check_ok ? "ok" : "FAIL", p.check.c_str());
  }

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    os << "{\n  \"table\": \"TAB-DIFF\",\n  \"phases\": [\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const Phase& p = phases[i];
      os << "    {\"phase\": \"" << p.name << "\", \"wall_s\": " << p.wall_s
         << ", \"items\": " << p.items
         << ", \"check_ok\": " << (p.check_ok ? "true" : "false")
         << ", \"check\": \"" << p.check << "\"}"
         << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  return all_ok ? gen::kExitOk : gen::kExitFailure;
}
