// TAB-OVH — the instrumentation-overhead procedure (paper Ch. 2).
//
// "Run the benchmark suite without and with the tool instrumentation and
// compare the outcome."  Here: run a fixed workload with tracing disabled
// and enabled, compare (a) the host wall-clock cost of the run — the
// instrumentation overhead, (b) the simulated result data — the
// semantics-preservation check, (c) the simulated makespan, which must be
// IDENTICAL because virtual time is independent of tracing (the ideal
// non-intrusive tool the paper wishes for).
#include <chrono>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.hpp"

using namespace ats;
using Clock = std::chrono::steady_clock;

namespace {

struct RunOutcome {
  double host_seconds = 0;
  VTime makespan;
  std::size_t events = 0;
  double checksum = 0;
};

RunOutcome workload(bool traced, int np) {
  mpi::MpiRunOptions options;
  options.nprocs = np;
  options.trace_enabled = traced;
  double checksum = 0;
  const auto t0 = Clock::now();
  auto run = mpi::run_mpi(options, [&](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    // A mixed workload: property functions + a data-carrying allreduce.
    core::late_sender(ctx, 0.005, 0.01, 3, p.comm_world());
    core::imbalance_at_mpi_barrier(
        ctx, core::Distribution::linear(0.005, 0.02), 3, p.comm_world());
    double v = p.world_rank() + 1.0, out = 0;
    p.allreduce(&v, &out, 1, mpi::Datatype::kDouble, mpi::ReduceOp::kSum,
                p.comm_world());
    if (p.world_rank() == 0) checksum = out;
  });
  RunOutcome o;
  o.host_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  o.makespan = run.makespan;
  o.events = run.trace.event_count();
  o.checksum = checksum;
  return o;
}

}  // namespace

int main() {
  benchutil::heading("TAB-OVH: uninstrumented vs instrumented runs (Ch. 2 procedure)");

  std::printf("np   tracing   host time [ms]   events   sim makespan   checksum\n");
  std::printf("------------------------------------------------------------------\n");
  bool all_ok = true;
  for (int np : {2, 4, 8, 16}) {
    const RunOutcome off = workload(false, np);
    const RunOutcome on = workload(true, np);
    for (const auto* o : {&off, &on}) {
      std::printf("%-4d %-9s %14.2f %8zu %14s %10.1f\n", np,
                  o == &off ? "off" : "on", 1e3 * o->host_seconds, o->events,
                  o->makespan.str().c_str(), o->checksum);
    }
    const bool same_semantics = off.checksum == on.checksum;
    const bool same_makespan = off.makespan == on.makespan;
    all_ok = all_ok && same_semantics && same_makespan;
    std::printf("     -> semantics %s, timing distortion %s, overhead x%.2f "
                "host time\n",
                same_semantics ? "preserved" : "CHANGED",
                same_makespan ? "zero (non-intrusive)" : "PRESENT",
                off.host_seconds > 0 ? on.host_seconds / off.host_seconds
                                     : 0.0);
  }
  return all_ok ? 0 : 1;
}
