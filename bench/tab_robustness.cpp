// TAB-ROB — detection under trace corruption (robustness layer,
// DESIGN.md §7; experiment protocol in EXPERIMENTS.md).
//
// For every positive property function, the canonical trace is perturbed
// at increasing corruption levels (each level sets the per-event drop,
// duplicate and reorder probabilities, plus timestamp jitter on a quarter
// of the events) and re-analysed in lenient mode.  A cell counts as
// DETECTED when the expected property still carries more than 1% of total
// time.  The table reports the per-level detection rate — empirically, the
// suite holds at 100% up to the 1% corruption level, which is the
// threshold the fuzz ctest pins.
//
// Cells are independent deterministic simulations; the sweep fans out
// across the thread pool and prints sequentially, so output is
// byte-identical for any worker count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/strutil.hpp"
#include "faults/fault_injector.hpp"

namespace {

constexpr double kLevels[] = {0.0, 0.005, 0.01, 0.02, 0.05, 0.10};
constexpr std::size_t kNumLevels = sizeof(kLevels) / sizeof(kLevels[0]);

ats::faults::FaultConfig level_config(double level, std::uint64_t seed) {
  ats::faults::FaultConfig cfg;
  cfg.seed = seed;
  cfg.drop_event = level;
  cfg.duplicate_event = level;
  cfg.reorder_events = level;
  if (level > 0.0) {
    cfg.jitter_ns = 500'000;  // ±0.5ms
    cfg.jitter_events = 0.25;
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace ats;
  benchutil::heading(
      "TAB-ROB: detection rate vs. trace-corruption level (lenient mode)");

  std::vector<const gen::PropertyDef*> defs;
  for (const auto& def : gen::Registry::instance().all()) {
    if (def.expected.has_value()) defs.push_back(&def);
  }

  std::printf("%-30s", "property function");
  for (const double level : kLevels) {
    std::printf(" %8s", fmt_percent(level, 1).c_str());
  }
  std::printf("\n%s\n",
              std::string(30 + 9 * kNumLevels, '-').c_str());

  // cell = defs.size() x kNumLevels verdicts, written concurrently
  // (vector<char>, not vector<bool>: the latter packs bits).
  std::vector<char> detected(defs.size() * kNumLevels, 0);
  par::ThreadPool pool;
  pool.parallel_for(defs.size() * kNumLevels, [&](std::size_t cell) {
    const std::size_t d = cell / kNumLevels;
    const std::size_t lv = cell % kNumLevels;
    const gen::PropertyDef& def = *defs[d];
    const gen::RunConfig cfg =
        benchutil::default_config(std::max(def.min_procs, 4));
    const trace::Trace base =
        gen::run_single_property(def, def.positive, cfg);
    faults::FaultInjector inj(
        level_config(kLevels[lv], 20260806 + cell));
    const trace::Trace mutated = inj.apply(base);
    analyze::AnalyzerOptions aopt;
    aopt.lenient = true;
    const auto result = analyze::analyze(mutated, aopt);
    detected[cell] = result.severity_fraction(*def.expected) > 0.01;
  });

  std::vector<int> per_level_ok(kNumLevels, 0);
  for (std::size_t d = 0; d < defs.size(); ++d) {
    std::printf("%-30s", defs[d]->name.c_str());
    for (std::size_t lv = 0; lv < kNumLevels; ++lv) {
      const bool ok = detected[d * kNumLevels + lv] != 0;
      per_level_ok[lv] += ok ? 1 : 0;
      std::printf(" %8s", ok ? "yes" : "LOST");
    }
    std::printf("\n");
  }

  std::printf("%s\n",
              std::string(30 + 9 * kNumLevels, '-').c_str());
  std::printf("%-30s", "detection rate");
  for (std::size_t lv = 0; lv < kNumLevels; ++lv) {
    std::printf(" %8s",
                fmt_percent(static_cast<double>(per_level_ok[lv]) /
                                static_cast<double>(defs.size()),
                            0).c_str());
  }
  std::printf("\n\n");

  // The documented robustness claim: nothing is lost at or below the 1%
  // corruption level (levels 0, 0.5%, 1%).
  const bool threshold_holds =
      per_level_ok[0] == static_cast<int>(defs.size()) &&
      per_level_ok[1] == static_cast<int>(defs.size()) &&
      per_level_ok[2] == static_cast<int>(defs.size());
  std::printf("threshold claim (100%% detection at <=1%% corruption): %s\n",
              threshold_holds ? "holds" : "VIOLATED");
  return threshold_holds ? 0 : 1;
}
