// TAB-RO — supervision overhead on clean sweeps.
//
// The SupervisedRunner promises that healthy experiments pay (next to)
// nothing for supervision: budgets are plain comparisons in the scheduler
// loop, classification is a try/catch that never fires, and the rows — and
// therefore the CSV bytes — are identical to the unsupervised path.  This
// table measures that claim: the same clean sweep through
// gen::run_experiment and through SupervisedRunner::run_sweep (with and
// without a journal), repeated and compared on median wall time.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runner/supervisor.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double median_ms(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename F>
double time_ms(F&& f) {
  const auto t0 = Clock::now();
  f();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace ats;
  benchutil::heading("TAB-RO: supervision overhead on a clean sweep");

  gen::ExperimentPlan plan;
  plan.property = "late_sender";
  plan.base.set("basework", "0.01");
  plan.base.set("r", "3");
  plan.axis = {"extrawork", {"0.01", "0.02", "0.03", "0.04"}};
  plan.config.nprocs = 4;
  plan.jobs = 1;  // sequential: timing reflects per-cell cost, not pool luck

  const std::string journal =
      std::string("/tmp/ats_tab_runner_overhead_journal.tsv");
  std::remove(journal.c_str());

  runner::SupervisorOptions sup_opt;
  runner::SupervisorOptions jrn_opt;
  jrn_opt.journal_path = journal;
  const runner::SupervisedRunner supervised(sup_opt);
  const runner::SupervisedRunner journaled(jrn_opt);

  // Byte-identity first: the overhead question is only meaningful if the
  // supervised rows are the same rows.
  const auto plain_rows = gen::run_experiment(plan);
  const auto sup_rows = supervised.run_sweep(plan);
  const bool identical = gen::experiment_csv(plan, plain_rows) ==
                         gen::experiment_csv(plan, sup_rows);

  constexpr int kReps = 7;
  std::vector<double> plain_ms, sup_ms, jrn_ms;
  for (int i = 0; i < kReps; ++i) {
    plain_ms.push_back(time_ms([&] { gen::run_experiment(plan); }));
    sup_ms.push_back(time_ms([&] { supervised.run_sweep(plan); }));
    std::remove(journal.c_str());
    jrn_ms.push_back(time_ms([&] { journaled.run_sweep(plan); }));
  }
  std::remove(journal.c_str());

  const double plain = median_ms(plain_ms);
  const double sup = median_ms(sup_ms);
  const double jrn = median_ms(jrn_ms);
  const double sup_ovh = 100.0 * (sup - plain) / plain;
  const double jrn_ovh = 100.0 * (jrn - plain) / plain;

  std::printf("%-34s %12s %12s\n", "configuration", "median ms", "overhead");
  std::printf("%s\n", std::string(60, '-').c_str());
  std::printf("%-34s %12.2f %12s\n", "gen::run_experiment (baseline)", plain,
              "-");
  std::printf("%-34s %12.2f %+11.2f%%\n", "SupervisedRunner, no journal",
              sup, sup_ovh);
  std::printf("%-34s %12.2f %+11.2f%%\n", "SupervisedRunner, journaling",
              jrn, jrn_ovh);
  std::printf("\nclean-sweep CSV byte-identical under supervision: %s\n",
              identical ? "yes" : "NO");
  std::printf("supervision overhead (no journal): %.2f%% (budget: < 2%%)\n",
              sup_ovh);

  return (identical && sup_ovh < 2.0) ? 0 : 1;
}
