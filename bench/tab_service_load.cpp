// TAB-SL: load characteristics of the analysis service (docs/SERVICE.md).
//
// Runs an in-process Server on a real Unix socket and drives it with
// concurrent clients through three phases:
//
//   cold        distinct analyze requests — every one simulates; measures
//               raw service throughput and latency,
//   hot         the same request repeated from every client — measures
//               the memoized path (cache hits, zero re-simulation),
//   saturation  a deliberately small daemon (1 worker, depth-2 queue)
//               under a burst of slow requests — measures the shed rate
//               and verifies overload answers immediately instead of
//               queueing without bound.
//
// Prints the table and writes BENCH_service.json (one object per phase:
// requests, ok/shed/error counts, wall seconds, requests/s, p50/p95
// latency ms, cache hits) for the ctest smoke gate and PR-to-PR diffing.
//
// Usage: tab_service_load [--out <path>] [--clients <n>] [--requests <n>]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseResult {
  std::string name;
  int requests = 0;
  int ok = 0;
  int shed = 0;
  int errors = 0;
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t simulations = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Fires `lines[i % lines.size()]` from `clients` threads, `per_client`
/// requests each, against the server at `socket`.  Latencies are
/// end-to-end per request.
PhaseResult drive(const std::string& name, const std::string& socket,
                  const std::vector<std::string>& lines, int clients,
                  int per_client) {
  PhaseResult r;
  r.name = name;
  r.requests = clients * per_client;
  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<int> ok{0}, shed{0}, errors{0};
  std::atomic<int> cursor{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      ats::service::Client client(socket);
      std::vector<double> local;
      for (int i = 0; i < per_client; ++i) {
        const std::string& line =
            lines[static_cast<std::size_t>(cursor.fetch_add(1)) % lines.size()];
        const auto s = Clock::now();
        const ats::service::Response resp = client.call(line);
        local.push_back(std::chrono::duration<double, std::milli>(
                            Clock::now() - s).count());
        switch (resp.status) {
          case ats::service::Status::kOk: ok.fetch_add(1); break;
          case ats::service::Status::kShed: shed.fetch_add(1); break;
          case ats::service::Status::kError: errors.fetch_add(1); break;
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.ok = ok.load();
  r.shed = shed.load();
  r.errors = errors.load();
  r.p50_ms = percentile(latencies, 0.50);
  r.p95_ms = percentile(latencies, 0.95);
  return r;
}

void print_row(const PhaseResult& r) {
  std::printf("%-12s %8d %6d %6d %6d %8.2f %9.1f %8.2f %8.2f %9llu %6llu\n",
              r.name.c_str(), r.requests, r.ok, r.shed, r.errors, r.wall_s,
              static_cast<double>(r.requests) / std::max(r.wall_s, 1e-9),
              r.p50_ms, r.p95_ms,
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.simulations));
}

void write_json(const std::string& path, const std::vector<PhaseResult>& rs) {
  std::ofstream out(path);
  out << "{\n  \"table\": \"TAB-SL\",\n  \"phases\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const PhaseResult& r = rs[i];
    out << "    {\"phase\": \"" << r.name << "\", \"requests\": " << r.requests
        << ", \"ok\": " << r.ok << ", \"shed\": " << r.shed
        << ", \"errors\": " << r.errors << ", \"wall_s\": " << r.wall_s
        << ", \"rps\": "
        << static_cast<double>(r.requests) / std::max(r.wall_s, 1e-9)
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"cache_hits\": " << r.cache_hits
        << ", \"simulations\": " << r.simulations << "}"
        << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  int clients = 4;
  int per_client = 25;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--clients") == 0) clients = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--requests") == 0) {
      per_client = std::atoi(argv[i + 1]);
    }
  }

  ats::benchutil::heading(
      "TAB-SL: analysis service under load (docs/SERVICE.md)");
  std::printf("%-12s %8s %6s %6s %6s %8s %9s %8s %8s %9s %6s\n", "phase",
              "requests", "ok", "shed", "errors", "wall_s", "req/s", "p50_ms",
              "p95_ms", "cache_hit", "sims");
  std::vector<PhaseResult> results;

  {
    // cold + hot share one healthy daemon.
    ats::service::ServerOptions opt;
    opt.socket_path = "/tmp/ats_bench_sl.sock";
    opt.workers = 4;
    ats::service::Server server(opt);
    server.start();

    std::vector<std::string> cold_lines;
    for (int i = 0; i < clients * per_client; ++i) {
      cold_lines.push_back("analyze prop=late_sender np=" +
                           std::to_string(2 + i % 8) + " extrawork=0.0" +
                           std::to_string(1 + i / 8));
    }
    PhaseResult cold = drive("cold", opt.socket_path, cold_lines, clients,
                             per_client);
    cold.cache_hits = server.cache_stats().hits;
    cold.simulations = server.counters().simulations;
    print_row(cold);
    results.push_back(cold);

    const auto hits_before = server.cache_stats().hits;
    const auto sims_before = server.counters().simulations;
    PhaseResult hot =
        drive("hot", opt.socket_path,
              {"analyze prop=late_sender np=4 extrawork=0.01"}, clients,
              per_client);
    hot.cache_hits = server.cache_stats().hits - hits_before;
    hot.simulations = server.counters().simulations - sims_before;
    print_row(hot);
    results.push_back(hot);
    server.stop();
  }

  {
    // Saturation: one slow worker, a two-deep queue, a burst of slow
    // distinct requests.  Shedding is the *intended* behaviour here.
    ats::service::ServerOptions opt;
    opt.socket_path = "/tmp/ats_bench_sl_sat.sock";
    opt.workers = 1;
    opt.analyze_slots = 1;
    opt.queue_depth = 2;
    ats::service::Server server(opt);
    server.start();
    std::vector<std::string> slow_lines;
    for (int i = 0; i < 64; ++i) {
      slow_lines.push_back("analyze prop=late_sender r=400 np=" +
                           std::to_string(48 + i));
    }
    PhaseResult sat =
        drive("saturation", opt.socket_path, slow_lines, clients, 8);
    sat.cache_hits = server.cache_stats().hits;
    sat.simulations = server.counters().simulations;
    print_row(sat);
    results.push_back(sat);
    server.stop();
  }

  write_json(out_path, results);
  const bool sane = results[0].ok == results[0].requests &&
                    results[1].ok == results[1].requests &&
                    results[1].simulations == 0 &&
                    results[2].shed + results[2].ok == results[2].requests;
  if (!sane) {
    std::printf("TAB-SL sanity FAILED\n");
    return 1;
  }
  return 0;
}
