// TAB-SEV — severity controllability (paper §3.1: "it is important that
// the test suite is parametrized so that the relative severity of the
// properties can be controlled by the user").
//
// Three sweeps:
//  1. late_sender: measured severity vs injected extrawork (expect linear,
//     slope = waits-per-run = (#receivers x r)),
//  2. imbalance_at_mpi_barrier: severity vs repetition factor (expect
//     linear in r),
//  3. a two-property program where the injected ratio crosses over: the
//     analyzer's ranking must flip exactly where the injection says.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/strutil.hpp"

using namespace ats;

namespace {

double late_sender_severity(double extrawork, int r, int np) {
  gen::ParamMap pm;
  pm.set("basework", "0.01");
  pm.set("extrawork", fmt_double(extrawork, 5));
  pm.set("r", std::to_string(r));
  const auto tr = gen::run_single_property("late_sender", pm,
                                           benchutil::default_config(np));
  const auto result = analyze::analyze(tr);
  return result.cube.total(analyze::PropertyId::kLateSender).sec();
}

double barrier_severity(int r, int np) {
  gen::ParamMap pm;
  pm.set("df", "linear:low=0.01,high=0.05");
  pm.set("r", std::to_string(r));
  const auto tr = gen::run_single_property(
      "imbalance_at_mpi_barrier", pm, benchutil::default_config(np));
  const auto result = analyze::analyze(tr);
  return result.cube.total(analyze::PropertyId::kWaitAtBarrier).sec();
}

}  // namespace

int main() {
  benchutil::heading("TAB-SEV sweep 1: late_sender severity vs extrawork "
                     "(np=8, r=2; expected = 8 waits x extrawork)");
  std::printf("extrawork [ms]   measured total wait [ms]   expected [ms]   ratio\n");
  std::printf("----------------------------------------------------------------\n");
  for (double extra : {0.01, 0.02, 0.04, 0.08, 0.16}) {
    const double sev = late_sender_severity(extra, 2, 8);
    const double expected = 4 /*receivers*/ * 2 /*r*/ * extra;
    std::printf("%12.1f   %24.2f   %13.1f   %.3f\n", 1e3 * extra, 1e3 * sev,
                1e3 * expected, sev / expected);
  }

  benchutil::heading("TAB-SEV sweep 2: wait-at-barrier severity vs "
                     "repetition factor (np=8, linear df)");
  std::printf("r    measured total wait [ms]   per-iteration [ms]\n");
  std::printf("--------------------------------------------------\n");
  double per_iter0 = 0;
  for (int r : {1, 2, 4, 8}) {
    const double sev = barrier_severity(r, 8);
    if (r == 1) per_iter0 = sev;
    std::printf("%-4d %24.2f   %18.2f\n", r, 1e3 * sev, 1e3 * sev / r);
  }
  std::printf("(per-iteration severity must stay ~constant: %0.2f ms)\n",
              1e3 * per_iter0);

  benchutil::heading("TAB-SEV sweep 3: ranking crossover between two "
                     "properties in one program (np=4)");
  std::printf("barrier-extra/sender-extra   top finding        2nd finding\n");
  std::printf("-------------------------------------------------------------\n");
  for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double sender_extra = 0.04;
    const double barrier_extra = sender_extra * ratio;
    mpi::MpiRunOptions options;
    options.nprocs = 4;
    auto run = mpi::run_mpi(options, [&](mpi::Proc& p) {
      core::PropCtx ctx = core::PropCtx::from(p);
      core::late_sender(ctx, 0.01, sender_extra, 2, p.comm_world());
      core::imbalance_at_mpi_barrier(
          ctx, core::Distribution::peak(0.01, 0.01 + barrier_extra, 0), 2,
          p.comm_world());
    });
    const auto result = analyze::analyze(run.trace);
    std::string top = "-", second = "-";
    int seen = 0;
    for (const auto& f : result.findings) {
      if (analyze::property_info(f.prop).is_overhead) continue;
      if (seen == 0) top = analyze::property_name(f.prop);
      if (seen == 1) second = analyze::property_name(f.prop);
      ++seen;
    }
    std::printf("%26.2f   %-18s %-18s\n", ratio, top.c_str(),
                second.c_str());
  }
  std::printf("(expected: 'late sender' on top for ratios < ~0.7, 'wait at "
              "barrier' above — the barrier wait is paid by 3 ranks)\n");
  return 0;
}
