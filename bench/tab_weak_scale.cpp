// TAB-WS: weak-scaling sweep of the simulation engine (ISSUE 6).
//
// Runs the same registry property (late_sender, canonical positive
// parameters) at N = 64 ... 100000 ranks on the fiber backend and records,
// per point:
//   * generation throughput (trace events per wall-clock second),
//   * a peak-RSS proxy (VmHWM delta of a forked child, so points do not
//     pollute each other) and the derived bytes/location,
//   * trace residency: spilled bytes and the binary trace file size,
//   * zero-copy replay throughput (mmap the binary file, walk the k-way
//     merge cursor).
//
// Every N runs in its own forked child with the trace spilling to disk past
// a 64 MiB watermark, exactly how a weak-scale user would run it; the
// parent only aggregates the per-point JSON lines into BENCH_scale.json.
//
// The "naive_stack_bytes" figure in the output is the cost of one fully
// committed 256 KiB fiber stack — the per-location floor the engine would
// pay without pooled, lazily committed stacks (see simt/stack_pool.hpp).
//
// Usage: tab_weak_scale [--max-n <ranks>] [--out <path>]
//   --max-n bounds the sweep (CI smoke uses 4096); --out defaults to
//   BENCH_scale.json in the working directory.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/registry.hpp"
#include "mpisim/world.hpp"
#include "trace/trace_binary.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set of this process in bytes (VmHWM from /proc/self/status);
/// 0 where unavailable.  Forking a fresh child per point makes the delta
/// between "before run" and "after run" attributable to that run alone.
std::size_t peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(
                 std::strtoull(line.c_str() + 6, nullptr, 10)) *
             1024;
    }
  }
  return 0;
}

struct Point {
  int n = 0;
  std::uint64_t events = 0;
  double gen_seconds = 0;
  std::size_t rss_bytes = 0;       // VmHWM delta across the run
  std::size_t spilled_bytes = 0;   // trace payload streamed to the spill file
  std::size_t file_bytes = 0;      // binary trace container size
  std::uint64_t peak_live = 0;     // peak simultaneously-live locations
  double replay_seconds = 0;
  std::uint64_t replay_events = 0;
};

std::string to_json(const Point& p) {
  const auto rate = [](double ev, double s) { return s > 0 ? ev / s : 0.0; };
  std::ostringstream os;
  os << "{\"n\":" << p.n << ",\"events\":" << p.events
     << ",\"events_per_sec\":" << rate(double(p.events), p.gen_seconds)
     << ",\"rss_bytes\":" << p.rss_bytes << ",\"bytes_per_loc\":"
     << (p.n > 0 ? p.rss_bytes / static_cast<std::size_t>(p.n) : 0)
     << ",\"spilled_bytes\":" << p.spilled_bytes
     << ",\"trace_file_bytes\":" << p.file_bytes
     << ",\"peak_live_locations\":" << p.peak_live
     << ",\"replay_events_per_sec\":"
     << rate(double(p.replay_events), p.replay_seconds) << "}";
  return os.str();
}

/// One weak-scale point, run inside the forked child.
Point run_point(int n) {
  using namespace ats;
  Point pt;
  pt.n = n;

  const gen::PropertyDef& def =
      gen::Registry::instance().find("late_sender");

  const std::string spill_path =
      "tab_weak_scale." + std::to_string(n) + ".spill";
  const std::string trace_path =
      "tab_weak_scale." + std::to_string(n) + ".atsbin";

  mpi::MpiRunOptions opt;
  opt.nprocs = n;
  opt.engine.backend = simt::EngineBackend::kFiber;
  opt.engine.max_locations = static_cast<std::size_t>(n) + 8;
  // The default supervision budgets (src/runner): the acceptance gate is
  // that 100k ranks finish inside them.
  opt.engine.virtual_time_limit = VDur::seconds(3600.0);
  opt.engine.yield_limit = 10'000'000;
  opt.trace_spill_path = spill_path;
  opt.trace_spill_watermark = 64u << 20;

  const gen::ParamMap& pm = def.positive;
  const std::size_t rss0 = peak_rss_bytes();
  const auto t0 = Clock::now();
  mpi::MpiRunResult run = mpi::run_mpi(opt, [&](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    def.invoke(ctx, pm);
  });
  pt.gen_seconds = seconds_since(t0);
  pt.events = run.trace.event_count();
  pt.spilled_bytes = run.trace.spilled_bytes();
  pt.peak_live = run.stats.peak_live_locations;

  {
    std::ofstream os(trace_path, std::ios::binary);
    run.trace.save_binary(os);
  }
  {
    std::ifstream sz(trace_path, std::ios::binary | std::ios::ate);
    pt.file_bytes = static_cast<std::size_t>(sz.tellg());
  }
  pt.rss_bytes = peak_rss_bytes() - rss0;

  // Zero-copy replay: mmap the container and walk the global merge order,
  // the same access pattern the analyzer's replay loop performs.
  const auto t1 = Clock::now();
  trace::Trace loaded = trace::load_trace_binary_file(trace_path).trace;
  std::uint64_t replayed = 0;
  loaded.for_each_merged([&](const trace::Event&) { ++replayed; });
  pt.replay_seconds = seconds_since(t1);
  pt.replay_events = replayed;
  std::remove(trace_path.c_str());
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  int max_n = 100000;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--max-n" && i + 1 < argc) {
      max_n = std::atoi(argv[++i]);
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: tab_weak_scale [--max-n <ranks>] [--out <path>]\n");
      return 2;
    }
  }

  std::vector<int> ns;
  for (int n : {64, 1024, 4096, 16384, 100000}) {
    if (n <= max_n) ns.push_back(n);
  }

  std::printf("TAB-WS weak-scaling sweep: late_sender, fiber backend\n");
  std::printf("%8s %12s %14s %12s %14s %14s\n", "ranks", "events",
              "events/sec", "bytes/loc", "spilled", "replay ev/s");

  std::vector<std::string> lines;
  for (int n : ns) {
    int fds[2];
    if (pipe(fds) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      close(fds[0]);
      int code = 0;
      try {
        const std::string json = to_json(run_point(n));
        const char* p = json.c_str();
        std::size_t left = json.size();
        while (left > 0) {
          const ssize_t w = write(fds[1], p, left);
          if (w <= 0) {
            code = 1;
            break;
          }
          p += w;
          left -= static_cast<std::size_t>(w);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "N=%d failed: %s\n", n, e.what());
        code = 1;
      }
      close(fds[1]);
      _exit(code);
    }
    close(fds[1]);
    std::string json;
    char buf[4096];
    ssize_t r;
    while ((r = read(fds[0], buf, sizeof buf)) > 0) {
      json.append(buf, static_cast<std::size_t>(r));
    }
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || json.empty()) {
      std::fprintf(stderr, "weak-scale point N=%d failed\n", n);
      return 1;
    }
    lines.push_back(json);

    // Progress row for the console (re-parse the few fields we print).
    const auto field = [&](const char* key) -> double {
      const auto pos = json.find(key);
      return pos == std::string::npos
                 ? 0.0
                 : std::atof(json.c_str() + pos + std::strlen(key));
    };
    std::printf("%8d %12.0f %14.0f %12.0f %14.0f %14.0f\n", n,
                field("\"events\":"), field("\"events_per_sec\":"),
                field("\"bytes_per_loc\":"), field("\"spilled_bytes\":"),
                field("\"replay_events_per_sec\":"));
    std::fflush(stdout);
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"weak_scale\",\n  \"property\": \"late_sender\",\n"
     << "  \"backend\": \"fiber\",\n  \"naive_stack_bytes\": 262144,\n"
     << "  \"points\": [\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    os << "    " << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %s (%zu points)\n", out_path.c_str(), lines.size());
  return 0;
}
