# Bench-artifact manifest gate (BENCH_index.json).
#
# The repo checks in one JSON artifact per bench table (BENCH_micro.json,
# BENCH_scale.json, BENCH_service.json, BENCH_diff.json).  Each is written
# by a different tool, so drift is easy: a renamed key or a truncated
# check-in silently breaks the PR-to-PR diffing these files exist for.
# BENCH_index.json is the single source of truth — every artifact is
# listed with the tool that writes it and the top-level keys it must
# carry — and this script validates the whole set:
#
#   * the manifest itself parses and declares schema ats-bench-manifest-v1,
#   * every listed file exists and parses as JSON,
#   * every required key is present in its file,
#   * no BENCH_*.json at the repo root is missing from the manifest.
#
# Usage:
#   cmake -DREPO_ROOT=<repo> -P cmake/check_bench_manifest.cmake

cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "usage: cmake -DREPO_ROOT=<repo> -P check_bench_manifest.cmake")
endif()

set(manifest_path "${REPO_ROOT}/BENCH_index.json")
if(NOT EXISTS "${manifest_path}")
  message(FATAL_ERROR "manifest not found: ${manifest_path}")
endif()

file(READ "${manifest_path}" manifest)

string(JSON schema ERROR_VARIABLE err GET "${manifest}" schema)
if(err OR NOT schema STREQUAL "ats-bench-manifest-v1")
  message(FATAL_ERROR "BENCH_index.json: bad or missing schema (want ats-bench-manifest-v1, got '${schema}')")
endif()

string(JSON count ERROR_VARIABLE err LENGTH "${manifest}" entries)
if(err OR count EQUAL 0)
  message(FATAL_ERROR "BENCH_index.json: no entries[] (${err})")
endif()
math(EXPR last "${count} - 1")

set(listed "")
foreach(i RANGE ${last})
  string(JSON file GET "${manifest}" entries ${i} file)
  string(JSON table GET "${manifest}" entries ${i} table)
  string(JSON tool GET "${manifest}" entries ${i} tool)
  list(APPEND listed "${file}")

  if(NOT EXISTS "${REPO_ROOT}/${file}")
    message(FATAL_ERROR "${file} (table ${table}): listed in BENCH_index.json but not checked in; regenerate with ${tool}")
  endif()
  file(READ "${REPO_ROOT}/${file}" content)

  # The file must be well-formed JSON...
  string(JSON dummy ERROR_VARIABLE err LENGTH "${content}")
  if(err)
    message(FATAL_ERROR "${file}: does not parse as JSON: ${err}")
  endif()

  # ...and carry every key its table's consumers rely on.
  string(JSON nkeys LENGTH "${manifest}" entries ${i} required_keys)
  math(EXPR klast "${nkeys} - 1")
  foreach(k RANGE ${klast})
    string(JSON key GET "${manifest}" entries ${i} required_keys ${k})
    string(JSON value ERROR_VARIABLE err GET "${content}" ${key})
    if(err)
      message(FATAL_ERROR "${file} (table ${table}): required key '${key}' missing; regenerate with ${tool}")
    endif()
  endforeach()
  message(STATUS "${file}: ok (table ${table}, ${nkeys} required keys)")
endforeach()

# Completeness: an artifact someone adds at the root without listing it
# here would silently escape the gate.
file(GLOB artifacts RELATIVE "${REPO_ROOT}" "${REPO_ROOT}/BENCH_*.json")
list(REMOVE_ITEM artifacts "BENCH_index.json")
foreach(f ${artifacts})
  if(NOT f IN_LIST listed)
    message(FATAL_ERROR "${f}: present at the repo root but not listed in BENCH_index.json")
  endif()
endforeach()

message(STATUS "bench manifest: ${count} artifacts validated")
