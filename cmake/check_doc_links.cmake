# Verifies that every relative markdown link in the repo's documentation
# resolves to an existing file.  Run as a script:
#
#   cmake -DREPO_ROOT=<repo> -P cmake/check_doc_links.cmake
#
# Registered as the `docs_link_check` ctest and run by CI, so a renamed or
# deleted document breaks the build instead of silently breaking readers.

if(NOT DEFINED REPO_ROOT)
  get_filename_component(REPO_ROOT "${CMAKE_CURRENT_LIST_DIR}/.." ABSOLUTE)
endif()

file(GLOB_RECURSE doc_files RELATIVE "${REPO_ROOT}"
  "${REPO_ROOT}/*.md")

set(broken 0)
set(checked 0)
foreach(doc IN LISTS doc_files)
  # Skip build trees and external checkouts.
  if(doc MATCHES "^(build|_deps)/" OR doc MATCHES "/(build|_deps)/")
    continue()
  endif()
  file(STRINGS "${REPO_ROOT}/${doc}" doc_lines)
  get_filename_component(doc_dir "${REPO_ROOT}/${doc}" DIRECTORY)
  set(in_code FALSE)
  foreach(line IN LISTS doc_lines)
    # Skip fenced code blocks — C++ lambdas like `[](mpi::Proc& p)` would
    # otherwise look like markdown links.
    if(line MATCHES "^[ \t]*```")
      if(in_code)
        set(in_code FALSE)
      else()
        set(in_code TRUE)
      endif()
      continue()
    endif()
    if(in_code)
      continue()
    endif()
    # Inline markdown links: [text](target).  The target is matched with
    # a positive character class (CMake's regex engine cannot express ')'
    # inside a negated class).  External and anchor-only targets are
    # ignored; everything else must exist relative to the containing
    # file.  A while loop with CMAKE_MATCH avoids list semantics, which
    # choke on matches containing brackets.
    set(rest "${line}")
    while(rest MATCHES "\\]\\(([A-Za-z0-9_.:/#~-]+)\\)(.*)")
      set(target "${CMAKE_MATCH_1}")
      set(rest "${CMAKE_MATCH_2}")
      # Strip a trailing #anchor.
      string(REGEX REPLACE "#[^#]*$" "" path "${target}")
      if(target MATCHES "^[a-z]+://" OR target MATCHES "^#"
         OR path STREQUAL "" OR IS_ABSOLUTE "${path}")
        continue()
      endif()
      math(EXPR checked "${checked} + 1")
      if(NOT EXISTS "${doc_dir}/${path}")
        message(SEND_ERROR "${doc}: broken relative link '${target}'")
        math(EXPR broken "${broken} + 1")
      endif()
    endwhile()
  endforeach()
endforeach()

if(broken GREATER 0)
  message(FATAL_ERROR "${broken} broken documentation link(s)")
endif()
message(STATUS "docs link check: ${checked} relative link(s) OK")
