# Weak-scale regression gate (ISSUE 6, TAB-WS).
#
# Compares a fresh bounded sweep (BENCH_scale.smoke.json, produced by the
# bench_weak_scale_smoke ctest entry) against the checked-in full-sweep
# baseline (BENCH_scale.json at the repository root) and fails when
# bytes/location regresses by more than 25% at any rank count both files
# cover.  bytes/location is the metric the pooled-stack + spill work
# optimises, and unlike events/sec it is stable across CI host speeds.
#
# Usage:
#   cmake -DSMOKE=<path/to/BENCH_scale.smoke.json> \
#         -DBASELINE=<path/to/BENCH_scale.json> \
#         -P cmake/check_scale_regression.cmake

if(NOT DEFINED SMOKE OR NOT DEFINED BASELINE)
  message(FATAL_ERROR "usage: cmake -DSMOKE=<smoke.json> -DBASELINE=<baseline.json> -P check_scale_regression.cmake")
endif()
if(NOT EXISTS "${SMOKE}")
  message(FATAL_ERROR "smoke sweep not found: ${SMOKE}")
endif()
if(NOT EXISTS "${BASELINE}")
  message(FATAL_ERROR "checked-in baseline not found: ${BASELINE}")
endif()

file(READ "${SMOKE}" smoke_json)
file(READ "${BASELINE}" base_json)

# Index the baseline points by rank count.
string(JSON base_count LENGTH "${base_json}" points)
math(EXPR base_last "${base_count} - 1")

string(JSON smoke_count LENGTH "${smoke_json}" points)
math(EXPR smoke_last "${smoke_count} - 1")

set(checked 0)
foreach(i RANGE ${smoke_last})
  string(JSON n GET "${smoke_json}" points ${i} n)
  string(JSON smoke_bpl GET "${smoke_json}" points ${i} bytes_per_loc)

  # Below ~1k ranks the VmHWM page granularity dominates bytes/location and
  # run-to-run noise exceeds the gate threshold; only gate the larger Ns.
  if(n LESS 1024)
    message(STATUS "N=${n}: below gating threshold (1024 ranks), skipped")
    continue()
  endif()

  # Find the same N in the baseline; the smoke sweep is a prefix of the
  # full sweep so missing Ns are not an error.
  set(base_bpl "")
  foreach(j RANGE ${base_last})
    string(JSON bn GET "${base_json}" points ${j} n)
    if(bn EQUAL n)
      string(JSON base_bpl GET "${base_json}" points ${j} bytes_per_loc)
      break()
    endif()
  endforeach()
  if(base_bpl STREQUAL "")
    message(STATUS "N=${n}: no baseline point, skipped")
    continue()
  endif()

  # Allow up to 1.25x the baseline.  Integer math: smoke*100 <= base*125.
  math(EXPR lhs "${smoke_bpl} * 100")
  math(EXPR rhs "${base_bpl} * 125")
  if(lhs GREATER rhs)
    message(FATAL_ERROR
      "weak-scale regression at N=${n}: bytes/location ${smoke_bpl} vs "
      "baseline ${base_bpl} (>25% worse). If intentional, re-run "
      "bench/tab_weak_scale and refresh BENCH_scale.json.")
  endif()
  message(STATUS "N=${n}: bytes/location ${smoke_bpl} (baseline ${base_bpl}) ok")
  math(EXPR checked "${checked} + 1")
endforeach()

if(checked EQUAL 0)
  message(FATAL_ERROR "no overlapping rank counts between smoke and baseline")
endif()
message(STATUS "weak-scale gate passed: ${checked} point(s) within 1.25x of baseline")
