// ats_client — command-line client for the ats_serve daemon.
//
//   ats_client --socket /tmp/ats.sock analyze prop=late_sender np=4
//   ats_client --socket /tmp/ats.sock sweep prop=late_sender axis=np values=2,4,8
//   ats_client --socket /tmp/ats.sock generate prop=late_sender -o drv.cpp
//   ats_client --socket /tmp/ats.sock diff fp_a=<hex> fp_b=<hex> values=2,4
//   ats_client --socket /tmp/ats.sock status | ping | shutdown
//
// The exit code follows the unified ATS table (gen/registry.hpp): an
// analyze response exits with its outcome's code (hang = 4, deadlock = 3,
// ...), a shed response exits 8 after printing the retry_after_ms hint, a
// usage rejection exits 2, a diff that found movement exits 9.  Scripts
// can poll `ats_client ... analyze ...` and branch on $? alone.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "gen/registry.hpp"
#include "service/client.hpp"

namespace {

constexpr const char* kUsagePrefix =
    "usage: ats_client --socket <path> <op> [key=value...] [-o <file>]\n"
    "\n"
    "ops: analyze sweep generate diff status ping shutdown\n"
    "  analyze  prop=<name> [np=<n>] [<param>=<v>...] [deadline_ms=<n>]\n"
    "  sweep    prop=<name> axis=<param|np> values=<v,v,...> [np=<n>]\n"
    "  generate prop=<name>   (-o writes the driver source to a file)\n"
    "  diff     fp_a=<hex> fp_b=<hex> values=<v,v,...>  (cached runs only,\n"
    "           fingerprints from analyze/sweep fp= fields; docs/DIFF.md)\n"
    "\n";

int outcome_exit_code(const std::string& outcome) {
  for (std::size_t i = 0; i < ats::gen::kRunOutcomeCount; ++i) {
    const auto o = static_cast<ats::gen::RunOutcome>(i);
    if (outcome == ats::gen::to_string(o)) return ats::gen::exit_code(o);
  }
  return ats::gen::kExitFailure;
}

int error_exit_code(const std::string& code) {
  if (code == "usage" || code == "too_large") return ats::gen::kExitUsage;
  if (code == "deadline") return ats::gen::kExitHang;
  return ats::gen::kExitFailure;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string out_path;
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsagePrefix << ats::gen::exit_code_help();
      return ats::gen::kExitOk;
    }
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      words.push_back(arg);
    }
  }
  if (socket_path.empty() || words.empty()) {
    std::cerr << kUsagePrefix << ats::gen::exit_code_help();
    return ats::gen::kExitUsage;
  }

  std::string line = words[0];
  for (std::size_t i = 1; i < words.size(); ++i) {
    line += " ";
    line += words[i];
  }

  try {
    ats::service::Client client(socket_path);
    const ats::service::Response resp = client.call(line);

    switch (resp.status) {
      case ats::service::Status::kShed:
        std::cerr << "shed: daemon saturated, retry after "
                  << resp.get("retry_after_ms", "?") << " ms (queued="
                  << resp.get("queued", "?") << ")\n";
        return ats::gen::kExitShed;
      case ats::service::Status::kError:
        std::cerr << "error (" << resp.get("code", "unknown")
                  << "): " << resp.get("msg", resp.first_line) << "\n";
        return error_exit_code(resp.get("code"));
      case ats::service::Status::kOk:
        break;
    }

    if (!resp.payload.empty()) {  // generate: the driver source
      if (out_path.empty()) {
        std::cout << resp.payload;
      } else {
        std::ofstream out(out_path);
        out << resp.payload;
        if (!out) {
          std::cerr << "error: cannot write '" << out_path << "'\n";
          return ats::gen::kExitFailure;
        }
        std::cerr << "wrote " << resp.payload.size() << " bytes to "
                  << out_path << "\n";
      }
      return ats::gen::kExitOk;
    }
    if (resp.get("op") == "diff") {  // per-value delta rows
      std::cout << "value,a_ns,b_ns,delta_ns,rel,changed,outcome_changed\n";
      for (const std::string& r : resp.rows) std::cout << r << "\n";
      std::cerr << "diff: " << resp.rows.size() << " values, "
                << resp.get("changed", "0") << " changed (max_rel="
                << resp.get("max_rel", "0") << ")\n";
      return resp.get("regressed") == "1" ? ats::gen::kExitDiffRegression
                                          : ats::gen::kExitOk;
    }
    if (!resp.rows.empty()) {  // sweep: journal-format rows
      std::cout << "fp\tindex\tvalue\tseverity_ns\tdetected\tdominant\t"
                   "total_ns\toutcome\tattempts\tnote\n";
      for (const std::string& r : resp.rows) std::cout << r << "\n";
      std::cerr << "sweep: " << resp.rows.size() << " rows, "
                << resp.get("cached", "0") << " from cache\n";
      return ats::gen::kExitOk;
    }

    std::cout << resp.first_line << "\n";
    const std::string outcome = resp.get("outcome");
    return outcome.empty() ? ats::gen::kExitOk : outcome_exit_code(outcome);
  } catch (const ats::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return ats::gen::kExitFailure;
  }
}
