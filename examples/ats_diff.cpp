// ats_diff — cross-run differential analysis (docs/DIFF.md).
//
//   $ ./ats_diff run_a.atstrace run_b.atstrace
//   $ ./ats_diff baseline.expected fresh.expected
//   $ ./ats_diff --corpus tests/golden fresh-golden --csv report.csv
//
// Compares two analysis results — given as ATS traces (analyzed on the
// fly) or as severity CSVs (e.g. checked-in goldens) — or two whole golden
// corpus directories.  Differences are thresholded by absolute + relative
// noise floors, so only semantic movement is reported: which cells moved,
// by how much, and which property the regression attributes to.  Exit code
// 9 (diff_regression) signals any above-threshold delta; byte differences
// below the floors exit 0.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "common/strutil.hpp"
#include "diff/diff.hpp"
#include "gen/registry.hpp"
#include "trace/trace_binary.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ats_diff [options] <a> <b>\n"
    "       ats_diff [options] --corpus <dir-a> <dir-b>\n"
    "\n"
    "Compares two analysis results and reports above-threshold severity\n"
    "deltas, call-path cell changes and structural-defect set changes\n"
    "(docs/DIFF.md).  <a>/<b> are ATS trace files (analyzed on the fly)\n"
    "or severity CSV files (the golden `.expected` format); --corpus\n"
    "compares two golden-corpus directories entry by entry.\n"
    "\n"
    "  --abs-floor <sec>   absolute noise floor in seconds (default 1e-9)\n"
    "  --rel-floor <frac>  relative noise floor as a fraction (default 0.02)\n"
    "  --calibrate <dir>   widen the floors from repeated-run severity CSVs\n"
    "                      in <dir> (busy-work noise calibration)\n"
    "  --csv <out>         also write the cell deltas as CSV\n"
    "  --xml <out>         also write the diff as XML\n"
    "  --help              show this message\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ats::Error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool looks_like_severity_csv(const std::string& text) {
  return ats::starts_with(text, "property,call_path,location,severity_sec");
}

/// Loads one side: severity CSV as-is, anything else as an ATS trace that
/// is analyzed on the fly.
ats::diff::Snapshot load_side(const std::string& path) {
  using namespace ats;
  const std::string text = read_file(path);
  if (looks_like_severity_csv(text)) {
    diff::Snapshot s = diff::Snapshot::from_severity_csv(text);
    s.label = path;
    return s;
  }
  const trace::LoadResult loaded = trace::load_trace_auto_file(path, {});
  if (!loaded.header_ok) {
    throw Error(path + " is neither an ATS trace nor a severity CSV");
  }
  const auto result = analyze::analyze(loaded.trace);
  diff::Snapshot s = diff::Snapshot::from_result(result, loaded.trace);
  s.label = path;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ats;
  diff::DiffOptions opt;
  bool corpus = false;
  std::string calibrate_dir;
  std::string csv_path;
  std::string xml_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage << "\n" << gen::exit_code_help();
      return gen::kExitOk;
    }
    if (arg == "--corpus") {
      corpus = true;
    } else if (arg == "--abs-floor" || arg == "--rel-floor" ||
               arg == "--calibrate" || arg == "--csv" || arg == "--xml") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n" << kUsage;
        return gen::kExitUsage;
      }
      const std::string val = argv[++i];
      try {
        if (arg == "--abs-floor") {
          opt.abs_floor_sec = std::stod(val);
        } else if (arg == "--rel-floor") {
          opt.rel_floor = std::stod(val);
        } else if (arg == "--calibrate") {
          calibrate_dir = val;
        } else if (arg == "--csv") {
          csv_path = val;
        } else {
          xml_path = val;
        }
      } catch (const std::exception&) {
        std::cerr << arg << ": bad number '" << val << "'\n";
        return gen::kExitUsage;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return gen::kExitUsage;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.size() != 2) {
    std::cerr << kUsage;
    return gen::kExitUsage;
  }
  try {
    if (!calibrate_dir.empty()) {
      // Every severity CSV in the calibration directory is one repeated
      // run of the same configuration; their spread widens the floors.
      std::vector<diff::Snapshot> repeats;
      namespace fs = std::filesystem;
      std::error_code ec;
      for (const auto& de : fs::directory_iterator(calibrate_dir, ec)) {
        if (!de.is_regular_file()) continue;
        const std::string text = read_file(de.path().string());
        if (looks_like_severity_csv(text)) {
          repeats.push_back(diff::Snapshot::from_severity_csv(text));
        }
      }
      if (ec) {
        std::cerr << "cannot read " << calibrate_dir << "\n";
        return gen::kExitFailure;
      }
      opt = diff::calibrate(repeats, opt);
      std::cout << "calibrated from " << repeats.size()
                << " runs: abs floor " << fmt_double(opt.abs_floor_sec, 9)
                << "s, rel floor " << fmt_percent(opt.rel_floor) << "\n";
    }
    if (corpus) {
      const diff::CorpusDiff cd =
          diff::diff_corpus(inputs[0], inputs[1], opt);
      std::cout << diff::render_corpus_text(cd, inputs[0], inputs[1]);
      if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
          std::cerr << "cannot open " << csv_path << " for writing\n";
          return gen::kExitFailure;
        }
        out << diff::corpus_csv(cd);
      }
      if (!xml_path.empty()) {
        std::ofstream out(xml_path);
        out << diff::corpus_xml(cd, inputs[0], inputs[1]);
      }
      return cd.clean() ? gen::kExitOk : gen::kExitDiffRegression;
    }
    const diff::Snapshot a = load_side(inputs[0]);
    const diff::Snapshot b = load_side(inputs[1]);
    const diff::DiffResult d = diff::diff_snapshots(a, b, opt);
    std::cout << diff::render_text(d, a.label, b.label);
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::cerr << "cannot open " << csv_path << " for writing\n";
        return gen::kExitFailure;
      }
      out << diff::diff_csv(d);
    }
    if (!xml_path.empty()) {
      std::ofstream out(xml_path);
      out << diff::diff_xml(d, a.label, b.label);
    }
    return d.empty() ? gen::kExitOk : gen::kExitDiffRegression;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return gen::kExitUsage;
  } catch (const Error& e) {
    std::cerr << "diff error: " << e.what() << "\n";
    return gen::kExitFailure;
  }
}
