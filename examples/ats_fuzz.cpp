// ats_fuzz — the metamorphic fuzzing harness (DESIGN.md §10).
//
// Draws deterministic random composite programs from master seeds, runs
// each through the whole pipeline (simulate on both engine backends,
// serialise, reload, analyse, optionally corrupt), and checks the oracle
// relations of src/proptest/oracle.hpp.  Any violating spec is printed —
// and, with --shrink, minimised by delta debugging — as a self-contained
// `.ats-repro` file that `ats_fuzz --replay` re-executes exactly.
//
//   ats_fuzz --seeds 1000                  # fuzz seeds 1..1000
//   ats_fuzz --seeds 500 --out failures/   # save repros for violations
//   ats_fuzz --replay failures/seed-42.ats-repro --shrink
//   ats_fuzz --seeds 200 --defect late_sender   # must report violations
//   ats_fuzz --seeds 500 --inject-collectives   # miscalled collectives:
//                                               # the checker must catch all
//
// Exit codes: 0 no violations, 1 violations found, 2 usage error.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/strutil.hpp"
#include "proptest/oracle.hpp"
#include "proptest/shrink.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ats_fuzz [options]\n"
    "\n"
    "Fuzzes the ATS pipeline with randomized composite programs and\n"
    "metamorphic / differential / invariant oracles.\n"
    "\n"
    "  --seeds N       number of master seeds to fuzz (default 100)\n"
    "  --start S       first master seed (default 1)\n"
    "  --jobs N        worker threads (default: ATS_JOBS or hardware)\n"
    "  --replay FILE   check one .ats-repro spec instead of fuzzing\n"
    "  --shrink        delta-debug violating specs to minimal repros\n"
    "  --out DIR       write .ats-repro files for violations into DIR\n"
    "  --defect PROP   disable analyzer pattern PROP (self-test: the\n"
    "                  fuzzer must then report detection violations)\n"
    "  --inject-collectives\n"
    "                  append a random collective miscall to every spec;\n"
    "                  the structural checker must report each injected\n"
    "                  defect kind (docs/DEFECTS.md)\n"
    "  --help          show this message\n"
    "\n"
    "exit status: 0 no violations, 1 violations found, 2 usage error\n";

using namespace ats;

std::uint64_t parse_count(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size() || v < 0) throw std::invalid_argument(s);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw UsageError(std::string("ats_fuzz: bad value for ") + what + ": " + s);
  }
}

analyze::PropertyId parse_property(const std::string& name) {
  // Analyzer property names contain spaces ("late sender"); accept the
  // shell-friendly underscore spelling too.
  std::string spaced = name;
  std::replace(spaced.begin(), spaced.end(), '_', ' ');
  for (const analyze::PropertyId p : analyze::property_preorder()) {
    if (spaced == analyze::property_name(p)) return p;
  }
  throw UsageError("ats_fuzz: unknown analyzer property '" + name + "'");
}

/// Shrinks `spec` under "check_spec still reports a violation".
proptest::ShrinkOutcome shrink_violation(const proptest::ProgramSpec& spec,
                                         const proptest::CheckOptions& opts) {
  return proptest::shrink_spec(spec, [&](const proptest::ProgramSpec& c) {
    try {
      return !proptest::check_spec(c, opts).ok();
    } catch (const Error&) {
      // A candidate the pipeline rejects outright (e.g. a mix member
      // dropped below its min_procs) is not a simplification.
      return false;
    }
  });
}

void print_result(const proptest::CheckResult& r) {
  std::cout << "FAIL " << r.spec.summary() << "\n";
  for (const auto& v : r.violations) std::cout << "  " << v.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 100;
  std::uint64_t start = 1;
  int jobs = 0;
  bool shrink = false;
  bool inject_collectives = false;
  std::string replay_path;
  std::string out_dir;
  proptest::CheckOptions copts;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw UsageError("ats_fuzz: " + arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else if (arg == "--seeds") {
        seeds = parse_count(value(), "--seeds");
      } else if (arg == "--start") {
        start = parse_count(value(), "--start");
      } else if (arg == "--jobs") {
        jobs = static_cast<int>(parse_count(value(), "--jobs"));
      } else if (arg == "--replay") {
        replay_path = value();
      } else if (arg == "--shrink") {
        shrink = true;
      } else if (arg == "--out") {
        out_dir = value();
      } else if (arg == "--defect") {
        copts.disabled_patterns.push_back(parse_property(value()));
      } else if (arg == "--inject-collectives") {
        inject_collectives = true;
      } else {
        throw UsageError("ats_fuzz: unknown option " + arg);
      }
    }
  } catch (const UsageError& e) {
    std::cerr << e.what() << "\n" << kUsage;
    return 2;
  }

  try {
    if (!replay_path.empty()) {
      const proptest::ProgramSpec spec =
          proptest::ProgramSpec::load_file(replay_path);
      const proptest::CheckResult r = proptest::check_spec(spec, copts);
      if (r.ok()) {
        std::cout << "ok " << spec.summary() << "\n";
        return 0;
      }
      print_result(r);
      if (shrink) {
        const proptest::ShrinkOutcome sh = shrink_violation(spec, copts);
        std::cout << "shrunk to complexity " << sh.spec.complexity() << " in "
                  << sh.evaluations << " evaluations:\n"
                  << sh.spec.str();
        if (!out_dir.empty()) {
          std::filesystem::create_directories(out_dir);
          const std::string path = out_dir + "/seed-" +
                                   std::to_string(sh.spec.seed) +
                                   ".ats-repro";
          sh.spec.save_file(path);
          std::cout << "wrote " << path << "\n";
        }
      }
      return 1;
    }

    // Fuzz mode: one slot per seed, filled in parallel, reported in order.
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<proptest::CheckResult> results(
        static_cast<std::size_t>(seeds));
    par::ThreadPool pool(jobs);
    pool.parallel_for(static_cast<std::size_t>(seeds), [&](std::size_t i) {
      const std::uint64_t seed = start + static_cast<std::uint64_t>(i);
      const proptest::ProgramSpec spec = inject_collectives
                                             ? proptest::random_defect_spec(seed)
                                             : proptest::random_spec(seed);
      results[i] = proptest::check_spec(spec, copts);
    });
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::size_t failures = 0;
    if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
    for (const proptest::CheckResult& r : results) {
      if (r.ok()) continue;
      ++failures;
      print_result(r);
      proptest::ProgramSpec repro = r.spec;
      if (shrink) {
        const proptest::ShrinkOutcome sh = shrink_violation(r.spec, copts);
        repro = sh.spec;
        std::cout << "  shrunk to complexity " << repro.complexity() << " in "
                  << sh.evaluations << " evaluations\n";
      }
      if (!out_dir.empty()) {
        const std::string path =
            out_dir + "/seed-" + std::to_string(repro.seed) + ".ats-repro";
        repro.save_file(path);
        std::cout << "  wrote " << path << "\n";
      }
    }
    std::cout << seeds << " seeds, " << failures << " violating, "
              << fmt_double(elapsed, 1) << " s ("
              << fmt_double(elapsed > 0.0
                                ? static_cast<double>(seeds) / elapsed
                                : 0.0,
                            1)
              << " seeds/s)\n";
    return failures == 0 ? 0 : 1;
  } catch (const UsageError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    std::cerr << "ats_fuzz: " << e.what() << "\n";
    return 1;
  }
}
