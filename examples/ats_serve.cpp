// ats_serve — the analysis-as-a-service daemon (docs/SERVICE.md).
//
//   ats_serve --socket /tmp/ats.sock --state-dir /var/tmp/ats
//
// Listens on a local Unix socket for analyze/sweep/generate requests
// (send them with ats_client), schedules them behind an admission
// controller with per-class concurrency limits, memoizes results in a
// crash-consistent cache, and re-admits interrupted work on restart.
// SIGINT/SIGTERM drain gracefully; SIGKILL is the tested crash case —
// restart with the same --state-dir and the daemon comes back warm.
#include <csignal>
#include <iostream>
#include <string>

#include "gen/registry.hpp"
#include "service/server.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ats_serve --socket <path> [options]\n"
    "\n"
    "  --socket <path>        Unix socket to listen on (required)\n"
    "  --state-dir <dir>      cache + in-flight journals; omit for in-memory\n"
    "  --workers <n>          worker threads (default: ATS_JOBS / cores)\n"
    "  --queue-depth <n>      admission queue bound (default 64)\n"
    "  --analyze-slots <n>    concurrent analyzes (default: workers)\n"
    "  --sweep-slots <n>      concurrent sweeps (default: workers/2)\n"
    "  --generate-slots <n>   concurrent generates (default: workers)\n"
    "  --deadline-ms <n>      default request deadline (0 = none)\n"
    "  --idle-timeout-ms <n>  close idle connections after (default 30000)\n"
    "  --max-connections <n>  concurrent clients (default 64)\n"
    "  --max-sweep-values <n> largest accepted sweep (default 512)\n"
    "  --help                 show this message\n";

ats::service::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int parse_int(const std::string& flag, const char* value) {
  try {
    return std::stoi(value);
  } catch (const std::exception&) {
    throw ats::UsageError("ats_serve: " + flag + " expects an integer, got '" +
                          value + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ats::service::ServerOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return ats::gen::kExitOk;
      }
      ats::require(i + 1 < argc, "ats_serve: " + arg + " expects a value");
      const char* v = argv[++i];
      if (arg == "--socket") {
        opt.socket_path = v;
      } else if (arg == "--state-dir") {
        opt.state_dir = v;
      } else if (arg == "--workers") {
        opt.workers = parse_int(arg, v);
      } else if (arg == "--queue-depth") {
        opt.queue_depth = parse_int(arg, v);
      } else if (arg == "--analyze-slots") {
        opt.analyze_slots = parse_int(arg, v);
      } else if (arg == "--sweep-slots") {
        opt.sweep_slots = parse_int(arg, v);
      } else if (arg == "--generate-slots") {
        opt.generate_slots = parse_int(arg, v);
      } else if (arg == "--deadline-ms") {
        opt.default_deadline = std::chrono::milliseconds(parse_int(arg, v));
      } else if (arg == "--idle-timeout-ms") {
        opt.idle_timeout = std::chrono::milliseconds(parse_int(arg, v));
      } else if (arg == "--max-connections") {
        opt.max_connections = parse_int(arg, v);
      } else if (arg == "--max-sweep-values") {
        opt.max_sweep_values = parse_int(arg, v);
      } else {
        throw ats::UsageError("ats_serve: unknown flag '" + arg + "'");
      }
    }
    ats::require(!opt.socket_path.empty(), "ats_serve: --socket is required");
  } catch (const ats::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return ats::gen::kExitUsage;
  }

  try {
    ats::service::Server server(opt);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    server.start();
    const auto cs = server.cache_stats();
    std::cerr << "ats_serve: listening on " << opt.socket_path << " ("
              << server.options().workers << " workers, cache " << cs.entries
              << " entries";
    if (server.counters().recovered > 0) {
      std::cerr << ", recovered " << server.counters().recovered
                << " interrupted request(s)";
    }
    std::cerr << ")\n";

    server.wait();
    server.stop();
    const auto c = server.counters();
    std::cerr << "ats_serve: stopped (accepted=" << c.accepted
              << " completed=" << c.completed << " shed=" << c.shed
              << " simulations=" << c.simulations << ")\n";
    g_server = nullptr;
    return ats::gen::kExitOk;
  } catch (const ats::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return ats::gen::kExitFailure;
  }
}
