// ats_validate — check a saved ATS trace file against the on-disk
// contract (docs/TRACE_FORMAT.md) and report how much of it survives a
// lenient load plus a degradation-tolerant analysis.
//
//   ats_validate [--strict] <trace-file>
//   ats_validate --golden <dir> [--regen]
//
// The --golden mode maintains the golden-trace regression corpus
// (tests/golden/): one canonical trace plus its expected severity dump per
// registry property.  Without --regen it re-simulates every property and
// compares both artifacts byte-for-byte — any drift in the simulator, the
// trace format, or the analyzer fails the check.  Backend parity makes the
// same corpus valid for the fiber and thread engines, so the CI backend
// matrix covers both.
//
// Exit codes:
//   0  the file is pristine / the golden corpus matches;
//   1  the file is damaged but recoverable, or the corpus drifted;
//   2  the file is unreadable (missing, bad header, or --strict rejected it).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analyzer/analyzer.hpp"
#include "gen/registry.hpp"
#include "report/cube_view.hpp"
#include "trace/trace_binary.hpp"
#include "trace/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ats_validate [--strict] <trace-file>\n"
    "       ats_validate --golden <dir> [--regen]\n"
    "\n"
    "Validates a serialised ATS trace against docs/TRACE_FORMAT.md; the\n"
    "text and binary (§7) containers are detected by their magic bytes.\n"
    "\n"
    "  --strict   stop at the first malformed record instead of recovering\n"
    "  --golden   check (or with --regen, rewrite) the golden-trace corpus\n"
    "  --regen    regenerate the golden corpus instead of checking it\n"
    "  --help     show this message\n"
    "\n"
    "exit status: 0 pristine/matching, 1 recovered or drifted, 2 unreadable\n";

using namespace ats;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The canonical run for one golden entry: positive parameters, default
/// cost models and engine seed, four ranks unless the property needs more.
trace::Trace golden_trace(const gen::PropertyDef& def) {
  gen::RunConfig cfg;
  cfg.nprocs = std::max(def.min_procs, 4);
  return gen::run_single_property(def, def.positive, cfg);
}

int run_golden(const std::string& dir, bool regen) {
  const auto& reg = gen::Registry::instance();
  std::size_t drifted = 0;
  if (regen) std::filesystem::create_directories(dir);
  for (const std::string& name : reg.names()) {
    const gen::PropertyDef& def = reg.find(name);
    const trace::Trace tr = golden_trace(def);
    std::ostringstream trace_os;
    tr.save(trace_os);
    const analyze::AnalysisResult result = analyze::analyze(tr);
    const std::string expected = report::severity_csv(result, tr);

    const std::string trace_path = dir + "/" + name + ".trace";
    const std::string expected_path = dir + "/" + name + ".expected";
    if (regen) {
      std::ofstream(trace_path, std::ios::binary) << trace_os.str();
      std::ofstream(expected_path, std::ios::binary) << expected;
      std::cout << "wrote " << trace_path << "\n";
      continue;
    }
    if (read_file(trace_path) != trace_os.str()) {
      std::cout << "DRIFT " << name << ": trace differs from " << trace_path
                << "\n";
      ++drifted;
    }
    if (read_file(expected_path) != expected) {
      std::cout << "DRIFT " << name << ": analysis differs from "
                << expected_path << "\n";
      ++drifted;
    }
  }
  if (!regen) {
    std::cout << reg.names().size() << " golden entries, " << drifted
              << " drifted\n";
  }
  return drifted == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool golden = false;
  bool regen = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--golden") {
      golden = true;
    } else if (arg == "--regen") {
      regen = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n" << kUsage;
      return 2;
    }
  }
  if (path.empty() || (regen && !golden)) {
    std::cerr << kUsage;
    return 2;
  }

  if (golden) {
    try {
      return run_golden(path, regen);
    } catch (const ats::Error& e) {
      std::cerr << "ats_validate: " << e.what() << "\n";
      return 2;
    }
  }

  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      std::cerr << "ats_validate: cannot open " << path << "\n";
      return 2;
    }
  }

  // The container (text, or binary per TRACE_FORMAT.md §7) is detected
  // from the magic bytes; both loaders share LoadOptions/ParseDiagnostic.
  trace::LoadOptions opt;
  opt.strict = strict;
  trace::LoadResult loaded;
  try {
    loaded = trace::load_trace_auto_file(path, opt);
  } catch (const ats::Error& e) {
    std::cerr << "ats_validate: " << e.what() << "\n";
    return 2;
  }
  if (!loaded.header_ok) {
    std::cerr << "ats_validate: " << path << " is not an ATS trace";
    if (!loaded.diagnostics.empty()) {
      std::cerr << " (" << loaded.diagnostics.front().str() << ")";
    }
    std::cerr << "\n";
    return 2;
  }

  std::cout << path << ": " << loaded.records_ok << " records ok, "
            << loaded.records_dropped << " dropped\n";
  for (const auto& d : loaded.diagnostics) {
    std::cout << "  " << d.str() << "\n";
  }
  if (loaded.records_dropped > loaded.diagnostics.size()) {
    std::cout << "  ... ("
              << (loaded.records_dropped - loaded.diagnostics.size())
              << " further diagnostics suppressed)\n";
  }

  analyze::AnalyzerOptions aopt;
  aopt.lenient = true;
  const analyze::AnalysisResult result =
      analyze::analyze(loaded.trace, aopt);
  std::cout << "\n" << report::render_data_quality(result);

  const bool pristine = loaded.ok() && result.quality.clean();
  return pristine ? 0 : 1;
}
