// ats_validate — check a saved ATS trace file against the on-disk
// contract (docs/TRACE_FORMAT.md) and report how much of it survives a
// lenient load plus a degradation-tolerant analysis.
//
//   ats_validate [--strict] <trace-file>
//   ats_validate --golden <dir> [--regen]
//
// The --golden mode maintains the golden-trace regression corpus
// (tests/golden/): one canonical trace plus its expected severity dump per
// registry property.  Without --regen it re-simulates every property and
// compares both artifacts byte-for-byte — any drift in the simulator, the
// trace format, or the analyzer fails the check.  Backend parity makes the
// same corpus valid for the fiber and thread engines, so the CI backend
// matrix covers both.
//
// The sweep also covers the defect program family (docs/DEFECTS.md): each
// entry's salvaged trace and rendered structural-defect report are pinned
// as <name>.trace / <name>.defects, and the report must cite the entry's
// declared DefectKind — a registry-level must-detect check on every run.
//
// Exit codes:
//   0  the file is pristine / the golden corpus matches;
//   1  the file is damaged but recoverable, or the corpus drifted;
//   2  the file is unreadable (missing, bad header, or --strict rejected it).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analyzer/analyzer.hpp"
#include "gen/registry.hpp"
#include "report/cube_view.hpp"
#include "trace/trace_binary.hpp"
#include "trace/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ats_validate [--strict] <trace-file>\n"
    "       ats_validate --golden <dir> [--regen]\n"
    "\n"
    "Validates a serialised ATS trace against docs/TRACE_FORMAT.md; the\n"
    "text and binary (§7) containers are detected by their magic bytes.\n"
    "\n"
    "  --strict   stop at the first malformed record instead of recovering\n"
    "  --golden   check (or with --regen, rewrite) the golden-trace corpus\n"
    "  --regen    regenerate the golden corpus instead of checking it\n"
    "  --help     show this message\n"
    "\n"
    "exit status: 0 pristine/matching, 1 recovered or drifted, 2 unreadable\n";

using namespace ats;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The canonical run for one golden entry: positive parameters, default
/// cost models and engine seed, four ranks unless the property needs more.
trace::Trace golden_trace(const gen::PropertyDef& def) {
  gen::RunConfig cfg;
  cfg.nprocs = std::max(def.min_procs, 4);
  return gen::run_single_property(def, def.positive, cfg);
}

/// One golden artifact: regenerate or compare against the pinned bytes.
void pin_or_check(const std::string& path, const std::string& bytes,
                  const std::string& name, const char* what, bool regen,
                  std::size_t& drifted) {
  if (regen) {
    std::ofstream(path, std::ios::binary) << bytes;
    std::cout << "wrote " << path << "\n";
    return;
  }
  if (read_file(path) != bytes) {
    std::cout << "DRIFT " << name << ": " << what << " differs from " << path
              << "\n";
    ++drifted;
  }
}

int run_golden(const std::string& dir, bool regen) {
  const auto& reg = gen::Registry::instance();
  std::size_t drifted = 0;
  if (regen) std::filesystem::create_directories(dir);
  for (const std::string& name : reg.names()) {
    const gen::PropertyDef& def = reg.find(name);
    const trace::Trace tr = golden_trace(def);
    std::ostringstream trace_os;
    tr.save(trace_os);
    const analyze::AnalysisResult result = analyze::analyze(tr);
    const std::string expected = report::severity_csv(result, tr);

    pin_or_check(dir + "/" + name + ".trace", trace_os.str(), name, "trace",
                 regen, drifted);
    pin_or_check(dir + "/" + name + ".expected", expected, name, "analysis",
                 regen, drifted);
  }

  // Defect program family: the run fails by design, so the salvaged trace
  // and the structural-defect report are the pinned artifacts.  The report
  // must cite the declared kind even in --regen mode: a regeneration that
  // silently pins a missed detection would defeat the sweep.
  std::size_t missed = 0;
  for (const std::string& name : reg.defect_names()) {
    const gen::PropertyDef& def = reg.find(name);
    gen::RunConfig cfg;
    cfg.nprocs = std::max(def.min_procs, 4);
    cfg.engine.virtual_time_limit = VDur::seconds(120.0);
    cfg.engine.yield_limit = 2'000'000;
    const gen::SalvagedRun run =
        gen::run_single_property_salvaged(def, def.positive, cfg);
    if (run.outcome != def.expected_outcome) {
      std::cout << "MISS " << name << ": run ended "
                << gen::to_string(run.outcome) << ", registry declares "
                << gen::to_string(def.expected_outcome) << "\n";
      ++missed;
      continue;
    }
    analyze::AnalyzerOptions aopt;
    aopt.lenient = true;  // salvaged traces end mid-operation
    const analyze::AnalysisResult result = analyze::analyze(run.trace, aopt);
    const bool found = std::any_of(
        result.defects.begin(), result.defects.end(),
        [&](const analyze::StructuralDefect& d) {
          return d.kind == *def.expected_defect;
        });
    if (!found) {
      std::cout << "MISS " << name << ": checker did not report "
                << analyze::to_string(*def.expected_defect) << " ("
                << result.defects.size() << " defects found)\n";
      ++missed;
      continue;
    }
    std::ostringstream trace_os;
    run.trace.save(trace_os);
    pin_or_check(dir + "/" + name + ".trace", trace_os.str(), name, "trace",
                 regen, drifted);
    pin_or_check(dir + "/" + name + ".defects",
                 report::render_defects(result, run.trace), name,
                 "defect report", regen, drifted);
  }

  if (!regen) {
    std::cout << reg.names().size() + reg.defect_names().size()
              << " golden entries, " << drifted << " drifted, " << missed
              << " missed detections\n";
  }
  return drifted == 0 && missed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool golden = false;
  bool regen = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--golden") {
      golden = true;
    } else if (arg == "--regen") {
      regen = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n" << kUsage;
      return 2;
    }
  }
  if (path.empty() || (regen && !golden)) {
    std::cerr << kUsage;
    return 2;
  }

  if (golden) {
    try {
      return run_golden(path, regen);
    } catch (const ats::Error& e) {
      std::cerr << "ats_validate: " << e.what() << "\n";
      return 2;
    }
  }

  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      std::cerr << "ats_validate: cannot open " << path << "\n";
      return 2;
    }
  }

  // The container (text, or binary per TRACE_FORMAT.md §7) is detected
  // from the magic bytes; both loaders share LoadOptions/ParseDiagnostic.
  trace::LoadOptions opt;
  opt.strict = strict;
  trace::LoadResult loaded;
  try {
    loaded = trace::load_trace_auto_file(path, opt);
  } catch (const ats::Error& e) {
    std::cerr << "ats_validate: " << e.what() << "\n";
    return 2;
  }
  if (!loaded.header_ok) {
    std::cerr << "ats_validate: " << path << " is not an ATS trace";
    if (!loaded.diagnostics.empty()) {
      std::cerr << " (" << loaded.diagnostics.front().str() << ")";
    }
    std::cerr << "\n";
    return 2;
  }

  std::cout << path << ": " << loaded.records_ok << " records ok, "
            << loaded.records_dropped << " dropped\n";
  for (const auto& d : loaded.diagnostics) {
    std::cout << "  " << d.str() << "\n";
  }
  if (loaded.records_dropped > loaded.diagnostics.size()) {
    std::cout << "  ... ("
              << (loaded.records_dropped - loaded.diagnostics.size())
              << " further diagnostics suppressed)\n";
  }

  analyze::AnalyzerOptions aopt;
  aopt.lenient = true;
  const analyze::AnalysisResult result =
      analyze::analyze(loaded.trace, aopt);
  std::cout << "\n" << report::render_data_quality(result);

  const bool pristine = loaded.ok() && result.quality.clean();
  return pristine ? 0 : 1;
}
