// ats_validate — check a saved ATS trace file against the on-disk
// contract (docs/TRACE_FORMAT.md) and report how much of it survives a
// lenient load plus a degradation-tolerant analysis.
//
//   ats_validate [--strict] <trace-file>
//
// Exit codes:
//   0  the file is pristine: every record parsed, the analysis saw no
//      anomalies;
//   1  the file is damaged but recoverable: diagnostics and/or data-quality
//      anomalies were reported, and the surviving events were analysed;
//   2  the file is unreadable (missing, bad header, or --strict rejected it).
#include <fstream>
#include <iostream>
#include <string>

#include "analyzer/analyzer.hpp"
#include "report/cube_view.hpp"
#include "trace/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: ats_validate [--strict] <trace-file>\n"
    "\n"
    "Validates a serialised ATS trace against docs/TRACE_FORMAT.md.\n"
    "\n"
    "  --strict   stop at the first malformed record instead of recovering\n"
    "  --help     show this message\n"
    "\n"
    "exit status: 0 pristine, 1 recovered with diagnostics, 2 unreadable\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace ats;
  bool strict = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n" << kUsage;
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "ats_validate: cannot open " << path << "\n";
    return 2;
  }

  trace::LoadOptions opt;
  opt.strict = strict;
  trace::LoadResult loaded;
  try {
    loaded = trace::load_trace(in, opt);
  } catch (const ats::Error& e) {
    std::cerr << "ats_validate: " << e.what() << "\n";
    return 2;
  }
  if (!loaded.header_ok) {
    std::cerr << "ats_validate: " << path << " is not an ATS trace";
    if (!loaded.diagnostics.empty()) {
      std::cerr << " (" << loaded.diagnostics.front().str() << ")";
    }
    std::cerr << "\n";
    return 2;
  }

  std::cout << path << ": " << loaded.records_ok << " records ok, "
            << loaded.records_dropped << " dropped\n";
  for (const auto& d : loaded.diagnostics) {
    std::cout << "  " << d.str() << "\n";
  }
  if (loaded.records_dropped > loaded.diagnostics.size()) {
    std::cout << "  ... ("
              << (loaded.records_dropped - loaded.diagnostics.size())
              << " further diagnostics suppressed)\n";
  }

  analyze::AnalyzerOptions aopt;
  aopt.lenient = true;
  const analyze::AnalysisResult result =
      analyze::analyze(loaded.trace, aopt);
  std::cout << "\n" << report::render_data_quality(result);

  const bool pristine = loaded.ok() && result.quality.clean();
  return pristine ? 0 : 1;
}
