// The Fig. 3.3 composite program: every MPI property function in sequence.
//
//   $ ./composite_all_mpi [nprocs]
//
// "This program can be used to quickly determine how many different
// performance properties can be detected by a performance tool." — §3.3.
// It runs the full MPI property catalog on one communicator, prints the
// timeline, and scores the analyzer: how many injected properties did it
// report?
#include <cstdio>
#include <iostream>
#include <set>

#include "core/composite.hpp"
#include "report/cube_view.hpp"
#include "report/timeline.hpp"

int main(int argc, char** argv) {
  using namespace ats;
  mpi::MpiRunOptions options;
  options.nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
  if (options.nprocs < 4) options.nprocs = 4;

  std::vector<std::string> order;
  auto run = mpi::run_mpi(options, [&](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    core::CompositeParams params;
    params.basework = 0.01;
    params.extrawork = 0.04;
    params.repeats = 2;
    auto names = core::run_all_mpi_properties(ctx, params, p.comm_world());
    if (p.world_rank() == 0) order = names;
  });

  std::cout << "property functions executed, in order:\n";
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1, order[i].c_str());
  }
  std::cout << "\n" << report::render_timeline(run.trace) << "\n";

  const auto result = analyze::analyze(run.trace);
  std::cout << report::render_analysis(result, run.trace);

  std::set<analyze::PropertyId> found;
  for (const auto& f : result.findings) found.insert(f.prop);
  std::printf("\nscore: the analyzer reported %zu distinct wait-state "
              "properties for %zu injected functions\n",
              found.size(), order.size());
  return 0;
}
