// gen_driver_tool — emits the C++ source of a standalone single-property
// driver (paper §3.2's generator as a build tool).
//
//   gen_driver_tool <property> <output.cpp>
//
// The examples CMakeLists uses this at build time to generate, compile and
// register `generated_late_broadcast` — proving the emitted code is a
// valid, working ATS client.
#include <fstream>
#include <iostream>

#include "gen/source_gen.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: gen_driver_tool <property> <output.cpp>\n";
    return 2;
  }
  try {
    const auto& def = ats::gen::Registry::instance().find(argv[1]);
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "cannot write " << argv[2] << "\n";
      return 1;
    }
    out << ats::gen::generate_driver_source(def);
    return 0;
  } catch (const ats::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
