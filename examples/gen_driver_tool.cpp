// gen_driver_tool — emits the C++ source of a standalone single-property
// driver (paper §3.2's generator as a build tool).
//
//   gen_driver_tool <property> <output.cpp>
//   gen_driver_tool --list
//   gen_driver_tool --describe <property>
//
// The examples CMakeLists uses this at build time to generate, compile and
// register `generated_late_broadcast` — proving the emitted code is a
// valid, working ATS client.
#include <fstream>
#include <iostream>
#include <string>

#include "gen/source_gen.hpp"

namespace {

constexpr const char* kUsage =
    "usage: gen_driver_tool <property> <output.cpp>\n"
    "       gen_driver_tool --list\n"
    "       gen_driver_tool --describe <property>\n"
    "\n"
    "Emits a standalone, compilable C++ driver for one registered property\n"
    "function (link it against ats_gen, ats_analyzer, ats_core).\n"
    "\n"
    "  --list                one-line catalog of all property functions\n"
    "  --describe <prop>     parameter table and expected property for one\n"
    "  --help                show this message\n";

void list_names(std::ostream& os) {
  for (const auto& def : ats::gen::Registry::instance().all()) {
    os << "  " << def.name << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string first = argc > 1 ? argv[1] : "";
  if (first == "--help" || first == "-h") {
    std::cout << kUsage << "\n" << ats::gen::exit_code_help();
    return ats::gen::kExitOk;
  }
  if (first == "--list") {
    std::cout << ats::gen::describe_registry();
    return ats::gen::kExitOk;
  }
  if (first == "--describe") {
    if (argc != 3) {
      std::cerr << kUsage;
      return ats::gen::kExitUsage;
    }
    try {
      std::cout << ats::gen::describe_property(
          ats::gen::Registry::instance().find(argv[2]));
      return ats::gen::kExitOk;
    } catch (const ats::UsageError& e) {
      std::cerr << "error: " << e.what() << "\nknown properties:\n";
      list_names(std::cerr);
      return ats::gen::kExitUsage;
    }
  }
  if (argc != 3 || (!first.empty() && first[0] == '-')) {
    std::cerr << kUsage;
    return ats::gen::kExitUsage;
  }
  try {
    const auto& def = ats::gen::Registry::instance().find(argv[1]);
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "cannot write " << argv[2] << "\n";
      return ats::gen::kExitFailure;
    }
    out << ats::gen::generate_driver_source(def);
    return ats::gen::kExitOk;
  } catch (const ats::UsageError& e) {
    // Unknown property name: the usage exit code, like the generated
    // drivers themselves (see gen::exit_code for the outcome classes).
    std::cerr << "error: " << e.what() << "\nknown properties:\n";
    list_names(std::cerr);
    return ats::gen::kExitUsage;
  } catch (const ats::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return ats::gen::exit_code(ats::gen::RunOutcome::kAnalysisError);
  }
}
