// grindstone — a homage to the Grindstone test suite the paper cites
// (Hollingsworth et al.): a handful of miniature programs, each with one
// classic, well-understood bottleneck, run through the automatic analyzer.
//
//   $ ./grindstone            # run all kernels
//   $ ./grindstone hotspot    # run one kernel
//
// Kernels:
//   hotspot        every rank funnels results to rank 0 (server congestion)
//   bigmessages    oversized halo messages dominate (bandwidth bound)
//   diffuse        slowly drifting load imbalance across iterations
//   pingpong       tightly coupled dependency chain between two ranks
//   serialring     token passed around a ring — total serialisation
//
// For each kernel the program prints the analyzer's findings and a short
// note on what a performance expert would expect to see.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "core/propctx.hpp"
#include "report/cube_view.hpp"
#include "report/timeline.hpp"

namespace {

using namespace ats;

struct Kernel {
  const char* name;
  const char* expectation;
  int nprocs;
  void (*body)(mpi::Proc&);
};

void hotspot(mpi::Proc& p) {
  core::PropCtx ctx = core::PropCtx::from(p);
  mpi::Comm& world = p.comm_world();
  const int rounds = 5;
  for (int i = 0; i < rounds; ++i) {
    core::do_work(ctx, 0.01);
    if (p.world_rank() == 0) {
      // The "server" consumes one message per client, in arrival order,
      // with per-message handling time: clients queue up.
      int v = 0;
      for (int c = 1; c < world.size(); ++c) {
        mpi::Status st;
        p.recv(&v, 1, mpi::Datatype::kInt32, mpi::kAnySource, 0, world,
               &st);
        core::do_work(ctx, 0.008);  // handling time per request
        p.send(&v, 1, mpi::Datatype::kInt32, st.source, 1, world);
      }
    } else {
      int v = p.world_rank();
      p.ssend(&v, 1, mpi::Datatype::kInt32, 0, 0, world);
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 1, world);
    }
  }
}

void bigmessages(mpi::Proc& p) {
  core::PropCtx ctx = core::PropCtx::from(p);
  mpi::Comm& world = p.comm_world();
  const int elems = 4 * 1024 * 1024 / 8;  // 4 MiB of doubles
  std::vector<double> out(elems, 1.0), in(elems);
  const int me = p.world_rank();
  const int np = world.size();
  for (int i = 0; i < 3; ++i) {
    core::do_work(ctx, 0.002);
    p.sendrecv(out.data(), elems, mpi::Datatype::kDouble, (me + 1) % np, 0,
               in.data(), elems, mpi::Datatype::kDouble, (me + np - 1) % np,
               0, world);
  }
}

void diffuse(mpi::Proc& p) {
  core::PropCtx ctx = core::PropCtx::from(p);
  mpi::Comm& world = p.comm_world();
  const int me = p.world_rank();
  const int np = world.size();
  for (int i = 0; i < 8; ++i) {
    // The load peak wanders across the ranks over the iterations.
    const double work = (me == i % np) ? 0.04 : 0.01;
    core::do_work(ctx, work);
    p.barrier(world);
  }
}

void pingpong(mpi::Proc& p) {
  core::PropCtx ctx = core::PropCtx::from(p);
  mpi::Comm& world = p.comm_world();
  if (p.world_rank() > 1) {
    // Spectators idle in a final barrier — also a diagnosable smell.
    p.barrier(world);
    return;
  }
  int v = 0;
  for (int i = 0; i < 20; ++i) {
    if (p.world_rank() == 0) {
      core::do_work(ctx, 0.004);
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, world);
      p.recv(&v, 1, mpi::Datatype::kInt32, 1, 0, world);
    } else {
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, world);
      core::do_work(ctx, 0.004);
      p.send(&v, 1, mpi::Datatype::kInt32, 0, 0, world);
    }
  }
  p.barrier(world);
}

void serialring(mpi::Proc& p) {
  // A token makes two laps around the ring; only the holder computes.
  // The visit sequence is 0, 1, ..., np-1, 0, 1, ..., np-1 (ends at the
  // last rank), so rank 0 holds the token twice, the last rank twice (no
  // forward on the final visit) and everyone else twice as well.
  core::PropCtx ctx = core::PropCtx::from(p);
  mpi::Comm& world = p.comm_world();
  const int me = p.world_rank();
  const int np = world.size();
  const int next = (me + 1) % np;
  const int prev = (me + np - 1) % np;
  int token = 0;
  auto hold_and_forward = [&](bool forward) {
    core::do_work(ctx, 0.01);
    if (forward) p.send(&token, 1, mpi::Datatype::kInt32, next, 0, world);
  };
  if (me == 0) {
    hold_and_forward(true);                                   // visit 1
    p.recv(&token, 1, mpi::Datatype::kInt32, prev, 0, world);
    hold_and_forward(true);                                   // visit 2
  } else {
    p.recv(&token, 1, mpi::Datatype::kInt32, prev, 0, world);
    hold_and_forward(true);                                   // visit 1
    p.recv(&token, 1, mpi::Datatype::kInt32, prev, 0, world);
    hold_and_forward(me != np - 1);                           // visit 2
  }
}

constexpr Kernel kKernels[] = {
    {"hotspot",
     "late receiver / late sender around the rank-0 server; clients "
     "serialised",
     8, &hotspot},
    {"bigmessages",
     "large MPI share dominated by transfer time (bandwidth bound)", 4,
     &bigmessages},
    {"diffuse",
     "wait at barrier spread over all ranks (the peak keeps moving)", 4,
     &diffuse},
    {"pingpong",
     "late sender on both partners (dependency chain) plus idle spectators",
     4, &pingpong},
    {"serialring",
     "late sender everywhere: only one rank computes at a time", 6,
     &serialring},
};

int run_kernel(const Kernel& k) {
  std::printf("\n=== grindstone kernel '%s' (np=%d) ===\n", k.name,
              k.nprocs);
  std::printf("expected: %s\n\n", k.expectation);
  mpi::MpiRunOptions options;
  options.nprocs = k.nprocs;
  auto run = mpi::run_mpi(options, [&](mpi::Proc& p) { k.body(p); });
  report::TimelineOptions topt;
  topt.width = 80;
  topt.legend = false;
  std::cout << report::render_timeline(run.trace, topt) << "\n";
  const auto result = analyze::analyze(run.trace);
  std::cout << report::render_findings(result, run.trace);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool any = false;
  for (const Kernel& k : kKernels) {
    if (argc > 1 && std::strcmp(argv[1], k.name) != 0) continue;
    run_kernel(k);
    any = true;
  }
  if (!any) {
    std::fprintf(stderr, "unknown kernel '%s'\n", argv[1]);
    return 2;
  }
  return 0;
}
