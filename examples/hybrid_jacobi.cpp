// A "real-world-style" application on the simulated stack (paper Ch. 4):
// 1-D Jacobi heat diffusion with MPI halo exchange and OpenMP-parallel
// inner loops, in two flavours:
//
//   $ ./hybrid_jacobi tuned       # balanced decomposition  -> no findings
//   $ ./hybrid_jacobi broken      # skewed decomposition    -> wait states
//
// This is the suite's applicability demonstration: the same analyzer that
// scores the synthetic property functions diagnoses a miniature
// application, and stays quiet when the application is well tuned
// (negative correctness on something that is not a hand-built test case).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <numeric>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "core/propctx.hpp"
#include "report/cube_view.hpp"
#include "report/timeline.hpp"

namespace {

constexpr int kIterations = 6;
constexpr int kCellsPerRankBase = 4000;
constexpr double kSecondsPerCell = 2.5e-6;  // virtual compute cost per cell

void jacobi(ats::mpi::Proc& p, bool skewed, int nthreads) {
  using namespace ats;
  omp::Runtime omp_rt(p.world().trace());
  core::PropCtx ctx = core::PropCtx::from(p, &omp_rt);
  mpi::Comm& world = p.comm_world();
  const int me = p.world_rank();
  const int np = world.size();

  // Domain decomposition: balanced, or linearly skewed (rank np-1 gets
  // about twice the cells of rank 0 — a classic partitioning bug).
  int my_cells = kCellsPerRankBase;
  if (skewed) {
    const double factor =
        np > 1 ? 0.6 + 0.9 * me / static_cast<double>(np - 1) : 1.0;
    my_cells = static_cast<int>(kCellsPerRankBase * factor);
  }

  std::vector<double> grid(static_cast<std::size_t>(my_cells) + 2, 0.0);
  std::vector<double> next(grid.size(), 0.0);
  if (me == 0) grid.front() = 100.0;          // hot boundary
  if (me == np - 1) grid.back() = -100.0;     // cold boundary

  for (int it = 0; it < kIterations; ++it) {
    // Halo exchange with both neighbours.
    double from_left = grid.front(), from_right = grid.back();
    if (me > 0) {
      p.sendrecv(&grid[1], 1, mpi::Datatype::kDouble, me - 1, 0, &from_left,
                 1, mpi::Datatype::kDouble, me - 1, 1, world);
    }
    if (me < np - 1) {
      p.sendrecv(&grid[static_cast<std::size_t>(my_cells)], 1,
                 mpi::Datatype::kDouble, me + 1, 1, &from_right, 1,
                 mpi::Datatype::kDouble, me + 1, 0, world);
    }
    grid.front() = from_left;
    grid.back() = from_right;

    // OpenMP-parallel sweep: each thread updates a block of cells and pays
    // virtual compute time for it.
    omp::parallel(p.sim(), omp_rt, nthreads, [&](omp::OmpCtx& o) {
      o.for_static(my_cells, 0, [&](std::int64_t i) {
        const std::size_t c = static_cast<std::size_t>(i) + 1;
        next[c] = 0.5 * (grid[c - 1] + grid[c + 1]);
      });
      // Account the sweep's compute cost once per thread (bulk-synchronous).
      const std::int64_t mine =
          my_cells / nthreads + (o.thread_num() < my_cells % nthreads ? 1 : 0);
      core::do_work(o.sim(), *ctx.trace, ctx.work,
                    static_cast<double>(mine) * kSecondsPerCell);
    }, "jacobi_sweep");
    std::swap(grid, next);

    // Global residual (allreduce) — where a skewed decomposition shows up
    // as Wait at NxN.
    double local = std::accumulate(grid.begin(), grid.end(), 0.0);
    double global = 0.0;
    p.allreduce(&local, &global, 1, mpi::Datatype::kDouble,
                mpi::ReduceOp::kSum, world);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ats;
  const bool skewed = argc > 1 && std::strcmp(argv[1], "broken") == 0;
  const int nprocs = argc > 2 ? std::atoi(argv[2]) : 8;
  const int nthreads = 4;

  mpi::MpiRunOptions options;
  options.nprocs = nprocs;
  auto run = mpi::run_mpi(
      options, [&](mpi::Proc& p) { jacobi(p, skewed, nthreads); });

  std::printf("hybrid jacobi (%s, %d ranks x %d threads, %d iterations)\n\n",
              skewed ? "broken decomposition" : "tuned", nprocs, nthreads,
              kIterations);
  std::cout << report::render_timeline(run.trace) << "\n";
  const auto result = analyze::analyze(run.trace);
  std::cout << report::render_findings(result, run.trace) << "\n";
  const auto dom = result.dominant();
  if (skewed) {
    std::printf("verdict: %s\n",
                dom ? "imbalance diagnosed (as injected)"
                    : "MISSED the injected imbalance!");
    return dom ? 0 : 1;
  }
  std::printf("verdict: %s\n", dom ? "FALSE POSITIVE on tuned run!"
                                   : "tuned run is clean, as expected");
  return dom ? 1 : 0;
}
