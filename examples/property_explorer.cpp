// property_explorer — the generated single-property test-program driver
// (paper §3.2) as an interactive CLI.
//
//   property_explorer list
//   property_explorer describe late_broadcast
//   property_explorer run late_broadcast np=8 root=2 extrawork=0.1
//   property_explorer gen late_broadcast        # emit driver C++ source
//
// `run` executes the property as a complete simulated MPI program, prints
// the timeline, the analyzer's findings, and whether the expected property
// was detected — a one-command positive-correctness check.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/strutil.hpp"
#include "gen/experiment.hpp"
#include "gen/registry.hpp"
#include "gen/source_gen.hpp"
#include "report/cube_view.hpp"
#include "report/timeline.hpp"

namespace {

int usage() {
  std::cout <<
      "usage:\n"
      "  property_explorer list\n"
      "  property_explorer describe <property>\n"
      "  property_explorer run <property> [np=N] [key=value ...]\n"
      "  property_explorer gen <property>\n"
      "  property_explorer gen-all <directory>\n"
      "  property_explorer sweep <property> axis=<param> values=v1;v2;...\n"
      "                          [csv=1] [np=N] [key=value ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ats;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto& registry = gen::Registry::instance();

  try {
    if (cmd == "list") {
      for (const auto& def : registry.all()) {
        std::printf("%-32s [%s]  %s\n", def.name.c_str(),
                    gen::to_string(def.paradigm), def.brief.c_str());
      }
      return 0;
    }
    if (argc < 3) return usage();
    if (cmd == "gen-all") {
      // Emit one driver source per property function (paper §3.2's
      // generator applied to the whole catalog).
      const std::string dir = argv[2];
      for (const auto& d : registry.all()) {
        const std::string path = dir + "/" + d.name + "_driver.cpp";
        std::ofstream out(path);
        if (!out) {
          std::cerr << "cannot write " << path << "\n";
          return 1;
        }
        out << gen::generate_driver_source(d);
        std::cout << "wrote " << path << "\n";
      }
      return 0;
    }
    const gen::PropertyDef& def = registry.find(argv[2]);

    if (cmd == "describe") {
      std::cout << gen::describe_property(def);
      return 0;
    }
    if (cmd == "gen") {
      std::cout << gen::generate_driver_source(def);
      return 0;
    }
    if (cmd == "run") {
      std::vector<std::string> args(argv + 3, argv + argc);
      gen::ParamMap pm = gen::ParamMap::parse(args);
      gen::RunConfig cfg;
      cfg.nprocs = pm.get_int("np", std::max(def.min_procs, 4));
      gen::ParamMap prop_params;
      for (const std::string& k : pm.keys()) {
        if (k != "np") prop_params.set(k, pm.get_raw(k, ""));
      }
      const trace::Trace tr =
          gen::run_single_property(def, prop_params, cfg);
      std::cout << report::render_timeline(tr) << "\n";
      const auto result = analyze::analyze(tr);
      std::cout << report::render_findings(result, tr) << "\n";
      const auto dom = result.dominant();
      if (def.expected.has_value()) {
        const bool hit = dom && dom->prop == *def.expected;
        std::printf("expected property: %s — %s\n",
                    analyze::property_name(*def.expected),
                    hit ? "DETECTED" : "NOT DETECTED");
        return hit ? 0 : 1;
      }
      std::printf("negative test — %s\n",
                  dom ? "unexpected finding!" : "no findings, as intended");
      return dom ? 1 : 0;
    }
    if (cmd == "sweep") {
      std::vector<std::string> args(argv + 3, argv + argc);
      gen::ParamMap pm = gen::ParamMap::parse(args);
      gen::ExperimentPlan plan;
      plan.property = def.name;
      plan.axis.param = pm.get_raw("axis", "");
      for (const std::string& v :
           ats::split(pm.get_raw("values", ""), ';')) {
        if (!v.empty()) plan.axis.values.push_back(v);
      }
      plan.config.nprocs = pm.get_int("np", std::max(def.min_procs, 4));
      const bool csv = pm.get_int("csv", 0) != 0;
      for (const std::string& k : pm.keys()) {
        if (k != "axis" && k != "values" && k != "np" && k != "csv") {
          plan.base.set(k, pm.get_raw(k, ""));
        }
      }
      const auto rows = gen::run_experiment(plan);
      std::cout << (csv ? gen::experiment_csv(plan, rows)
                        : gen::experiment_table(plan, rows));
      return 0;
    }
    return usage();
  } catch (const ats::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
