// Quickstart: inject one performance property, look at the timeline, let
// the automatic analyzer find it.
//
//   $ ./quickstart [--format=text|binary]
//
// Runs the paper's late_sender property function on 4 simulated MPI ranks,
// renders the Vampir-style ASCII timeline, runs the EXPERT-style analyzer,
// and prints the ranked findings.  Also saves the trace to
// quickstart.atstrace so other tools (see trace_analyze) can consume it —
// in the text container by default, or the packed binary container
// (docs/TRACE_FORMAT.md §7) with --format=binary.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analyzer/analyzer.hpp"
#include "core/properties.hpp"
#include "mpisim/world.hpp"
#include "report/cube_view.hpp"
#include "report/timeline.hpp"

int main(int argc, char** argv) {
  using namespace ats;

  bool binary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format=binary") {
      binary = true;
    } else if (arg != "--format=text") {
      std::cerr << "usage: quickstart [--format=text|binary]\n";
      return 2;
    }
  }

  // 1. Run a synthetic test program: every iteration, the even ranks
  //    compute 30ms longer than the odd ranks, then each pair exchanges a
  //    message — the receivers demonstrably wait ("late sender").
  mpi::MpiRunOptions options;
  options.nprocs = 4;
  auto run = mpi::run_mpi(options, [](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    core::late_sender(ctx, /*basework=*/0.01, /*extrawork=*/0.03,
                      /*r=*/3, p.comm_world());
  });

  // 2. Look at the timeline (the paper's Fig. 3.2 view).
  std::cout << "== timeline ==\n"
            << report::render_timeline(run.trace) << "\n";

  // 3. Automatic analysis: the tool under test.
  const analyze::AnalysisResult result = analyze::analyze(run.trace);
  std::cout << report::render_analysis(result, run.trace);

  // 4. Persist the trace for out-of-process tools (trace_analyze and
  //    ats_validate detect either container from the magic bytes).
  const char* path = binary ? "quickstart.atsbin" : "quickstart.atstrace";
  std::ofstream out(path, std::ios::binary);
  if (binary) {
    run.trace.save_binary(out);
  } else {
    run.trace.save(out);
  }
  std::cout << "\ntrace written to " << path << " ("
            << (binary ? "binary" : "text") << ", "
            << run.trace.event_count() << " events)\n";
  return 0;
}
