// The Figs. 3.4/3.5 composite program: two communicators running different
// property sets concurrently.
//
//   $ ./split_communicators [nprocs]
//
// The lower half of MPI_COMM_WORLD runs {late_sender,
// imbalance_at_mpi_barrier, early_reduce}; the upper half concurrently runs
// {late_broadcast (local root 1), imbalance_at_mpi_alltoall,
// late_receiver}.  The analyzer output reproduces the paper's EXPERT
// screenshot: Late Broadcast localised at the MPI_Bcast inside
// late_broadcast, on the upper communicator's non-root ranks.
#include <cstdio>
#include <iostream>

#include "core/composite.hpp"
#include "report/cube_view.hpp"
#include "report/timeline.hpp"

int main(int argc, char** argv) {
  using namespace ats;
  mpi::MpiRunOptions options;
  options.nprocs = argc > 1 ? std::atoi(argv[1]) : 16;
  if (options.nprocs < 4) options.nprocs = 4;

  auto run = mpi::run_mpi(options, [](mpi::Proc& p) {
    core::PropCtx ctx = core::PropCtx::from(p);
    core::CompositeParams params;
    params.basework = 0.01;
    params.extrawork = 0.04;
    params.repeats = 2;
    core::run_split_communicator_program(ctx, params);
  });

  std::cout << report::render_timeline(run.trace) << "\n";
  const auto result = analyze::analyze(run.trace);
  std::cout << report::render_analysis(result, run.trace);

  // Verify the paper's localisation claim explicitly.
  const auto nodes =
      result.cube.nodes_of(analyze::PropertyId::kLateBroadcast);
  for (auto n : nodes) {
    std::printf("late broadcast severity at '%s': %s\n",
                result.profile.path_string(n, run.trace).c_str(),
                result.cube.node_total(analyze::PropertyId::kLateBroadcast,
                                       n)
                    .str()
                    .c_str());
  }
  return 0;
}
