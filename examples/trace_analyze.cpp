// trace_analyze — standalone analysis of a saved ATS trace file.
//
//   $ ./quickstart                       # writes quickstart.atstrace
//   $ ./trace_analyze quickstart.atstrace
//
// Demonstrates the decoupling a real tool chain has (trace file -> offline
// analyzer): the analyzer consumes only the serialised events, proving the
// detection logic needs no access to the generating program.
#include <fstream>
#include <iostream>

#include "analyzer/analyzer.hpp"
#include "report/cube_view.hpp"
#include "report/cube_xml.hpp"
#include "report/timeline.hpp"

int main(int argc, char** argv) {
  using namespace ats;
  if (argc < 2) {
    std::cerr << "usage: trace_analyze <trace-file> [--xml <out.cube.xml>]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 1;
  }
  try {
    const trace::Trace tr = trace::Trace::load(in);
    std::cout << "loaded " << tr.event_count() << " events over "
              << tr.location_count() << " locations\n\n";
    std::cout << report::render_timeline(tr) << "\n";
    std::cout << report::render_location_summary(tr) << "\n";
    const auto result = analyze::analyze(tr);
    std::cout << report::render_analysis(result, tr);
    std::cout << "\n" << report::render_profile(result, tr);
    if (argc >= 4 && std::string(argv[2]) == "--xml") {
      std::ofstream xml(argv[3]);
      report::write_cube_xml(xml, result, tr);
      std::cout << "\ncube written to " << argv[3] << "\n";
    }
  } catch (const ats::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
