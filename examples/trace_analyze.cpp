// trace_analyze — standalone analysis of a saved ATS trace file.
//
//   $ ./quickstart                       # writes quickstart.atstrace
//   $ ./trace_analyze quickstart.atstrace
//
// Demonstrates the decoupling a real tool chain has (trace file -> offline
// analyzer): the analyzer consumes only the serialised events, proving the
// detection logic needs no access to the generating program.
#include <fstream>
#include <iostream>
#include <string>

#include "analyzer/analyzer.hpp"
#include "gen/registry.hpp"
#include "report/cube_view.hpp"
#include "report/cube_xml.hpp"
#include "report/timeline.hpp"
#include "trace/trace_binary.hpp"
#include "trace/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: trace_analyze [options] <trace-file>\n"
    "\n"
    "Replays a serialised ATS trace (docs/TRACE_FORMAT.md) through the\n"
    "EXPERT-style analyzer and prints the property/finding report.  The\n"
    "container (text, or binary per §7) is detected from the magic bytes.\n"
    "\n"
    "  --lenient          recover from malformed records and degraded data\n"
    "                     (prints parse diagnostics and the data-quality\n"
    "                     pane) instead of stopping at the first error\n"
    "  --xml <out.xml>    also write the severity cube as CUBE-like XML\n"
    "  --defects-csv <out>\n"
    "                     write structural collective defects as CSV\n"
    "                     (docs/DEFECTS.md); one row per defect and rank\n"
    "  --no-collectives   skip the collective-correctness checker\n"
    "  --convert <out>    re-serialise the loaded trace to <out> and exit\n"
    "                     (no analysis); combine with --format\n"
    "  --format <f>       output container for --convert: text | binary\n"
    "                     (default: text)\n"
    "  --help             show this message\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace ats;
  bool lenient = false;
  bool check_collectives = true;
  std::string path;
  std::string xml_path;
  std::string defects_csv_path;
  std::string convert_path;
  std::string format = "text";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage << "\n" << ats::gen::exit_code_help();
      return ats::gen::kExitOk;
    }
    if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--xml") {
      if (i + 1 >= argc) {
        std::cerr << "--xml needs an output file\n" << kUsage;
        return gen::kExitUsage;
      }
      xml_path = argv[++i];
    } else if (arg == "--defects-csv") {
      if (i + 1 >= argc) {
        std::cerr << "--defects-csv needs an output file\n" << kUsage;
        return gen::kExitUsage;
      }
      defects_csv_path = argv[++i];
    } else if (arg == "--no-collectives") {
      check_collectives = false;
    } else if (arg == "--convert") {
      if (i + 1 >= argc) {
        std::cerr << "--convert needs an output file\n" << kUsage;
        return gen::kExitUsage;
      }
      convert_path = argv[++i];
    } else if (arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "--format needs text or binary\n" << kUsage;
        return gen::kExitUsage;
      }
      format = argv[++i];
      if (format != "text" && format != "binary") {
        std::cerr << "--format must be text or binary, got '" << format
                  << "'\n";
        return gen::kExitUsage;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n" << kUsage;
      return gen::kExitUsage;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n" << kUsage;
      return gen::kExitUsage;
    }
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return gen::kExitUsage;
  }
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      std::cerr << "cannot open " << path << "\n";
      return gen::kExitFailure;
    }
  }
  try {
    trace::LoadOptions opt;
    opt.strict = !lenient;
    const trace::LoadResult loaded = trace::load_trace_auto_file(path, opt);
    if (!loaded.header_ok) {
      std::cerr << "error: " << path << " is not an ATS trace\n";
      return gen::kExitFailure;
    }
    for (const auto& d : loaded.diagnostics) {
      std::cerr << d.str() << "\n";
    }
    const trace::Trace& tr = loaded.trace;
    if (!convert_path.empty()) {
      std::ofstream out(convert_path, std::ios::binary);
      if (!out) {
        std::cerr << "cannot open " << convert_path << " for writing\n";
        return gen::kExitFailure;
      }
      if (format == "binary") {
        tr.save_binary(out);
      } else {
        tr.save(out);
      }
      std::cout << "converted " << path << " -> " << convert_path << " ("
                << format << ", " << tr.event_count() << " events)\n";
      return gen::kExitOk;
    }
    std::cout << "loaded " << tr.event_count() << " events over "
              << tr.location_count() << " locations";
    if (loaded.records_dropped > 0) {
      std::cout << " (" << loaded.records_dropped << " records dropped)";
    }
    std::cout << "\n\n";
    std::cout << report::render_timeline(tr) << "\n";
    std::cout << report::render_location_summary(tr) << "\n";
    analyze::AnalyzerOptions aopt;
    aopt.lenient = lenient;
    aopt.check_collectives = check_collectives;
    const auto result = analyze::analyze(tr, aopt);
    std::cout << report::render_analysis(result, tr);
    std::cout << "\n" << report::render_profile(result, tr);
    if (!xml_path.empty()) {
      std::ofstream xml(xml_path);
      report::write_cube_xml(xml, result, tr);
      std::cout << "\ncube written to " << xml_path << "\n";
    }
    if (!defects_csv_path.empty()) {
      std::ofstream csv(defects_csv_path);
      if (!csv) {
        std::cerr << "cannot open " << defects_csv_path << " for writing\n";
        return gen::kExitFailure;
      }
      csv << report::defect_csv(result, tr);
      std::cout << "\ndefect CSV written to " << defects_csv_path << "\n";
    }
    if (!result.defects.empty()) {
      // Structural collective defects are a distinct failure class from a
      // degraded analysis: the tool ran fine, the *program* is broken.
      return gen::kExitDefectsFound;
    }
  } catch (const ats::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return gen::kExitUsage;
  } catch (const ats::Error& e) {
    // Load or analysis failure on an otherwise valid invocation: the
    // outcome-class exit code shared with the generated drivers.
    std::cerr << "analysis error: " << e.what() << "\n";
    return gen::exit_code(gen::RunOutcome::kAnalysisError);
  }
  return gen::kExitOk;
}
