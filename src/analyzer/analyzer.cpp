#include "analyzer/analyzer.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strutil.hpp"

namespace ats::analyze {

bool AnalyzerOptions::is_disabled(PropertyId p) const {
  return std::find(disabled_patterns.begin(), disabled_patterns.end(), p) !=
         disabled_patterns.end();
}

std::bitset<kPropertyCount> AnalyzerOptions::disabled_mask() const {
  std::bitset<kPropertyCount> mask;
  for (PropertyId p : disabled_patterns) {
    mask.set(static_cast<std::size_t>(p));
  }
  return mask;
}

// ------------------------------------------------------------ SeverityCube

SeverityCube::SeverityCube(std::size_t nlocs)
    : nlocs_(nlocs), cells_(kPropertyCount), index_(kPropertyCount) {}

const SeverityCube::Cell* SeverityCube::find_cell(PropertyId p,
                                                  NodeId n) const {
  const auto& idx = index_[static_cast<std::size_t>(p)];
  const auto it = idx.find(n);
  if (it == idx.end()) return nullptr;
  return &cells_[static_cast<std::size_t>(p)][it->second];
}

void SeverityCube::add(PropertyId p, NodeId n, trace::LocId loc, VDur d) {
  if (d <= VDur::zero()) return;
  auto& list = cells_[static_cast<std::size_t>(p)];
  auto& idx = index_[static_cast<std::size_t>(p)];
  const auto [it, inserted] =
      idx.emplace(n, static_cast<std::uint32_t>(list.size()));
  if (!inserted) {
    list[it->second].per_loc[static_cast<std::size_t>(loc)] += d;
    return;
  }
  Cell cell;
  cell.node = n;
  cell.per_loc.assign(nlocs_, VDur::zero());
  cell.per_loc[static_cast<std::size_t>(loc)] = d;
  list.push_back(std::move(cell));
}

VDur SeverityCube::at(PropertyId p, NodeId n, trace::LocId loc) const {
  const Cell* cell = find_cell(p, n);
  return cell ? cell->per_loc[static_cast<std::size_t>(loc)] : VDur::zero();
}

VDur SeverityCube::node_total(PropertyId p, NodeId n) const {
  const Cell* cell = find_cell(p, n);
  VDur sum = VDur::zero();
  if (cell) {
    for (const auto& d : cell->per_loc) sum += d;
  }
  return sum;
}

VDur SeverityCube::total(PropertyId p) const {
  VDur sum = VDur::zero();
  for (const auto& cell : cells_[static_cast<std::size_t>(p)]) {
    for (const auto& d : cell.per_loc) sum += d;
  }
  return sum;
}

VDur SeverityCube::subtree_total(PropertyId p) const {
  VDur sum = total(p);
  for (PropertyId c : property_children(p)) sum += subtree_total(c);
  return sum;
}

std::vector<NodeId> SeverityCube::nodes_of(PropertyId p) const {
  std::vector<NodeId> out;
  for (const auto& cell : cells_[static_cast<std::size_t>(p)]) {
    out.push_back(cell.node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VDur> SeverityCube::locations_of(PropertyId p, NodeId n) const {
  const Cell* cell = find_cell(p, n);
  if (cell) return cell->per_loc;
  return std::vector<VDur>(nlocs_, VDur::zero());
}

void SeverityCube::for_each(
    const std::function<void(PropertyId, NodeId, trace::LocId, VDur)>& fn)
    const {
  for (PropertyId p : property_preorder()) {
    std::vector<NodeId> order;
    for (const auto& cell : cells_[static_cast<std::size_t>(p)]) {
      order.push_back(cell.node);
    }
    std::sort(order.begin(), order.end());
    for (NodeId n : order) {
      const Cell* cell = find_cell(p, n);
      for (std::size_t l = 0; l < cell->per_loc.size(); ++l) {
        if (cell->per_loc[l] <= VDur::zero()) continue;
        fn(p, n, static_cast<trace::LocId>(l), cell->per_loc[l]);
      }
    }
  }
}

// -------------------------------------------------------------- DataQuality

bool DataQuality::clean() const {
  return events_dropped == 0 && events_repaired == 0 &&
         unbalanced_exits == 0 && unmatched_sends == 0 &&
         unmatched_recvs == 0 && incomplete_collectives == 0 &&
         negative_waits_clamped == 0 && skewed_messages == 0 &&
         unsorted_locations == 0 && !clock_skew_detected;
}

// ----------------------------------------------------------- AnalysisResult

std::optional<Finding> AnalysisResult::dominant(bool include_overhead) const {
  for (const Finding& f : findings) {
    if (!include_overhead && property_info(f.prop).is_overhead) continue;
    return f;
  }
  return std::nullopt;
}

double AnalysisResult::severity_fraction(PropertyId p) const {
  if (total_time <= VDur::zero()) return 0.0;
  return cube.subtree_total(p) / total_time;
}

// ----------------------------------------------------------------- replay

namespace {

struct StackEntry {
  NodeId node;
  VTime enter;
  trace::RegionId region;
};

struct SendRec {
  VTime t;
};

/// A receive completion seen before its send record (possible at equal
/// timestamps when the receiver's location id sorts first).
struct OrphanRecv {
  VTime t;
  VTime recv_enter;
  NodeId recv_node;
  trace::LocId loc;
};

struct SendInterval {
  VTime enter;   // send event time (after the send overhead)
  VTime exit;    // region exit
  NodeId node;
  bool closed = false;
};

struct LrCandidate {
  trace::LocId send_loc;
  VTime send_t;
  VTime recv_enter;
};

struct CollRec {
  trace::LocId loc;
  VTime enter;
  VTime exit;
  NodeId node;
  trace::RegionKind encl_kind;
  std::string encl_name;
};

/// 128-bit packed hash key for the replay's hot lookup tables (message
/// matching, collective grouping).  Replaces tuple-keyed std::maps: the
/// replay performs one lookup per send/recv/coll event, and the red-black
/// tree walk plus tuple comparisons dominated the replay profile.
struct Key128 {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const Key128&) const = default;
};

/// (comm, src, dst, tag) — the message-matching key.
Key128 msg_key(std::int32_t comm, std::int32_t src, std::int32_t dst,
               std::int32_t tag) {
  Key128 k;
  k.a = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm)) << 32) |
        static_cast<std::uint32_t>(src);
  k.b = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32) |
        static_cast<std::uint32_t>(tag);
  return k;
}

/// A (comm, x) pair key: collective grouping (x = seq) and the pending-send
/// set (x = destination loc).
Key128 pair_key(std::int32_t comm, std::int64_t x) {
  Key128 k;
  k.a = static_cast<std::uint32_t>(comm);
  k.b = static_cast<std::uint64_t>(x);
  return k;
}

struct Key128Hash {
  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finaliser
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }
  std::size_t operator()(const Key128& k) const {
    return static_cast<std::size_t>(mix(k.a ^ mix(k.b)));
  }
};

/// True for kinds counted as "MPI time".
bool is_mpi_kind(trace::RegionKind k) {
  return k == trace::RegionKind::kMpiP2P ||
         k == trace::RegionKind::kMpiColl ||
         k == trace::RegionKind::kMpiOther;
}

bool is_omp_kind(trace::RegionKind k) {
  return k == trace::RegionKind::kOmpParallel ||
         k == trace::RegionKind::kOmpWork ||
         k == trace::RegionKind::kOmpSync;
}

class Replay {
 public:
  Replay(const trace::Trace& trace, const AnalyzerOptions& options)
      : trace_(trace),
        options_(options),
        disabled_(options.disabled_mask()),
        nlocs_(trace.location_count()),
        profile_(nlocs_),
        cube_(nlocs_),
        stacks_(nlocs_),
        send_intervals_(nlocs_),
        first_(nlocs_, VTime::max()),
        last_(nlocs_, VTime::zero()),
        seen_(nlocs_, false) {
    // Pre-size the hot tables; distinct keys scale with location pairs,
    // not with events.
    sends_.reserve(nlocs_ * 4);
    orphans_.reserve(nlocs_);
    pending_to_.reserve(nlocs_ * 2);
    colls_.reserve(nlocs_);
    if (options.check_collectives) checker_.emplace(trace);
  }

  AnalysisResult run();

 private:
  NodeId current_node(trace::LocId loc) const {
    const auto& st = stacks_[static_cast<std::size_t>(loc)];
    return st.empty() ? kRootNode : st.back().node;
  }

  /// Wait-state severity attribution, honouring fault-injected pattern
  /// deactivation (AnalyzerOptions::disabled_patterns).
  void add_wait(PropertyId p, NodeId n, trace::LocId loc, VDur d) {
    if (disabled_[static_cast<std::size_t>(p)]) return;
    cube_.add(p, n, loc, d);
  }

  /// non_negative() that books every clamp in the DataQuality summary: a
  /// negative wait interval can only come from skewed or jittered clocks.
  VDur clamp_wait(VDur d) {
    if (d.is_negative()) {
      ++quality_.negative_waits_clamped;
      return VDur::zero();
    }
    return d;
  }

  bool valid_region(trace::RegionId r) const {
    return r >= 0 && static_cast<std::size_t>(r) < trace_.regions().size();
  }

  bool valid_comm(trace::CommId c) const {
    return c >= 0 && static_cast<std::size_t>(c) < trace_.comm_count();
  }

  void drop_event() { ++quality_.events_dropped; }

  void on_enter(const trace::Event& e);
  void on_exit(const trace::Event& e);
  void on_send(const trace::Event& e);
  void on_recv(const trace::Event& e);
  void on_coll_begin(const trace::Event& e);
  void on_coll_end(const trace::Event& e);
  void on_lock_acquire(const trace::Event& e);
  void finish_open_regions();
  void late_receiver_pass();
  void classify_structural();
  void idle_threads_pass();
  void rank_findings(AnalysisResult& result) const;
  void process_coll_group(trace::CollOp op, std::int32_t root_loc,
                          const std::vector<CollRec>& recs);

  const trace::Trace& trace_;
  AnalyzerOptions options_;
  std::bitset<kPropertyCount> disabled_;
  std::size_t nlocs_;
  CallPathProfile profile_;
  SeverityCube cube_;

  std::vector<std::vector<StackEntry>> stacks_;
  std::vector<std::vector<SendInterval>> send_intervals_;
  std::vector<VTime> first_, last_;
  std::vector<bool> seen_;

  // message matching: (comm, src loc, dst loc, tag) -> FIFO of sends
  std::unordered_map<Key128, std::deque<SendRec>, Key128Hash> sends_;
  // receive completions still waiting for their send record (same key)
  std::unordered_map<Key128, std::deque<OrphanRecv>, Key128Hash> orphans_;
  // unmatched send times per (comm, dst loc), for wrong-order detection;
  // the multiset keeps them ordered so the oldest pending send is O(1).
  std::unordered_map<Key128, std::multiset<std::int64_t>, Key128Hash>
      pending_to_;
  std::vector<LrCandidate> lr_candidates_;
  // collective grouping: (comm, seq) -> records so far
  std::unordered_map<Key128, std::vector<CollRec>, Key128Hash> colls_;
  // structural collective-correctness checker (AnalyzerOptions::
  // check_collectives); nullopt when disabled
  std::optional<CollectiveChecker> checker_;

  VDur total_time_ = VDur::zero();
  DataQuality quality_;
};

void Replay::on_enter(const trace::Event& e) {
  if (options_.lenient && !valid_region(e.region)) {
    // A region never declared cannot be profiled or even named later;
    // dropping the enter keeps the stack consistent.
    drop_event();
    return;
  }
  auto& st = stacks_[static_cast<std::size_t>(e.loc)];
  const NodeId n = profile_.child(current_node(e.loc), e.region);
  profile_.add_visit(n, e.loc);
  st.push_back({n, e.t, e.region});
}

void Replay::on_exit(const trace::Event& e) {
  auto& st = stacks_[static_cast<std::size_t>(e.loc)];
  if (st.empty() || st.back().region != e.region) {
    if (!options_.lenient) {
      throw TraceError("analyzer: unbalanced exit of region '" +
                       trace_.regions().info(e.region).name +
                       "' on location " + std::to_string(e.loc));
    }
    ++quality_.unbalanced_exits;
    // Recovery: if the region is open deeper in the stack, the intervening
    // exits were lost — close those regions synthetically at e.t and fall
    // through to the normal exit.  Otherwise the matching enter was lost;
    // drop the exit.
    const bool open_deeper =
        std::any_of(st.begin(), st.end(), [&](const StackEntry& s) {
          return s.region == e.region;
        });
    if (!open_deeper) {
      drop_event();
      return;
    }
    while (st.back().region != e.region) {
      profile_.add_inclusive(st.back().node, e.loc,
                             clamp_wait(e.t - st.back().enter));
      st.pop_back();
      ++quality_.events_repaired;
    }
  }
  const StackEntry top = st.back();
  st.pop_back();
  profile_.add_inclusive(top.node, e.loc, e.t - top.enter);
  // Close a pending send interval of this region, for late-receiver.
  const trace::RegionInfo& info = trace_.regions().info(e.region);
  if (info.kind == trace::RegionKind::kMpiP2P &&
      (info.name == "MPI_Send" || info.name == "MPI_Ssend")) {
    auto& ivs = send_intervals_[static_cast<std::size_t>(e.loc)];
    for (auto it = ivs.rbegin(); it != ivs.rend(); ++it) {
      if (!it->closed && it->node == top.node) {
        it->exit = e.t;
        it->closed = true;
        break;
      }
    }
  }
}

void Replay::on_send(const trace::Event& e) {
  const Key128 key = msg_key(e.comm, e.loc, e.peer, e.tag);
  auto oit = orphans_.find(key);
  if (oit != orphans_.end() && !oit->second.empty()) {
    // A receive completion (equal timestamp, lower location id) was seen
    // first; complete the pair now.  The message never waited unmatched, so
    // no wrong-order bookkeeping applies.
    const OrphanRecv orphan = oit->second.front();
    oit->second.pop_front();
    // A receive that *completed* strictly before its send was recorded can
    // only happen with disagreeing clocks (equal timestamps are the benign
    // replay-order case).
    if (orphan.t < e.t) ++quality_.skewed_messages;
    const VDur wait =
        clamp_wait(earlier(e.t, orphan.t) - orphan.recv_enter);
    if (wait > VDur::zero()) {
      add_wait(PropertyId::kLateSender, orphan.recv_node, orphan.loc, wait);
    }
    // No late-receiver candidate: the receiver completed no later than the
    // send record, so it cannot have posted late.
    return;
  }
  sends_[key].push_back(SendRec{e.t});
  pending_to_[pair_key(e.comm, e.peer)].insert(e.t.ns());
  // Remember the enclosing blocking-send interval (exit filled on region
  // exit); used by the late-receiver post-pass.
  const auto& st = stacks_[static_cast<std::size_t>(e.loc)];
  if (!st.empty()) {
    const trace::RegionInfo& info = trace_.regions().info(st.back().region);
    if (info.name == "MPI_Send" || info.name == "MPI_Ssend") {
      send_intervals_[static_cast<std::size_t>(e.loc)].push_back(
          SendInterval{e.t, e.t, st.back().node, false});
    }
  }
}

void Replay::on_recv(const trace::Event& e) {
  const Key128 key = msg_key(e.comm, e.peer, e.loc, e.tag);

  // The innermost enclosing P2P region is the waiting receive operation
  // (MPI_Recv, MPI_Wait, ...); resolve it first so an orphaned completion
  // can be parked with its context.
  const auto& stk = stacks_[static_cast<std::size_t>(e.loc)];
  NodeId recv_node = kRootNode;
  VTime recv_enter = e.t;
  bool in_p2p = false;
  for (auto rit = stk.rbegin(); rit != stk.rend(); ++rit) {
    if (trace_.regions().info(rit->region).kind ==
        trace::RegionKind::kMpiP2P) {
      recv_node = rit->node;
      recv_enter = rit->enter;
      in_p2p = true;
      break;
    }
  }

  auto it = sends_.find(key);
  if (it == sends_.end() || it->second.empty()) {
    // The send record has an equal timestamp but a higher location id and
    // has not been replayed yet; park the completion.
    if (in_p2p) {
      orphans_[key].push_back(OrphanRecv{e.t, recv_enter, recv_node, e.loc});
    }
    return;
  }
  const VTime send_t = it->second.front().t;
  it->second.pop_front();
  // This message is consumed: drop it from the pending set.
  auto& pend = pending_to_[pair_key(e.comm, e.loc)];
  const auto pit = pend.find(send_t.ns());
  if (pit != pend.end()) pend.erase(pit);

  if (!in_p2p) return;  // recv completion outside any P2P region: skip

  if (send_t > e.t) ++quality_.skewed_messages;
  // A send that predates the receive posting is the *well-tuned* case (the
  // message was ready before anyone asked): a negative interval here is
  // expected, not a clock anomaly — skew on this pair is already covered by
  // the completed-before-send check above.
  const VDur wait = non_negative(earlier(send_t, e.t) - recv_enter);
  if (wait > VDur::zero()) {
    // Wrong order: another message for us was already under way before the
    // one we insisted on receiving was even sent.  The multiset is ordered,
    // so checking its minimum suffices.
    const bool wrong_order = !pend.empty() && *pend.begin() < send_t.ns();
    add_wait(wrong_order ? PropertyId::kLateSenderWrongOrder
                         : PropertyId::kLateSender,
             recv_node, e.loc, wait);
  }
  lr_candidates_.push_back(LrCandidate{e.peer, send_t, recv_enter});
}

void Replay::on_coll_begin(const trace::Event& e) {
  // A begin record feeds only the structural checker; the profile and the
  // severity cube are built from the enter/exit/coll-end records alone, so
  // severity output is unchanged by its presence.
  if (!valid_comm(e.comm)) {
    drop_event();
    return;
  }
  if (checker_) checker_->on_begin(e);
}

void Replay::on_coll_end(const trace::Event& e) {
  if (options_.lenient && !valid_comm(e.comm)) {
    drop_event();
    return;
  }
  if (checker_) checker_->on_end(e);
  const auto& st = stacks_[static_cast<std::size_t>(e.loc)];
  CollRec rec;
  rec.loc = e.loc;
  rec.enter = e.enter_t;
  rec.exit = e.t;
  if (!st.empty()) {
    rec.node = st.back().node;
    const trace::RegionInfo& info = trace_.regions().info(st.back().region);
    rec.encl_kind = info.kind;
    rec.encl_name = info.name;
  } else {
    rec.node = kRootNode;
    rec.encl_kind = trace::RegionKind::kUser;
  }
  auto& group = colls_[pair_key(e.comm, e.seq)];
  group.push_back(std::move(rec));
  const std::size_t expected = trace_.comm(e.comm).members.size();
  if (group.size() == expected) {
    process_coll_group(e.op, e.root, group);
    colls_.erase(pair_key(e.comm, e.seq));
  }
}

void Replay::process_coll_group(trace::CollOp op, std::int32_t root_loc,
                                const std::vector<CollRec>& recs) {
  VTime max_enter = VTime::zero();
  VTime root_enter = VTime::zero();
  for (const CollRec& r : recs) {
    max_enter = later(max_enter, r.enter);
    if (r.loc == root_loc) root_enter = r.enter;
  }
  for (const CollRec& r : recs) {
    PropertyId prop;
    VDur wait = VDur::zero();
    if (r.encl_kind == trace::RegionKind::kMpiOther) {
      // Waits inside MPI_Init / MPI_Finalize / comm management are already
      // covered by the management-overhead region time; don't double-count
      // them as user-level wait states.
      continue;
    } else if (op == trace::CollOp::kBarrier) {
      prop = PropertyId::kWaitAtBarrier;
      wait = clamp_wait(max_enter - r.enter);
    } else if (op == trace::CollOp::kOmpBarrier) {
      prop = PropertyId::kWaitAtOmpBarrier;
      wait = clamp_wait(max_enter - r.enter);
    } else if (op == trace::CollOp::kOmpIBarrier) {
      if (starts_with(r.encl_name, "omp for")) {
        prop = PropertyId::kImbalanceInOmpLoop;
      } else if (starts_with(r.encl_name, "omp sections")) {
        prop = PropertyId::kImbalanceInOmpSections;
      } else if (starts_with(r.encl_name, "omp single")) {
        prop = PropertyId::kImbalanceInOmpSingle;
      } else {
        prop = PropertyId::kImbalanceInParallelRegion;
      }
      wait = clamp_wait(max_enter - r.enter);
    } else if (trace::is_root_source(op)) {
      prop = (op == trace::CollOp::kBcast) ? PropertyId::kLateBroadcast
                                           : PropertyId::kLateScatter;
      if (r.loc != root_loc) wait = clamp_wait(root_enter - r.enter);
    } else if (trace::is_root_sink(op)) {
      prop = (op == trace::CollOp::kReduce) ? PropertyId::kEarlyReduce
                                            : PropertyId::kEarlyGather;
      if (r.loc == root_loc) wait = clamp_wait(max_enter - r.enter);
    } else {
      prop = PropertyId::kWaitAtNxN;
      wait = clamp_wait(max_enter - r.enter);
    }
    add_wait(prop, r.node, r.loc, wait);
  }
}

void Replay::on_lock_acquire(const trace::Event& e) {
  const auto& st = stacks_[static_cast<std::size_t>(e.loc)];
  if (st.empty()) return;
  const StackEntry& top = st.back();
  if (trace_.regions().info(top.region).kind != trace::RegionKind::kOmpSync) {
    return;
  }
  add_wait(PropertyId::kOmpLockContention, top.node, e.loc,
           clamp_wait(e.t - top.enter));
}

void Replay::finish_open_regions() {
  for (std::size_t loc = 0; loc < nlocs_; ++loc) {
    auto& st = stacks_[loc];
    while (!st.empty()) {
      profile_.add_inclusive(st.back().node, static_cast<trace::LocId>(loc),
                             last_[loc] - st.back().enter);
      st.pop_back();
    }
  }
}

void Replay::late_receiver_pass() {
  // Sort intervals per location by send-event time for binary search.
  for (auto& ivs : send_intervals_) {
    std::sort(ivs.begin(), ivs.end(),
              [](const SendInterval& a, const SendInterval& b) {
                return a.enter < b.enter;
              });
  }
  for (const LrCandidate& c : lr_candidates_) {
    const auto& ivs = send_intervals_[static_cast<std::size_t>(c.send_loc)];
    // Find the interval whose send event is exactly c.send_t.
    auto it = std::lower_bound(
        ivs.begin(), ivs.end(), c.send_t,
        [](const SendInterval& iv, VTime t) { return iv.enter < t; });
    if (it == ivs.end() || it->enter != c.send_t || !it->closed) continue;
    if (c.recv_enter <= c.send_t) continue;  // the receiver was on time
    const VDur wait = earlier(c.recv_enter, it->exit) - c.send_t;
    if (wait > VDur::zero()) {
      add_wait(PropertyId::kLateReceiver, it->node, c.send_loc, wait);
    }
  }
}

void Replay::classify_structural() {
  // Per-location totals.
  for (std::size_t loc = 0; loc < nlocs_; ++loc) {
    if (!seen_[loc]) continue;
    const VDur span = last_[loc] - first_[loc];
    cube_.add(PropertyId::kTotal, kRootNode, static_cast<trace::LocId>(loc),
              span);
    total_time_ += span;
  }
  // Time-class properties from the profile: attribute the inclusive time of
  // every class-topmost node (a node of the class whose parent is not of
  // the same class).
  profile_.preorder([&](NodeId n, int) {
    if (n == kRootNode) return;
    const CpNode& nd = profile_.node(n);
    const trace::RegionKind kind = trace_.regions().info(nd.region).kind;
    const CpNode& parent = nd.parent == kRootNode
                               ? profile_.node(kRootNode)
                               : profile_.node(nd.parent);
    const trace::RegionKind pkind =
        parent.region == trace::kNone
            ? trace::RegionKind::kUser
            : trace_.regions().info(parent.region).kind;

    auto add_all_locs = [&](PropertyId p) {
      for (std::size_t loc = 0; loc < nlocs_; ++loc) {
        cube_.add(p, n, static_cast<trace::LocId>(loc),
                  profile_.inclusive(n, static_cast<trace::LocId>(loc)));
      }
    };

    if (is_mpi_kind(kind) && !is_mpi_kind(pkind)) {
      add_all_locs(PropertyId::kMpi);
    }
    if (is_omp_kind(kind) && !is_omp_kind(pkind)) {
      add_all_locs(PropertyId::kOmp);
    }
    switch (kind) {
      case trace::RegionKind::kMpiP2P:
        if (pkind != trace::RegionKind::kMpiP2P) {
          add_all_locs(PropertyId::kMpiP2P);
        }
        break;
      case trace::RegionKind::kMpiColl:
        add_all_locs(PropertyId::kMpiCollective);
        break;
      case trace::RegionKind::kMpiOther: {
        add_all_locs(PropertyId::kMpiMgmt);
        const std::string& name = trace_.regions().info(nd.region).name;
        if (name == "MPI_Init" || name == "MPI_Finalize") {
          add_all_locs(PropertyId::kInitFinalizeOverhead);
        }
        break;
      }
      case trace::RegionKind::kOmpSync:
        if (pkind != trace::RegionKind::kOmpSync) {
          add_all_locs(PropertyId::kOmpSync);
        }
        break;
      default:
        break;
    }
  });
}

void Replay::idle_threads_pass() {
  // EXPERT's "Idle Threads": while the master of an OpenMP-capable process
  // computes serially outside parallel regions, the CPUs reserved for its
  // workers are idle.  Severity = serial non-MPI time x (max team size - 1)
  // per master location.  MPI time is excluded: during communication the
  // master is not "computing serially" in the EXPERT sense relevant here,
  // and those waits are already attributed to MPI wait states.
  std::map<trace::LocId, int> max_team;
  for (std::size_t c = 0; c < trace_.comm_count(); ++c) {
    const trace::CommInfo& info =
        trace_.comm(static_cast<trace::CommId>(c));
    if (info.kind != trace::CommKind::kOmpTeam || info.members.empty()) {
      continue;
    }
    int& n = max_team[info.members.front()];
    n = std::max(n, static_cast<int>(info.members.size()));
  }
  for (const auto& [loc, n] : max_team) {
    if (n <= 1 || !seen_[static_cast<std::size_t>(loc)]) continue;
    const VDur span = last_[static_cast<std::size_t>(loc)] -
                      first_[static_cast<std::size_t>(loc)];
    VDur parallel_time = VDur::zero();
    VDur mpi_time = VDur::zero();
    profile_.preorder([&](NodeId node, int) {
      if (node == kRootNode) return;
      const CpNode& nd = profile_.node(node);
      const trace::RegionKind kind = trace_.regions().info(nd.region).kind;
      const CpNode& parent = profile_.node(nd.parent);
      const trace::RegionKind pkind =
          parent.region == trace::kNone
              ? trace::RegionKind::kUser
              : trace_.regions().info(parent.region).kind;
      if (is_omp_kind(kind) && !is_omp_kind(pkind)) {
        parallel_time += profile_.inclusive(node, loc);
      }
      if (is_mpi_kind(kind) && !is_mpi_kind(pkind) &&
          !is_omp_kind(pkind)) {
        mpi_time += profile_.inclusive(node, loc);
      }
    });
    const VDur serial = non_negative(span - parallel_time - mpi_time);
    if (serial > VDur::zero()) {
      add_wait(PropertyId::kOmpIdleThreads, kRootNode, loc,
               serial * static_cast<std::int64_t>(n - 1));
    }
  }
}

void Replay::rank_findings(AnalysisResult& result) const {
  const SeverityCube& cube = result.cube;
  for (PropertyId p : property_preorder()) {
    const PropertyInfo& info = property_info(p);
    if (!info.is_waitstate) continue;
    const VDur sev = cube.total(p);
    if (sev <= VDur::zero() || result.total_time <= VDur::zero()) continue;
    const double fraction = sev / result.total_time;
    if (fraction < options_.threshold) continue;
    Finding f;
    f.prop = p;
    f.severity = sev;
    f.fraction = fraction;
    // Node carrying the largest share.
    VDur best = VDur::zero();
    for (NodeId n : cube.nodes_of(p)) {
      const VDur nt = cube.node_total(p, n);
      if (nt > best) {
        best = nt;
        f.node = n;
      }
    }
    result.findings.push_back(f);
  }
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.severity > b.severity;
                   });
}

AnalysisResult Replay::run() {
  // Stream the k-way merge: the replay touches each event exactly once, so
  // materialising (and caching) the merged pointer vector would only cost
  // allocations.
  trace_.for_each_merged([&](const trace::Event& e) {
    const std::size_t loc = static_cast<std::size_t>(e.loc);
    first_[loc] = earlier(first_[loc], e.t);
    last_[loc] = later(last_[loc], e.t);
    seen_[loc] = true;
    ++quality_.events_seen;
    switch (e.type) {
      case trace::EventType::kEnter: on_enter(e); break;
      case trace::EventType::kExit: on_exit(e); break;
      case trace::EventType::kSend: on_send(e); break;
      case trace::EventType::kRecv: on_recv(e); break;
      case trace::EventType::kCollEnd: on_coll_end(e); break;
      case trace::EventType::kCollBegin: on_coll_begin(e); break;
      case trace::EventType::kLockAcquire: on_lock_acquire(e); break;
      case trace::EventType::kLockRelease: break;
    }
  });
  finish_open_regions();
  late_receiver_pass();
  classify_structural();
  idle_threads_pass();

  // Degradation accounting: whatever is still parked in the matching
  // tables at the end of the replay never found its counterpart.  These
  // wait states are skipped, not guessed at — the DataQuality summary is
  // the honest record of what the analysis could not see.
  for (const auto& [key, queue] : sends_) {
    quality_.unmatched_sends += queue.size();
  }
  for (const auto& [key, queue] : orphans_) {
    quality_.unmatched_recvs += queue.size();
  }
  quality_.incomplete_collectives = colls_.size();
  quality_.unsorted_locations = trace_.unsorted_location_count();
  quality_.clock_skew_detected = quality_.skewed_messages > 0 ||
                                 quality_.negative_waits_clamped > 0 ||
                                 quality_.unsorted_locations > 0;

  AnalysisResult result{std::move(profile_), std::move(cube_), total_time_,
                        {}, quality_, {}};
  if (checker_) result.defects = checker_->finish();
  rank_findings(result);
  return result;
}

}  // namespace

AnalysisResult analyze(const trace::Trace& trace, AnalyzerOptions options) {
  Replay replay(trace, options);
  return replay.run();
}

}  // namespace ats::analyze
