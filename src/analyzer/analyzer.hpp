// The automatic performance analyzer (the "tool under test").
//
// Reimplements the trace-analysis pipeline of tools like EXPERT: a single
// time-ordered replay of the trace builds a call-path profile, reconstructs
// message matching, groups collective instances, and quantifies wait-state
// patterns into a severity cube (property × call path × location).  The
// analyzer sees only trace events — none of the simulator's internal wait
// bookkeeping — so ATS property tests genuinely exercise the detection
// logic.
#pragma once

#include <bitset>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analyzer/collcheck.hpp"
#include "analyzer/profile.hpp"
#include "analyzer/property.hpp"
#include "common/vtime.hpp"
#include "trace/trace.hpp"

namespace ats::analyze {

/// Severity cube: property × call-path node × location -> accumulated time.
class SeverityCube {
 public:
  SeverityCube(std::size_t nlocs);

  void add(PropertyId p, NodeId n, trace::LocId loc, VDur d);

  VDur at(PropertyId p, NodeId n, trace::LocId loc) const;
  /// Sum over locations for one (property, node).
  VDur node_total(PropertyId p, NodeId n) const;
  /// Sum over nodes and locations for one property (without descendants).
  VDur total(PropertyId p) const;
  /// total() plus all descendant properties.
  VDur subtree_total(PropertyId p) const;
  /// Nodes with non-zero severity for `p`, in node order.
  std::vector<NodeId> nodes_of(PropertyId p) const;
  /// Per-location severities for (property, node).
  std::vector<VDur> locations_of(PropertyId p, NodeId n) const;

  /// Visits every positive (property, node, location) cell in the *stable
  /// report order* — property pre-order, then node id ascending, then
  /// location id ascending.  This order is the diffing contract: the
  /// severity CSV (report::severity_csv) and the cross-run snapshot
  /// (diff::Snapshot) are both built from it, so two analyses of the same
  /// trace serialise identically byte for byte (docs/DIFF.md).
  void for_each(
      const std::function<void(PropertyId, NodeId, trace::LocId, VDur)>& fn)
      const;

  std::size_t location_count() const { return nlocs_; }

 private:
  struct Cell {
    NodeId node;
    std::vector<VDur> per_loc;
  };
  const Cell* find_cell(PropertyId p, NodeId n) const;

  std::size_t nlocs_;
  // One sparse (node -> per-loc) list per property; cell order is first-add
  // order (it feeds nodes_of(), which sorts, so lookups never scan).
  std::vector<std::vector<Cell>> cells_;
  // node -> position in cells_[p], one index per property.  The replay adds
  // one severity entry per *event*, so without the index add() is a linear
  // scan per event (O(cells) each) on hot traces.
  std::vector<std::unordered_map<NodeId, std::uint32_t>> index_;
};

/// One ranked result: a leaf wait-state with its total severity.
struct Finding {
  PropertyId prop = PropertyId::kTotal;
  /// Call-path node carrying the largest share of the severity.
  NodeId node = kRootNode;
  VDur severity;
  /// Fraction of total execution time.
  double fraction = 0.0;
};

struct AnalyzerOptions {
  /// Leaf properties below this fraction of total time are not reported.
  double threshold = 0.005;
  /// Fault injection for tool testing: wait-state patterns in this list are
  /// silently skipped, emulating a defective analyzer.  The ATS detection
  /// matrix must then report the corresponding property functions as
  /// MISSED — demonstrating that the suite catches broken tools (the
  /// paper's core motivation).
  std::vector<PropertyId> disabled_patterns;
  /// Degrade gracefully on malformed traces instead of throwing: unbalanced
  /// exits are repaired or dropped (and counted in DataQuality), events
  /// referencing unknown regions/comms are skipped.  Strict (the default)
  /// preserves the historical throw-on-inconsistency behaviour that the
  /// unit tests pin.  Recovery policy: DESIGN.md §7.
  bool lenient = false;
  /// Runs the collective-correctness checker (collcheck.hpp) during the
  /// replay and attaches its structural defects to the result.  On by
  /// default: the checker is silent on structurally sound traces and its
  /// cost is bounded by the number of concurrently open collectives
  /// (DESIGN.md §13, docs/DEFECTS.md).
  bool check_collectives = true;

  bool is_disabled(PropertyId p) const;
  /// disabled_patterns as a bitset, computed once per analysis so the
  /// per-event replay checks are a single bit test instead of a std::find.
  std::bitset<kPropertyCount> disabled_mask() const;
};

/// Degradation summary attached to every AnalysisResult: what the replay
/// saw, what it had to drop or repair, and whether the trace shows signs of
/// clock skew.  All counters are populated in both strict and lenient mode
/// (strict throws before some of them can become non-zero).
struct DataQuality {
  std::size_t events_seen = 0;     ///< events replayed
  std::size_t events_dropped = 0;  ///< events skipped as unusable
  std::size_t events_repaired = 0; ///< regions closed synthetically
  std::size_t unbalanced_exits = 0;      ///< exit without matching enter
  std::size_t unmatched_sends = 0;       ///< sends no receive consumed
  std::size_t unmatched_recvs = 0;       ///< receives with no send record
  std::size_t incomplete_collectives = 0;  ///< groups missing participants
  std::size_t negative_waits_clamped = 0;  ///< wait intervals clamped to 0
  std::size_t skewed_messages = 0;  ///< receive completed before its send
  std::size_t unsorted_locations = 0;  ///< per-loc buffers out of time order
  bool clock_skew_detected = false;

  /// True when the trace replayed without any anomaly.
  bool clean() const;
};

struct AnalysisResult {
  CallPathProfile profile;
  SeverityCube cube;
  /// Sum over locations of (last event - first event).
  VDur total_time;
  /// Ranked findings (desc. severity), leaves above threshold only.
  std::vector<Finding> findings;
  /// Trace-health summary (see DataQuality).
  DataQuality quality;
  /// Structural collective-correctness defects, sorted by (communicator,
  /// call index); empty on structurally sound traces and whenever
  /// AnalyzerOptions::check_collectives is off.  Defects are reported
  /// alongside — never inside — the severity cube, so severity output is
  /// byte-identical with the checker on or off.
  std::vector<StructuralDefect> defects;

  /// Highest-severity wait state; by default ignores overhead-class
  /// properties (init/finalize) so the injected property dominates.
  std::optional<Finding> dominant(bool include_overhead = false) const;
  /// Severity fraction of one property (subtree), relative to total time.
  double severity_fraction(PropertyId p) const;
};

/// Runs the full analysis over a trace.
AnalysisResult analyze(const trace::Trace& trace, AnalyzerOptions options = {});

}  // namespace ats::analyze
