#include "analyzer/collcheck.hpp"

#include <algorithm>
#include <map>

namespace ats::analyze {

const char* to_string(DefectKind k) {
  switch (k) {
    case DefectKind::kOperationMismatch: return "operation-mismatch";
    case DefectKind::kRootMismatch: return "root-mismatch";
    case DefectKind::kReduceOpMismatch: return "reduce-op-mismatch";
    case DefectKind::kMissingCall: return "missing-call";
    case DefectKind::kUnfinishedCollective: return "unfinished-collective";
  }
  return "?";
}

namespace {

/// Renders a sorted rank list as "{0,2,4}"; long lists are elided so a
/// 100k-rank defect still reports in one line.
std::string rank_list(std::vector<int> ranks) {
  std::sort(ranks.begin(), ranks.end());
  constexpr std::size_t kShown = 8;
  std::string out = "{";
  for (std::size_t i = 0; i < ranks.size() && i < kShown; ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ranks[i]);
  }
  if (ranks.size() > kShown) {
    out += ",+" + std::to_string(ranks.size() - kShown) + " more";
  }
  out += '}';
  return out;
}

/// "rank 2" when the root location is a member of the communicator (the
/// normal case), "loc 7" when a corrupted record points elsewhere, "none"
/// for unrooted calls.
std::string root_str(const trace::CommInfo& comm, std::int32_t root_loc) {
  if (root_loc == trace::kNone) return "none";
  for (std::size_t r = 0; r < comm.members.size(); ++r) {
    if (comm.members[r] == root_loc) {
      return "rank " + std::to_string(r);
    }
  }
  return "loc " + std::to_string(root_loc);
}

/// "ranks {0,2} <verb> <value a>, ranks {1,3} <verb> <value b>" for any
/// per-participant discriminator; groups are emitted in value order.
template <typename Value, typename Get, typename Render>
std::string by_value(const std::vector<DefectParticipant>& ps,
                     const char* verb, Get get, Render render) {
  std::map<Value, std::vector<int>> groups;
  for (const DefectParticipant& p : ps) {
    groups[get(p)].push_back(p.comm_rank);
  }
  std::string out;
  for (auto& [value, ranks] : groups) {
    if (!out.empty()) out += ", ";
    out += "ranks " + rank_list(std::move(ranks)) + " " + verb + " " +
           render(value);
  }
  return out;
}

}  // namespace

std::string StructuralDefect::describe(const trace::Trace& t) const {
  const trace::CommInfo& ci = t.comm(comm);
  std::string out = std::string(to_string(kind)) + " '" + ci.name +
                    "' call #" + std::to_string(call_index);
  switch (kind) {
    case DefectKind::kOperationMismatch:
      // No representative op in the header: the ops are the disagreement.
      out += ": " + by_value<trace::CollOp>(
                        participants, "called",
                        [](const DefectParticipant& p) { return p.op; },
                        [](trace::CollOp o) {
                          return std::string(trace::to_string(o));
                        });
      break;
    case DefectKind::kRootMismatch:
      out += " (" + std::string(trace::to_string(op)) + "): " +
             by_value<std::int32_t>(
                 participants, "used root",
                 [](const DefectParticipant& p) { return p.root; },
                 [&](std::int32_t r) { return root_str(ci, r); });
      break;
    case DefectKind::kReduceOpMismatch:
      out += " (" + std::string(trace::to_string(op)) + "): " +
             by_value<std::int32_t>(
                 participants, "used",
                 [](const DefectParticipant& p) { return p.rop; },
                 [](std::int32_t r) {
                   return std::string(trace::reduce_op_name(r));
                 });
      break;
    case DefectKind::kMissingCall: {
      std::vector<int> called;
      for (const DefectParticipant& p : participants) {
        called.push_back(p.comm_rank);
      }
      out += " (" + std::string(trace::to_string(op)) + "): ranks " +
             rank_list(std::move(called)) + " called, ranks " +
             rank_list(missing) + " never called";
      break;
    }
    case DefectKind::kUnfinishedCollective: {
      std::vector<int> stuck;
      for (const DefectParticipant& p : participants) {
        if (!p.completed) stuck.push_back(p.comm_rank);
      }
      out += " (" + std::string(trace::to_string(op)) + "): ranks " +
             rank_list(std::move(stuck)) + " entered but never completed";
      break;
    }
  }
  return out;
}

// --------------------------------------------------------- CollectiveChecker

CollectiveChecker::CollectiveChecker(const trace::Trace& trace)
    : trace_(trace) {
  groups_.reserve(trace.location_count());
}

int CollectiveChecker::rank_in_comm(trace::CommId comm, trace::LocId loc) {
  auto [it, inserted] = rank_maps_.try_emplace(comm);
  if (inserted) {
    const trace::CommInfo& info = trace_.comm(comm);
    it->second.reserve(info.members.size());
    for (std::size_t r = 0; r < info.members.size(); ++r) {
      it->second.emplace(info.members[r], static_cast<int>(r));
    }
  }
  const auto rit = it->second.find(loc);
  return rit == it->second.end() ? -1 : rit->second;
}

void CollectiveChecker::on_begin(const trace::Event& e) {
  Group& g = groups_[GroupKey{e.comm, e.seq}];
  for (const DefectParticipant& p : g.participants) {
    if (p.loc == e.loc) return;  // duplicate record (corrupted trace)
  }
  DefectParticipant p;
  p.loc = e.loc;
  p.comm_rank = rank_in_comm(e.comm, e.loc);
  p.call_index = e.seq;
  p.op = e.op;
  p.root = e.root;
  p.rop = e.tag;
  if (!g.participants.empty()) {
    // Pairwise disagreement always includes a disagreement with the first
    // arriver, so comparing against it alone is sufficient.
    const DefectParticipant& first = g.participants.front();
    if (first.op != p.op) g.ops_differ = true;
    if (first.root != p.root) g.roots_differ = true;
    if (first.rop != p.rop) g.rops_differ = true;
  }
  g.participants.push_back(p);
}

void CollectiveChecker::on_end(const trace::Event& e) {
  const auto it = groups_.find(GroupKey{e.comm, e.seq});
  if (it == groups_.end()) return;  // no begins: OMP team or legacy trace
  Group& g = it->second;
  for (DefectParticipant& p : g.participants) {
    if (p.loc == e.loc && !p.completed) {
      p.completed = true;
      ++g.done;
      break;
    }
  }
  // Retire structurally sound, fully attended, fully completed instances;
  // on clean traces every group dies here and finish() sees nothing.
  if (!g.ops_differ && !g.roots_differ && !g.rops_differ) {
    const std::size_t expected = trace_.comm(e.comm).members.size();
    if (g.participants.size() == expected && g.done == expected) {
      groups_.erase(it);
    }
  }
}

std::vector<StructuralDefect> CollectiveChecker::finish() {
  std::vector<StructuralDefect> out;
  out.reserve(groups_.size());
  for (auto& [key, g] : groups_) {
    const std::size_t expected =
        trace_.comm(key.comm).members.size();
    StructuralDefect d;
    d.comm = key.comm;
    d.call_index = key.seq;
    d.op = g.participants.front().op;
    if (g.ops_differ) {
      d.kind = DefectKind::kOperationMismatch;
    } else if (g.roots_differ) {
      d.kind = DefectKind::kRootMismatch;
    } else if (g.rops_differ) {
      d.kind = DefectKind::kReduceOpMismatch;
    } else if (g.participants.size() < expected) {
      d.kind = DefectKind::kMissingCall;
    } else {
      d.kind = DefectKind::kUnfinishedCollective;
    }
    if (g.participants.size() < expected) {
      std::vector<bool> called(expected, false);
      for (const DefectParticipant& p : g.participants) {
        if (p.comm_rank >= 0 &&
            static_cast<std::size_t>(p.comm_rank) < expected) {
          called[static_cast<std::size_t>(p.comm_rank)] = true;
        }
      }
      for (std::size_t r = 0; r < expected; ++r) {
        if (!called[r]) d.missing.push_back(static_cast<int>(r));
      }
    }
    d.participants = std::move(g.participants);
    std::sort(d.participants.begin(), d.participants.end(),
              [](const DefectParticipant& a, const DefectParticipant& b) {
                return a.comm_rank != b.comm_rank
                           ? a.comm_rank < b.comm_rank
                           : a.loc < b.loc;
              });
    out.push_back(std::move(d));
  }
  groups_.clear();
  std::sort(out.begin(), out.end(),
            [](const StructuralDefect& a, const StructuralDefect& b) {
              return a.comm != b.comm ? a.comm < b.comm
                                      : a.call_index < b.call_index;
            });
  return out;
}

}  // namespace ats::analyze
