// Collective-correctness verification (the structural analysis layer).
//
// PARCOACH's dynamic check reduces a per-collective "color" with an
// all-equal operator and aborts the application on mismatch.  ATS analyses
// traces after the fact, so the checker works from the per-participant
// kCollBegin records instead: every member's k-th collective call on a
// communicator must agree with every other member's k-th call on the
// operation, the root and the reduce-op; every member must make the call;
// and every call must complete (a matching kCollEnd).  Because the runtime
// writes the begin record *before* its own consistency checks, the evidence
// survives even when the run aborts mid-collective — the checker then cites
// exactly which ranks called what, at which per-rank call index.
//
// Violations are reported as StructuralDefects alongside the severity tree;
// taxonomy, detection rules and report schema: docs/DEFECTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace ats::analyze {

/// The structural-defect taxonomy (docs/DEFECTS.md).  Order is the report
/// priority: when one collective instance exhibits several anomalies (an
/// aborted run leaves mismatched *and* missing calls), only the
/// highest-priority kind is reported for that instance.
enum class DefectKind : std::uint8_t {
  kOperationMismatch,     ///< members called different collective ops
  kRootMismatch,          ///< rooted op with disagreeing roots
  kReduceOpMismatch,      ///< reduction with disagreeing reduce operators
  kMissingCall,           ///< some members never made the call
  kUnfinishedCollective,  ///< all called, at least one never completed
};

/// Stable kebab-case name ("operation-mismatch", ...), used by the reports
/// and the golden defect files.
const char* to_string(DefectKind k);

/// One rank's view of a collective instance, straight from its kCollBegin
/// record.
struct DefectParticipant {
  trace::LocId loc = trace::kNone;   ///< global location id
  int comm_rank = -1;                ///< rank within the communicator
  std::int64_t call_index = -1;      ///< per-rank collective call index
  trace::CollOp op = trace::CollOp::kBarrier;
  std::int32_t root = trace::kNone;  ///< believed root (global loc id)
  std::int32_t rop = trace::kNone;   ///< reduce-op id (trace::reduce_op_name)
  bool completed = false;            ///< matching kCollEnd seen
};

/// One defective collective instance: the communicator, the per-rank call
/// index identifying the instance, and every participating rank's view.
struct StructuralDefect {
  DefectKind kind = DefectKind::kOperationMismatch;
  trace::CommId comm = trace::kNone;
  std::int64_t call_index = -1;
  /// The first participant's operation (representative; participants carry
  /// the per-rank truth when they disagree).
  trace::CollOp op = trace::CollOp::kBarrier;
  /// Ranks that issued the call, sorted by comm_rank.
  std::vector<DefectParticipant> participants;
  /// Communicator ranks that never issued it (empty unless some are absent).
  std::vector<int> missing;

  /// One-line human-readable report citing ranks and call index, e.g.
  ///   operation-mismatch 'MPI_COMM_WORLD' call #1: ranks {0,2} called
  ///   allreduce, ranks {1,3} called barrier
  std::string describe(const trace::Trace& t) const;
};

/// Streaming checker fed by the analyzer's replay loop: one on_begin per
/// kCollBegin, one on_end per kCollEnd, then finish().  Structurally sound
/// instances are retired as soon as they complete, so the live state on a
/// clean trace is bounded by the number of concurrently open collectives.
class CollectiveChecker {
 public:
  explicit CollectiveChecker(const trace::Trace& trace);

  void on_begin(const trace::Event& e);
  void on_end(const trace::Event& e);

  /// Flushes the remaining (defective) instances and returns the defects,
  /// sorted by (communicator, call index); at most one per instance.
  std::vector<StructuralDefect> finish();

 private:
  struct Group {
    std::vector<DefectParticipant> participants;
    std::size_t done = 0;  ///< participants with completed == true
    bool ops_differ = false;
    bool roots_differ = false;
    bool rops_differ = false;
  };

  struct GroupKey {
    std::int32_t comm = 0;
    std::int64_t seq = 0;
    bool operator==(const GroupKey&) const = default;
  };
  struct GroupKeyHash {
    std::size_t operator()(const GroupKey& k) const {
      // splitmix64 finaliser over the packed pair
      std::uint64_t x =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.comm))
           << 40) ^
          static_cast<std::uint64_t>(k.seq);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };

  int rank_in_comm(trace::CommId comm, trace::LocId loc);

  const trace::Trace& trace_;
  std::unordered_map<GroupKey, Group, GroupKeyHash> groups_;
  /// Lazily built loc -> rank maps, one per communicator consulted.
  std::unordered_map<trace::CommId,
                     std::unordered_map<trace::LocId, int>>
      rank_maps_;
};

}  // namespace ats::analyze
