#include "analyzer/profile.hpp"

#include <functional>

#include "common/error.hpp"

namespace ats::analyze {

CallPathProfile::CallPathProfile(std::size_t nlocs) : nlocs_(nlocs) {
  CpNode root;
  root.id = kRootNode;
  nodes_.push_back(root);
  incl_.assign(nlocs_, VDur::zero());
  visits_.assign(nlocs_, 0);
}

NodeId CallPathProfile::child(NodeId parent, trace::RegionId region) {
  const NodeId found = find_child(parent, region);
  if (found >= 0) return found;
  CpNode n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.parent = parent;
  n.region = region;
  nodes_[static_cast<std::size_t>(parent)].children.push_back(n.id);
  nodes_.push_back(n);
  incl_.resize(incl_.size() + nlocs_, VDur::zero());
  visits_.resize(visits_.size() + nlocs_, 0);
  return nodes_.back().id;
}

NodeId CallPathProfile::find_child(NodeId parent,
                                   trace::RegionId region) const {
  for (NodeId c : nodes_[static_cast<std::size_t>(parent)].children) {
    if (nodes_[static_cast<std::size_t>(c)].region == region) return c;
  }
  return -1;
}

const CpNode& CallPathProfile::node(NodeId id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
          "CallPathProfile: bad node id");
  return nodes_[static_cast<std::size_t>(id)];
}

std::size_t CallPathProfile::idx(NodeId n, trace::LocId loc) const {
  require(loc >= 0 && static_cast<std::size_t>(loc) < nlocs_,
          "CallPathProfile: bad location");
  return static_cast<std::size_t>(n) * nlocs_ +
         static_cast<std::size_t>(loc);
}

void CallPathProfile::add_inclusive(NodeId n, trace::LocId loc, VDur d) {
  incl_[idx(n, loc)] += d;
}

void CallPathProfile::add_visit(NodeId n, trace::LocId loc) {
  ++visits_[idx(n, loc)];
}

VDur CallPathProfile::inclusive(NodeId n, trace::LocId loc) const {
  return incl_[idx(n, loc)];
}

VDur CallPathProfile::inclusive_total(NodeId n) const {
  VDur sum = VDur::zero();
  for (std::size_t l = 0; l < nlocs_; ++l) {
    sum += incl_[static_cast<std::size_t>(n) * nlocs_ + l];
  }
  return sum;
}

std::uint64_t CallPathProfile::visits(NodeId n, trace::LocId loc) const {
  return visits_[idx(n, loc)];
}

std::uint64_t CallPathProfile::visits_total(NodeId n) const {
  std::uint64_t sum = 0;
  for (std::size_t l = 0; l < nlocs_; ++l) {
    sum += visits_[static_cast<std::size_t>(n) * nlocs_ + l];
  }
  return sum;
}

VDur CallPathProfile::exclusive(NodeId n, trace::LocId loc) const {
  VDur d = inclusive(n, loc);
  for (NodeId c : node(n).children) d -= inclusive(c, loc);
  return d;
}

VDur CallPathProfile::exclusive_total(NodeId n) const {
  VDur d = inclusive_total(n);
  for (NodeId c : node(n).children) d -= inclusive_total(c);
  return d;
}

std::string CallPathProfile::name_of(NodeId n,
                                     const trace::Trace& trace) const {
  const CpNode& nd = node(n);
  if (nd.region == trace::kNone) return "<root>";
  return trace.regions().info(nd.region).name;
}

std::string CallPathProfile::path_string(NodeId n,
                                         const trace::Trace& trace) const {
  if (n == kRootNode) return "<root>";
  std::vector<std::string> parts;
  for (NodeId cur = n; cur != kRootNode; cur = node(cur).parent) {
    parts.push_back(name_of(cur, trace));
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += " > ";
    out += *it;
  }
  return out;
}

void CallPathProfile::preorder(
    const std::function<void(NodeId, int)>& visit) const {
  std::function<void(NodeId, int)> walk = [&](NodeId n, int depth) {
    visit(n, depth);
    for (NodeId c : node(n).children) walk(c, depth + 1);
  };
  walk(kRootNode, 0);
}

}  // namespace ats::analyze
