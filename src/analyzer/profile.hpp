// Call-path profile extracted from a trace.
//
// Nodes form a tree keyed by (parent, region); node 0 is a virtual root.
// Metrics are kept per (node, location): inclusive time and visit counts.
// Exclusive time is derived.  This is the middle pane of an EXPERT-style
// presentation and the coordinate system for severity attribution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/vtime.hpp"
#include "trace/trace.hpp"

namespace ats::analyze {

using NodeId = std::int32_t;
inline constexpr NodeId kRootNode = 0;

struct CpNode {
  NodeId id = kRootNode;
  NodeId parent = -1;           ///< -1 for the root
  trace::RegionId region = trace::kNone;  ///< kNone for the root
  std::vector<NodeId> children;
};

class CallPathProfile {
 public:
  explicit CallPathProfile(std::size_t nlocs);

  /// Finds or creates the child of `parent` with `region`.
  NodeId child(NodeId parent, trace::RegionId region);
  /// Finds without creating; -1 when absent.
  NodeId find_child(NodeId parent, trace::RegionId region) const;

  const CpNode& node(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t location_count() const { return nlocs_; }

  void add_inclusive(NodeId n, trace::LocId loc, VDur d);
  void add_visit(NodeId n, trace::LocId loc);

  VDur inclusive(NodeId n, trace::LocId loc) const;
  VDur inclusive_total(NodeId n) const;
  std::uint64_t visits(NodeId n, trace::LocId loc) const;
  std::uint64_t visits_total(NodeId n) const;
  /// Inclusive minus the children's inclusive time.
  VDur exclusive(NodeId n, trace::LocId loc) const;
  VDur exclusive_total(NodeId n) const;

  /// "a > b > c" path rendering using the trace's region names.
  std::string path_string(NodeId n, const trace::Trace& trace) const;
  /// Region name of the node itself ("<root>" for the root).
  std::string name_of(NodeId n, const trace::Trace& trace) const;

  /// Depth-first (pre-order) walk of the tree.
  void preorder(const std::function<void(NodeId, int depth)>& visit) const;

 private:
  std::size_t idx(NodeId n, trace::LocId loc) const;

  std::size_t nlocs_;
  std::vector<CpNode> nodes_;
  std::vector<VDur> incl_;          // node-major [node][loc]
  std::vector<std::uint64_t> visits_;
};

}  // namespace ats::analyze
