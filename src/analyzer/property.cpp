#include "analyzer/property.hpp"

#include <array>

#include "common/error.hpp"

namespace ats::analyze {

namespace {

using P = PropertyId;

constexpr std::array<PropertyInfo, kPropertyCount> kProps{{
    {P::kTotal, P::kTotal, "time",
     "total execution time over all locations", false, false},
    {P::kMpi, P::kTotal, "mpi", "time spent inside MPI operations", false,
     false},
    {P::kMpiP2P, P::kMpi, "point-to-point",
     "time in MPI point-to-point operations", false, false},
    {P::kLateSender, P::kMpiP2P, "late sender",
     "receiver blocked because the matching send started late", true,
     false},
    {P::kLateSenderWrongOrder, P::kLateSender, "messages in wrong order",
     "late sender while an earlier message was already available", true,
     false},
    {P::kLateReceiver, P::kMpiP2P, "late receiver",
     "sender blocked (rendezvous) because the receiver posted late", true,
     false},
    {P::kMpiCollective, P::kMpi, "collective",
     "time in MPI collective operations", false, false},
    {P::kWaitAtBarrier, P::kMpiCollective, "wait at barrier",
     "early ranks waiting in MPI_Barrier for the last one", true, false},
    {P::kWaitAtNxN, P::kMpiCollective, "wait at NxN",
     "early ranks waiting in an all-to-all style collective", true, false},
    {P::kLateBroadcast, P::kMpiCollective, "late broadcast",
     "non-root ranks waiting in MPI_Bcast for a late root", true, false},
    {P::kLateScatter, P::kMpiCollective, "late scatter",
     "non-root ranks waiting in MPI_Scatter(v) for a late root", true,
     false},
    {P::kEarlyReduce, P::kMpiCollective, "early reduce",
     "the root entered MPI_Reduce early and waits for contributions", true,
     false},
    {P::kEarlyGather, P::kMpiCollective, "early gather",
     "the root entered MPI_Gather(v) early and waits for contributions",
     true, false},
    {P::kMpiMgmt, P::kMpi, "management",
     "MPI_Init / MPI_Finalize / communicator management", false, true},
    {P::kInitFinalizeOverhead, P::kMpiMgmt, "init/finalize overhead",
     "time spent inside MPI_Init and MPI_Finalize", true, true},
    {P::kOmp, P::kTotal, "omp", "time inside OpenMP constructs", false,
     false},
    {P::kOmpSync, P::kOmp, "synchronization",
     "time in explicit OpenMP synchronisation", false, false},
    {P::kWaitAtOmpBarrier, P::kOmpSync, "wait at omp barrier",
     "threads waiting at an explicit OpenMP barrier", true, false},
    {P::kOmpLockContention, P::kOmpSync, "lock contention",
     "threads waiting to acquire a critical section or lock", true, false},
    {P::kOmpImbalance, P::kOmp, "imbalance",
     "threads waiting at implicit barriers of OpenMP constructs", false,
     false},
    {P::kImbalanceInParallelRegion, P::kOmpImbalance,
     "imbalance in parallel region",
     "unequal work inside a parallel region (implicit barrier wait)", true,
     false},
    {P::kImbalanceInOmpLoop, P::kOmpImbalance, "imbalance in omp loop",
     "unequal iterations in a worksharing loop", true, false},
    {P::kImbalanceInOmpSections, P::kOmpImbalance,
     "imbalance in omp sections", "unequal sections in a sections construct",
     true, false},
    {P::kImbalanceInOmpSingle, P::kOmpImbalance, "imbalance in omp single",
     "team waiting while one thread executes a single construct", true,
     false},
    {P::kOmpIdleThreads, P::kOmp, "idle threads",
     "reserved worker CPUs idle while the master computes serially outside "
     "parallel regions",
     true, false},
}};

}  // namespace

const PropertyInfo& property_info(PropertyId id) {
  const auto idx = static_cast<std::size_t>(id);
  require(idx < kPropertyCount, "property_info: bad id");
  const PropertyInfo& info = kProps[idx];
  require(info.id == id, "property table out of order");
  return info;
}

const char* property_name(PropertyId id) { return property_info(id).name; }

std::vector<PropertyId> property_children(PropertyId id) {
  std::vector<PropertyId> out;
  for (const auto& p : kProps) {
    if (p.parent == id && p.id != id) out.push_back(p.id);
  }
  return out;
}

namespace {

void preorder_visit(PropertyId id, std::vector<PropertyId>& out) {
  out.push_back(id);
  for (PropertyId c : property_children(id)) preorder_visit(c, out);
}

}  // namespace

const std::vector<PropertyId>& property_preorder() {
  static const std::vector<PropertyId> order = [] {
    std::vector<PropertyId> out;
    preorder_visit(PropertyId::kTotal, out);
    return out;
  }();
  return order;
}

int property_depth(PropertyId id) {
  int d = 0;
  while (id != PropertyId::kTotal) {
    id = property_info(id).parent;
    ++d;
  }
  return d;
}

}  // namespace ats::analyze
