// The analyzer's performance-property hierarchy.
//
// Modeled on the ASL catalog / EXPERT's property tree: a root "total time"
// property, structural children (MPI / OpenMP time classes) and leaf wait
// states (late sender, wait at barrier, ...).  Every property in this file
// is something an *analysis tool* reports — the property *functions* in
// src/core inject the corresponding runtime behaviour, and the detection
// matrix bench checks that each maps to the right entry here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ats::analyze {

enum class PropertyId : std::uint8_t {
  kTotal,
  // --- MPI ---------------------------------------------------------------
  kMpi,
  kMpiP2P,
  kLateSender,
  kLateSenderWrongOrder,  // child of kLateSender
  kLateReceiver,
  kMpiCollective,
  kWaitAtBarrier,
  kWaitAtNxN,
  kLateBroadcast,
  kLateScatter,
  kEarlyReduce,
  kEarlyGather,
  kMpiMgmt,
  kInitFinalizeOverhead,
  // --- OpenMP -------------------------------------------------------------
  kOmp,
  kOmpSync,
  kWaitAtOmpBarrier,
  kOmpLockContention,
  kOmpImbalance,
  kImbalanceInParallelRegion,
  kImbalanceInOmpLoop,
  kImbalanceInOmpSections,
  kImbalanceInOmpSingle,
  kOmpIdleThreads,
  kCount_,  // sentinel
};

inline constexpr std::size_t kPropertyCount =
    static_cast<std::size_t>(PropertyId::kCount_);

struct PropertyInfo {
  PropertyId id;
  PropertyId parent;  ///< kTotal is its own parent (tree root)
  const char* name;
  const char* description;
  /// Leaf wait-state: participates in finding ranking.
  bool is_waitstate;
  /// Overhead-class property (init/finalize): excluded from "dominant
  /// property" queries unless explicitly requested.
  bool is_overhead;
};

const PropertyInfo& property_info(PropertyId id);
const char* property_name(PropertyId id);
/// Children of `id` in declaration order.
std::vector<PropertyId> property_children(PropertyId id);
/// All properties in tree pre-order.
const std::vector<PropertyId>& property_preorder();
/// Depth of `id` in the tree (kTotal = 0).
int property_depth(PropertyId id);

}  // namespace ats::analyze
