// Environment-variable helpers shared by the runtime-configuration knobs
// (ATS_ENGINE_BACKEND, ATS_JOBS, ...).  Thin wrappers over std::getenv
// that normalise the two cases callers actually care about: "unset or
// empty" versus "has a value".
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

namespace ats {

/// Value of `name`, or nullopt when unset or set to the empty string.
inline std::optional<std::string> env_value(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

/// Integer value of `name`; nullopt when unset, empty, non-numeric or not
/// strictly positive (the shape every ATS count-style knob expects).
inline std::optional<int> env_positive_int(const char* name) {
  const auto v = env_value(name);
  if (!v) return std::nullopt;
  try {
    const int n = std::stoi(*v);
    if (n > 0) return n;
  } catch (...) {
    // fall through: treat malformed values as unset
  }
  return std::nullopt;
}

}  // namespace ats
