#include "common/error.hpp"

namespace ats {

void require(bool cond, const std::string& what) {
  if (!cond) throw UsageError(what);
}

}  // namespace ats
