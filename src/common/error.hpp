// Error hierarchy for the ATS library.
//
// All errors thrown by ATS derive from ats::Error so callers can distinguish
// library failures from other exceptions.  Usage errors (bad arguments,
// MPI-semantics violations detected by the simulated runtime) and execution
// errors (deadlock) get their own types because tests assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace ats {

/// Root of the ATS exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid arguments or misuse of an ATS API.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Violation of simulated-MPI semantics detected by mpisim (e.g. mismatched
/// collective operations, truncation on receive, invalid rank).
class MpiError : public UsageError {
 public:
  explicit MpiError(const std::string& what) : UsageError(what) {}
};

/// Violation of simulated-OpenMP semantics detected by ompsim.
class OmpError : public UsageError {
 public:
  explicit OmpError(const std::string& what) : UsageError(what) {}
};

/// The engine found all remaining locations blocked: simulated deadlock.
/// The message contains a per-location state dump to aid debugging.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// The engine exhausted a supervision budget (virtual time, yields, or host
/// wall clock) before the simulation completed: runaway loop, livelock, or
/// host-level hang.  The message carries the same per-location state dump
/// as DeadlockError.
class HangError : public Error {
 public:
  explicit HangError(const std::string& what) : Error(what) {}
};

/// Trace file / trace model inconsistency.
class TraceError : public Error {
 public:
  explicit TraceError(const std::string& what) : Error(what) {}
};

/// Throws UsageError with `what` if `cond` is false.
void require(bool cond, const std::string& what);

}  // namespace ats
