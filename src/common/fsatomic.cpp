#include "common/fsatomic.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ats {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable.  Failure is ignored: on filesystems that do not
/// support directory fsync the rename is still atomic, just not yet
/// journalled by the filesystem.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view content) {
  require(!path.empty(), "atomic_write_file: empty path");
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("atomic_write_file: cannot create '" + tmp + "'");
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("atomic_write_file: write to '" + tmp + "' failed");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("atomic_write_file: fsync of '" + tmp + "' failed");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("atomic_write_file: rename to '" + path + "' failed");
  }
  sync_parent_dir(path);
}

AtomicJournal::AtomicJournal(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no journal yet
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  std::size_t start = 0;
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      lines_.push_back(content.substr(start, i - start));
      start = i + 1;
    }
  }
  // Bytes after the last newline are a torn trailing line (the file was
  // not produced by this class): drop them rather than misparse.
}

void AtomicJournal::append(std::string line) {
  require(line.find('\n') == std::string::npos,
          "AtomicJournal: journal lines must not contain newlines");
  lines_.push_back(std::move(line));
  persist();
}

void AtomicJournal::rewrite(std::vector<std::string> lines) {
  for (const auto& l : lines) {
    require(l.find('\n') == std::string::npos,
            "AtomicJournal: journal lines must not contain newlines");
  }
  lines_ = std::move(lines);
  persist();
}

void AtomicJournal::persist() const {
  if (path_.empty()) return;
  std::string content;
  std::size_t total = 0;
  for (const auto& l : lines_) total += l.size() + 1;
  content.reserve(total);
  for (const auto& l : lines_) {
    content += l;
    content += '\n';
  }
  atomic_write_file(path_, content);
}

}  // namespace ats
