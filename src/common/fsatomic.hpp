// Crash-consistent file primitives (write-to-temp + atomic rename).
//
// Several layers persist state that must survive an unceremonious kill —
// the supervised runner's sweep journal (resumed with --resume), and the
// analysis service's result cache and in-flight request table (reloaded on
// daemon restart).  A plain appending ofstream can be interrupted mid-line,
// leaving a torn record that a later load misparses or silently drops
// together with everything after it.  The primitives here guarantee that a
// reader only ever observes a file that some writer produced in full:
//
//   * atomic_write_file(): the POSIX temp-file-in-same-directory + fsync +
//     rename(2) dance.  rename is atomic on every POSIX filesystem, so a
//     crash at any instant leaves either the old file or the new one,
//     never a mixture and never a half-written line.
//   * AtomicJournal: a line-oriented journal maintained with that
//     primitive.  Every append rewrites the journal through a temp file
//     and renames it into place, so the on-disk journal always consists
//     of complete lines.  Loading tolerates a torn trailing line (from a
//     file produced by other means) by dropping it.
//
// Single-writer: one process (one AtomicJournal instance) owns a journal
// file at a time.  Concurrent writers would race the rename; readers are
// always safe.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ats {

/// Writes `content` to `path` atomically: the bytes go to a temp file in
/// the same directory, are flushed and fsync'd, and the temp file is then
/// renamed over `path`.  Throws ats::Error on I/O failure (the temp file
/// is removed on the failure paths).
void atomic_write_file(const std::string& path, std::string_view content);

/// A crash-consistent, line-oriented journal.
///
/// Construction loads the existing file (if any): complete lines are kept
/// verbatim, a torn trailing fragment without a final newline is dropped.
/// append() adds one line and persists the whole journal via
/// atomic_write_file, so a kill at any point leaves the previous complete
/// journal on disk.  rewrite() replaces the content wholesale (compaction).
///
/// Journals here are small — one short line per completed sweep cell or
/// in-flight request — so the rewrite-per-append cost is noise next to the
/// simulation each line represents (see bench/tab_runner_overhead).
class AtomicJournal {
 public:
  /// Loads `path` if it exists.  An empty path produces an in-memory
  /// journal that never touches disk (used when journaling is disabled).
  explicit AtomicJournal(std::string path);

  const std::string& path() const { return path_; }
  /// Lines currently in the journal (loaded + appended), in order.
  const std::vector<std::string>& lines() const { return lines_; }

  /// Appends one line (must not contain '\n') and persists atomically.
  void append(std::string line);

  /// Replaces the journal content and persists atomically.
  void rewrite(std::vector<std::string> lines);

 private:
  void persist() const;

  std::string path_;
  std::vector<std::string> lines_;
};

}  // namespace ats
