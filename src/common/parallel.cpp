#include "common/parallel.hpp"

#include "common/env.hpp"

namespace ats::par {

int default_jobs() {
  if (const auto n = env_positive_int("ATS_JOBS")) return *n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int jobs) : jobs_(jobs > 0 ? jobs : default_jobs()) {
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Grid& grid) {
  for (;;) {
    const std::size_t i = grid.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= grid.n) return;
    if (!grid.failed.load(std::memory_order_acquire)) {
      try {
        (*grid.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(grid.error_mu);
        if (!grid.error) grid.error = std::current_exception();
        grid.failed.store(true, std::memory_order_release);
      }
    }
    grid.done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Grid> grid;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      grid = grid_;
    }
    if (!grid) continue;  // grid already finished by faster peers
    drain(*grid);
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // One grid at a time: concurrent callers (e.g. the shared global pool)
  // queue up here instead of clobbering each other's grid.
  std::lock_guard<std::mutex> caller_lk(caller_mu_);
  auto grid = std::make_shared<Grid>();
  grid->n = n;
  grid->body = &body;
  {
    std::lock_guard<std::mutex> lk(mu_);
    grid_ = grid;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain(*grid);  // the caller participates
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return grid->done.load(std::memory_order_acquire) >= grid->n;
    });
    grid_.reset();
  }
  if (grid->error) std::rethrow_exception(grid->error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  static ThreadPool pool(default_jobs());
  pool.parallel_for(n, body);
}

}  // namespace ats::par
