// A small fixed-size thread pool for embarrassingly parallel grids.
//
// The analysis pipeline multiplies into hundreds of independent
// deterministic simulations (experiment sweeps, the detection matrix).  Each
// cell is pure — it reads a shared immutable plan and writes one pre-sized
// output slot — so no work stealing, futures or task graphs are needed: a
// shared atomic index over [0, n) is both the cheapest and the most
// contention-free schedule for cells of comparable cost.  Results keep their
// slot order, which keeps parallel output bit-identical to sequential runs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ats::par {

/// Worker count used when a caller does not specify one: the ATS_JOBS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
int default_jobs();

/// A fixed pool of worker threads executing parallel_for grids.
///
/// Workers are spawned once and parked on a condition variable between
/// grids, so repeated parallel_for calls (one per experiment sweep) pay no
/// thread-creation cost.  With size() == 1 no workers are spawned at all and
/// parallel_for degenerates to a plain sequential loop on the caller's
/// thread — the forced-sequential reference path used by determinism tests.
class ThreadPool {
 public:
  /// `jobs` <= 0 selects default_jobs().
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return jobs_; }

  /// Runs body(i) for every i in [0, n), distributing indices dynamically
  /// over the pool plus the calling thread.  Blocks until all indices are
  /// done.  The first exception thrown by any body is rethrown on the
  /// caller; remaining indices are still drained (bodies after the first
  /// failure are skipped, not run).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Grid {
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    const std::function<void(std::size_t)>* body = nullptr;
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void worker_main();
  /// Claims and runs indices of `grid` until exhausted.
  static void drain(Grid& grid);

  int jobs_;
  std::vector<std::thread> workers_;

  std::mutex caller_mu_;  // serialises concurrent parallel_for callers
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Shared so a worker that observed the grid just before the caller
  // finished it cannot be left holding a dangling pointer.
  std::shared_ptr<Grid> grid_;
  std::uint64_t epoch_ = 0;   // bumped per grid so workers see new work
  bool shutdown_ = false;
};

/// One-shot convenience: runs body over [0, n) on a process-wide pool of
/// default_jobs() workers (created on first use).  Callers that need a
/// specific width (e.g. forced-sequential) construct their own ThreadPool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace ats::par
