#include "common/rng.hpp"

#include <stdexcept>

namespace ats {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id into the seed so streams are decorrelated.
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("Rng::next_below: bound must be > 0");
  }
  // Lemire-style rejection-free-enough reduction; bias is negligible for the
  // bounds used here (array indices), but we reject the tail for exactness.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng::next_in(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

SplitSeed SplitSeed::child(std::string_view label) const {
  // FNV-1a over the label, offset by the parent value, then a SplitMix64
  // finalisation pass so nearby parents / similar labels decorrelate.
  std::uint64_t h = v_ ^ 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = h;
  return SplitSeed(splitmix64(state));
}

SplitSeed SplitSeed::child(std::uint64_t index) const {
  std::uint64_t state = v_ ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
  return SplitSeed(splitmix64(state));
}

}  // namespace ats
