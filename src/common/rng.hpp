// Deterministic, lock-free pseudo random number generation.
//
// Section 3.1.1 of the ATS report describes how the original prototype's use
// of the thread-safe libc rand() implicitly serialised the parallel work
// functions, and how ATS therefore ships its own simple lock-free parallel
// generator.  This module is that generator: each simulated location owns an
// independent stream derived from a global seed and the location id, so runs
// are reproducible regardless of scheduling.
#pragma once

#include <cstdint>
#include <string_view>

namespace ats {

/// SplitMix64 — used to derive well-separated per-stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, lock-free; one instance per location/stream.
class Rng {
 public:
  /// Seeds stream `stream` of the generator family identified by `seed`.
  explicit Rng(std::uint64_t seed = 0x415453u /* "ATS" */,
               std::uint64_t stream = 0);

  std::uint64_t next_u64();

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi);

 private:
  std::uint64_t s_[4];
};

/// A splittable seed: one root value from which every subsystem derives its
/// own, statistically independent sub-seed by *name* (and, when a subsystem
/// needs a family of seeds, by index).
///
/// This is the single seed-plumbing mechanism of the suite.  The fuzz
/// harness (src/proptest) hands one master seed to a run; the trace
/// FaultInjector, the mpisim RankFaultPlan drop streams, the engine RNG and
/// the SupervisedRunner's retry perturbation all derive their streams from
/// it via labelled children, so a single 64-bit value reproduces an entire
/// composite scenario — faults, schedules and retries included.
///
/// Derivation is pure hashing (FNV-1a over the label, SplitMix64
/// finalisation), so children are cheap, order-independent and stable
/// across platforms; distinct labels or indices give well-separated seeds.
class SplitSeed {
 public:
  explicit SplitSeed(std::uint64_t root) : v_(root) {}

  /// Sub-seed for a named subsystem ("engine", "trace-faults", ...).
  SplitSeed child(std::string_view label) const;
  /// Sub-seed `index` within this seed's family (retry attempts, ranks...).
  SplitSeed child(std::uint64_t index) const;

  std::uint64_t value() const { return v_; }

  /// Generator seeded from this seed (stream semantics as Rng's).
  Rng rng(std::uint64_t stream = 0) const { return Rng(v_, stream); }

 private:
  std::uint64_t v_;
};

}  // namespace ats
