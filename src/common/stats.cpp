#include "common/stats.hpp"

#include <cmath>

namespace ats {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::imbalance() const {
  if (n_ == 0 || mean_ == 0.0) return 1.0;
  return max_ / mean_;
}

}  // namespace ats
