// Streaming summary statistics, used by the report layer and the benches.
#pragma once

#include <cstddef>
#include <limits>

namespace ats {

/// Welford-style running summary: count, min, max, mean, variance, sum.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Population variance; zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// max/mean load-imbalance factor; one for empty or zero-mean data.
  double imbalance() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ats
