#include "common/strutil.hpp"

#include <cstdio>

namespace ats {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double frac, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, frac * 100.0);
  return buf;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string repeat(char c, std::size_t n) { return std::string(n, c); }

}  // namespace ats
