// Small string helpers used by the report/gen layers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ats {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Pads/truncates `s` to exactly `width` characters (left aligned).
std::string pad_right(std::string_view s, std::size_t width);

/// Pads `s` on the left to at least `width` characters.
std::string pad_left(std::string_view s, std::size_t width);

/// printf-style double with fixed precision.
std::string fmt_double(double v, int precision = 3);

/// Percent rendering ("12.3%"); `frac` is a fraction of one.
std::string fmt_percent(double frac, int precision = 1);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Repeats character `c` `n` times.
std::string repeat(char c, std::size_t n);

}  // namespace ats
