#include "common/vtime.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ats {

VDur VDur::seconds(double s) {
  if (!std::isfinite(s)) {
    throw std::invalid_argument("VDur::seconds: non-finite value");
  }
  return VDur(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

VDur VDur::operator*(double f) const {
  return VDur(static_cast<std::int64_t>(
      std::llround(static_cast<double>(ns_) * f)));
}

double VDur::operator/(VDur o) const {
  if (o.ns_ == 0) {
    throw std::invalid_argument("VDur::operator/: division by zero duration");
  }
  return static_cast<double>(ns_) / static_cast<double>(o.ns_);
}

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double a = std::abs(static_cast<double>(ns));
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", static_cast<double>(ns) / 1e3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

std::string VDur::str() const { return format_ns(ns_); }
std::string VTime::str() const { return format_ns(ns_); }

}  // namespace ats
