// Virtual-time primitives for the ATS discrete-event substrate.
//
// All timing inside the simulated runtimes (mpisim, ompsim) is expressed in
// virtual nanoseconds.  Using a strong integer type (instead of raw double
// seconds) keeps clock arithmetic exact and platform independent, which is
// what makes positive/negative property tests bit-reproducible.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ats {

/// A span of virtual time (signed, nanosecond resolution).
class VDur {
 public:
  constexpr VDur() = default;
  constexpr explicit VDur(std::int64_t ns) : ns_(ns) {}

  /// Converts (possibly fractional) seconds; rounds to nearest nanosecond.
  static VDur seconds(double s);
  static constexpr VDur nanos(std::int64_t ns) { return VDur(ns); }
  static constexpr VDur micros(std::int64_t us) { return VDur(us * 1000); }
  static constexpr VDur millis(std::int64_t ms) { return VDur(ms * 1000000); }
  static constexpr VDur zero() { return VDur(0); }
  static constexpr VDur max() {
    return VDur(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  double sec() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const VDur&) const = default;

  constexpr VDur operator+(VDur o) const { return VDur(ns_ + o.ns_); }
  constexpr VDur operator-(VDur o) const { return VDur(ns_ - o.ns_); }
  constexpr VDur operator-() const { return VDur(-ns_); }
  constexpr VDur& operator+=(VDur o) { ns_ += o.ns_; return *this; }
  constexpr VDur& operator-=(VDur o) { ns_ -= o.ns_; return *this; }
  VDur operator*(double f) const;
  constexpr VDur operator*(std::int64_t f) const { return VDur(ns_ * f); }
  constexpr VDur operator/(std::int64_t d) const { return VDur(ns_ / d); }
  /// Ratio of two durations; the divisor must be non-zero.
  double operator/(VDur o) const;

  /// Human-readable rendering with adaptive unit ("1.25 ms", "3.4 s", ...).
  std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

/// A point on a location's virtual clock (nanoseconds since engine start).
class VTime {
 public:
  constexpr VTime() = default;
  constexpr explicit VTime(std::int64_t ns) : ns_(ns) {}

  static constexpr VTime zero() { return VTime(0); }
  static constexpr VTime max() {
    return VTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  double sec() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const VTime&) const = default;

  constexpr VTime operator+(VDur d) const { return VTime(ns_ + d.ns()); }
  constexpr VTime operator-(VDur d) const { return VTime(ns_ - d.ns()); }
  constexpr VDur operator-(VTime o) const { return VDur(ns_ - o.ns_); }
  constexpr VTime& operator+=(VDur d) { ns_ += d.ns(); return *this; }

  std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

constexpr VTime earlier(VTime a, VTime b) { return a < b ? a : b; }
constexpr VTime later(VTime a, VTime b) { return a < b ? b : a; }
constexpr VDur shorter(VDur a, VDur b) { return a < b ? a : b; }
constexpr VDur longer(VDur a, VDur b) { return a < b ? b : a; }

/// Clamps a duration at zero from below (wait times are never negative).
constexpr VDur non_negative(VDur d) { return d.is_negative() ? VDur::zero() : d; }

}  // namespace ats
