#include "core/buffer.hpp"

#include <cmath>
#include <cstring>

namespace ats::core {

MpiBuf::MpiBuf(mpi::Datatype type, int count) : type_(type), count_(count) {
  require(count >= 0, "MpiBuf: negative element count");
  storage_.assign(static_cast<std::size_t>(count) *
                      mpi::datatype_size(type),
                  std::byte{0});
}

void MpiBuf::fill_int(std::int64_t value) {
  switch (type_) {
    case mpi::Datatype::kByte:
    case mpi::Datatype::kChar: {
      std::memset(storage_.data(), static_cast<int>(value), storage_.size());
      return;
    }
    case mpi::Datatype::kInt32: {
      auto v = as<std::int32_t>();
      for (auto& x : v) x = static_cast<std::int32_t>(value);
      return;
    }
    case mpi::Datatype::kInt64: {
      auto v = as<std::int64_t>();
      for (auto& x : v) x = value;
      return;
    }
    case mpi::Datatype::kFloat: {
      auto v = as<float>();
      for (auto& x : v) x = static_cast<float>(value);
      return;
    }
    case mpi::Datatype::kDouble: {
      auto v = as<double>();
      for (auto& x : v) x = static_cast<double>(value);
      return;
    }
  }
  throw UsageError("MpiBuf::fill_int: unknown datatype");
}

MpiVBuf::MpiVBuf(mpi::Datatype type, const Distribution& d, double scale,
                 int comm_size, int my_rank)
    : type_(type), rank_(my_rank) {
  require(comm_size >= 1, "MpiVBuf: group size must be >= 1");
  require(my_rank >= 0 && my_rank < comm_size, "MpiVBuf: rank out of range");
  counts_.resize(static_cast<std::size_t>(comm_size));
  displs_.resize(static_cast<std::size_t>(comm_size));
  for (int r = 0; r < comm_size; ++r) {
    const double v = d(r, comm_size, scale);
    counts_[static_cast<std::size_t>(r)] =
        v > 0 ? static_cast<int>(std::llround(v)) : 0;
    displs_[static_cast<std::size_t>(r)] = total_;
    total_ += counts_[static_cast<std::size_t>(r)];
  }
  const std::size_t esz = mpi::datatype_size(type);
  root_storage_.assign(static_cast<std::size_t>(total_) * esz, std::byte{0});
  my_storage_.assign(
      static_cast<std::size_t>(counts_[static_cast<std::size_t>(my_rank)]) *
          esz,
      std::byte{0});
}

}  // namespace ats::core
