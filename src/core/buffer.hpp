// MPI buffer management (paper §3.1.3), as RAII types.
//
// MpiBuf corresponds to mpi_buf_t (alloc_mpi_buf/free_mpi_buf): a typed,
// contiguous, zero-initialised element buffer.  MpiVBuf corresponds to
// mpi_vbuf_t (alloc_mpi_vbuf/free_mpi_vbuf): the irregular-collective
// variant that additionally carries per-rank counts and displacements
// derived from a distribution function, used by scatterv/gatherv property
// tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/distribution.hpp"
#include "mpisim/datatype.hpp"

namespace ats::core {

/// A typed element buffer for simulated-MPI communication.
class MpiBuf {
 public:
  MpiBuf(mpi::Datatype type, int count);

  void* data() { return storage_.data(); }
  const void* data() const { return storage_.data(); }
  mpi::Datatype type() const { return type_; }
  int count() const { return count_; }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(storage_.size());
  }

  /// Typed view; T must match the element size of the datatype.
  template <typename T>
  std::span<T> as() {
    require(sizeof(T) == mpi::datatype_size(type_),
            "MpiBuf::as: element size mismatch");
    return {reinterpret_cast<T*>(storage_.data()),
            static_cast<std::size_t>(count_)};
  }

  /// Fills every element of an integer-typed buffer with `value`.
  void fill_int(std::int64_t value);

 private:
  mpi::Datatype type_;
  int count_;
  std::vector<std::byte> storage_;
};

/// Buffer for irregular collectives: per-rank counts from a distribution,
/// prefix-sum displacements, and root-side storage for the concatenation.
///
/// The distribution value for rank r (times `scale`) is rounded to a
/// non-negative element count.
class MpiVBuf {
 public:
  MpiVBuf(mpi::Datatype type, const Distribution& d, double scale,
          int comm_size, int my_rank);

  mpi::Datatype type() const { return type_; }
  /// Count for this rank (the rank passed at construction).
  int my_count() const { return counts_[static_cast<std::size_t>(rank_)]; }
  std::span<const int> counts() const { return counts_; }
  std::span<const int> displs() const { return displs_; }
  int total() const { return total_; }

  /// Root-side buffer able to hold the full concatenation.
  void* root_data() { return root_storage_.data(); }
  /// This rank's own slice-sized buffer.
  void* my_data() { return my_storage_.data(); }
  std::int64_t my_bytes() const {
    return static_cast<std::int64_t>(my_storage_.size());
  }

 private:
  mpi::Datatype type_;
  int rank_;
  int total_ = 0;
  std::vector<int> counts_;
  std::vector<int> displs_;
  std::vector<std::byte> root_storage_;
  std::vector<std::byte> my_storage_;
};

}  // namespace ats::core
