#include "core/composite.hpp"

namespace ats::core {

std::vector<std::string> run_all_mpi_properties(
    PropCtx& ctx, const CompositeParams& params, mpi::Comm& comm) {
  const double base = params.basework;
  const double extra = params.extrawork;
  const int r = params.repeats;
  const Distribution linear = Distribution::linear(base, base + extra);

  std::vector<std::string> order;
  auto step = [&](const char* name, const std::function<void()>& fn) {
    order.emplace_back(name);
    fn();
  };

  step("late_sender", [&] { late_sender(ctx, base, extra, r, comm); });
  step("late_receiver", [&] { late_receiver(ctx, base, extra, r, comm); });
  step("late_sender_wrong_order",
       [&] { late_sender_wrong_order(ctx, base, extra, r, comm); });
  step("imbalance_at_mpi_barrier",
       [&] { imbalance_at_mpi_barrier(ctx, linear, r, comm); });
  step("imbalance_at_mpi_alltoall",
       [&] { imbalance_at_mpi_alltoall(ctx, linear, r, comm); });
  step("imbalance_at_mpi_allreduce",
       [&] { imbalance_at_mpi_allreduce(ctx, linear, r, comm); });
  step("imbalance_at_mpi_allgather",
       [&] { imbalance_at_mpi_allgather(ctx, linear, r, comm); });
  step("imbalance_at_mpi_scan",
       [&] { imbalance_at_mpi_scan(ctx, linear, r, comm); });
  step("imbalance_at_mpi_reduce_scatter",
       [&] { imbalance_at_mpi_reduce_scatter(ctx, linear, r, comm); });
  step("late_broadcast", [&] { late_broadcast(ctx, base, extra, 0, r, comm); });
  step("late_scatter", [&] { late_scatter(ctx, base, extra, 0, r, comm); });
  step("late_scatterv", [&] { late_scatterv(ctx, base, extra, 0, r, comm); });
  step("early_reduce", [&] { early_reduce(ctx, base, extra, 0, r, comm); });
  step("early_gather", [&] { early_gather(ctx, base, extra, 0, r, comm); });
  step("early_gatherv", [&] { early_gatherv(ctx, base, extra, 0, r, comm); });
  return order;
}

void run_split_communicator_program(PropCtx& ctx,
                                    const CompositeParams& params) {
  mpi::Proc& p = ctx.mpi_proc();
  mpi::Comm& world = p.comm_world();
  const int me = p.world_rank();
  const int half = world.size() / 2;
  require(world.size() >= 4,
          "run_split_communicator_program: need at least 4 ranks");
  const bool lower = me < half;
  mpi::Comm* sub = p.split(world, lower ? 0 : 1, me);
  require(sub != nullptr, "split returned no communicator");

  const double base = params.basework;
  const double extra = params.extrawork;
  const int r = params.repeats;
  const Distribution linear = Distribution::linear(base, base + extra);

  if (lower) {
    late_sender(ctx, base, extra, r, *sub);
    imbalance_at_mpi_barrier(ctx, linear, r, *sub);
    early_reduce(ctx, base, extra, /*root=*/0, r, *sub);
  } else {
    // Paper Fig. 3.5: late_broadcast on the upper communicator with local
    // root rank 1 (global rank half+1).
    late_broadcast(ctx, base, extra, /*root=*/1, r, *sub);
    imbalance_at_mpi_alltoall(ctx, linear, r, *sub);
    late_receiver(ctx, base, extra, r, *sub);
  }
  p.barrier(world);
}

std::vector<std::string> run_all_omp_properties(
    PropCtx& ctx, const CompositeParams& params, int nthreads) {
  const double base = params.basework;
  const double extra = params.extrawork;
  const int r = params.repeats;
  const Distribution linear = Distribution::linear(base, base + extra);

  std::vector<std::string> order;
  auto step = [&](const char* name, const std::function<void()>& fn) {
    order.emplace_back(name);
    fn();
  };
  step("imbalance_in_omp_pregion",
       [&] { imbalance_in_omp_pregion(ctx, linear, r, nthreads); });
  step("imbalance_at_omp_barrier",
       [&] { imbalance_at_omp_barrier(ctx, linear, r, nthreads); });
  step("imbalance_in_omp_loop",
       [&] { imbalance_in_omp_loop(ctx, linear, r, nthreads); });
  step("imbalance_in_omp_sections",
       [&] { imbalance_in_omp_sections(ctx, linear, r, nthreads); });
  step("omp_lock_contention",
       [&] { omp_lock_contention(ctx, extra, r, nthreads); });
  step("serialization_in_omp_single",
       [&] { serialization_in_omp_single(ctx, extra, r, nthreads); });
  step("omp_idle_threads",
       [&] { omp_idle_threads(ctx, extra, base, r, nthreads); });
  return order;
}

}  // namespace ats::core
