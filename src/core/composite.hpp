// Composite test programs (paper §3.3).
//
// Beyond single-property programs, ATS composes property functions into
// larger tests: a sequence of all MPI properties (Fig. 3.3), and a
// split-communicator program where the lower and upper halves of
// MPI_COMM_WORLD run different property sets concurrently (Figs. 3.4/3.5).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/properties.hpp"

namespace ats::core {

/// Parameters shared by the composite programs.
struct CompositeParams {
  double basework = 0.01;   ///< seconds of base computation per phase
  double extrawork = 0.02;  ///< seconds of injected imbalance
  int repeats = 2;          ///< repetition factor per property
};

/// Runs every MPI property function once, in catalog order, on `comm`
/// (the Fig. 3.3 program).  Returns the names in execution order.
std::vector<std::string> run_all_mpi_properties(PropCtx& ctx,
                                                const CompositeParams& params,
                                                mpi::Comm& comm);

/// The Fig. 3.4 / 3.5 program: splits `world` into lower and upper halves;
/// the lower half runs {late_sender, imbalance_at_mpi_barrier, early_reduce}
/// and the upper half runs {late_broadcast (root 1), imbalance_at_mpi_
/// alltoall, late_receiver} concurrently.
void run_split_communicator_program(PropCtx& ctx,
                                    const CompositeParams& params);

/// Runs every OpenMP property function once (hybrid composite building
/// block).  `nthreads` is the team size.
std::vector<std::string> run_all_omp_properties(PropCtx& ctx,
                                                const CompositeParams& params,
                                                int nthreads);

}  // namespace ats::core
