#include "core/distribution.hpp"

#include <array>

#include "common/rng.hpp"

namespace ats::core {

namespace {

void check_group(int me, int sz, const char* fn) {
  if (sz < 1) throw UsageError(std::string(fn) + ": group size must be >= 1");
  if (me < 0 || me >= sz) {
    throw UsageError(std::string(fn) + ": rank " + std::to_string(me) +
                     " out of range for group of " + std::to_string(sz));
  }
}

template <typename T>
const T& as(const DistrDesc& dd, const char* fn) {
  const T* v = std::get_if<T>(&dd);
  if (v == nullptr) {
    throw UsageError(std::string(fn) +
                     ": distribution descriptor has the wrong type");
  }
  return *v;
}

}  // namespace

double df_same(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_same");
  return scale * as<Val1>(dd, "df_same").val;
}

double df_cyclic2(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_cyclic2");
  const Val2& v = as<Val2>(dd, "df_cyclic2");
  return scale * (me % 2 == 0 ? v.low : v.high);
}

double df_block2(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_block2");
  const Val2& v = as<Val2>(dd, "df_block2");
  return scale * (me < (sz + 1) / 2 ? v.low : v.high);
}

double df_linear(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_linear");
  const Val2& v = as<Val2>(dd, "df_linear");
  if (sz == 1) return scale * v.low;
  const double frac = static_cast<double>(me) / static_cast<double>(sz - 1);
  return scale * (v.low + (v.high - v.low) * frac);
}

double df_peak(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_peak");
  const Val2N& v = as<Val2N>(dd, "df_peak");
  return scale * (me == v.n ? v.high : v.low);
}

double df_cyclic3(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_cyclic3");
  const Val3& v = as<Val3>(dd, "df_cyclic3");
  switch (me % 3) {
    case 0: return scale * v.low;
    case 1: return scale * v.med;
    default: return scale * v.high;
  }
}

double df_block3(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_block3");
  const Val3& v = as<Val3>(dd, "df_block3");
  // Three blocks, sized like a balanced partition of sz into thirds.
  const int third = (sz + 2) / 3;
  if (me < third) return scale * v.low;
  if (me < 2 * third) return scale * v.med;
  return scale * v.high;
}

double df_random(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_random");
  const Val2& v = as<Val2>(dd, "df_random");
  // Hash the rank into [0,1) deterministically; no global state.
  std::uint64_t s = 0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(me) +
                                             0x100000001b3ULL);
  const double frac =
      static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  return scale * (v.low + (v.high - v.low) * frac);
}

double df_custom(int me, int sz, double scale, const DistrDesc& dd) {
  check_group(me, sz, "df_custom");
  const ValTable& t = as<ValTable>(dd, "df_custom");
  if (t.empty()) throw UsageError("df_custom: empty value table");
  return scale * t[static_cast<std::size_t>(me) % t.size()];
}

double Distribution::operator()(int me, int sz, double scale) const {
  return fn(me, sz, scale, desc);
}

Distribution Distribution::same(double val) {
  return {&df_same, Val1{val}};
}
Distribution Distribution::cyclic2(double low, double high) {
  return {&df_cyclic2, Val2{low, high}};
}
Distribution Distribution::block2(double low, double high) {
  return {&df_block2, Val2{low, high}};
}
Distribution Distribution::linear(double low, double high) {
  return {&df_linear, Val2{low, high}};
}
Distribution Distribution::peak(double low, double high, int n) {
  return {&df_peak, Val2N{low, high, n}};
}
Distribution Distribution::cyclic3(double low, double med, double high) {
  return {&df_cyclic3, Val3{low, high, med}};
}
Distribution Distribution::block3(double low, double med, double high) {
  return {&df_block3, Val3{low, high, med}};
}
Distribution Distribution::random(double low, double high) {
  return {&df_random, Val2{low, high}};
}
Distribution Distribution::custom(std::vector<double> table) {
  return {&df_custom, std::move(table)};
}

namespace {
struct NamedDf {
  const char* name;
  DistrFunc fn;
};
constexpr std::array<NamedDf, 9> kNamedDfs{{
    {"same", &df_same},
    {"cyclic2", &df_cyclic2},
    {"block2", &df_block2},
    {"linear", &df_linear},
    {"peak", &df_peak},
    {"cyclic3", &df_cyclic3},
    {"block3", &df_block3},
    {"random", &df_random},
    {"custom", &df_custom},
}};
}  // namespace

DistrFunc distr_func_by_name(const std::string& name) {
  for (const auto& d : kNamedDfs) {
    if (name == d.name) return d.fn;
  }
  throw UsageError("unknown distribution function: '" + name + "'");
}

std::string distr_func_name(DistrFunc fn) {
  for (const auto& d : kNamedDfs) {
    if (fn == d.fn) return d.name;
  }
  return "user-defined";
}

std::vector<std::string> distr_func_names() {
  std::vector<std::string> out;
  out.reserve(kNamedDfs.size());
  for (const auto& d : kNamedDfs) out.emplace_back(d.name);
  return out;
}

std::vector<double> distr_values(const Distribution& d, int sz,
                                 double scale) {
  std::vector<double> out(static_cast<std::size_t>(sz));
  for (int r = 0; r < sz; ++r) {
    out[static_cast<std::size_t>(r)] = d(r, sz, scale);
  }
  return out;
}

}  // namespace ats::core
