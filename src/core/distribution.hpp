// ATS distribution functions and descriptors (paper §3.1.2).
//
// A distribution maps (rank, group size, scale, descriptor) to a per-rank
// value — the amount of work seconds, buffer elements, etc. that rank
// receives.  The paper's seven predefined functions are implemented with
// their original names; descriptors follow the val1/val2/val2_n/val3
// structs.  Users may add their own functions with the same signature
// (df_custom shows the mechanism), and the registry maps names to functions
// for the test-program generator.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace ats::core {

/// One value for everyone (df_same).
struct Val1 {
  double val = 0.0;
};

/// Low/high pair (df_cyclic2, df_block2, df_linear, df_random).
struct Val2 {
  double low = 0.0;
  double high = 0.0;
};

/// Low/high plus a rank index (df_peak).
struct Val2N {
  double low = 0.0;
  double high = 0.0;
  int n = 0;
};

/// Low/med/high triple (df_cyclic3, df_block3).
struct Val3 {
  double low = 0.0;
  double high = 0.0;
  double med = 0.0;
};

/// Arbitrary per-rank table, used modulo its size (df_custom).
using ValTable = std::vector<double>;

using DistrDesc = std::variant<Val1, Val2, Val2N, Val3, ValTable>;

/// Signature of every distribution function (paper's distr_func_t).
using DistrFunc = double (*)(int me, int sz, double scale,
                             const DistrDesc& dd);

// --- the paper's predefined functions -----------------------------------

/// SAME: everyone gets the same value.
double df_same(int me, int sz, double scale, const DistrDesc& dd);
/// CYCLIC2: even ranks get low, odd ranks get high.
double df_cyclic2(int me, int sz, double scale, const DistrDesc& dd);
/// BLOCK2: first half gets low, second half gets high.
double df_block2(int me, int sz, double scale, const DistrDesc& dd);
/// LINEAR: linear interpolation from low (rank 0) to high (rank sz-1).
double df_linear(int me, int sz, double scale, const DistrDesc& dd);
/// PEAK: rank n gets high, all others get low.
double df_peak(int me, int sz, double scale, const DistrDesc& dd);
/// CYCLIC3: ranks cycle low, med, high.
double df_cyclic3(int me, int sz, double scale, const DistrDesc& dd);
/// BLOCK3: three blocks of low, med, high.
double df_block3(int me, int sz, double scale, const DistrDesc& dd);

// --- extensions -----------------------------------------------------------

/// RANDOM: deterministic pseudo-random value in [low, high], seeded by rank
/// (reproducible across runs and platforms).
double df_random(int me, int sz, double scale, const DistrDesc& dd);
/// CUSTOM: per-rank table lookup (table[me % table.size()]).
double df_custom(int me, int sz, double scale, const DistrDesc& dd);

/// A bound distribution: function plus descriptor, callable per rank.
struct Distribution {
  DistrFunc fn = &df_same;
  DistrDesc desc = Val1{0.0};

  double operator()(int me, int sz, double scale = 1.0) const;

  // Convenience factories mirroring the paper's usage.
  static Distribution same(double val);
  static Distribution cyclic2(double low, double high);
  static Distribution block2(double low, double high);
  static Distribution linear(double low, double high);
  static Distribution peak(double low, double high, int n);
  static Distribution cyclic3(double low, double med, double high);
  static Distribution block3(double low, double med, double high);
  static Distribution random(double low, double high);
  static Distribution custom(std::vector<double> table);
};

/// Name -> function lookup for the generator/CLI ("same", "cyclic2", ...).
DistrFunc distr_func_by_name(const std::string& name);
/// Inverse of distr_func_by_name for known functions.
std::string distr_func_name(DistrFunc fn);
/// All registered distribution function names.
std::vector<std::string> distr_func_names();

/// Per-rank values of `d` over a group of `sz` ranks.
std::vector<double> distr_values(const Distribution& d, int sz,
                                 double scale = 1.0);

}  // namespace ats::core
