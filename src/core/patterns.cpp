#include "core/patterns.hpp"

namespace ats::core {

namespace {

void one_send(mpi::Proc& p, MpiBuf& buf, int dest, const PatternOptions& opt,
              mpi::Comm& comm) {
  if (opt.use_ssend) {
    p.ssend(buf.data(), buf.count(), buf.type(), dest, kPatternTag, comm);
  } else if (opt.use_isend) {
    mpi::Request r =
        p.isend(buf.data(), buf.count(), buf.type(), dest, kPatternTag, comm);
    p.wait(r);
  } else {
    p.send(buf.data(), buf.count(), buf.type(), dest, kPatternTag, comm);
  }
}

void one_recv(mpi::Proc& p, MpiBuf& buf, int src, const PatternOptions& opt,
              mpi::Comm& comm) {
  if (opt.use_irecv) {
    mpi::Request r =
        p.irecv(buf.data(), buf.count(), buf.type(), src, kPatternTag, comm);
    p.wait(r);
  } else {
    p.recv(buf.data(), buf.count(), buf.type(), src, kPatternTag, comm);
  }
}

}  // namespace

void mpi_commpattern_sendrecv(PropCtx& ctx, MpiBuf& buf, Direction dir,
                              const PatternOptions& opt, mpi::Comm& comm) {
  mpi::Proc& p = ctx.mpi_proc();
  const int me = p.rank(comm);
  const int sz = comm.size();
  // With an odd number of processes the last one does not participate.
  if (sz % 2 == 1 && me == sz - 1) return;
  if (sz < 2) return;
  const bool even = (me % 2 == 0);
  const int partner = even ? me + 1 : me - 1;
  const bool i_send = (dir == Direction::kUp) ? even : !even;
  if (i_send) {
    one_send(p, buf, partner, opt, comm);
  } else {
    one_recv(p, buf, partner, opt, comm);
  }
}

void mpi_commpattern_shift(PropCtx& ctx, MpiBuf& sbuf, MpiBuf& rbuf,
                           Direction dir, const PatternOptions& opt,
                           mpi::Comm& comm) {
  mpi::Proc& p = ctx.mpi_proc();
  const int me = p.rank(comm);
  const int sz = comm.size();
  if (sz < 2) return;
  const int next = (me + 1) % sz;
  const int prev = (me + sz - 1) % sz;
  const int dest = (dir == Direction::kUp) ? next : prev;
  const int src = (dir == Direction::kUp) ? prev : next;
  if (opt.use_isend || opt.use_irecv || opt.use_ssend) {
    // Explicit request form: post the receive, send, complete.
    mpi::Request r = p.irecv(rbuf.data(), rbuf.count(), rbuf.type(), src,
                             kPatternTag, comm);
    one_send(p, sbuf, dest, opt, comm);
    p.wait(r);
  } else {
    p.sendrecv(sbuf.data(), sbuf.count(), sbuf.type(), dest, kPatternTag,
               rbuf.data(), rbuf.count(), rbuf.type(), src, kPatternTag,
               comm);
  }
}

void mpi_commpattern_pairwise(PropCtx& ctx, MpiBuf& sbuf, MpiBuf& rbuf,
                              mpi::Comm& comm) {
  mpi::Proc& p = ctx.mpi_proc();
  const int me = p.rank(comm);
  const int sz = comm.size();
  // Exchange with every peer, ordered by XOR distance so each round pairs
  // everyone up without serialising (classic pairwise exchange).
  for (int round = 1; round < sz; ++round) {
    const int peer = me ^ round;
    if (peer >= sz) continue;
    p.sendrecv(sbuf.data(), sbuf.count(), sbuf.type(), peer, kPatternTag,
               rbuf.data(), rbuf.count(), rbuf.type(), peer, kPatternTag,
               comm);
  }
}

}  // namespace ats::core
