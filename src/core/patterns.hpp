// MPI communication patterns (paper §3.1.4).
//
// Reusable building blocks for property functions.  Patterns are called by
// all processes of a communicator, like a collective; they are designed to
// work with minimal context — any number of processes, any amount of other
// traffic — and never deadlock on their own.
#pragma once

#include <cstdint>

#include "core/buffer.hpp"
#include "core/propctx.hpp"

namespace ats::core {

enum class Direction : std::uint8_t { kUp, kDown };

/// Options selecting the MPI flavour a pattern uses (paper's use_isend /
/// use_irecv flags, extended with synchronous sends so the late_receiver
/// property can force the rendezvous protocol).
struct PatternOptions {
  bool use_isend = false;
  bool use_irecv = false;
  bool use_ssend = false;
};

/// Even/odd pairwise exchange (paper's mpi_commpattern_sendrecv): with
/// kUp, every even rank sends one message to the next odd rank; with kDown,
/// odd ranks send to the preceding even rank.  With an odd communicator
/// size the last rank sits out.  All ranks must pass the same direction.
void mpi_commpattern_sendrecv(PropCtx& ctx, MpiBuf& buf, Direction dir,
                              const PatternOptions& opt, mpi::Comm& comm);

/// Cyclic shift (paper's mpi_commpattern_shift): every rank sends to its
/// neighbour ((me+1) % size with kUp) and receives from the other side.
/// A single process communicator degenerates to a no-op.
void mpi_commpattern_shift(PropCtx& ctx, MpiBuf& sbuf, MpiBuf& rbuf,
                           Direction dir, const PatternOptions& opt,
                           mpi::Comm& comm);

/// Extension: full pairwise exchange — every rank exchanges a message with
/// every other rank (N×N point-to-point traffic).
void mpi_commpattern_pairwise(PropCtx& ctx, MpiBuf& sbuf, MpiBuf& rbuf,
                              mpi::Comm& comm);

/// Tag used by the patterns (all pattern traffic shares one tag so it can
/// coexist with user traffic on other tags).
inline constexpr int kPatternTag = 4711;

}  // namespace ats::core
