#include "core/propctx.hpp"

namespace ats::core {

PropCtx PropCtx::from(mpi::Proc& p, omp::Runtime* omp_rt) {
  PropCtx ctx;
  ctx.proc = &p;
  ctx.sim = &p.sim();
  ctx.trace = p.world().trace();
  ctx.omprt = omp_rt;
  return ctx;
}

PropCtx PropCtx::from(simt::Context& c, omp::Runtime& omp_rt) {
  PropCtx ctx;
  ctx.sim = &c;
  ctx.trace = omp_rt.trace();
  ctx.omprt = &omp_rt;
  return ctx;
}

mpi::Proc& PropCtx::mpi_proc() const {
  require(proc != nullptr, "PropCtx: no MPI process bound");
  return *proc;
}

omp::Runtime& PropCtx::omp_rt() const {
  require(omprt != nullptr, "PropCtx: no OpenMP runtime bound");
  return *omprt;
}

void do_work(PropCtx& ctx, double secs) {
  require(ctx.sim != nullptr && ctx.trace != nullptr,
          "do_work: PropCtx is not bound");
  do_work(*ctx.sim, *ctx.trace, ctx.work, secs);
}

void par_do_mpi_work(PropCtx& ctx, const Distribution& d, double scale,
                     mpi::Comm& comm) {
  // Mirrors the paper's implementation: determine rank and size, evaluate
  // the distribution, run the sequential work function.
  mpi::Proc& p = ctx.mpi_proc();
  const int me = p.rank(comm);
  const int sz = comm.size();
  do_work(ctx, d(me, sz, scale));
}

void par_do_omp_work(PropCtx& ctx, omp::OmpCtx& team, const Distribution& d,
                     double scale) {
  do_work(team.sim(), *ctx.trace, ctx.work,
          d(team.thread_num(), team.num_threads(), scale));
}

}  // namespace ats::core
