// Execution context for ATS property functions.
//
// The paper's C prototype keeps the default MPI buffer signature
// (set_base_comm) and work calibration in globals; this library carries them
// in an explicit PropCtx handed to every property function, together with
// the simulated-MPI process handle and (when OpenMP constructs are used) the
// per-process OpenMP runtime.
#pragma once

#include "core/distribution.hpp"
#include "core/work.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/world.hpp"
#include "ompsim/omp.hpp"

namespace ats::core {

/// Default buffer signature for MPI property functions (paper's
/// set_base_comm): element type and count used by patterns when the caller
/// does not pass explicit buffers.
struct MpiDefaults {
  mpi::Datatype base_type = mpi::Datatype::kInt32;
  int base_cnt = 256;
};

struct PropCtx {
  /// The simulated MPI process, when running under MPI (may be null for
  /// pure-OpenMP programs).
  mpi::Proc* proc = nullptr;
  /// The location context (always set).
  simt::Context* sim = nullptr;
  /// Event trace (always set).
  trace::Trace* trace = nullptr;
  /// OpenMP runtime of this process (set when OpenMP properties run).
  omp::Runtime* omprt = nullptr;
  WorkConfig work{};
  MpiDefaults defaults{};

  /// Binds to an MPI process (OpenMP runtime optional, for hybrid tests).
  static PropCtx from(mpi::Proc& p, omp::Runtime* omp_rt = nullptr);
  /// Binds to a bare location plus OpenMP runtime (pure-OpenMP tests).
  static PropCtx from(simt::Context& ctx, omp::Runtime& omp_rt);

  /// Checked access to the MPI process / OpenMP runtime.
  mpi::Proc& mpi_proc() const;
  omp::Runtime& omp_rt() const;

  /// Paper's set_base_comm(type, cnt).
  void set_base_comm(mpi::Datatype type, int cnt) {
    defaults.base_type = type;
    defaults.base_cnt = cnt;
  }
};

/// Sequential work (paper's do_work) in the bound context.
void do_work(PropCtx& ctx, double secs);

/// Parallel work over an MPI communicator (paper's par_do_mpi_work): every
/// rank computes its share from the distribution and executes it.
void par_do_mpi_work(PropCtx& ctx, const Distribution& d, double scale,
                     mpi::Comm& comm);

/// Parallel work inside an OpenMP team (paper's par_do_omp_work).
void par_do_omp_work(PropCtx& ctx, omp::OmpCtx& team, const Distribution& d,
                     double scale);

}  // namespace ats::core
