// ATS performance property functions (paper §3.1.5).
//
// Each function, when executed by all ranks of a communicator (or threads
// of a team), injects exactly one well-defined performance property with a
// severity controlled by its parameters.  The thirteen functions of the
// paper's prototype are implemented with their original names and parameter
// conventions; the extended set covers the catalog the paper lists as
// future work (more MPI collectives, OpenMP scheduling/locking, hybrid
// patterns), plus negative (well-tuned) functions for negative-correctness
// testing.
//
// Conventions, following the paper:
//  * work amounts are in (virtual) seconds;
//  * `r` is the repetition count of the property's main body;
//  * imbalance-style properties take a generic Distribution; event-pattern
//    properties (late_sender & friends) take explicit base/extra work;
//  * every function wraps itself in a user region named like the function,
//    so an analysis tool localises the property at a distinct call path.
#pragma once

#include "core/buffer.hpp"
#include "core/patterns.hpp"
#include "core/propctx.hpp"

namespace ats::core {

/// RAII helper: user trace region named after the property function.
class PropRegion {
 public:
  PropRegion(PropCtx& ctx, simt::Context& sim, const char* name);
  ~PropRegion();
  PropRegion(const PropRegion&) = delete;
  PropRegion& operator=(const PropRegion&) = delete;

 private:
  trace::Trace* trace_;
  simt::Context* sim_;
  trace::RegionId reg_;
};

// ====================== MPI point-to-point properties =====================

/// Receivers block because the matching sends start late (paper's example):
/// even ranks (the senders under DIR_UP) get `basework + extrawork`, odd
/// ranks only `basework`, then the pairs exchange one message.
void late_sender(PropCtx& ctx, double basework, double extrawork, int r,
                 mpi::Comm& comm);

/// Senders block (rendezvous protocol) because receivers post late: the
/// receiving odd ranks get the extra work and the exchange uses ssend.
void late_receiver(PropCtx& ctx, double basework, double extrawork, int r,
                   mpi::Comm& comm);

/// Extension: late sender caused by messages arriving in the wrong order —
/// the sender emits tag B then tag A, the receiver consumes A then B.
void late_sender_wrong_order(PropCtx& ctx, double basework, double extrawork,
                             int r, mpi::Comm& comm);

// ======================== MPI collective properties ========================

void imbalance_at_mpi_barrier(PropCtx& ctx, const Distribution& d, int r,
                              mpi::Comm& comm);
void imbalance_at_mpi_alltoall(PropCtx& ctx, const Distribution& d, int r,
                               mpi::Comm& comm);
/// Extensions: the other N×N collectives.
void imbalance_at_mpi_allreduce(PropCtx& ctx, const Distribution& d, int r,
                                mpi::Comm& comm);
void imbalance_at_mpi_allgather(PropCtx& ctx, const Distribution& d, int r,
                                mpi::Comm& comm);
void imbalance_at_mpi_scan(PropCtx& ctx, const Distribution& d, int r,
                           mpi::Comm& comm);
void imbalance_at_mpi_reduce_scatter(PropCtx& ctx, const Distribution& d,
                                     int r, mpi::Comm& comm);

/// Non-roots wait in MPI_Bcast because the root enters late.
void late_broadcast(PropCtx& ctx, double basework, double rootextrawork,
                    int root, int r, mpi::Comm& comm);
/// Same situation for MPI_Scatter / MPI_Scatterv.
void late_scatter(PropCtx& ctx, double basework, double rootextrawork,
                  int root, int r, mpi::Comm& comm);
void late_scatterv(PropCtx& ctx, double basework, double rootextrawork,
                   int root, int r, mpi::Comm& comm);

/// The root enters MPI_Reduce early (everyone else still computes) and
/// waits for the contributions.
void early_reduce(PropCtx& ctx, double rootwork, double baseextrawork,
                  int root, int r, mpi::Comm& comm);
/// Same situation for MPI_Gather / MPI_Gatherv.
void early_gather(PropCtx& ctx, double rootwork, double baseextrawork,
                  int root, int r, mpi::Comm& comm);
void early_gatherv(PropCtx& ctx, double rootwork, double baseextrawork,
                   int root, int r, mpi::Comm& comm);

// ========================== OpenMP properties =============================

/// Unequal work inside a parallel region; the imbalance surfaces at the
/// region's implicit barrier.
void imbalance_in_omp_pregion(PropCtx& ctx, const Distribution& d, int r,
                              int nthreads);
/// Unequal work before an explicit OpenMP barrier (paper's worked example).
void imbalance_at_omp_barrier(PropCtx& ctx, const Distribution& d, int r,
                              int nthreads);
/// Unequal per-thread work in a statically scheduled loop.
void imbalance_in_omp_loop(PropCtx& ctx, const Distribution& d, int r,
                           int nthreads);
/// Extension: unequal section lengths in a sections construct.
void imbalance_in_omp_sections(PropCtx& ctx, const Distribution& d, int r,
                               int nthreads);
/// Extension: all threads funnel through one critical section that holds
/// `holdwork` seconds of work per visit.
void omp_lock_contention(PropCtx& ctx, double holdwork, int r, int nthreads);
/// Extension: work serialised in a single construct while the team waits.
void serialization_in_omp_single(PropCtx& ctx, double singlework, int r,
                                 int nthreads);
/// Extension (EXPERT's Idle Threads): serial master computation alternates
/// with parallel regions, leaving the worker CPUs idle in between.
void omp_idle_threads(PropCtx& ctx, double serialwork, double parallelwork,
                      int r, int nthreads);

// ========================== Hybrid properties =============================

/// MPI exchange performed by the OpenMP master while the other threads wait
/// at a barrier (classic hybrid bottleneck on SMP clusters).
void hybrid_mpi_in_omp_master(PropCtx& ctx, double basework,
                              double masterextra, int r, mpi::Comm& comm,
                              int nthreads);
/// Late sender where sender-side work runs inside an OpenMP region.
void hybrid_late_sender_in_pregion(PropCtx& ctx, double basework,
                                   double extrawork, int r, mpi::Comm& comm,
                                   int nthreads);

// ====================== Sequential properties (§5) ========================

/// Memory-latency-bound phase: in busy mode the work loop is a dependent
/// random chase (cache misses dominate); the phase is localised under its
/// own region so a counter-aware tool can attribute it.  Virtual time is
/// kernel independent.
void sequential_memory_bound(PropCtx& ctx, double work, int r);
/// Compute-bound phase: register-only floating-point chain in busy mode.
void sequential_compute_bound(PropCtx& ctx, double work, int r);

// ================= Defect program family (docs/DEFECTS.md) ================
// Structurally *incorrect* programs: each miscalls a collective in exactly
// one way, giving the collective-correctness checker a known defect to
// find.  The runtime reaction differs per kind — an operation or root
// mismatch aborts the run, a skipped call deadlocks, a reduce-op mismatch
// completes silently — but the checker must report the defect in every
// case.  These back the registry's defect family and the fuzzer's
// mismatch-injection mode.

/// Even ranks call MPI_Allreduce, odd ranks call MPI_Barrier.
void defect_collective_op_mismatch(PropCtx& ctx, double work,
                                   mpi::Comm& comm);
/// Only even ranks call MPI_Barrier; odd ranks skip straight ahead.
void defect_conditional_collective(PropCtx& ctx, double work,
                                   mpi::Comm& comm);
/// Everyone calls MPI_Bcast, but each rank names `rank % 2` as the root.
void defect_collective_root_mismatch(PropCtx& ctx, double work,
                                     mpi::Comm& comm);
/// MPI_Allreduce with kMin on even ranks, kMax on odd ranks; the run
/// completes — only the checker sees the disagreement.
void defect_reduce_op_mismatch(PropCtx& ctx, double work, mpi::Comm& comm);
/// Splits the communicator by rank parity, then only the lower half of
/// each sub-communicator calls the sub-communicator's barrier.
void defect_split_comm_color(PropCtx& ctx, double work, mpi::Comm& comm);

// ==================== Negative (well-tuned) functions ======================

/// Balanced nearest-neighbour exchange: same work everywhere, symmetric
/// shift — a correct tool must not flag significant waiting here.
void balanced_mpi_stencil(PropCtx& ctx, double work, int r, mpi::Comm& comm);
/// Balanced collectives (barrier + allreduce) with equal work.
void balanced_collectives(PropCtx& ctx, double work, int r, mpi::Comm& comm);
/// Balanced OpenMP loop with equal iterations.
void balanced_omp_loop(PropCtx& ctx, double work, int r, int nthreads);

}  // namespace ats::core
