// MPI property functions: point-to-point and collective wait states.
#include "core/properties.hpp"

namespace ats::core {

PropRegion::PropRegion(PropCtx& ctx, simt::Context& sim, const char* name)
    : trace_(ctx.trace), sim_(&sim) {
  reg_ = trace_->regions().intern(name, trace::RegionKind::kUser);
  trace_->enter(sim_->id(), sim_->now(), reg_);
}

PropRegion::~PropRegion() {
  trace_->exit(sim_->id(), sim_->now(), reg_);
}

// ------------------------------------------------------------ point-to-point

void late_sender(PropCtx& ctx, double basework, double extrawork, int r,
                 mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "late_sender");
  // Senders (even ranks under DIR_UP) get the extra work, so every receive
  // blocks for `extrawork` seconds (paper's reference implementation).
  const Distribution dd =
      Distribution::cyclic2(basework + extrawork, basework);
  MpiBuf buf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    mpi_commpattern_sendrecv(ctx, buf, Direction::kUp, {}, comm);
  }
}

void late_receiver(PropCtx& ctx, double basework, double extrawork, int r,
                   mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "late_receiver");
  // Receivers (odd ranks under DIR_UP) get the extra work; the synchronous
  // send forces the rendezvous protocol, so the punctual senders block.
  const Distribution dd =
      Distribution::cyclic2(basework, basework + extrawork);
  MpiBuf buf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  PatternOptions opt;
  opt.use_ssend = true;
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    mpi_commpattern_sendrecv(ctx, buf, Direction::kUp, opt, comm);
  }
}

void late_sender_wrong_order(PropCtx& ctx, double basework, double extrawork,
                             int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "late_sender_wrong_order");
  mpi::Proc& p = ctx.mpi_proc();
  const int me = p.rank(comm);
  const int sz = comm.size();
  MpiBuf buf_a(ctx.defaults.base_type, ctx.defaults.base_cnt);
  MpiBuf buf_b(ctx.defaults.base_type, ctx.defaults.base_cnt);
  const Distribution dd = Distribution::same(basework);
  const int tag_a = 1, tag_b = 2;
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    if (sz % 2 == 1 && me == sz - 1) continue;
    if (sz < 2) continue;
    if (me % 2 == 0) {
      // Send B, compute, then send A.  The receiver insists on A first, so
      // it waits `extrawork` seconds while B is already available — the
      // "messages in wrong order" flavour of late sender.
      p.send(buf_b.data(), buf_b.count(), buf_b.type(), me + 1, tag_b, comm);
      do_work(ctx, extrawork);
      p.send(buf_a.data(), buf_a.count(), buf_a.type(), me + 1, tag_a, comm);
    } else {
      p.recv(buf_a.data(), buf_a.count(), buf_a.type(), me - 1, tag_a, comm);
      p.recv(buf_b.data(), buf_b.count(), buf_b.type(), me - 1, tag_b, comm);
    }
  }
}

// --------------------------------------------------------- N×N collectives

namespace {

/// Shared body of the "imbalance at <NxN collective>" family.
template <typename CollCall>
void imbalance_at_nxn(PropCtx& ctx, const Distribution& d, int r,
                      mpi::Comm& comm, const CollCall& coll) {
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, d, 1.0, comm);
    coll();
  }
}

}  // namespace

void imbalance_at_mpi_barrier(PropCtx& ctx, const Distribution& d, int r,
                              mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "imbalance_at_mpi_barrier");
  mpi::Proc& p = ctx.mpi_proc();
  imbalance_at_nxn(ctx, d, r, comm, [&] { p.barrier(comm); });
}

void imbalance_at_mpi_alltoall(PropCtx& ctx, const Distribution& d, int r,
                               mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "imbalance_at_mpi_alltoall");
  mpi::Proc& p = ctx.mpi_proc();
  const int sz = comm.size();
  MpiBuf sbuf(ctx.defaults.base_type, ctx.defaults.base_cnt * sz);
  MpiBuf rbuf(ctx.defaults.base_type, ctx.defaults.base_cnt * sz);
  imbalance_at_nxn(ctx, d, r, comm, [&] {
    p.alltoall(sbuf.data(), ctx.defaults.base_cnt, rbuf.data(),
               ctx.defaults.base_cnt, ctx.defaults.base_type, comm);
  });
}

void imbalance_at_mpi_allreduce(PropCtx& ctx, const Distribution& d, int r,
                                mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "imbalance_at_mpi_allreduce");
  mpi::Proc& p = ctx.mpi_proc();
  MpiBuf sbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  MpiBuf rbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  imbalance_at_nxn(ctx, d, r, comm, [&] {
    p.allreduce(sbuf.data(), rbuf.data(), ctx.defaults.base_cnt,
                mpi::Datatype::kDouble, mpi::ReduceOp::kSum, comm);
  });
}

void imbalance_at_mpi_allgather(PropCtx& ctx, const Distribution& d, int r,
                                mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "imbalance_at_mpi_allgather");
  mpi::Proc& p = ctx.mpi_proc();
  const int sz = comm.size();
  MpiBuf sbuf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  MpiBuf rbuf(ctx.defaults.base_type, ctx.defaults.base_cnt * sz);
  imbalance_at_nxn(ctx, d, r, comm, [&] {
    p.allgather(sbuf.data(), ctx.defaults.base_cnt, rbuf.data(),
                ctx.defaults.base_cnt, ctx.defaults.base_type, comm);
  });
}

void imbalance_at_mpi_scan(PropCtx& ctx, const Distribution& d, int r,
                           mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "imbalance_at_mpi_scan");
  mpi::Proc& p = ctx.mpi_proc();
  MpiBuf sbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  MpiBuf rbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  imbalance_at_nxn(ctx, d, r, comm, [&] {
    p.scan(sbuf.data(), rbuf.data(), ctx.defaults.base_cnt,
           mpi::Datatype::kDouble, mpi::ReduceOp::kSum, comm);
  });
}

void imbalance_at_mpi_reduce_scatter(PropCtx& ctx, const Distribution& d,
                                     int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "imbalance_at_mpi_reduce_scatter");
  mpi::Proc& p = ctx.mpi_proc();
  const int sz = comm.size();
  MpiBuf sbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt * sz);
  MpiBuf rbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  imbalance_at_nxn(ctx, d, r, comm, [&] {
    p.reduce_scatter_block(sbuf.data(), rbuf.data(), ctx.defaults.base_cnt,
                           mpi::Datatype::kDouble, mpi::ReduceOp::kSum,
                           comm);
  });
}

// -------------------------------------------------- root-source collectives

namespace {

/// Everyone does `basework`; the root additionally does `rootextrawork`,
/// then the root-sourced collective runs: non-roots wait for the root.
Distribution late_root_distribution(double basework, double rootextrawork,
                                    int root) {
  return Distribution::peak(basework, basework + rootextrawork, root);
}

}  // namespace

void late_broadcast(PropCtx& ctx, double basework, double rootextrawork,
                    int root, int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "late_broadcast");
  mpi::Proc& p = ctx.mpi_proc();
  const Distribution dd =
      late_root_distribution(basework, rootextrawork, root);
  MpiBuf buf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.bcast(buf.data(), buf.count(), buf.type(), root, comm);
  }
}

void late_scatter(PropCtx& ctx, double basework, double rootextrawork,
                  int root, int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "late_scatter");
  mpi::Proc& p = ctx.mpi_proc();
  const int sz = comm.size();
  const Distribution dd =
      late_root_distribution(basework, rootextrawork, root);
  MpiBuf sbuf(ctx.defaults.base_type, ctx.defaults.base_cnt * sz);
  MpiBuf rbuf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.scatter(sbuf.data(), ctx.defaults.base_cnt, rbuf.data(),
              ctx.defaults.base_cnt, ctx.defaults.base_type, root, comm);
  }
}

void late_scatterv(PropCtx& ctx, double basework, double rootextrawork,
                   int root, int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "late_scatterv");
  mpi::Proc& p = ctx.mpi_proc();
  const int sz = comm.size();
  const int me = p.rank(comm);
  const Distribution dd =
      late_root_distribution(basework, rootextrawork, root);
  // Irregular data amounts: linearly growing counts over the ranks.
  MpiVBuf vbuf(ctx.defaults.base_type,
               Distribution::linear(ctx.defaults.base_cnt / 2.0,
                                    ctx.defaults.base_cnt * 1.5),
               1.0, sz, me);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.scatterv(vbuf.root_data(), vbuf.counts(), vbuf.displs(),
               vbuf.my_data(), vbuf.my_count(), vbuf.type(), root, comm);
  }
}

// ---------------------------------------------------- root-sink collectives

void early_reduce(PropCtx& ctx, double rootwork, double baseextrawork,
                  int root, int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "early_reduce");
  mpi::Proc& p = ctx.mpi_proc();
  // Everyone but the root computes longer, so the root sits in MPI_Reduce.
  const Distribution dd =
      Distribution::peak(rootwork + baseextrawork, rootwork, root);
  MpiBuf sbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  MpiBuf rbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.reduce(sbuf.data(), rbuf.data(), ctx.defaults.base_cnt,
             mpi::Datatype::kDouble, mpi::ReduceOp::kSum, root, comm);
  }
}

void early_gather(PropCtx& ctx, double rootwork, double baseextrawork,
                  int root, int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "early_gather");
  mpi::Proc& p = ctx.mpi_proc();
  const int sz = comm.size();
  const Distribution dd =
      Distribution::peak(rootwork + baseextrawork, rootwork, root);
  MpiBuf sbuf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  MpiBuf rbuf(ctx.defaults.base_type, ctx.defaults.base_cnt * sz);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.gather(sbuf.data(), ctx.defaults.base_cnt, rbuf.data(),
             ctx.defaults.base_cnt, ctx.defaults.base_type, root, comm);
  }
}

void early_gatherv(PropCtx& ctx, double rootwork, double baseextrawork,
                   int root, int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "early_gatherv");
  mpi::Proc& p = ctx.mpi_proc();
  const int sz = comm.size();
  const int me = p.rank(comm);
  const Distribution dd =
      Distribution::peak(rootwork + baseextrawork, rootwork, root);
  MpiVBuf vbuf(ctx.defaults.base_type,
               Distribution::linear(ctx.defaults.base_cnt / 2.0,
                                    ctx.defaults.base_cnt * 1.5),
               1.0, sz, me);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.gatherv(vbuf.my_data(), vbuf.my_count(), vbuf.root_data(),
              vbuf.counts(), vbuf.displs(), vbuf.type(), root, comm);
  }
}

// ---------------------------------------------------- sequential functions

namespace {

void sequential_kernel_phase(PropCtx& ctx, const char* name,
                             BusyKernel kernel, double work, int r) {
  PropRegion region(ctx, *ctx.sim, name);
  const BusyKernel saved = ctx.work.kernel;
  ctx.work.kernel = kernel;
  for (int i = 0; i < r; ++i) do_work(ctx, work);
  ctx.work.kernel = saved;
}

}  // namespace

void sequential_memory_bound(PropCtx& ctx, double work, int r) {
  sequential_kernel_phase(ctx, "sequential_memory_bound",
                          BusyKernel::kMemoryBound, work, r);
}

void sequential_compute_bound(PropCtx& ctx, double work, int r) {
  sequential_kernel_phase(ctx, "sequential_compute_bound",
                          BusyKernel::kComputeBound, work, r);
}

// ------------------------------------------------- defect program family

void defect_collective_op_mismatch(PropCtx& ctx, double work,
                                   mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "defect_collective_op_mismatch");
  mpi::Proc& p = ctx.mpi_proc();
  par_do_mpi_work(ctx, Distribution::same(work), 1.0, comm);
  if (p.rank(comm) % 2 == 0) {
    int v = 1, out = 0;
    p.allreduce(&v, &out, 1, mpi::Datatype::kInt32, mpi::ReduceOp::kSum,
                comm);
  } else {
    p.barrier(comm);
  }
}

void defect_conditional_collective(PropCtx& ctx, double work,
                                   mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "defect_conditional_collective");
  mpi::Proc& p = ctx.mpi_proc();
  par_do_mpi_work(ctx, Distribution::same(work), 1.0, comm);
  // Odd ranks never make the call; their next collective is the runtime's
  // own finalize barrier, which pairs with this one at the same call index
  // and lets the run limp on until the ranks drift apart and deadlock.
  if (p.rank(comm) % 2 == 0) p.barrier(comm);
}

void defect_collective_root_mismatch(PropCtx& ctx, double work,
                                     mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "defect_collective_root_mismatch");
  mpi::Proc& p = ctx.mpi_proc();
  par_do_mpi_work(ctx, Distribution::same(work), 1.0, comm);
  int buf = p.rank(comm);
  p.bcast(&buf, 1, mpi::Datatype::kInt32, p.rank(comm) % 2, comm);
}

void defect_reduce_op_mismatch(PropCtx& ctx, double work, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "defect_reduce_op_mismatch");
  mpi::Proc& p = ctx.mpi_proc();
  par_do_mpi_work(ctx, Distribution::same(work), 1.0, comm);
  int v = p.rank(comm) + 1, out = 0;
  p.allreduce(&v, &out, 1, mpi::Datatype::kInt32,
              p.rank(comm) % 2 == 0 ? mpi::ReduceOp::kMin
                                    : mpi::ReduceOp::kMax,
              comm);
}

void defect_split_comm_color(PropCtx& ctx, double work, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "defect_split_comm_color");
  mpi::Proc& p = ctx.mpi_proc();
  par_do_mpi_work(ctx, Distribution::same(work), 1.0, comm);
  const int me = p.rank(comm);
  mpi::Comm* sub = p.split(comm, me % 2, me);
  // The split itself is consistent; the bug is that only the lower half of
  // each colour group shows up at the sub-communicator's barrier.
  if (sub != nullptr && p.rank(*sub) < sub->size() / 2) {
    p.barrier(*sub);
  }
}

// ------------------------------------------------------ negative functions

void balanced_mpi_stencil(PropCtx& ctx, double work, int r,
                          mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "balanced_mpi_stencil");
  const Distribution dd = Distribution::same(work);
  MpiBuf sbuf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  MpiBuf rbuf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    mpi_commpattern_shift(ctx, sbuf, rbuf, Direction::kUp, {}, comm);
    par_do_mpi_work(ctx, dd, 1.0, comm);
    mpi_commpattern_shift(ctx, sbuf, rbuf, Direction::kDown, {}, comm);
  }
}

void balanced_collectives(PropCtx& ctx, double work, int r, mpi::Comm& comm) {
  PropRegion region(ctx, *ctx.sim, "balanced_collectives");
  mpi::Proc& p = ctx.mpi_proc();
  const Distribution dd = Distribution::same(work);
  MpiBuf sbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  MpiBuf rbuf(mpi::Datatype::kDouble, ctx.defaults.base_cnt);
  for (int i = 0; i < r; ++i) {
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.barrier(comm);
    par_do_mpi_work(ctx, dd, 1.0, comm);
    p.allreduce(sbuf.data(), rbuf.data(), ctx.defaults.base_cnt,
                mpi::Datatype::kDouble, mpi::ReduceOp::kSum, comm);
  }
}

}  // namespace ats::core
