// OpenMP and hybrid property functions.
#include "core/properties.hpp"

namespace ats::core {

// ----------------------------------------------------------------- OpenMP

void imbalance_in_omp_pregion(PropCtx& ctx, const Distribution& d, int r,
                              int nthreads) {
  PropRegion region(ctx, *ctx.sim, "imbalance_in_omp_pregion");
  // Unequal work per thread with no explicit synchronisation: the wait
  // appears at the parallel region's implicit barrier.
  for (int i = 0; i < r; ++i) {
    omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                  [&](omp::OmpCtx& o) { par_do_omp_work(ctx, o, d, 1.0); },
                  "imbalance_in_omp_pregion");
  }
}

void imbalance_at_omp_barrier(PropCtx& ctx, const Distribution& d, int r,
                              int nthreads) {
  PropRegion region(ctx, *ctx.sim, "imbalance_at_omp_barrier");
  // The paper's reference implementation: one region, r iterations of
  // unequal work followed by an explicit barrier.
  omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                [&](omp::OmpCtx& o) {
                  for (int i = 0; i < r; ++i) {
                    par_do_omp_work(ctx, o, d, 1.0);
                    o.barrier();
                  }
                },
                "imbalance_at_omp_barrier");
}

void imbalance_in_omp_loop(PropCtx& ctx, const Distribution& d, int r,
                           int nthreads) {
  PropRegion region(ctx, *ctx.sim, "imbalance_in_omp_loop");
  // Statically scheduled loop with one iteration per thread whose cost
  // follows the distribution: the imbalance surfaces at the loop's
  // implicit barrier.
  omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                [&](omp::OmpCtx& o) {
                  for (int i = 0; i < r; ++i) {
                    o.for_static(nthreads, 0, [&](std::int64_t it) {
                      do_work(o.sim(), *ctx.trace, ctx.work,
                              d(static_cast<int>(it), nthreads, 1.0));
                    });
                  }
                },
                "imbalance_in_omp_loop");
}

void imbalance_in_omp_sections(PropCtx& ctx, const Distribution& d, int r,
                               int nthreads) {
  PropRegion region(ctx, *ctx.sim, "imbalance_in_omp_sections");
  omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                [&](omp::OmpCtx& o) {
                  for (int i = 0; i < r; ++i) {
                    std::vector<std::function<void()>> secs;
                    for (int s = 0; s < nthreads; ++s) {
                      secs.emplace_back([&, s] {
                        do_work(o.sim(), *ctx.trace, ctx.work,
                                d(s, nthreads, 1.0));
                      });
                    }
                    o.sections(secs);
                  }
                },
                "imbalance_in_omp_sections");
}

void omp_lock_contention(PropCtx& ctx, double holdwork, int r,
                         int nthreads) {
  PropRegion region(ctx, *ctx.sim, "omp_lock_contention");
  omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                [&](omp::OmpCtx& o) {
                  for (int i = 0; i < r; ++i) {
                    o.critical("ats_contended", [&] {
                      do_work(o.sim(), *ctx.trace, ctx.work, holdwork);
                    });
                  }
                },
                "omp_lock_contention");
}

void serialization_in_omp_single(PropCtx& ctx, double singlework, int r,
                                 int nthreads) {
  PropRegion region(ctx, *ctx.sim, "serialization_in_omp_single");
  omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                [&](omp::OmpCtx& o) {
                  for (int i = 0; i < r; ++i) {
                    o.single([&] {
                      do_work(o.sim(), *ctx.trace, ctx.work, singlework);
                    });
                  }
                },
                "serialization_in_omp_single");
}

void omp_idle_threads(PropCtx& ctx, double serialwork, double parallelwork,
                      int r, int nthreads) {
  PropRegion region(ctx, *ctx.sim, "omp_idle_threads");
  const Distribution dd = Distribution::same(parallelwork);
  for (int i = 0; i < r; ++i) {
    // Serial master phase: the worker CPUs have nothing to do.
    do_work(ctx, serialwork);
    omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                  [&](omp::OmpCtx& o) { par_do_omp_work(ctx, o, dd, 1.0); },
                  "omp_idle_threads_region");
  }
}

void balanced_omp_loop(PropCtx& ctx, double work, int r, int nthreads) {
  PropRegion region(ctx, *ctx.sim, "balanced_omp_loop");
  const Distribution dd = Distribution::same(work);
  omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                [&](omp::OmpCtx& o) {
                  for (int i = 0; i < r; ++i) {
                    o.for_static(nthreads * 4, 0, [&](std::int64_t) {
                      do_work(o.sim(), *ctx.trace, ctx.work,
                              dd(o.thread_num(), nthreads, 0.25));
                    });
                  }
                },
                "balanced_omp_loop");
}

// ----------------------------------------------------------------- hybrid

void hybrid_mpi_in_omp_master(PropCtx& ctx, double basework,
                              double masterextra, int r, mpi::Comm& comm,
                              int nthreads) {
  PropRegion region(ctx, *ctx.sim, "hybrid_mpi_in_omp_master");
  ctx.mpi_proc();  // validate the binding up front
  MpiBuf sbuf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  MpiBuf rbuf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  const Distribution dd = Distribution::same(basework);
  omp::parallel(
      *ctx.sim, ctx.omp_rt(), nthreads,
      [&](omp::OmpCtx& o) {
        for (int i = 0; i < r; ++i) {
          par_do_omp_work(ctx, o, dd, 1.0);
          o.master([&] {
            // Master-only MPI phase: neighbour exchange plus extra work.
            do_work(o.sim(), *ctx.trace, ctx.work, masterextra);
            mpi_commpattern_shift(ctx, sbuf, rbuf, Direction::kUp, {}, comm);
          });
          o.barrier();  // the team waits for the master's MPI phase
        }
      },
      "hybrid_mpi_in_omp_master");
}

void hybrid_late_sender_in_pregion(PropCtx& ctx, double basework,
                                   double extrawork, int r, mpi::Comm& comm,
                                   int nthreads) {
  PropRegion region(ctx, *ctx.sim, "hybrid_late_sender_in_pregion");
  mpi::Proc& p = ctx.mpi_proc();
  const int me = p.rank(comm);
  MpiBuf buf(ctx.defaults.base_type, ctx.defaults.base_cnt);
  // Even ranks run a longer OpenMP phase, then send: odd ranks wait.
  const double mywork = (me % 2 == 0) ? basework + extrawork : basework;
  const Distribution dd = Distribution::same(mywork);
  for (int i = 0; i < r; ++i) {
    omp::parallel(*ctx.sim, ctx.omp_rt(), nthreads,
                  [&](omp::OmpCtx& o) { par_do_omp_work(ctx, o, dd, 1.0); },
                  "hybrid_compute_phase");
    mpi_commpattern_sendrecv(ctx, buf, Direction::kUp, {}, comm);
  }
}

}  // namespace ats::core
