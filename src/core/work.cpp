#include "core/work.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ats::core {

const char* to_string(BusyKernel k) {
  switch (k) {
    case BusyKernel::kMixed: return "mixed";
    case BusyKernel::kMemoryBound: return "memory";
    case BusyKernel::kComputeBound: return "compute";
  }
  return "?";
}

namespace {

/// The paper's loop: random read/write accesses over two arrays.
double kernel_mixed(std::uint64_t iters, std::size_t array_elems,
                    std::uint64_t seed) {
  std::vector<double> a(array_elems, 1.0), b(array_elems, 2.0);
  Rng rng(seed);
  double sink = 0.0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::size_t ra =
        static_cast<std::size_t>(rng.next_below(array_elems));
    const std::size_t rb =
        static_cast<std::size_t>(rng.next_below(array_elems));
    b[rb] = a[ra] * 1.0000001 + 0.5;
    a[ra] = b[rb] - sink * 1e-9;
    sink += a[ra];
  }
  return sink;
}

/// Dependent pointer-chase: every load depends on the previous one, so the
/// CPU pipeline stalls on memory latency (cache-miss bound for large
/// arrays).
double kernel_memory(std::uint64_t iters, std::size_t array_elems,
                     std::uint64_t seed) {
  std::vector<std::uint32_t> next(array_elems);
  Rng rng(seed);
  // A random cyclic permutation (Sattolo's algorithm) guarantees one cycle
  // covering the whole array, so the chase never settles into a hot set.
  for (std::size_t i = 0; i < array_elems; ++i) {
    next[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = array_elems - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(next[i], next[j]);
  }
  std::uint32_t pos = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    pos = next[pos];
  }
  return static_cast<double>(pos);
}

/// Register-only dependent FP chain: no memory traffic after warm-up.
double kernel_compute(std::uint64_t iters, std::uint64_t seed) {
  double x = 1.0 + static_cast<double>(seed % 97) * 1e-6;
  double y = 0.5;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = x * 0.999999943 + 1e-9;
    y = y * x + 1e-12;
  }
  return x + y;
}

}  // namespace

double busy_work_iterations(std::uint64_t iters, std::size_t array_elems,
                            std::uint64_t seed, BusyKernel kernel) {
  require(array_elems > 0, "busy_work_iterations: empty arrays");
  switch (kernel) {
    case BusyKernel::kMixed: return kernel_mixed(iters, array_elems, seed);
    case BusyKernel::kMemoryBound:
      return kernel_memory(iters, array_elems, seed);
    case BusyKernel::kComputeBound: return kernel_compute(iters, seed);
  }
  throw UsageError("busy_work_iterations: unknown kernel");
}

double calibrate_busy_work(std::size_t array_elems, double measure_seconds,
                           BusyKernel kernel) {
  require(measure_seconds > 0, "calibrate_busy_work: non-positive duration");
  using Clock = std::chrono::steady_clock;
  std::uint64_t iters = 1 << 12;
  // Grow the batch until it takes a measurable fraction of the budget, then
  // extrapolate iterations per second.
  for (;;) {
    const auto t0 = Clock::now();
    (void)busy_work_iterations(iters, array_elems, /*seed=*/1, kernel);
    const double dt =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt >= measure_seconds || iters > (1ULL << 30)) {
      return static_cast<double>(iters) / (dt > 0 ? dt : 1e-9);
    }
    iters *= 2;
  }
}

void do_work(simt::Context& ctx, trace::Trace& trace, const WorkConfig& cfg,
             double secs) {
  if (secs < 0 || !std::isfinite(secs)) secs = 0.0;
  const trace::RegionId reg =
      trace.regions().intern("do_work", trace::RegionKind::kWork);
  trace.enter(ctx.id(), ctx.now(), reg);
  if (cfg.mode == WorkMode::kBusy) {
    require(cfg.busy_iters_per_sec > 0,
            "do_work: busy mode requires a calibrated busy_iters_per_sec "
            "(run calibrate_busy_work)");
    const auto iters =
        static_cast<std::uint64_t>(secs * cfg.busy_iters_per_sec);
    (void)busy_work_iterations(iters, cfg.array_elems, ctx.rng().next_u64(),
                               cfg.kernel);
  }
  ctx.advance(VDur::seconds(secs));
  trace.exit(ctx.id(), ctx.now(), reg);
}

}  // namespace ats::core
