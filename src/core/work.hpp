// Work specification (paper §3.1.1).
//
// do_work(secs) executes `secs` seconds of generic computation.  Two modes:
//
//  * kVirtual (default): advances the simulated clock by exactly `secs` —
//    deterministic, platform independent, and the mode every test and bench
//    uses.  This is the "portable work specification" the paper wishes for.
//  * kBusy: additionally burns real CPU with the paper's mechanism — a loop
//    of pseudo-random read/write accesses over two arrays, calibrated once
//    to iterations-per-second, using a lock-free generator (the paper
//    reports that a locked rand() silently serialised their first OpenMP
//    version; our generator is the fix they describe).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/vtime.hpp"
#include "simt/engine.hpp"
#include "trace/trace.hpp"

namespace ats::core {

enum class WorkMode : std::uint8_t { kVirtual, kBusy };

/// Sequential performance character of the busy loop (paper §5 asks for
/// "test functions for sequential performance properties"; the kernels
/// exercise distinct hardware bottlenecks so counter-based tools see
/// different profiles, while virtual time stays identical).
enum class BusyKernel : std::uint8_t {
  kMixed,         ///< the paper's loop: random read/write over two arrays
  kMemoryBound,   ///< dependent random chasing over a large array
  kComputeBound,  ///< register-only floating-point chain, no memory traffic
};

const char* to_string(BusyKernel k);

struct WorkConfig {
  WorkMode mode = WorkMode::kVirtual;
  /// Busy mode: calibrated loop iterations per host second (0 = must call
  /// calibrate_busy_work and fill this in).
  double busy_iters_per_sec = 0.0;
  /// Busy mode: size of each access array in doubles.  Large enough that
  /// random accesses defeat the L1/L2 cache, per the paper.
  std::size_t array_elems = 1 << 16;
  BusyKernel kernel = BusyKernel::kMixed;
};

/// Measures how many busy-loop iterations this host executes per second.
/// Runs for roughly `measure_seconds` of wall-clock time.
double calibrate_busy_work(std::size_t array_elems,
                           double measure_seconds = 0.1,
                           BusyKernel kernel = BusyKernel::kMixed);

/// Runs `iters` iterations of the selected kernel (the unit that
/// calibrate_busy_work measures).  Returns a checksum so the optimiser
/// cannot delete the loop.
double busy_work_iterations(std::uint64_t iters, std::size_t array_elems,
                            std::uint64_t seed,
                            BusyKernel kernel = BusyKernel::kMixed);

/// Executes `secs` seconds of work on the calling location: enters the
/// "do_work" trace region, advances the virtual clock (and burns host CPU in
/// busy mode), exits the region.  Negative amounts are clamped to zero.
void do_work(simt::Context& ctx, trace::Trace& trace, const WorkConfig& cfg,
             double secs);

}  // namespace ats::core
