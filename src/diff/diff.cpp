#include "diff/diff.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strutil.hpp"

namespace ats::diff {

namespace fs = std::filesystem;

namespace {

constexpr const char* kCsvHeader = "property,call_path,location,severity_sec";

std::string cell_key(const std::string& property, const std::string& path,
                     const std::string& location) {
  return property + "\x1f" + path + "\x1f" + location;
}

/// Change test shared by every diff flavour: both floors must clear.
bool clears_floors(double a, double b, const DiffOptions& opt) {
  const double d = std::fabs(b - a);
  return d > opt.abs_floor_sec && d > opt.rel_floor * std::max(a, b);
}

/// PropertyId for a report name; kCount_ when the name is unknown (a
/// foreign or future property — treated as an attributable leaf).
analyze::PropertyId property_by_name(const std::string& name) {
  for (analyze::PropertyId p : analyze::property_preorder()) {
    if (name == analyze::property_name(p)) return p;
  }
  return analyze::PropertyId::kCount_;
}

bool attributable(const std::string& property) {
  const analyze::PropertyId p = property_by_name(property);
  if (p == analyze::PropertyId::kCount_) return true;
  const auto& info = analyze::property_info(p);
  return info.is_waitstate && !info.is_overhead;
}

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Snapshot

Snapshot Snapshot::from_result(const analyze::AnalysisResult& result,
                               const trace::Trace& trace) {
  Snapshot s;
  result.cube.for_each([&](analyze::PropertyId p, analyze::NodeId n,
                           trace::LocId l, VDur d) {
    s.cells.push_back({analyze::property_name(p),
                       result.profile.path_string(n, trace),
                       trace.location(l).name, d.sec()});
  });
  for (const auto& defect : result.defects) {
    s.defects.push_back(defect.describe(trace));
  }
  return s;
}

Snapshot Snapshot::from_severity_csv(const std::string& text) {
  Snapshot s;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCsvHeader) {
    throw UsageError("severity CSV: expected header '" +
                     std::string(kCsvHeader) + "', got '" + line + "'");
  }
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    if (fields.size() < 4) {
      throw UsageError("severity CSV line " + std::to_string(lineno) +
                       ": expected 4 fields, got " +
                       std::to_string(fields.size()));
    }
    // Call paths could in principle contain commas; property, location and
    // severity never do, so re-join the middle fields.
    SnapshotCell cell;
    cell.property = fields.front();
    cell.location = fields[fields.size() - 2];
    cell.call_path = join(
        std::vector<std::string>(fields.begin() + 1, fields.end() - 2), ",");
    try {
      cell.severity_sec = std::stod(fields.back());
    } catch (const std::exception&) {
      throw UsageError("severity CSV line " + std::to_string(lineno) +
                       ": bad severity '" + fields.back() + "'");
    }
    s.cells.push_back(std::move(cell));
  }
  return s;
}

std::string Snapshot::severity_csv() const {
  std::string out = std::string(kCsvHeader) + "\n";
  for (const auto& c : cells) {
    out += c.property + "," + c.call_path + "," + c.location + "," +
           fmt_double(c.severity_sec, 9) + "\n";
  }
  return out;
}

std::vector<std::string> parse_defect_lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || starts_with(line, "===") || line == "(none)") continue;
    out.push_back(line);
  }
  return out;
}

// --------------------------------------------------------------- calibrate

DiffOptions calibrate(const std::vector<Snapshot>& repeats, DiffOptions base) {
  if (repeats.size() < 2) return base;
  struct Spread {
    double min = 0.0, max = 0.0;
    std::size_t seen = 0;
  };
  std::map<std::string, Spread> spreads;
  for (const auto& snap : repeats) {
    for (const auto& c : snap.cells) {
      auto& sp = spreads[cell_key(c.property, c.call_path, c.location)];
      if (sp.seen == 0) {
        sp.min = sp.max = c.severity_sec;
      } else {
        sp.min = std::min(sp.min, c.severity_sec);
        sp.max = std::max(sp.max, c.severity_sec);
      }
      ++sp.seen;
    }
  }
  DiffOptions out = base;
  for (const auto& [key, sp] : spreads) {
    (void)key;
    // A cell missing from some repeat flickers at its full magnitude: pure
    // noise at that absolute scale.  A cell present everywhere contributes
    // its worst relative spread instead.
    if (sp.seen < repeats.size()) {
      out.abs_floor_sec = std::max(out.abs_floor_sec, 2.0 * sp.max);
    } else if (sp.max > 0.0) {
      const double rel = (sp.max - sp.min) / sp.max;
      out.rel_floor = std::max(out.rel_floor, std::min(0.5, 2.0 * rel));
    }
  }
  return out;
}

// -------------------------------------------------------------- cell diffs

const char* to_string(DeltaKind k) {
  switch (k) {
    case DeltaKind::kAdded: return "added";
    case DeltaKind::kRemoved: return "removed";
    case DeltaKind::kIncreased: return "increased";
    case DeltaKind::kDecreased: return "decreased";
  }
  return "?";
}

double CellDelta::rel() const {
  const double m = std::max(a_sec, b_sec);
  return m > 0.0 ? std::fabs(b_sec - a_sec) / m : 0.0;
}

double RowDelta::rel() const {
  const double m = std::max(a_sec, b_sec);
  return m > 0.0 ? std::fabs(b_sec - a_sec) / m : 0.0;
}

bool DiffResult::empty() const {
  return cells.empty() && defects_added.empty() && defects_removed.empty();
}

bool DiffResult::regression() const {
  if (!defects_added.empty()) return true;
  for (const auto& c : cells) {
    if (c.kind == DeltaKind::kAdded || c.kind == DeltaKind::kIncreased) {
      return true;
    }
  }
  return false;
}

DiffResult diff_snapshots(const Snapshot& a, const Snapshot& b,
                          DiffOptions opt) {
  DiffResult out;
  out.options = opt;

  // Pair the cells by identity, preserving A's stable order with B-only
  // cells appended in B's order.  The identity is the *display* triple, and
  // distinct location ids can legally share a name (hybrid traces reuse
  // "rank R thread T" across parallel regions) — duplicates therefore
  // accumulate into one logical cell on each side.
  struct Pair {
    const SnapshotCell* cell;  ///< representative (A side when present)
    double a_sec = 0.0, b_sec = 0.0;
    bool in_a = false, in_b = false;
  };
  std::vector<Pair> pairs;
  std::unordered_map<std::string, std::size_t> index;
  pairs.reserve(a.cells.size() + b.cells.size());
  for (const auto& c : a.cells) {
    const auto [it, inserted] = index.emplace(
        cell_key(c.property, c.call_path, c.location), pairs.size());
    if (inserted) {
      pairs.push_back({&c, c.severity_sec, 0.0, true, false});
    } else {
      pairs[it->second].a_sec += c.severity_sec;
    }
  }
  for (const auto& c : b.cells) {
    const auto [it, inserted] = index.emplace(
        cell_key(c.property, c.call_path, c.location), pairs.size());
    if (inserted) {
      pairs.push_back({&c, 0.0, c.severity_sec, false, true});
    } else if (pairs[it->second].in_b) {
      pairs[it->second].b_sec += c.severity_sec;
    } else {
      pairs[it->second].b_sec = c.severity_sec;
      pairs[it->second].in_b = true;
    }
  }
  out.cells_compared = pairs.size();

  // Per-property roll-up over every cell; the changed subset feeds the
  // reported cell deltas.
  struct Roll {
    double a = 0.0, b = 0.0;
    std::size_t changed = 0;
    std::size_t order = 0;  ///< first-seen position, for stable output
  };
  std::map<std::string, Roll> rolls;
  std::size_t next_order = 0;
  for (const auto& p : pairs) {
    auto [it, inserted] = rolls.try_emplace(p.cell->property);
    if (inserted) it->second.order = next_order++;
    it->second.a += p.a_sec;
    it->second.b += p.b_sec;
    if (!clears_floors(p.a_sec, p.b_sec, opt)) continue;
    it->second.changed += 1;
    CellDelta d;
    d.property = p.cell->property;
    d.call_path = p.cell->call_path;
    d.location = p.cell->location;
    d.a_sec = p.a_sec;
    d.b_sec = p.b_sec;
    d.kind = !p.in_a   ? DeltaKind::kAdded
             : !p.in_b ? DeltaKind::kRemoved
             : p.b_sec > p.a_sec ? DeltaKind::kIncreased
                                 : DeltaKind::kDecreased;
    out.cells.push_back(std::move(d));
  }
  std::stable_sort(out.cells.begin(), out.cells.end(),
                   [](const CellDelta& x, const CellDelta& y) {
                     return std::fabs(x.delta()) > std::fabs(y.delta());
                   });

  std::vector<const std::pair<const std::string, Roll>*> ordered;
  for (const auto& kv : rolls) ordered.push_back(&kv);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* x, const auto* y) {
              return x->second.order < y->second.order;
            });
  double best_regression = 0.0;
  for (const auto* kv : ordered) {
    const Roll& r = kv->second;
    PropertyDelta pd;
    pd.property = kv->first;
    pd.a_total_sec = r.a;
    pd.b_total_sec = r.b;
    pd.cells_changed = r.changed;
    pd.regressed = r.b > r.a && clears_floors(r.a, r.b, opt);
    pd.improved = r.b < r.a && clears_floors(r.a, r.b, opt);
    if (pd.regressed && attributable(pd.property) &&
        pd.delta() > best_regression) {
      best_regression = pd.delta();
      out.attribution = pd.property;
    }
    if (pd.cells_changed > 0 || pd.regressed || pd.improved) {
      out.properties.push_back(std::move(pd));
    }
  }

  // Defect sets diff as exact line sets (order-insensitive).
  std::set<std::string> da(a.defects.begin(), a.defects.end());
  std::set<std::string> db(b.defects.begin(), b.defects.end());
  for (const auto& d : db) {
    if (!da.count(d)) out.defects_added.push_back(d);
  }
  for (const auto& d : da) {
    if (!db.count(d)) out.defects_removed.push_back(d);
  }
  return out;
}

// -------------------------------------------------------------- sweep diffs

std::vector<RowDelta> diff_rows(const std::vector<gen::ExperimentRow>& a,
                                const std::vector<gen::ExperimentRow>& b,
                                DiffOptions opt) {
  std::vector<RowDelta> out;
  std::unordered_map<std::string, std::size_t> index;
  for (const auto& row : a) {
    RowDelta d;
    d.value = row.value;
    d.a_sec = row.severity.sec();
    d.in_a = true;
    index.emplace(row.value, out.size());
    out.push_back(std::move(d));
  }
  std::unordered_map<std::string, gen::RunOutcome> outcome_a;
  for (const auto& row : a) outcome_a.emplace(row.value, row.outcome);
  for (const auto& row : b) {
    const auto it = index.find(row.value);
    if (it != index.end()) {
      RowDelta& d = out[it->second];
      d.b_sec = row.severity.sec();
      d.in_b = true;
      const auto oa = outcome_a.find(row.value);
      d.outcome_changed = oa != outcome_a.end() && oa->second != row.outcome;
    } else {
      RowDelta d;
      d.value = row.value;
      d.b_sec = row.severity.sec();
      d.in_b = true;
      out.push_back(std::move(d));
    }
  }
  for (RowDelta& d : out) {
    d.changed = !d.in_a || !d.in_b || d.outcome_changed ||
                clears_floors(d.a_sec, d.b_sec, opt);
  }
  return out;
}

// ------------------------------------------------------------ corpus diffs

bool CorpusDiff::clean() const {
  for (const auto& e : entries) {
    if (e.missing_in_a || e.missing_in_b || !e.diff.empty()) return false;
  }
  return true;
}

bool CorpusDiff::regression() const {
  for (const auto& e : entries) {
    if (e.missing_in_a || e.missing_in_b || e.diff.regression()) return true;
  }
  return false;
}

namespace {

struct CorpusEntryFiles {
  std::string expected_a, expected_b;  ///< file paths, "" when absent
  std::string defects_a, defects_b;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void scan_corpus_dir(const std::string& dir, bool side_a,
                     std::map<std::string, CorpusEntryFiles>& entries) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) throw Error("cannot read corpus directory " + dir + ": " +
                      ec.message());
  for (const auto& de : it) {
    if (!de.is_regular_file()) continue;
    const fs::path p = de.path();
    const std::string ext = p.extension().string();
    if (ext != ".expected" && ext != ".defects") continue;
    CorpusEntryFiles& e = entries[p.stem().string()];
    std::string& slot = ext == ".expected"
                            ? (side_a ? e.expected_a : e.expected_b)
                            : (side_a ? e.defects_a : e.defects_b);
    slot = p.string();
  }
}

}  // namespace

CorpusDiff diff_corpus(const std::string& dir_a, const std::string& dir_b,
                       DiffOptions opt) {
  std::map<std::string, CorpusEntryFiles> files;
  scan_corpus_dir(dir_a, /*side_a=*/true, files);
  scan_corpus_dir(dir_b, /*side_a=*/false, files);

  CorpusDiff out;
  for (const auto& [name, f] : files) {
    CorpusEntryDiff entry;
    entry.name = name;
    const bool has_a = !f.expected_a.empty() || !f.defects_a.empty();
    const bool has_b = !f.expected_b.empty() || !f.defects_b.empty();
    entry.missing_in_a = !has_a || (f.expected_b != "" && f.expected_a == "") ||
                         (f.defects_b != "" && f.defects_a == "");
    entry.missing_in_b = !has_b || (f.expected_a != "" && f.expected_b == "") ||
                         (f.defects_a != "" && f.defects_b == "");
    Snapshot a, b;
    a.label = name + " (A)";
    b.label = name + " (B)";
    if (!f.expected_a.empty()) {
      a = Snapshot::from_severity_csv(read_file(f.expected_a));
    }
    if (!f.expected_b.empty()) {
      b = Snapshot::from_severity_csv(read_file(f.expected_b));
    }
    if (!f.defects_a.empty()) {
      a.defects = parse_defect_lines(read_file(f.defects_a));
    }
    if (!f.defects_b.empty()) {
      b.defects = parse_defect_lines(read_file(f.defects_b));
    }
    entry.diff = diff_snapshots(a, b, opt);
    ++out.entries_compared;
    out.entries.push_back(std::move(entry));
  }
  return out;
}

// ---------------------------------------------------------------- rendering

std::string render_text(const DiffResult& d, const std::string& label_a,
                        const std::string& label_b) {
  std::ostringstream os;
  os << "=== cross-run diff (A = " << label_a << ", B = " << label_b
     << ") ===\n";
  os << "cells compared: " << d.cells_compared
     << "  changed: " << d.cells.size()
     << "  floors: abs " << fmt_double(d.options.abs_floor_sec, 9)
     << "s, rel " << fmt_percent(d.options.rel_floor) << "\n";
  if (d.empty()) {
    os << "(no differences above thresholds)\n";
    return os.str();
  }
  if (!d.attribution.empty()) {
    os << "regression attributed to: " << d.attribution << "\n";
  }
  if (!d.properties.empty()) {
    os << "\n" << pad_right("property", 28) << pad_left("A total", 14)
       << pad_left("B total", 14) << pad_left("delta", 14)
       << pad_left("cells", 7) << "  verdict\n" << repeat('-', 85) << "\n";
    for (const auto& p : d.properties) {
      os << pad_right(p.property, 28)
         << pad_left(fmt_double(p.a_total_sec, 6), 14)
         << pad_left(fmt_double(p.b_total_sec, 6), 14)
         << pad_left(fmt_double(p.delta(), 6), 14)
         << pad_left(std::to_string(p.cells_changed), 7) << "  "
         << (p.regressed ? "REGRESSED" : p.improved ? "improved" : "moved")
         << "\n";
    }
  }
  if (!d.cells.empty()) {
    os << "\nchanged cells (largest first):\n";
    for (const auto& c : d.cells) {
      os << "  " << to_string(c.kind) << "  " << c.property << " | "
         << c.call_path << " | " << c.location << ": "
         << fmt_double(c.a_sec, 6) << " -> " << fmt_double(c.b_sec, 6)
         << " (" << (c.delta() >= 0 ? "+" : "") << fmt_double(c.delta(), 6)
         << "s, " << fmt_percent(c.rel()) << ")\n";
    }
  }
  for (const auto& def : d.defects_added) {
    os << "defect added: " << def << "\n";
  }
  for (const auto& def : d.defects_removed) {
    os << "defect removed: " << def << "\n";
  }
  return os.str();
}

std::string diff_csv(const DiffResult& d) {
  std::string out = "property,call_path,location,a_sec,b_sec,delta_sec,rel,kind\n";
  for (const auto& c : d.cells) {
    out += c.property + "," + c.call_path + "," + c.location + "," +
           fmt_double(c.a_sec, 9) + "," + fmt_double(c.b_sec, 9) + "," +
           fmt_double(c.delta(), 9) + "," + fmt_double(c.rel(), 4) + "," +
           to_string(c.kind) + "\n";
  }
  for (const auto& def : d.defects_added) {
    out += "defect,," + def + ",0,1,1,1,added\n";
  }
  for (const auto& def : d.defects_removed) {
    out += "defect,," + def + ",1,0,-1,1,removed\n";
  }
  return out;
}

std::string diff_xml(const DiffResult& d, const std::string& label_a,
                     const std::string& label_b) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<diff a=\"" << xml_escape(label_a) << "\" b=\""
     << xml_escape(label_b) << "\" cells_compared=\"" << d.cells_compared
     << "\" empty=\"" << (d.empty() ? 1 : 0) << "\" regression=\""
     << (d.regression() ? 1 : 0) << "\" attribution=\""
     << xml_escape(d.attribution) << "\">\n";
  os << "  <thresholds abs_floor_sec=\""
     << fmt_double(d.options.abs_floor_sec, 9) << "\" rel_floor=\""
     << fmt_double(d.options.rel_floor, 4) << "\"/>\n";
  for (const auto& p : d.properties) {
    os << "  <property name=\"" << xml_escape(p.property) << "\" a=\""
       << fmt_double(p.a_total_sec, 9) << "\" b=\""
       << fmt_double(p.b_total_sec, 9) << "\" cells_changed=\""
       << p.cells_changed << "\" verdict=\""
       << (p.regressed ? "regressed" : p.improved ? "improved" : "moved")
       << "\"/>\n";
  }
  for (const auto& c : d.cells) {
    os << "  <cell kind=\"" << to_string(c.kind) << "\" property=\""
       << xml_escape(c.property) << "\" call_path=\""
       << xml_escape(c.call_path) << "\" location=\""
       << xml_escape(c.location) << "\" a=\"" << fmt_double(c.a_sec, 9)
       << "\" b=\"" << fmt_double(c.b_sec, 9) << "\"/>\n";
  }
  for (const auto& def : d.defects_added) {
    os << "  <defect change=\"added\">" << xml_escape(def) << "</defect>\n";
  }
  for (const auto& def : d.defects_removed) {
    os << "  <defect change=\"removed\">" << xml_escape(def) << "</defect>\n";
  }
  os << "</diff>\n";
  return os.str();
}

std::string render_corpus_text(const CorpusDiff& c, const std::string& label_a,
                               const std::string& label_b) {
  std::ostringstream os;
  os << "=== corpus diff (A = " << label_a << ", B = " << label_b << ", "
     << c.entries_compared << " entries) ===\n";
  std::size_t shown = 0;
  for (const auto& e : c.entries) {
    if (e.missing_in_a) {
      os << e.name << ": MISSING in A\n";
      ++shown;
      continue;
    }
    if (e.missing_in_b) {
      os << e.name << ": MISSING in B\n";
      ++shown;
      continue;
    }
    if (e.diff.empty()) continue;
    ++shown;
    os << e.name << ": " << e.diff.cells.size() << " cell change(s)";
    if (!e.diff.attribution.empty()) {
      os << ", attributed to " << e.diff.attribution;
    }
    if (!e.diff.defects_added.empty() || !e.diff.defects_removed.empty()) {
      os << ", defects +" << e.diff.defects_added.size() << "/-"
         << e.diff.defects_removed.size();
    }
    os << "\n" << render_text(e.diff, label_a + "/" + e.name,
                              label_b + "/" + e.name);
  }
  if (shown == 0) os << "(all entries identical within thresholds)\n";
  return os.str();
}

std::string corpus_csv(const CorpusDiff& c) {
  std::string out =
      "entry,property,call_path,location,a_sec,b_sec,delta_sec,rel,kind\n";
  for (const auto& e : c.entries) {
    if (e.missing_in_a) {
      out += e.name + ",,,,0,0,0,0,missing_in_a\n";
      continue;
    }
    if (e.missing_in_b) {
      out += e.name + ",,,,0,0,0,0,missing_in_b\n";
      continue;
    }
    const std::string body = diff_csv(e.diff);
    std::istringstream in(body);
    std::string line;
    std::getline(in, line);  // drop the inner header
    while (std::getline(in, line)) {
      if (!line.empty()) out += e.name + "," + line + "\n";
    }
  }
  return out;
}

std::string corpus_xml(const CorpusDiff& c, const std::string& label_a,
                       const std::string& label_b) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<corpus-diff a=\"" << xml_escape(label_a) << "\" b=\""
     << xml_escape(label_b) << "\" entries=\"" << c.entries_compared
     << "\" clean=\"" << (c.clean() ? 1 : 0) << "\">\n";
  for (const auto& e : c.entries) {
    os << "  <entry name=\"" << xml_escape(e.name) << "\" missing_in_a=\""
       << (e.missing_in_a ? 1 : 0) << "\" missing_in_b=\""
       << (e.missing_in_b ? 1 : 0) << "\" empty=\""
       << (e.diff.empty() ? 1 : 0) << "\"/>\n";
  }
  os << "</corpus-diff>\n";
  return os.str();
}

}  // namespace ats::diff
