// Cross-run differential analytics (docs/DIFF.md).
//
// Turns two analysis results — or two directories of golden result files,
// or two cached experiment sweeps — into a semantically thresholded delta
// report: which severity cells moved, by how much, which property the
// regression attributes to, and which structural defects appeared or
// vanished.  The comparison is noise-aware: a cell only counts as changed
// when its delta clears both an absolute floor (virtual-time jitter) and a
// relative floor (busy-work calibration), so byte-inequality alone never
// fails a run.  The serialisation contract it diffs over is
// SeverityCube::for_each / report::severity_csv stable order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "gen/experiment.hpp"
#include "trace/trace.hpp"

namespace ats::diff {

/// One (property, call path, location) severity cell in a comparable form:
/// everything is a stable string plus seconds, so snapshots taken from a
/// live AnalysisResult and snapshots parsed from a checked-in severity CSV
/// diff symmetrically.
struct SnapshotCell {
  std::string property;
  std::string call_path;
  std::string location;
  double severity_sec = 0.0;
};

/// A diffable view of one analysis: severity cells in stable report order
/// plus the structural-defect report lines.
struct Snapshot {
  std::string label;  ///< provenance shown in reports ("a", a file name, ...)
  std::vector<SnapshotCell> cells;
  std::vector<std::string> defects;  ///< StructuralDefect::describe lines

  /// Snapshot of a live analysis.  Cell order and values match
  /// report::severity_csv row for row (the shared for_each contract).
  static Snapshot from_result(const analyze::AnalysisResult& result,
                              const trace::Trace& trace);

  /// Parses report::severity_csv text (e.g. a checked-in golden
  /// `.expected` file).  Throws ats::UsageError on a foreign header or a
  /// malformed row.
  static Snapshot from_severity_csv(const std::string& text);

  /// Re-serialises the cells; from_severity_csv round-trips through this.
  std::string severity_csv() const;
};

/// Parses report::render_defects text (a golden `.defects` file) into
/// defect lines; the banner and "(none)" placeholder are dropped.
std::vector<std::string> parse_defect_lines(const std::string& text);

/// Noise thresholds.  A cell delta counts as a change only when
///   |delta| > abs_floor_sec  AND  |delta| > rel_floor * max(a, b).
struct DiffOptions {
  /// Absolute floor in seconds.  The default swallows serialisation
  /// rounding (severity CSV prints 9 decimals) but nothing physical.
  double abs_floor_sec = 1e-9;
  /// Relative floor as a fraction of the larger side.
  double rel_floor = 0.02;
};

/// Busy-work calibration: widens `base` floors from the spread observed
/// across repeated runs of the same configuration.  Cells that flicker in
/// and out across repeats raise the absolute floor; cells present in every
/// repeat raise the relative floor by twice their worst relative spread
/// (capped at 0.5 so a wild calibration set cannot blind the diff).
DiffOptions calibrate(const std::vector<Snapshot>& repeats,
                      DiffOptions base = {});

enum class DeltaKind : std::uint8_t {
  kAdded,      ///< cell absent in A, present in B
  kRemoved,    ///< cell present in A, absent in B
  kIncreased,  ///< severity grew beyond the floors
  kDecreased,  ///< severity shrank beyond the floors
};

const char* to_string(DeltaKind k);

/// One above-threshold cell change.
struct CellDelta {
  std::string property;
  std::string call_path;
  std::string location;
  double a_sec = 0.0;
  double b_sec = 0.0;
  DeltaKind kind = DeltaKind::kIncreased;

  double delta() const { return b_sec - a_sec; }
  /// |delta| relative to the larger side (1.0 for added/removed cells).
  double rel() const;
};

/// Per-property roll-up over *all* cells of that property (changed or not),
/// so attribution sees totals, not just the cells that crossed the floors.
struct PropertyDelta {
  std::string property;
  double a_total_sec = 0.0;
  double b_total_sec = 0.0;
  std::size_t cells_changed = 0;
  bool regressed = false;  ///< total grew beyond the floors
  bool improved = false;   ///< total shrank beyond the floors

  double delta() const { return b_total_sec - a_total_sec; }
};

struct DiffResult {
  DiffOptions options;
  std::size_t cells_compared = 0;
  /// Above-threshold cell changes, largest |delta| first.
  std::vector<CellDelta> cells;
  /// Properties with at least one changed cell or a changed total.
  std::vector<PropertyDelta> properties;
  std::vector<std::string> defects_added;
  std::vector<std::string> defects_removed;
  /// The wait-state leaf property whose total regressed the most; empty
  /// when nothing regressed.  Overhead-class properties never attribute.
  std::string attribution;

  /// No cell changes and no defect-set changes.
  bool empty() const;
  /// Something got worse: a severity increase/appearance or a new defect.
  bool regression() const;
};

DiffResult diff_snapshots(const Snapshot& a, const Snapshot& b,
                          DiffOptions opt = {});

// ------------------------------------------------------------- sweep diffs

/// One experiment-grid cell compared across two sweeps, keyed by the axis
/// value.  Missing-side severities read as zero with kAdded/kRemoved kind.
struct RowDelta {
  std::string value;
  double a_sec = 0.0;
  double b_sec = 0.0;
  bool in_a = false;
  bool in_b = false;
  bool changed = false;  ///< delta cleared the floors (or one side missing)
  bool outcome_changed = false;  ///< run outcome class differs

  double delta() const { return b_sec - a_sec; }
  double rel() const;
};

/// Diffs two sweeps row-by-row (the service `diff` verb's engine): rows
/// pair by axis value, in A's order with B-only values appended.
std::vector<RowDelta> diff_rows(const std::vector<gen::ExperimentRow>& a,
                                const std::vector<gen::ExperimentRow>& b,
                                DiffOptions opt = {});

// ------------------------------------------------------------ corpus diffs

/// One golden-corpus entry (a `<name>.expected` severity file and/or a
/// `<name>.defects` report) compared across two directories.
struct CorpusEntryDiff {
  std::string name;
  bool missing_in_a = false;  ///< B has files for this entry, A does not
  bool missing_in_b = false;
  DiffResult diff;
};

struct CorpusDiff {
  std::vector<CorpusEntryDiff> entries;  ///< sorted by name
  std::size_t entries_compared = 0;

  /// Every entry present on both sides and empty-diffing.
  bool clean() const;
  /// Something regressed: a missing entry or an entry-level regression.
  bool regression() const;
};

/// Diffs two golden-corpus directories (tests/golden layout: *.expected
/// severity CSVs, *.defects reports).  Throws ats::Error when a directory
/// cannot be read.
CorpusDiff diff_corpus(const std::string& dir_a, const std::string& dir_b,
                       DiffOptions opt = {});

// -------------------------------------------------------------- rendering

/// Human-readable report mirroring trace_analyze's pane style.
std::string render_text(const DiffResult& d, const std::string& label_a,
                        const std::string& label_b);

/// Machine-readable rows:
///   property,call_path,location,a_sec,b_sec,delta_sec,rel,kind
std::string diff_csv(const DiffResult& d);

/// CUBE-flavoured XML mirroring trace_analyze's --xml output.
std::string diff_xml(const DiffResult& d, const std::string& label_a,
                     const std::string& label_b);

std::string render_corpus_text(const CorpusDiff& c, const std::string& label_a,
                               const std::string& label_b);

/// Corpus CSV: the diff_csv schema with a leading `entry` column; missing
/// entries render one row with kind missing_in_a / missing_in_b.
std::string corpus_csv(const CorpusDiff& c);

std::string corpus_xml(const CorpusDiff& c, const std::string& label_a,
                       const std::string& label_b);

}  // namespace ats::diff
