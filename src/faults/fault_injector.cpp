#include "faults/fault_injector.hpp"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace ats::faults {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kClockSkew: return "clock-skew";
    case FaultKind::kTimestampJitter: return "timestamp-jitter";
    case FaultKind::kDropEvent: return "drop-event";
    case FaultKind::kDuplicateEvent: return "duplicate-event";
    case FaultKind::kReorderEvents: return "reorder-events";
    case FaultKind::kDropRecv: return "drop-recv";
    case FaultKind::kDropSend: return "drop-send";
    case FaultKind::kCorruptRecord: return "corrupt-record";
    case FaultKind::kBogusLocation: return "bogus-location";
    case FaultKind::kTruncateFile: return "truncate-file";
    case FaultKind::kCount_: break;
  }
  return "?";
}

std::size_t InjectionReport::total() const {
  std::size_t n = 0;
  for (const std::size_t c : counts) n += c;
  return n;
}

std::string InjectionReport::str() const {
  std::string out;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (counts[k] == 0) continue;
    out += to_string(static_cast<FaultKind>(k));
    out += ": ";
    out += std::to_string(counts[k]);
    out += '\n';
  }
  if (out.empty()) out = "(no faults injected)\n";
  return out;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : cfg_(config), rng_(SplitSeed(config.seed).child("fault-injector").rng()) {}

namespace {

/// Replays one event into `out` through the typed recording API.
void emit(trace::Trace& out, const trace::Event& e) {
  using trace::EventType;
  switch (e.type) {
    case EventType::kEnter:
      out.enter(e.loc, e.t, e.region);
      break;
    case EventType::kExit:
      out.exit(e.loc, e.t, e.region);
      break;
    case EventType::kSend:
      out.send(e.loc, e.t, e.peer, e.tag, e.comm, e.bytes);
      break;
    case EventType::kRecv:
      out.recv(e.loc, e.t, e.peer, e.tag, e.comm, e.bytes);
      break;
    case EventType::kCollEnd:
      out.coll_end(e.loc, e.t, e.enter_t, e.comm, e.seq, e.op, e.root,
                   e.bytes, e.bytes_out);
      break;
    case EventType::kCollBegin:
      out.coll_begin(e.loc, e.t, e.comm, e.seq, e.op, e.root, e.tag,
                     e.region);
      break;
    case EventType::kLockAcquire:
      out.lock_acquire(e.loc, e.t, e.peer);
      break;
    case EventType::kLockRelease:
      out.lock_release(e.loc, e.t, e.peer);
      break;
  }
}

/// True for the serialised event-record keywords (docs/TRACE_FORMAT.md §4).
bool is_event_line(const std::string& line) {
  if (line.size() < 2) return false;
  if (line[1] == ' ') {
    return line[0] == 'E' || line[0] == 'X' || line[0] == 'S' ||
           line[0] == 'R' || line[0] == 'C' || line[0] == 'B';
  }
  return line.size() > 2 && line[0] == 'L' &&
         (line[1] == 'A' || line[1] == 'R') && line[2] == ' ';
}

}  // namespace

trace::Trace FaultInjector::apply(const trace::Trace& t) {
  trace::Trace out;
  // Metadata survives intact: real corruption hits the bulky event payload
  // first, and the loader-level faults (corrupt_text) cover damaged
  // metadata separately.
  for (std::size_t r = 0; r < t.regions().size(); ++r) {
    const trace::RegionInfo& info =
        t.regions().info(static_cast<trace::RegionId>(r));
    out.regions().intern(info.name, info.kind);
  }
  for (std::size_t l = 0; l < t.location_count(); ++l) {
    out.add_location(t.location(static_cast<trace::LocId>(l)));
  }
  for (std::size_t c = 0; c < t.comm_count(); ++c) {
    const trace::CommInfo& info = t.comm(static_cast<trace::CommId>(c));
    out.add_comm(info.kind, info.members, info.name);
  }

  // One constant offset per skewed location — the "this node's clock was
  // wrong" failure mode, distinct from per-event jitter.
  std::vector<std::int64_t> skew(t.location_count(), 0);
  if (cfg_.clock_skew_ns > 0 && cfg_.skew_locations > 0.0) {
    for (auto& s : skew) {
      if (!chance(cfg_.skew_locations)) continue;
      s = rng_.next_in(-cfg_.clock_skew_ns, cfg_.clock_skew_ns);
      if (s != 0) note(FaultKind::kClockSkew);
    }
  }

  for (std::size_t l = 0; l < t.location_count(); ++l) {
    std::vector<trace::Event> kept;
    const auto& events = t.events_of(static_cast<trace::LocId>(l));
    kept.reserve(events.size());
    for (trace::Event e : events) {
      if (e.type == trace::EventType::kRecv && chance(cfg_.drop_recv)) {
        note(FaultKind::kDropRecv);
        continue;
      }
      if (e.type == trace::EventType::kSend && chance(cfg_.drop_send)) {
        note(FaultKind::kDropSend);
        continue;
      }
      if (chance(cfg_.drop_event)) {
        note(FaultKind::kDropEvent);
        continue;
      }
      if (skew[l] != 0) {
        e.t = VTime(e.t.ns() + skew[l]);
        if (e.type == trace::EventType::kCollEnd) {
          e.enter_t = VTime(e.enter_t.ns() + skew[l]);
        }
      }
      if (cfg_.jitter_ns > 0 && chance(cfg_.jitter_events)) {
        e.t = VTime(e.t.ns() +
                           rng_.next_in(-cfg_.jitter_ns, cfg_.jitter_ns));
        note(FaultKind::kTimestampJitter);
      }
      kept.push_back(e);
      if (chance(cfg_.duplicate_event)) {
        kept.push_back(e);
        note(FaultKind::kDuplicateEvent);
      }
    }
    for (std::size_t i = 1; i < kept.size(); ++i) {
      if (chance(cfg_.reorder_events)) {
        std::swap(kept[i - 1], kept[i]);
        note(FaultKind::kReorderEvents);
      }
    }
    for (const trace::Event& e : kept) {
      emit(out, e);
    }
  }
  return out;
}

std::string FaultInjector::corrupt_text(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string& line = lines[i];
    // Only event lines are garbled: they are the overwhelming bulk of a
    // trace, and a single damaged metadata record cascades into dozens of
    // follow-on diagnostics, which would make the injected-vs-detected
    // reconciliation in the fuzz test meaningless.
    if (!is_event_line(line)) continue;
    if (chance(cfg_.bogus_location)) {
      // Rewrite the loc field (second token) to an undeclared id.
      const std::size_t sp = line.find(' ');
      const std::size_t end = line.find(' ', sp + 1);
      if (sp != std::string::npos && end != std::string::npos) {
        line = line.substr(0, sp + 1) +
               std::to_string(1000000 + rng_.next_below(1000)) +
               line.substr(end);
        note(FaultKind::kBogusLocation);
      }
      continue;
    }
    if (chance(cfg_.corrupt_record)) {
      const std::size_t pos = rng_.next_below(line.size());
      switch (rng_.next_below(3)) {
        case 0:  // flip a character
          line[pos] = static_cast<char>('!' + rng_.next_below(90));
          break;
        case 1:  // delete a chunk
          line.erase(pos, rng_.next_below(8) + 1);
          break;
        default:  // splice in junk
          line.insert(pos, "#7z");
          break;
      }
      note(FaultKind::kCorruptRecord);
    }
  }

  std::string out;
  out.reserve(text.size() + 16);
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  if (cfg_.truncate_fraction > 0.0 && cfg_.truncate_fraction < 1.0) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(out.size()) * cfg_.truncate_fraction);
    // Never cut into the header: a headless file is total loss, not
    // degradation.
    const std::size_t header_end = out.find('\n');
    if (header_end != std::string::npos && keep > header_end) {
      out.resize(keep);
      note(FaultKind::kTruncateFile);
    }
  }
  return out;
}

std::string FaultInjector::corrupt_binary(const std::string& bin) {
  std::string out = bin;
  // Walk the container structure (docs/TRACE_FORMAT.md §7) far enough to
  // find the event area; bail out unchanged if the input is malformed
  // already (a pre-damaged file is a different experiment).
  std::size_t pos = 16;  // magic + version + reserved
  const auto get_u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    std::memcpy(&v, out.data() + at, sizeof v);
    return v;
  };
  const auto get_u64 = [&](std::size_t at) {
    std::uint64_t v = 0;
    std::memcpy(&v, out.data() + at, sizeof v);
    return v;
  };
  const auto fits = [&](std::size_t n) { return n <= out.size() - pos; };
  if (out.size() < pos + 8) return bin;

  // regions: u64 count · per region u8 kind + u32 name_len + name
  std::uint64_t n = get_u64(pos);
  pos += 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!fits(5)) return bin;
    const std::uint32_t len = get_u32(pos + 1);
    if (!fits(5 + len)) return bin;
    pos += 5 + len;
  }
  // locations: u64 count · per loc i32 parent + u8 kind + i32 rank +
  // i32 thread + u32 name_len + name
  if (!fits(8)) return bin;
  n = get_u64(pos);
  pos += 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!fits(17)) return bin;
    const std::uint32_t len = get_u32(pos + 13);
    if (!fits(17 + len)) return bin;
    pos += 17 + len;
  }
  // comms: u64 count · per comm u8 kind + u32 member_count + i32 members[]
  // + u32 name_len + name
  if (!fits(8)) return bin;
  n = get_u64(pos);
  pos += 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!fits(5)) return bin;
    const std::uint64_t members = get_u32(pos + 1);
    if (!fits(5 + 4 * members + 4)) return bin;
    const std::uint32_t len = get_u32(pos + 5 + 4 * members);
    if (!fits(5 + 4 * members + 4 + len)) return bin;
    pos += 5 + 4 * members + 4 + len;
  }
  pos = (pos + 7) & ~std::size_t{7};  // zero padding to 8-byte alignment
  if (!fits(8)) return bin;
  const std::uint64_t blocks = get_u64(pos);
  pos += 8;
  const std::size_t event_area = pos;

  // Garble event records in place.  The two corruptions are chosen to be
  // *guaranteed* defects (the loader must diagnose every one), so the
  // reconciliation tests can compare planted vs dropped exactly:
  // corrupt_record writes an invalid type byte (offset 64 in the record),
  // bogus_location an undeclared location id (offset 40).
  constexpr std::size_t kRecord = 72;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (!fits(8)) break;
    const std::uint64_t count = get_u64(pos);
    pos += 8;
    for (std::uint64_t i = 0; i < count && fits(kRecord); ++i, pos += kRecord) {
      if (chance(cfg_.bogus_location)) {
        const std::uint32_t bogus =
            1000000 + static_cast<std::uint32_t>(rng_.next_below(1000));
        std::memcpy(out.data() + pos + 40, &bogus, sizeof bogus);
        note(FaultKind::kBogusLocation);
        continue;
      }
      if (chance(cfg_.corrupt_record)) {
        out[pos + 64] =
            static_cast<char>(0xC0 + rng_.next_below(0x40));
        note(FaultKind::kCorruptRecord);
      }
    }
  }

  if (cfg_.truncate_fraction > 0.0 && cfg_.truncate_fraction < 1.0) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(out.size()) * cfg_.truncate_fraction);
    // Never cut into the tables: a headless file is total loss, not
    // degradation (same policy as corrupt_text).
    if (keep > event_area && keep < out.size()) {
      out.resize(keep);
      note(FaultKind::kTruncateFile);
    }
  }
  return out;
}

FaultConfig FaultInjector::random_config(std::uint64_t seed) {
  Rng r = SplitSeed(seed).child("fault-config").rng();
  FaultConfig c;
  c.seed = seed;
  c.drop_event = r.next_double() * 0.05;
  c.duplicate_event = r.next_double() * 0.05;
  c.reorder_events = r.next_double() * 0.05;
  c.drop_recv = r.next_double() * 0.03;
  c.drop_send = r.next_double() * 0.03;
  if (r.next_double() < 0.5) {
    c.clock_skew_ns = r.next_in(std::int64_t{1}, std::int64_t{20'000'000});
    c.skew_locations = r.next_double();
  }
  if (r.next_double() < 0.5) {
    c.jitter_ns = r.next_in(std::int64_t{1}, std::int64_t{2'000'000});
    c.jitter_events = r.next_double() * 0.25;
  }
  c.corrupt_record = r.next_double() * 0.05;
  c.bogus_location = r.next_double() * 0.02;
  if (r.next_double() < 0.25) {
    c.truncate_fraction = 0.5 + r.next_double() * 0.45;
  }
  return c;
}

}  // namespace ats::faults
