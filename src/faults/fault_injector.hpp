// Deterministic fault injection for trace-robustness testing.
//
// The paper's premise is that a performance tool must be validated on
// inputs with *known* properties.  This module extends that idea to known
// *defects*: a seedable FaultInjector perturbs a pristine trace — in memory
// (event level) or on its serialised text or binary container (record
// level, corrupt_text / corrupt_binary) — and reports
// exactly how many faults of each kind it planted.  The fuzz ctest
// (tests/fault_injection_test.cpp) then checks that the analyzer survives
// every perturbation and that its DataQuality summary reconciles with the
// injection report.  Fault taxonomy and recovery policy: DESIGN.md §7.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace ats::faults {

enum class FaultKind : std::uint8_t {
  // --- event level (FaultInjector::apply) --------------------------------
  kClockSkew,        ///< constant per-location offset on all timestamps
  kTimestampJitter,  ///< random per-event offset (breaks monotonicity)
  kDropEvent,        ///< event removed from the trace
  kDuplicateEvent,   ///< event recorded twice
  kReorderEvents,    ///< two adjacent events of one location swapped
  kDropRecv,         ///< receive removed -> its send stays unmatched
  kDropSend,         ///< send removed -> its receive stays unmatched
  // --- record level (FaultInjector::corrupt_text) ------------------------
  kCorruptRecord,    ///< event line garbled (flip/delete/junk)
  kBogusLocation,    ///< event line rewritten to an undeclared location id
  kTruncateFile,     ///< serialised text cut short
  kCount_,           // sentinel
};

inline constexpr std::size_t kFaultKindCount =
    static_cast<std::size_t>(FaultKind::kCount_);

const char* to_string(FaultKind k);

/// Per-kind knobs; all probabilities in [0, 1], all defaults harmless.
struct FaultConfig {
  std::uint64_t seed = 1;

  // Event-level probabilities, applied per event.
  double drop_event = 0.0;
  double duplicate_event = 0.0;
  double reorder_events = 0.0;
  double drop_recv = 0.0;
  double drop_send = 0.0;

  // Clock faults.
  std::int64_t clock_skew_ns = 0;  ///< max |offset| per skewed location
  double skew_locations = 0.0;     ///< fraction of locations skewed
  std::int64_t jitter_ns = 0;      ///< max |offset| per jittered event
  double jitter_events = 0.0;      ///< fraction of events jittered

  // Record-level probabilities, applied per serialised event line.  The
  // header line is never touched (a destroyed header is total loss, not
  // degradation — tested separately).
  double corrupt_record = 0.0;
  double bogus_location = 0.0;
  /// When in (0, 1): keep only this fraction of the serialised text.
  double truncate_fraction = 0.0;
};

/// What the injector actually did: one counter per fault kind.
struct InjectionReport {
  std::array<std::size_t, kFaultKindCount> counts{};

  std::size_t count(FaultKind k) const {
    return counts[static_cast<std::size_t>(k)];
  }
  std::size_t total() const;
  /// One line per non-zero kind ("drop-event: 12\n...").
  std::string str() const;
};

/// Deterministic: the same config (incl. seed) applied to the same trace
/// plants the same faults.  apply() and corrupt_text() share one stream, so
/// an injector instance is single-use per reproduction.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  /// Event-level perturbation: returns a perturbed copy of `t` (metadata
  /// intact, events dropped/duplicated/reordered/skewed per config).
  trace::Trace apply(const trace::Trace& t);

  /// Record-level perturbation of a serialised trace (Trace::save output).
  std::string corrupt_text(const std::string& text);

  /// Record-level perturbation of a *binary* container
  /// (Trace::save_binary output, docs/TRACE_FORMAT.md §7).  Same config
  /// knobs and fault taxonomy as corrupt_text: corrupt_record garbles a
  /// record's type byte (a guaranteed bad-enum defect), bogus_location
  /// rewrites a record's location field to an undeclared id, and
  /// truncate_fraction cuts the tail of the event area.  The header and
  /// the string tables are never touched, mirroring corrupt_text's
  /// header policy.  Input that is too short to hold an event area is
  /// returned unchanged.
  std::string corrupt_binary(const std::string& bin);

  const InjectionReport& report() const { return report_; }

  /// A moderate mixed-fault configuration derived from `seed`, for seeded
  /// fuzz sweeps.
  static FaultConfig random_config(std::uint64_t seed);

 private:
  bool chance(double p) { return p > 0.0 && rng_.next_double() < p; }
  void note(FaultKind k) { ++report_.counts[static_cast<std::size_t>(k)]; }

  FaultConfig cfg_;
  InjectionReport report_;
  Rng rng_;
};

}  // namespace ats::faults
