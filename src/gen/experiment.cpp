#include "gen/experiment.hpp"

#include <sstream>

#include "common/parallel.hpp"
#include "common/strutil.hpp"

namespace ats::gen {

namespace {

/// First line of a (possibly multi-line) error message.
std::string first_line(const char* what) {
  const std::string s(what);
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

bool any_cell_failed(const std::vector<ExperimentRow>& rows) {
  for (const auto& r : rows) {
    if (r.outcome != RunOutcome::kOk) return true;
  }
  return false;
}

ExperimentRow run_experiment_cell(const ExperimentPlan& plan,
                                  const PropertyDef& def,
                                  const std::string& value) {
  ParamMap pm = plan.base;
  RunConfig cfg = plan.config;
  if (plan.axis.param == "np") {
    ParamMap tmp;
    tmp.set("np", value);
    cfg.nprocs = tmp.get_int("np", cfg.nprocs);
  } else {
    pm.set(plan.axis.param, value);
  }

  ExperimentRow row;
  row.value = value;
  row.dominant = "-";
  try {
    const trace::Trace tr = run_single_property(def, pm, cfg);
    try {
      const auto result = analyze::analyze(tr, plan.analyzer);
      row.total_time = result.total_time;
      if (def.expected.has_value()) {
        row.severity = result.cube.total(*def.expected);
        row.fraction = result.total_time > VDur::zero()
                           ? row.severity / result.total_time
                           : 0.0;
      }
      const auto dom = result.dominant();
      row.dominant = dom ? analyze::property_name(dom->prop) : "-";
      row.detected =
          def.expected.has_value() && dom && dom->prop == *def.expected;
    } catch (const Error& e) {
      row.outcome = RunOutcome::kAnalysisError;
      row.note = first_line(e.what());
    }
  } catch (const DeadlockError& e) {
    row.outcome = RunOutcome::kDeadlock;
    row.note = first_line(e.what());
  } catch (const HangError& e) {
    row.outcome = RunOutcome::kHang;
    row.note = first_line(e.what());
  } catch (const MpiError& e) {
    row.outcome = RunOutcome::kMpiError;
    row.note = first_line(e.what());
  } catch (const OmpError& e) {
    row.outcome = RunOutcome::kMpiError;
    row.note = first_line(e.what());
  }
  // Plain UsageError (bad parameters, nprocs < min_procs) is plan misuse,
  // not a runtime fault: it propagates to the caller.
  return row;
}

std::vector<ExperimentRow> run_experiment(const ExperimentPlan& plan) {
  const PropertyDef& def = Registry::instance().find(plan.property);
  require(!plan.axis.param.empty(), "experiment: sweep axis has no name");
  require(!plan.axis.values.empty(), "experiment: sweep axis has no values");

  // Each cell simulates, analyzes, and writes exactly one pre-sized slot;
  // cells share only the immutable plan, so the row vector is identical for
  // any worker count.
  std::vector<ExperimentRow> rows(plan.axis.values.size());
  par::ThreadPool pool(plan.jobs);
  pool.parallel_for(plan.axis.values.size(), [&](std::size_t i) {
    rows[i] = run_experiment_cell(plan, def, plan.axis.values[i]);
  });
  return rows;
}

std::string experiment_csv(const ExperimentPlan& plan,
                           const std::vector<ExperimentRow>& rows) {
  // The outcome/attempts columns appear only when some cell failed, so a
  // clean sweep's CSV stays byte-identical to the historical format.
  const bool failed = any_cell_failed(rows);
  std::ostringstream os;
  os << plan.axis.param
     << ",severity_sec,fraction,detected,dominant,total_sec";
  if (failed) os << ",outcome,attempts";
  os << "\n";
  for (const auto& r : rows) {
    os << r.value << ',' << fmt_double(r.severity.sec(), 9) << ','
       << fmt_double(r.fraction, 6) << ',' << (r.detected ? 1 : 0) << ','
       << r.dominant << ',' << fmt_double(r.total_time.sec(), 9);
    if (failed) os << ',' << to_string(r.outcome) << ',' << r.attempts;
    os << "\n";
  }
  return os.str();
}

std::string experiment_table(const ExperimentPlan& plan,
                             const std::vector<ExperimentRow>& rows) {
  const bool failed = any_cell_failed(rows);
  std::ostringstream os;
  os << "sweep of '" << plan.property << "' over " << plan.axis.param
     << "\n";
  os << pad_right(plan.axis.param, 26) << pad_left("severity", 12)
     << pad_left("share", 8) << pad_left("detected", 10);
  if (failed) os << pad_left("outcome", 16);
  os << "  dominant\n" << repeat('-', failed ? 92 : 76) << "\n";
  for (const auto& r : rows) {
    os << pad_right(r.value, 26) << pad_left(r.severity.str(), 12)
       << pad_left(fmt_percent(r.fraction, 1), 8)
       << pad_left(r.detected ? "yes" : "no", 10);
    if (failed) os << pad_left(to_string(r.outcome), 16);
    os << "  " << r.dominant << "\n";
  }
  return os.str();
}

}  // namespace ats::gen
