// Parameter-sweep experiment management (paper §3.2).
//
// "More extensive experiments based on these synthetic test programs can
// then be executed through scripting languages or through automatic
// experiment management systems, such as ZENTURIO."  This module is that
// facility in-library: an ExperimentPlan names a property function, a base
// configuration and one sweep axis; run_experiment executes the grid and
// reports, per point, the measured severity of the expected property and
// whether the analyzer detected it — ready for CSV export.
#pragma once

#include <string>
#include <vector>

#include "gen/registry.hpp"

namespace ats::gen {

/// One swept parameter: a property parameter name (or "np" for the process
/// count) and the values to try.
struct SweepAxis {
  std::string param;
  std::vector<std::string> values;
};

struct ExperimentPlan {
  std::string property;
  /// Base parameters; the axis value overrides its key per run.
  ParamMap base;
  SweepAxis axis;
  RunConfig config{};
  analyze::AnalyzerOptions analyzer{};
  /// Worker threads for the sweep: every grid cell is an independent
  /// deterministic simulation, so cells fan out across a thread pool and
  /// write into pre-sized row slots — output is bit-identical to a
  /// sequential run.  0 = ATS_JOBS / hardware_concurrency (par::default_jobs),
  /// 1 = forced sequential (the determinism-test reference path).
  int jobs = 0;
};

struct ExperimentRow {
  std::string value;          ///< the axis value of this run
  VDur severity;              ///< measured severity of the expected property
  double fraction = 0.0;      ///< severity / total time
  bool detected = false;      ///< dominant finding == expected property
  std::string dominant;       ///< name of the dominant finding ("-" if none)
  VDur total_time;
  /// How the cell ended.  Failed cells (outcome != kOk) keep zero severity
  /// and dominant "-"; `note` carries the first line of the error.
  RunOutcome outcome = RunOutcome::kOk;
  /// Simulation attempts spent on the cell (1 without a retrying runner).
  int attempts = 1;
  std::string note;
};

/// True iff any row failed — the condition under which the CSV/table
/// renderers append the outcome column (clean sweeps keep the historical,
/// byte-identical format).
bool any_cell_failed(const std::vector<ExperimentRow>& rows);

/// Runs one grid cell: applies `value` to the axis parameter, simulates,
/// analyzes, classifies.  Deadlocks, hangs and runtime faults are caught
/// and recorded in the row's outcome; plan-level misuse (unknown
/// parameters, nprocs below the property minimum) still throws UsageError.
ExperimentRow run_experiment_cell(const ExperimentPlan& plan,
                                  const PropertyDef& def,
                                  const std::string& value);

/// Runs the sweep; one row per axis value, in order.  Cells run in
/// parallel per ExperimentPlan::jobs; results are independent of the
/// worker count.  Failed cells degrade to rows with a non-kOk outcome
/// instead of aborting the sweep.
std::vector<ExperimentRow> run_experiment(const ExperimentPlan& plan);

/// Renders rows as CSV (header + one line per row).
std::string experiment_csv(const ExperimentPlan& plan,
                           const std::vector<ExperimentRow>& rows);

/// Renders rows as an aligned text table.
std::string experiment_table(const ExperimentPlan& plan,
                             const std::vector<ExperimentRow>& rows);

}  // namespace ats::gen
