#include "gen/params.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strutil.hpp"

namespace ats::gen {

const char* to_string(ParamKind k) {
  switch (k) {
    case ParamKind::kDouble: return "double";
    case ParamKind::kInt: return "int";
    case ParamKind::kDistr: return "distribution";
  }
  return "?";
}

namespace {

double parse_double(const std::string& s, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw UsageError("cannot parse '" + s + "' as a number for " + what);
  }
  return v;
}

int parse_int(const std::string& s, const std::string& what) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw UsageError("cannot parse '" + s + "' as an integer for " + what);
  }
  return static_cast<int>(v);
}

}  // namespace

core::Distribution parse_distribution(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string fname = spec.substr(0, colon);
  core::Distribution d;
  d.fn = core::distr_func_by_name(fname);

  std::map<std::string, std::string> fields;
  if (colon != std::string::npos) {
    for (const std::string& part : split(spec.substr(colon + 1), ',')) {
      if (part.empty()) continue;
      const auto eq = part.find('=');
      if (eq == std::string::npos) {
        throw UsageError("bad distribution field '" + part + "' in '" +
                         spec + "'");
      }
      fields[part.substr(0, eq)] = part.substr(eq + 1);
    }
  }
  auto field = [&](const char* name, double def) {
    const auto it = fields.find(name);
    return it == fields.end() ? def : parse_double(it->second, name);
  };

  if (fname == "same") {
    d.desc = core::Val1{field("val", 0.0)};
  } else if (fname == "peak") {
    core::Val2N v;
    v.low = field("low", 0.0);
    v.high = field("high", 0.0);
    const auto it = fields.find("n");
    v.n = it == fields.end() ? 0 : parse_int(it->second, "n");
    d.desc = v;
  } else if (fname == "cyclic3" || fname == "block3") {
    core::Val3 v;
    v.low = field("low", 0.0);
    v.med = field("med", 0.0);
    v.high = field("high", 0.0);
    d.desc = v;
  } else if (fname == "custom") {
    const auto it = fields.find("values");
    if (it == fields.end()) {
      throw UsageError("custom distribution needs values=v1;v2;...");
    }
    core::ValTable table;
    for (const std::string& s : split(it->second, ';')) {
      if (!s.empty()) table.push_back(parse_double(s, "values"));
    }
    d.desc = std::move(table);
  } else {
    d.desc = core::Val2{field("low", 0.0), field("high", 0.0)};
  }
  return d;
}

std::string format_distribution(const core::Distribution& d) {
  const std::string fname = core::distr_func_name(d.fn);
  std::string out = fname;
  if (const auto* v1 = std::get_if<core::Val1>(&d.desc)) {
    out += ":val=" + fmt_double(v1->val, 6);
  } else if (const auto* v2 = std::get_if<core::Val2>(&d.desc)) {
    out += ":low=" + fmt_double(v2->low, 6) + ",high=" +
           fmt_double(v2->high, 6);
  } else if (const auto* v2n = std::get_if<core::Val2N>(&d.desc)) {
    out += ":low=" + fmt_double(v2n->low, 6) + ",high=" +
           fmt_double(v2n->high, 6) + ",n=" + std::to_string(v2n->n);
  } else if (const auto* v3 = std::get_if<core::Val3>(&d.desc)) {
    out += ":low=" + fmt_double(v3->low, 6) + ",med=" +
           fmt_double(v3->med, 6) + ",high=" + fmt_double(v3->high, 6);
  } else if (const auto* t = std::get_if<core::ValTable>(&d.desc)) {
    out += ":values=";
    for (std::size_t i = 0; i < t->size(); ++i) {
      if (i != 0) out += ';';
      out += fmt_double((*t)[i], 6);
    }
  }
  return out;
}

ParamMap ParamMap::parse(std::span<const std::string> args) {
  ParamMap m;
  for (const std::string& a : args) {
    const auto eq = a.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw UsageError("expected key=value, got '" + a + "'");
    }
    m.kv_[a.substr(0, eq)] = a.substr(eq + 1);
  }
  return m;
}

void ParamMap::set(const std::string& key, const std::string& value) {
  kv_[key] = value;
}

bool ParamMap::has(const std::string& key) const {
  return kv_.count(key) != 0;
}

std::vector<std::string> ParamMap::keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) out.push_back(k);
  return out;
}

double ParamMap::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : parse_double(it->second, key);
}

int ParamMap::get_int(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : parse_int(it->second, key);
}

core::Distribution ParamMap::get_distr(const std::string& key,
                                       const std::string& def_spec) const {
  const auto it = kv_.find(key);
  return parse_distribution(it == kv_.end() ? def_spec : it->second);
}

std::string ParamMap::get_raw(const std::string& key,
                              const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

void ParamMap::check_against(std::span<const ParamSpec> specs) const {
  for (const auto& [k, v] : kv_) {
    const bool known =
        std::any_of(specs.begin(), specs.end(),
                    [&](const ParamSpec& s) { return s.name == k; });
    if (!known) {
      std::string names;
      for (const auto& s : specs) {
        if (!names.empty()) names += ", ";
        names += s.name;
      }
      throw UsageError("unknown parameter '" + k + "' (expected one of: " +
                       names + ")");
    }
  }
}

}  // namespace ats::gen
