// Typed parameter handling for generated single-property test programs.
//
// The paper (§3.2) envisions generating driver programs from property
// function signatures that "read the necessary property parameters from the
// command line".  ParamMap implements that: "key=value" strings parsed into
// doubles, ints, and distribution specifications of the form
//   <func>:<field>=<value>,...      e.g.  linear:low=0.01,high=0.05
//                                          peak:low=0.01,high=0.1,n=2
//                                          custom:values=1;2;3
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/distribution.hpp"

namespace ats::gen {

enum class ParamKind : std::uint8_t { kDouble, kInt, kDistr };

const char* to_string(ParamKind k);

struct ParamSpec {
  std::string name;
  ParamKind kind = ParamKind::kDouble;
  std::string default_value;
  std::string help;
};

/// Parses "<func>:k=v,k=v" into a Distribution.
core::Distribution parse_distribution(const std::string& spec);
/// Renders a Distribution back into spec syntax (predefined functions only).
std::string format_distribution(const core::Distribution& d);

class ParamMap {
 public:
  ParamMap() = default;

  /// Parses "key=value" tokens; throws UsageError on malformed input.
  static ParamMap parse(std::span<const std::string> args);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;
  /// Keys present in the map, sorted.
  std::vector<std::string> keys() const;

  /// Typed getters; fall back to `def` when the key is absent.
  double get_double(const std::string& key, double def) const;
  int get_int(const std::string& key, int def) const;
  core::Distribution get_distr(const std::string& key,
                               const std::string& def_spec) const;
  std::string get_raw(const std::string& key, const std::string& def) const;

  /// Validates that every key matches a spec name; throws otherwise.
  void check_against(std::span<const ParamSpec> specs) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace ats::gen
