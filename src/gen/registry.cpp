#include "gen/registry.hpp"

#include <algorithm>

#include "common/strutil.hpp"

namespace ats::gen {

const char* to_string(Paradigm p) {
  switch (p) {
    case Paradigm::kMpi: return "mpi";
    case Paradigm::kOmp: return "omp";
    case Paradigm::kHybrid: return "hybrid";
    case Paradigm::kSeq: return "sequential";
  }
  return "?";
}

const char* to_string(RunOutcome o) {
  switch (o) {
    case RunOutcome::kOk: return "ok";
    case RunOutcome::kDeadlock: return "deadlock";
    case RunOutcome::kHang: return "hang";
    case RunOutcome::kMpiError: return "mpi_error";
    case RunOutcome::kAnalysisError: return "analysis_error";
  }
  return "?";
}

int exit_code(RunOutcome o) {
  switch (o) {
    case RunOutcome::kOk: return kExitOk;
    case RunOutcome::kDeadlock: return kExitDeadlock;
    case RunOutcome::kHang: return kExitHang;
    case RunOutcome::kMpiError: return kExitMpiError;
    case RunOutcome::kAnalysisError: return kExitAnalysisError;
  }
  return kExitFailure;
}

std::span<const ExitCodeEntry> exit_code_table() {
  static constexpr ExitCodeEntry kTable[] = {
      {kExitOk, "ok", "clean run / clean analysis"},
      {kExitFailure, "failure", "generic failure (unreadable input, I/O)"},
      {kExitUsage, "usage", "bad command line or API misuse"},
      {kExitDeadlock, "deadlock", "simulation deadlocked (all ranks blocked)"},
      {kExitHang, "hang", "a supervision budget was exhausted"},
      {kExitMpiError, "mpi_error", "simulated-runtime violation or injected crash"},
      {kExitAnalysisError, "analysis_error", "trace produced but the analyzer failed"},
      {kExitDefectsFound, "defects_found",
       "structural collective defects reported (docs/DEFECTS.md)"},
      {kExitShed, "shed", "analysis service shed the request; retry later"},
      {kExitDiffRegression, "diff_regression",
       "cross-run diff found above-threshold deltas (docs/DIFF.md)"},
  };
  return kTable;
}

std::string exit_code_help() {
  std::string out = "exit codes:\n";
  for (const ExitCodeEntry& e : exit_code_table()) {
    out += "  " + std::to_string(e.code) + "  " + pad_right(e.name, 16) +
           e.meaning + "\n";
  }
  return out;
}

namespace {

using analyze::PropertyId;
using core::PropCtx;

ParamMap pm(std::initializer_list<std::pair<const char*, const char*>> kv) {
  ParamMap m;
  for (const auto& [k, v] : kv) m.set(k, v);
  return m;
}

std::vector<ParamSpec> work_params() {
  return {
      {"basework", ParamKind::kDouble, "0.01",
       "seconds of computation every rank performs per iteration"},
      {"extrawork", ParamKind::kDouble, "0.05",
       "additional seconds injected to create the wait state"},
      {"r", ParamKind::kInt, "3", "repetition count"},
  };
}

std::vector<ParamSpec> root_params() {
  auto p = work_params();
  p.push_back({"root", ParamKind::kInt, "0", "root rank of the collective"});
  return p;
}

std::vector<ParamSpec> distr_params() {
  return {
      {"df", ParamKind::kDistr, "linear:low=0.01,high=0.06",
       "work distribution over the ranks/threads"},
      {"r", ParamKind::kInt, "3", "repetition count"},
  };
}

std::vector<ParamSpec> omp_extra(std::vector<ParamSpec> p) {
  p.push_back({"nthreads", ParamKind::kInt, "4", "OpenMP team size"});
  return p;
}

}  // namespace

Registry::Registry() {
  const char* kDfPositive = "linear:low=0.01,high=0.06";
  const char* kDfNegative = "same:val=0.02";

  auto add = [&](PropertyDef def) { defs_.push_back(std::move(def)); };

  // ------------------------------------------------- MPI point-to-point
  add({.name = "late_sender",
       .paradigm = Paradigm::kMpi,
       .brief = "receives block because matching sends start late",
       .params = work_params(),
       .expected = PropertyId::kLateSender,
       .positive = pm({{"basework", "0.01"}, {"extrawork", "0.05"}}),
       .negative = pm({{"basework", "0.02"}, {"extrawork", "0"}}),
       .min_procs = 2,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::late_sender(c, m.get_double("basework", 0.01),
                               m.get_double("extrawork", 0.05),
                               m.get_int("r", 3), c.mpi_proc().comm_world());
           }});
  add({.name = "late_receiver",
       .paradigm = Paradigm::kMpi,
       .brief = "rendezvous sends block because receivers post late",
       .params = work_params(),
       .expected = PropertyId::kLateReceiver,
       .positive = pm({{"basework", "0.01"}, {"extrawork", "0.05"}}),
       .negative = pm({{"basework", "0.02"}, {"extrawork", "0"}}),
       .min_procs = 2,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::late_receiver(c, m.get_double("basework", 0.01),
                                 m.get_double("extrawork", 0.05),
                                 m.get_int("r", 3),
                                 c.mpi_proc().comm_world());
           }});
  add({.name = "late_sender_wrong_order",
       .paradigm = Paradigm::kMpi,
       .brief = "late sender with messages arriving out of order",
       .params = work_params(),
       .expected = PropertyId::kLateSenderWrongOrder,
       .positive = pm({{"basework", "0.01"}, {"extrawork", "0.05"}}),
       .negative = pm({{"basework", "0.02"}, {"extrawork", "0"}}),
       .min_procs = 2,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::late_sender_wrong_order(
                 c, m.get_double("basework", 0.01),
                 m.get_double("extrawork", 0.05), m.get_int("r", 3),
                 c.mpi_proc().comm_world());
           }});

  // ---------------------------------------------------- MPI collectives
  auto add_nxn = [&](const char* name, PropertyId expected, auto fn) {
    add({.name = name,
         .paradigm = Paradigm::kMpi,
         .brief = "imbalanced work before an N-to-N collective",
         .params = distr_params(),
         .expected = expected,
         .positive = pm({{"df", kDfPositive}}),
         .negative = pm({{"df", kDfNegative}}),
         .min_procs = 2,
         .invoke = [fn](PropCtx& c, const ParamMap& m) {
           fn(c, m.get_distr("df", "linear:low=0.01,high=0.06"),
              m.get_int("r", 3), c.mpi_proc().comm_world());
         }});
  };
  add_nxn("imbalance_at_mpi_barrier", PropertyId::kWaitAtBarrier,
          [](PropCtx& c, const core::Distribution& d, int r, mpi::Comm& cm) {
            core::imbalance_at_mpi_barrier(c, d, r, cm);
          });
  add_nxn("imbalance_at_mpi_alltoall", PropertyId::kWaitAtNxN,
          [](PropCtx& c, const core::Distribution& d, int r, mpi::Comm& cm) {
            core::imbalance_at_mpi_alltoall(c, d, r, cm);
          });
  add_nxn("imbalance_at_mpi_allreduce", PropertyId::kWaitAtNxN,
          [](PropCtx& c, const core::Distribution& d, int r, mpi::Comm& cm) {
            core::imbalance_at_mpi_allreduce(c, d, r, cm);
          });
  add_nxn("imbalance_at_mpi_allgather", PropertyId::kWaitAtNxN,
          [](PropCtx& c, const core::Distribution& d, int r, mpi::Comm& cm) {
            core::imbalance_at_mpi_allgather(c, d, r, cm);
          });
  add_nxn("imbalance_at_mpi_scan", PropertyId::kWaitAtNxN,
          [](PropCtx& c, const core::Distribution& d, int r, mpi::Comm& cm) {
            core::imbalance_at_mpi_scan(c, d, r, cm);
          });
  add_nxn("imbalance_at_mpi_reduce_scatter", PropertyId::kWaitAtNxN,
          [](PropCtx& c, const core::Distribution& d, int r, mpi::Comm& cm) {
            core::imbalance_at_mpi_reduce_scatter(c, d, r, cm);
          });

  auto add_rooted = [&](const char* name, PropertyId expected,
                        const char* brief, auto fn) {
    add({.name = name,
         .paradigm = Paradigm::kMpi,
         .brief = brief,
         .params = root_params(),
         .expected = expected,
         .positive = pm({{"basework", "0.01"}, {"extrawork", "0.05"}}),
         .negative = pm({{"basework", "0.02"}, {"extrawork", "0"}}),
         .min_procs = 2,
         .invoke = [fn](PropCtx& c, const ParamMap& m) {
           fn(c, m.get_double("basework", 0.01),
              m.get_double("extrawork", 0.05), m.get_int("root", 0),
              m.get_int("r", 3), c.mpi_proc().comm_world());
         }});
  };
  add_rooted("late_broadcast", PropertyId::kLateBroadcast,
             "non-roots wait in MPI_Bcast for a late root",
             [](PropCtx& c, double b, double e, int root, int r,
                mpi::Comm& cm) { core::late_broadcast(c, b, e, root, r, cm); });
  add_rooted("late_scatter", PropertyId::kLateScatter,
             "non-roots wait in MPI_Scatter for a late root",
             [](PropCtx& c, double b, double e, int root, int r,
                mpi::Comm& cm) { core::late_scatter(c, b, e, root, r, cm); });
  add_rooted("late_scatterv", PropertyId::kLateScatter,
             "non-roots wait in MPI_Scatterv for a late root",
             [](PropCtx& c, double b, double e, int root, int r,
                mpi::Comm& cm) { core::late_scatterv(c, b, e, root, r, cm); });
  add_rooted("early_reduce", PropertyId::kEarlyReduce,
             "the root waits in MPI_Reduce for late contributors",
             [](PropCtx& c, double b, double e, int root, int r,
                mpi::Comm& cm) { core::early_reduce(c, b, e, root, r, cm); });
  add_rooted("early_gather", PropertyId::kEarlyGather,
             "the root waits in MPI_Gather for late contributors",
             [](PropCtx& c, double b, double e, int root, int r,
                mpi::Comm& cm) { core::early_gather(c, b, e, root, r, cm); });
  add_rooted("early_gatherv", PropertyId::kEarlyGather,
             "the root waits in MPI_Gatherv for late contributors",
             [](PropCtx& c, double b, double e, int root, int r,
                mpi::Comm& cm) { core::early_gatherv(c, b, e, root, r, cm); });

  // ------------------------------------------------------------- OpenMP
  auto add_omp_distr = [&](const char* name, PropertyId expected, auto fn) {
    add({.name = name,
         .paradigm = Paradigm::kOmp,
         .brief = "imbalanced work inside an OpenMP construct",
         .params = omp_extra(distr_params()),
         .expected = expected,
         .positive = pm({{"df", kDfPositive}}),
         .negative = pm({{"df", kDfNegative}}),
         .min_procs = 1,
         .uses_openmp = true,
         .invoke = [fn](PropCtx& c, const ParamMap& m) {
           fn(c, m.get_distr("df", "linear:low=0.01,high=0.06"),
              m.get_int("r", 3), m.get_int("nthreads", 4));
         }});
  };
  add_omp_distr("imbalance_in_omp_pregion",
                PropertyId::kImbalanceInParallelRegion,
                [](PropCtx& c, const core::Distribution& d, int r, int n) {
                  core::imbalance_in_omp_pregion(c, d, r, n);
                });
  add_omp_distr("imbalance_at_omp_barrier", PropertyId::kWaitAtOmpBarrier,
                [](PropCtx& c, const core::Distribution& d, int r, int n) {
                  core::imbalance_at_omp_barrier(c, d, r, n);
                });
  add_omp_distr("imbalance_in_omp_loop", PropertyId::kImbalanceInOmpLoop,
                [](PropCtx& c, const core::Distribution& d, int r, int n) {
                  core::imbalance_in_omp_loop(c, d, r, n);
                });
  add_omp_distr("imbalance_in_omp_sections",
                PropertyId::kImbalanceInOmpSections,
                [](PropCtx& c, const core::Distribution& d, int r, int n) {
                  core::imbalance_in_omp_sections(c, d, r, n);
                });

  add({.name = "omp_lock_contention",
       .paradigm = Paradigm::kOmp,
       .brief = "threads contend for one critical section",
       .params = omp_extra({{"holdwork", ParamKind::kDouble, "0.02",
                             "seconds the critical section is held"},
                            {"r", ParamKind::kInt, "3", "repetitions"}}),
       .expected = PropertyId::kOmpLockContention,
       .positive = pm({{"holdwork", "0.02"}}),
       .negative = pm({{"holdwork", "0.02"}, {"nthreads", "1"}}),
       .min_procs = 1,
       .uses_openmp = true,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::omp_lock_contention(c, m.get_double("holdwork", 0.02),
                                       m.get_int("r", 3),
                                       m.get_int("nthreads", 4));
           }});
  add({.name = "serialization_in_omp_single",
       .paradigm = Paradigm::kOmp,
       .brief = "one thread works in a single construct, the team waits",
       .params = omp_extra({{"singlework", ParamKind::kDouble, "0.03",
                             "seconds of work inside the single construct"},
                            {"r", ParamKind::kInt, "3", "repetitions"}}),
       .expected = PropertyId::kImbalanceInOmpSingle,
       .positive = pm({{"singlework", "0.03"}}),
       .negative = pm({{"singlework", "0.03"}, {"nthreads", "1"}}),
       .min_procs = 1,
       .uses_openmp = true,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::serialization_in_omp_single(
                 c, m.get_double("singlework", 0.03), m.get_int("r", 3),
                 m.get_int("nthreads", 4));
           }});

  add({.name = "omp_idle_threads",
       .paradigm = Paradigm::kOmp,
       .brief = "serial master phases leave the worker CPUs idle",
       .params = omp_extra({{"serialwork", ParamKind::kDouble, "0.04",
                             "seconds of serial (master-only) work"},
                            {"parallelwork", ParamKind::kDouble, "0.01",
                             "seconds of parallel work per thread"},
                            {"r", ParamKind::kInt, "3", "repetitions"}}),
       .expected = PropertyId::kOmpIdleThreads,
       .positive = pm({{"serialwork", "0.04"}, {"parallelwork", "0.01"}}),
       .negative = pm({{"serialwork", "0.04"},
                       {"parallelwork", "0.01"},
                       {"nthreads", "1"}}),
       .min_procs = 1,
       .uses_openmp = true,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::omp_idle_threads(c, m.get_double("serialwork", 0.04),
                                    m.get_double("parallelwork", 0.01),
                                    m.get_int("r", 3),
                                    m.get_int("nthreads", 4));
           }});

  // ------------------------------------------------------------- hybrid
  add({.name = "hybrid_mpi_in_omp_master",
       .paradigm = Paradigm::kHybrid,
       .brief = "MPI exchange in the OpenMP master while the team waits",
       .params = omp_extra({{"basework", ParamKind::kDouble, "0.01",
                             "per-thread compute seconds"},
                            {"masterextra", ParamKind::kDouble, "0.04",
                             "seconds of master-only MPI-phase work"},
                            {"r", ParamKind::kInt, "3", "repetitions"}}),
       .expected = PropertyId::kWaitAtOmpBarrier,
       .positive = pm({{"basework", "0.01"}, {"masterextra", "0.04"}}),
       .negative = pm({{"basework", "0.02"}, {"masterextra", "0"}}),
       .min_procs = 2,
       .uses_openmp = true,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::hybrid_mpi_in_omp_master(
                 c, m.get_double("basework", 0.01),
                 m.get_double("masterextra", 0.04), m.get_int("r", 3),
                 c.mpi_proc().comm_world(), m.get_int("nthreads", 4));
           }});
  add({.name = "hybrid_late_sender_in_pregion",
       .paradigm = Paradigm::kHybrid,
       .brief = "late sender whose delay stems from an OpenMP phase",
       .params = omp_extra(work_params()),
       .expected = PropertyId::kLateSender,
       .positive = pm({{"basework", "0.01"}, {"extrawork", "0.05"}}),
       .negative = pm({{"basework", "0.02"}, {"extrawork", "0"}}),
       .min_procs = 2,
       .uses_openmp = true,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::hybrid_late_sender_in_pregion(
                 c, m.get_double("basework", 0.01),
                 m.get_double("extrawork", 0.05), m.get_int("r", 3),
                 c.mpi_proc().comm_world(), m.get_int("nthreads", 4));
           }});

  // --------------------------------------------------------- sequential
  auto add_seq = [&](const char* name, const char* brief, auto fn) {
    add({.name = name,
         .paradigm = Paradigm::kSeq,
         .brief = brief,
         .params = {{"work", ParamKind::kDouble, "0.02",
                     "seconds per repetition"},
                    {"r", ParamKind::kInt, "3", "repetitions"}},
         .expected = std::nullopt,  // no wait state; a counter-based
                                    // sequential pattern would be needed
         .positive = pm({{"work", "0.02"}}),
         .negative = pm({{"work", "0.02"}}),
         .min_procs = 1,
         .invoke = [fn](PropCtx& c, const ParamMap& m) {
           fn(c, m.get_double("work", 0.02), m.get_int("r", 3));
         }});
  };
  add_seq("sequential_memory_bound",
          "memory-latency-bound compute phase (busy mode: pointer chase)",
          [](PropCtx& c, double w, int r) {
            core::sequential_memory_bound(c, w, r);
          });
  add_seq("sequential_compute_bound",
          "compute-bound phase (busy mode: register FP chain)",
          [](PropCtx& c, double w, int r) {
            core::sequential_compute_bound(c, w, r);
          });

  // -------------------------------------------- negative (well-tuned)
  add({.name = "balanced_mpi_stencil",
       .paradigm = Paradigm::kMpi,
       .brief = "well-tuned nearest-neighbour exchange (no property)",
       .params = {{"work", ParamKind::kDouble, "0.02",
                   "balanced per-rank compute seconds"},
                  {"r", ParamKind::kInt, "3", "repetitions"}},
       .expected = std::nullopt,
       .positive = pm({{"work", "0.02"}}),
       .negative = pm({{"work", "0.02"}}),
       .min_procs = 2,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::balanced_mpi_stencil(c, m.get_double("work", 0.02),
                                        m.get_int("r", 3),
                                        c.mpi_proc().comm_world());
           }});
  add({.name = "balanced_collectives",
       .paradigm = Paradigm::kMpi,
       .brief = "well-tuned barrier + allreduce phases (no property)",
       .params = {{"work", ParamKind::kDouble, "0.02",
                   "balanced per-rank compute seconds"},
                  {"r", ParamKind::kInt, "3", "repetitions"}},
       .expected = std::nullopt,
       .positive = pm({{"work", "0.02"}}),
       .negative = pm({{"work", "0.02"}}),
       .min_procs = 2,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::balanced_collectives(c, m.get_double("work", 0.02),
                                        m.get_int("r", 3),
                                        c.mpi_proc().comm_world());
           }});
  add({.name = "balanced_omp_loop",
       .paradigm = Paradigm::kOmp,
       .brief = "well-tuned OpenMP loop (no property)",
       .params = omp_extra({{"work", ParamKind::kDouble, "0.02",
                             "balanced per-thread compute seconds"},
                            {"r", ParamKind::kInt, "3", "repetitions"}}),
       .expected = std::nullopt,
       .positive = pm({{"work", "0.02"}}),
       .negative = pm({{"work", "0.02"}}),
       .min_procs = 1,
       .uses_openmp = true,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::balanced_omp_loop(c, m.get_double("work", 0.02),
                                     m.get_int("r", 3),
                                     m.get_int("nthreads", 4));
           }});

  // ------------------------------------- pathological (fault scenarios)
  // Programs that exhibit a known *failure* instead of a known property:
  // the paper's negative-test idea extended to fault classes a tool (and
  // this suite's own runner) must survive and classify.  expected_outcome
  // declares the failure; Registry::names() excludes these, so only
  // supervised callers (src/runner, bench/tab_detection_matrix) reach
  // them.
  add({.name = "pathological_deadlock",
       .paradigm = Paradigm::kMpi,
       .brief = "every rank receives from its neighbour; nobody sends",
       .params = {{"tag", ParamKind::kInt, "0",
                   "message tag of the never-matched receive"}},
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 2,
       .expected_outcome = RunOutcome::kDeadlock,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             mpi::Proc& p = c.mpi_proc();
             mpi::Comm& cm = p.comm_world();
             int buf = 0;
             const int peer = (p.rank(cm) + 1) % cm.size();
             p.recv(&buf, 1, mpi::Datatype::kInt32, peer,
                    m.get_int("tag", 0), cm);
           }});
  add({.name = "pathological_hang",
       .paradigm = Paradigm::kMpi,
       .brief = "an infinite compute loop; virtual time grows unbounded",
       .params = {{"step", ParamKind::kDouble, "0.001",
                   "virtual seconds advanced per loop iteration"}},
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 1,
       .expected_outcome = RunOutcome::kHang,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             const VDur step = VDur::seconds(m.get_double("step", 0.001));
             for (;;) c.sim->advance(step);
           }});
  // --------------------------------- defect program family (collectives)
  // Structurally incorrect programs for the collective-correctness checker
  // (docs/DEFECTS.md).  expected_defect names the StructuralDefect the
  // checker must report; expected_outcome states how the *runtime* reacts.
  // Like the pathological entries they are excluded from names(); the
  // golden defect sweep (ats_validate --defects) and the checker unit
  // tests reach them via defect_names().
  const auto defect_work =
      std::vector<ParamSpec>{{"work", ParamKind::kDouble, "0.01",
                              "seconds of computation before the miscall"}};
  add({.name = "defect_collective_op_mismatch",
       .paradigm = Paradigm::kMpi,
       .brief = "even ranks call allreduce, odd ranks call barrier",
       .params = defect_work,
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 2,
       .expected_outcome = RunOutcome::kMpiError,
       .expected_defect = analyze::DefectKind::kOperationMismatch,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::defect_collective_op_mismatch(
                 c, m.get_double("work", 0.01), c.mpi_proc().comm_world());
           }});
  add({.name = "defect_conditional_collective",
       .paradigm = Paradigm::kMpi,
       .brief = "only even ranks call the barrier; odd ranks skip it",
       .params = defect_work,
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 2,
       .expected_outcome = RunOutcome::kDeadlock,
       .expected_defect = analyze::DefectKind::kMissingCall,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::defect_conditional_collective(
                 c, m.get_double("work", 0.01), c.mpi_proc().comm_world());
           }});
  add({.name = "defect_collective_root_mismatch",
       .paradigm = Paradigm::kMpi,
       .brief = "bcast where every rank names rank%2 as the root",
       .params = defect_work,
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 2,
       .expected_outcome = RunOutcome::kMpiError,
       .expected_defect = analyze::DefectKind::kRootMismatch,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::defect_collective_root_mismatch(
                 c, m.get_double("work", 0.01), c.mpi_proc().comm_world());
           }});
  add({.name = "defect_reduce_op_mismatch",
       .paradigm = Paradigm::kMpi,
       .brief = "allreduce with kMin on even ranks, kMax on odd ranks",
       .params = defect_work,
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 2,
       .expected_outcome = RunOutcome::kOk,
       .expected_defect = analyze::DefectKind::kReduceOpMismatch,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::defect_reduce_op_mismatch(c, m.get_double("work", 0.01),
                                             c.mpi_proc().comm_world());
           }});
  add({.name = "defect_split_comm_color",
       .paradigm = Paradigm::kMpi,
       .brief = "parity split; only half of each sub-comm joins its barrier",
       .params = defect_work,
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 4,
       .expected_outcome = RunOutcome::kDeadlock,
       .expected_defect = analyze::DefectKind::kMissingCall,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             core::defect_split_comm_color(c, m.get_double("work", 0.01),
                                           c.mpi_proc().comm_world());
           }});

  add({.name = "pathological_livelock",
       .paradigm = Paradigm::kMpi,
       .brief = "an infinite yield loop; virtual time never advances",
       .params = {{"poll", ParamKind::kDouble, "0",
                   "virtual seconds advanced between yields (0 = pure "
                   "livelock)"}},
       .expected = std::nullopt,
       .positive = pm({}),
       .negative = pm({}),
       .min_procs = 1,
       .expected_outcome = RunOutcome::kHang,
       .invoke =
           [](PropCtx& c, const ParamMap& m) {
             const VDur poll = VDur::seconds(m.get_double("poll", 0.0));
             for (;;) {
               c.sim->yield();
               if (poll > VDur::zero()) c.sim->advance(poll);
             }
           }});
}

const Registry& Registry::instance() {
  static const Registry reg;
  return reg;
}

const PropertyDef& Registry::find(const std::string& name) const {
  for (const auto& d : defs_) {
    if (d.name == name) return d;
  }
  throw UsageError("unknown property function '" + name +
                   "' (see Registry::names())");
}

bool Registry::contains(const std::string& name) const {
  return std::any_of(defs_.begin(), defs_.end(),
                     [&](const PropertyDef& d) { return d.name == name; });
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const auto& d : defs_) {
    // The defect family is excluded even when the runtime survives the
    // miscall (defect_reduce_op_mismatch completes kOk): the safe set must
    // stay structurally sound for the zero-false-positive guarantees.
    if (d.expected_outcome == RunOutcome::kOk && !d.expected_defect) {
      out.push_back(d.name);
    }
  }
  return out;
}

std::vector<std::string> Registry::pathological_names() const {
  std::vector<std::string> out;
  for (const auto& d : defs_) {
    if (d.expected_outcome != RunOutcome::kOk && !d.expected_defect) {
      out.push_back(d.name);
    }
  }
  return out;
}

std::vector<std::string> Registry::defect_names() const {
  std::vector<std::string> out;
  for (const auto& d : defs_) {
    if (d.expected_defect) out.push_back(d.name);
  }
  return out;
}

trace::Trace run_single_property(const PropertyDef& def, const ParamMap& pmap,
                                 const RunConfig& cfg) {
  pmap.check_against(def.params);
  require(cfg.nprocs >= def.min_procs,
          "property '" + def.name + "' needs at least " +
              std::to_string(def.min_procs) + " processes");
  mpi::MpiRunOptions opt;
  opt.nprocs = cfg.nprocs;
  opt.cost = cfg.mpi_cost;
  opt.engine = cfg.engine;
  opt.trace_enabled = cfg.trace_enabled;
  opt.faults = cfg.faults;
  auto result = mpi::run_mpi(opt, [&](mpi::Proc& p) {
    if (def.uses_openmp) {
      omp::Runtime rt(p.world().trace(), cfg.omp_cost);
      core::PropCtx ctx = core::PropCtx::from(p, &rt);
      def.invoke(ctx, pmap);
    } else {
      core::PropCtx ctx = core::PropCtx::from(p);
      def.invoke(ctx, pmap);
    }
  });
  return std::move(result.trace);
}

trace::Trace run_single_property(const std::string& name, const ParamMap& pm_,
                                 const RunConfig& cfg) {
  return run_single_property(Registry::instance().find(name), pm_, cfg);
}

SalvagedRun run_single_property_salvaged(const PropertyDef& def,
                                         const ParamMap& pmap,
                                         const RunConfig& cfg) {
  pmap.check_against(def.params);
  require(cfg.nprocs >= def.min_procs,
          "property '" + def.name + "' needs at least " +
              std::to_string(def.min_procs) + " processes");
  auto first_line = [](const std::string& s) {
    const auto nl = s.find('\n');
    return nl == std::string::npos ? s : s.substr(0, nl);
  };
  SalvagedRun out;
  mpi::MpiRunOptions opt;
  opt.nprocs = cfg.nprocs;
  opt.cost = cfg.mpi_cost;
  opt.engine = cfg.engine;
  opt.trace_enabled = cfg.trace_enabled;
  opt.faults = cfg.faults;
  opt.external_trace = &out.trace;
  try {
    (void)mpi::run_mpi(opt, [&](mpi::Proc& p) {
      if (def.uses_openmp) {
        omp::Runtime rt(p.world().trace(), cfg.omp_cost);
        core::PropCtx ctx = core::PropCtx::from(p, &rt);
        def.invoke(ctx, pmap);
      } else {
        core::PropCtx ctx = core::PropCtx::from(p);
        def.invoke(ctx, pmap);
      }
    });
  } catch (const DeadlockError& e) {
    out.outcome = RunOutcome::kDeadlock;
    out.error = first_line(e.what());
  } catch (const HangError& e) {
    out.outcome = RunOutcome::kHang;
    out.error = first_line(e.what());
  } catch (const MpiError& e) {
    out.outcome = RunOutcome::kMpiError;
    out.error = first_line(e.what());
  } catch (const OmpError& e) {
    out.outcome = RunOutcome::kMpiError;
    out.error = first_line(e.what());
  }
  return out;
}

}  // namespace ats::gen
