// The ATS property registry and single-property test-program driver.
//
// Every property function is registered with typed parameter metadata, a
// canonical *positive* configuration (clearly exhibits the property), a
// canonical *negative* configuration (severity ~ 0), and the analyzer
// property it is expected to trigger.  From this single table the library
// derives:
//   * the CLI driver (run any property with key=value arguments — the
//     "generated" single-property test programs of paper §3.2),
//   * the detection-matrix experiment (bench/tab_detection_matrix),
//   * standalone C++ driver source generation (source_gen.hpp).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "core/composite.hpp"
#include "core/properties.hpp"
#include "gen/params.hpp"

namespace ats::gen {

enum class Paradigm : std::uint8_t { kMpi, kOmp, kHybrid, kSeq };

const char* to_string(Paradigm p);

/// How a simulated run of a property function ended.  kOk means the
/// simulation and the analysis both completed; the failure classes mirror
/// the pathologies a supervised runner must survive (src/runner), and
/// pathological registry entries declare which one they provoke.
enum class RunOutcome : std::uint8_t {
  kOk,             ///< simulation and analysis completed
  kDeadlock,       ///< simt::DeadlockError — all unfinished ranks blocked
  kHang,           ///< ats::HangError — a supervision budget exhausted
  kMpiError,       ///< MpiError/OmpError — runtime violation or injected crash
  kAnalysisError,  ///< the trace was produced but the analyzer failed
};

inline constexpr std::size_t kRunOutcomeCount = 5;

const char* to_string(RunOutcome o);

/// Process exit code for one outcome class, shared by the generated
/// drivers and the CLI tools: ok = 0, deadlock = 3, hang = 4,
/// mpi_error = 5, analysis_error = 6 (1 stays generic failure, 2 usage).
int exit_code(RunOutcome o);

struct PropertyDef {
  std::string name;       ///< function name, e.g. "late_sender"
  Paradigm paradigm = Paradigm::kMpi;
  std::string brief;      ///< one-line description
  std::vector<ParamSpec> params;
  /// Analyzer property this function must trigger; empty for negative
  /// (well-tuned) functions.
  std::optional<analyze::PropertyId> expected;
  /// Canonical parameter sets for the detection matrix.
  ParamMap positive;
  ParamMap negative;
  /// Minimum number of MPI processes for a meaningful run.
  int min_procs = 1;
  bool uses_openmp = false;
  /// How a run of this function is expected to end.  kOk for every normal
  /// property function; the pathological entries (deadlock / hang /
  /// livelock generators) declare their failure class here, the same way
  /// `expected` declares the property a positive test must trigger.  Run
  /// non-kOk entries only under supervision budgets (see src/runner).
  RunOutcome expected_outcome = RunOutcome::kOk;
  /// Structural defect the collective checker must report for this entry
  /// (docs/DEFECTS.md).  Set only on the defect program family — registry
  /// entries that deliberately miscall collectives; they are excluded from
  /// names() and pathological_names() like the pathological entries, and
  /// swept by their own golden defect-report test.  Their expected_outcome
  /// states how the *runtime* reacts (a reduce-op mismatch completes kOk,
  /// an operation mismatch aborts with kMpiError, a conditional collective
  /// deadlocks); the checker must report the defect in every case.
  std::optional<analyze::DefectKind> expected_defect;
  /// Invokes the property function with parameters from `pm`.
  std::function<void(core::PropCtx&, const ParamMap&)> invoke;
};

class Registry {
 public:
  static const Registry& instance();

  const std::vector<PropertyDef>& all() const { return defs_; }
  const PropertyDef& find(const std::string& name) const;
  bool contains(const std::string& name) const;
  /// Names of the functions expected to complete (expected_outcome == kOk)
  /// — the safe set for unsupervised sweeps and parameterised tests.
  std::vector<std::string> names() const;
  /// Names of the pathological entries (expected_outcome != kOk); run them
  /// only under supervision budgets.
  std::vector<std::string> pathological_names() const;
  /// Names of the defect program family (expected_defect set) — programs
  /// that miscall collectives so the structural checker has something to
  /// find.  Disjoint from names() and pathological_names().
  std::vector<std::string> defect_names() const;

 private:
  Registry();
  std::vector<PropertyDef> defs_;
};

/// Run configuration for a generated single-property program.
struct RunConfig {
  int nprocs = 4;
  mpi::CostModel mpi_cost{};
  omp::OmpCostModel omp_cost{};
  simt::EngineOptions engine{};
  bool trace_enabled = true;
  /// Seeded rank faults injected into the simulated runtime (crash / stall
  /// / drop sends); empty = clean run.
  mpi::RankFaultPlan faults{};
};

/// Executes one property function as a complete simulated program (the
/// generated single-property test program): launches `nprocs` ranks, binds
/// PropCtx (with an OpenMP runtime when needed), runs the property with the
/// given parameters, returns the trace.
trace::Trace run_single_property(const PropertyDef& def, const ParamMap& pm,
                                 const RunConfig& cfg);
trace::Trace run_single_property(const std::string& name, const ParamMap& pm,
                                 const RunConfig& cfg);

/// Result of a salvaged run: the trace recorded up to the failure (the
/// complete trace when the run ends kOk) plus the classified outcome.
struct SalvagedRun {
  trace::Trace trace;
  RunOutcome outcome = RunOutcome::kOk;
  std::string error;  ///< first line of the failure message, when any
};

/// Like run_single_property, but survives the declared failure of a
/// pathological or defect entry: the engine exception is classified into
/// `outcome` and the events recorded up to the failure are salvaged via
/// MpiRunOptions::external_trace instead of being lost with the engine —
/// exactly what the structural collective checker needs (docs/DEFECTS.md).
/// Callers running deadlock/hang candidates should arm supervision budgets
/// in cfg.engine.
SalvagedRun run_single_property_salvaged(const PropertyDef& def,
                                         const ParamMap& pm,
                                         const RunConfig& cfg);

}  // namespace ats::gen
