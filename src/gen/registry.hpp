// The ATS property registry and single-property test-program driver.
//
// Every property function is registered with typed parameter metadata, a
// canonical *positive* configuration (clearly exhibits the property), a
// canonical *negative* configuration (severity ~ 0), and the analyzer
// property it is expected to trigger.  From this single table the library
// derives:
//   * the CLI driver (run any property with key=value arguments — the
//     "generated" single-property test programs of paper §3.2),
//   * the detection-matrix experiment (bench/tab_detection_matrix),
//   * standalone C++ driver source generation (source_gen.hpp).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "core/composite.hpp"
#include "core/properties.hpp"
#include "gen/params.hpp"

namespace ats::gen {

enum class Paradigm : std::uint8_t { kMpi, kOmp, kHybrid, kSeq };

const char* to_string(Paradigm p);

/// How a simulated run of a property function ended.  kOk means the
/// simulation and the analysis both completed; the failure classes mirror
/// the pathologies a supervised runner must survive (src/runner), and
/// pathological registry entries declare which one they provoke.
enum class RunOutcome : std::uint8_t {
  kOk,             ///< simulation and analysis completed
  kDeadlock,       ///< simt::DeadlockError — all unfinished ranks blocked
  kHang,           ///< ats::HangError — a supervision budget exhausted
  kMpiError,       ///< MpiError/OmpError — runtime violation or injected crash
  kAnalysisError,  ///< the trace was produced but the analyzer failed
};

inline constexpr std::size_t kRunOutcomeCount = 5;

const char* to_string(RunOutcome o);

/// Process exit code for one outcome class, shared by the generated
/// drivers and the CLI tools: ok = 0, deadlock = 3, hang = 4,
/// mpi_error = 5, analysis_error = 6 (1 stays generic failure, 2 usage).
int exit_code(RunOutcome o);

// ---------------------------------------------------------------- exit codes
// The complete process exit-code contract of every ATS tool (trace_analyze,
// gen_driver_tool, ats_validate, ats_serve/ats_client, and the generated
// single-property drivers).  This table is the single source of truth: the
// RunOutcome codes above are rows 0/3/4/5/6 of it, the collective checker's
// defect signal is row 7, the service's load-shed signal is row 8, and the
// cross-run diff's regression signal is row 9.  Tested (codes distinct,
// outcome codes consistent) in tests/gen_test.cpp, pinned byte-for-byte in
// tests/exit_code_test.cpp, and rendered into --help via exit_code_help().

inline constexpr int kExitOk = 0;             ///< clean run / clean analysis
inline constexpr int kExitFailure = 1;        ///< generic failure (bad input)
inline constexpr int kExitUsage = 2;          ///< bad command line / misuse
inline constexpr int kExitDeadlock = 3;       ///< RunOutcome::kDeadlock
inline constexpr int kExitHang = 4;           ///< RunOutcome::kHang
inline constexpr int kExitMpiError = 5;       ///< RunOutcome::kMpiError
inline constexpr int kExitAnalysisError = 6;  ///< RunOutcome::kAnalysisError
/// Structural collective defects found (docs/DEFECTS.md): the tool worked,
/// the analyzed *program* is broken.  Distinct from kExitAnalysisError.
inline constexpr int kExitDefectsFound = 7;
/// The analysis service shed the request under load (docs/SERVICE.md):
/// transient, retry after the server-suggested delay.
inline constexpr int kExitShed = 8;
/// ats_diff found above-threshold deltas between two runs (docs/DIFF.md):
/// the comparison itself worked, the results genuinely differ.
inline constexpr int kExitDiffRegression = 9;

struct ExitCodeEntry {
  int code;
  const char* name;     ///< stable machine-readable label, e.g. "deadlock"
  const char* meaning;  ///< one-line human description
};

/// All defined exit codes, ascending.  Codes not in this table are not
/// used by any ATS tool.
std::span<const ExitCodeEntry> exit_code_table();

/// The table rendered as indented help text (one "  N  name  meaning"
/// line per code), appended to the CLI tools' --help output.
std::string exit_code_help();

struct PropertyDef {
  std::string name;       ///< function name, e.g. "late_sender"
  Paradigm paradigm = Paradigm::kMpi;
  std::string brief;      ///< one-line description
  std::vector<ParamSpec> params;
  /// Analyzer property this function must trigger; empty for negative
  /// (well-tuned) functions.
  std::optional<analyze::PropertyId> expected;
  /// Canonical parameter sets for the detection matrix.
  ParamMap positive;
  ParamMap negative;
  /// Minimum number of MPI processes for a meaningful run.
  int min_procs = 1;
  bool uses_openmp = false;
  /// How a run of this function is expected to end.  kOk for every normal
  /// property function; the pathological entries (deadlock / hang /
  /// livelock generators) declare their failure class here, the same way
  /// `expected` declares the property a positive test must trigger.  Run
  /// non-kOk entries only under supervision budgets (see src/runner).
  RunOutcome expected_outcome = RunOutcome::kOk;
  /// Structural defect the collective checker must report for this entry
  /// (docs/DEFECTS.md).  Set only on the defect program family — registry
  /// entries that deliberately miscall collectives; they are excluded from
  /// names() and pathological_names() like the pathological entries, and
  /// swept by their own golden defect-report test.  Their expected_outcome
  /// states how the *runtime* reacts (a reduce-op mismatch completes kOk,
  /// an operation mismatch aborts with kMpiError, a conditional collective
  /// deadlocks); the checker must report the defect in every case.
  std::optional<analyze::DefectKind> expected_defect;
  /// Invokes the property function with parameters from `pm`.
  std::function<void(core::PropCtx&, const ParamMap&)> invoke;
};

/// The one table every generator-side facility derives from.
///
/// Reentrancy contract (relied on by the analysis service, which serves
/// many requests from one process — docs/SERVICE.md):
///   * instance() is safe under concurrent first use: the function-local
///     static is initialised exactly once (C++11 [stmt.dcl]p4), and the
///     constructor touches no other mutable global state.  Long-running
///     servers should still construct it eagerly (call instance() once
///     before accepting work, as ats_serve does) so the one-time build
///     cost and any construction failure happen at startup, not on the
///     first unlucky request.
///   * The Registry is immutable after construction; every public method
///     is const and safe to call from any number of threads.
///   * The PropertyDef::invoke lambdas are stateless (they capture
///     nothing and write only through the PropCtx they are handed), so
///     one PropertyDef may drive any number of concurrent simulations.
/// The same audit found the remaining function-local statics on the
/// request path: Registry::instance() here, the process-wide pool inside
/// par::parallel_for (magic-static, same guarantee; the service uses its
/// own pool), and Engine's backend registry — all immutable-after-init.
class Registry {
 public:
  static const Registry& instance();

  const std::vector<PropertyDef>& all() const { return defs_; }
  const PropertyDef& find(const std::string& name) const;
  bool contains(const std::string& name) const;
  /// Names of the functions expected to complete (expected_outcome == kOk)
  /// — the safe set for unsupervised sweeps and parameterised tests.
  std::vector<std::string> names() const;
  /// Names of the pathological entries (expected_outcome != kOk); run them
  /// only under supervision budgets.
  std::vector<std::string> pathological_names() const;
  /// Names of the defect program family (expected_defect set) — programs
  /// that miscall collectives so the structural checker has something to
  /// find.  Disjoint from names() and pathological_names().
  std::vector<std::string> defect_names() const;

 private:
  Registry();
  std::vector<PropertyDef> defs_;
};

/// Run configuration for a generated single-property program.
struct RunConfig {
  int nprocs = 4;
  mpi::CostModel mpi_cost{};
  omp::OmpCostModel omp_cost{};
  simt::EngineOptions engine{};
  bool trace_enabled = true;
  /// Seeded rank faults injected into the simulated runtime (crash / stall
  /// / drop sends); empty = clean run.
  mpi::RankFaultPlan faults{};
};

/// Executes one property function as a complete simulated program (the
/// generated single-property test program): launches `nprocs` ranks, binds
/// PropCtx (with an OpenMP runtime when needed), runs the property with the
/// given parameters, returns the trace.
trace::Trace run_single_property(const PropertyDef& def, const ParamMap& pm,
                                 const RunConfig& cfg);
trace::Trace run_single_property(const std::string& name, const ParamMap& pm,
                                 const RunConfig& cfg);

/// Result of a salvaged run: the trace recorded up to the failure (the
/// complete trace when the run ends kOk) plus the classified outcome.
struct SalvagedRun {
  trace::Trace trace;
  RunOutcome outcome = RunOutcome::kOk;
  std::string error;  ///< first line of the failure message, when any
};

/// Like run_single_property, but survives the declared failure of a
/// pathological or defect entry: the engine exception is classified into
/// `outcome` and the events recorded up to the failure are salvaged via
/// MpiRunOptions::external_trace instead of being lost with the engine —
/// exactly what the structural collective checker needs (docs/DEFECTS.md).
/// Callers running deadlock/hang candidates should arm supervision budgets
/// in cfg.engine.
SalvagedRun run_single_property_salvaged(const PropertyDef& def,
                                         const ParamMap& pm,
                                         const RunConfig& cfg);

}  // namespace ats::gen
