// The ATS property registry and single-property test-program driver.
//
// Every property function is registered with typed parameter metadata, a
// canonical *positive* configuration (clearly exhibits the property), a
// canonical *negative* configuration (severity ~ 0), and the analyzer
// property it is expected to trigger.  From this single table the library
// derives:
//   * the CLI driver (run any property with key=value arguments — the
//     "generated" single-property test programs of paper §3.2),
//   * the detection-matrix experiment (bench/tab_detection_matrix),
//   * standalone C++ driver source generation (source_gen.hpp).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "core/composite.hpp"
#include "core/properties.hpp"
#include "gen/params.hpp"

namespace ats::gen {

enum class Paradigm : std::uint8_t { kMpi, kOmp, kHybrid, kSeq };

const char* to_string(Paradigm p);

struct PropertyDef {
  std::string name;       ///< function name, e.g. "late_sender"
  Paradigm paradigm = Paradigm::kMpi;
  std::string brief;      ///< one-line description
  std::vector<ParamSpec> params;
  /// Analyzer property this function must trigger; empty for negative
  /// (well-tuned) functions.
  std::optional<analyze::PropertyId> expected;
  /// Canonical parameter sets for the detection matrix.
  ParamMap positive;
  ParamMap negative;
  /// Minimum number of MPI processes for a meaningful run.
  int min_procs = 1;
  bool uses_openmp = false;
  /// Invokes the property function with parameters from `pm`.
  std::function<void(core::PropCtx&, const ParamMap&)> invoke;
};

class Registry {
 public:
  static const Registry& instance();

  const std::vector<PropertyDef>& all() const { return defs_; }
  const PropertyDef& find(const std::string& name) const;
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  Registry();
  std::vector<PropertyDef> defs_;
};

/// Run configuration for a generated single-property program.
struct RunConfig {
  int nprocs = 4;
  mpi::CostModel mpi_cost{};
  omp::OmpCostModel omp_cost{};
  simt::EngineOptions engine{};
  bool trace_enabled = true;
};

/// Executes one property function as a complete simulated program (the
/// generated single-property test program): launches `nprocs` ranks, binds
/// PropCtx (with an OpenMP runtime when needed), runs the property with the
/// given parameters, returns the trace.
trace::Trace run_single_property(const PropertyDef& def, const ParamMap& pm,
                                 const RunConfig& cfg);
trace::Trace run_single_property(const std::string& name, const ParamMap& pm,
                                 const RunConfig& cfg);

}  // namespace ats::gen
