// Standalone driver-source generation (paper §3.2).
//
// The paper envisions generating single-property main programs from the
// property function signatures (with PDT).  generate_driver_source emits a
// complete, compilable C++ translation unit that links against this library,
// parses its parameters from the command line, runs the property, and
// prints the analyzer verdict — exactly the driver that run_single_property
// executes in-process.
#pragma once

#include <string>

#include "gen/registry.hpp"

namespace ats::gen {

/// Emits the C++ source of a standalone driver for `def`.
std::string generate_driver_source(const PropertyDef& def);

/// Usage/help text for one property (parameter table with defaults).
std::string describe_property(const PropertyDef& def);

/// Catalog listing of all registered properties.
std::string describe_registry();

}  // namespace ats::gen
