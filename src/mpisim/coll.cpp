// Collective operations of the simulated MPI.
//
// Each collective instance is identified by (communicator, per-rank call
// sequence number) — MPI requires every member to issue the communicator's
// collectives in the same order, which the runtime verifies.  Three timing
// shapes cover all operations:
//
//  * all-to-all (barrier, allreduce, alltoall, allgather, scan, split, dup):
//    everybody leaves at max(enter) + cost — early ranks wait for the last
//    (the analyzer's "Wait at Barrier"/"Wait at NxN" patterns);
//  * root-source (bcast, scatter, scatterv): non-roots leave at
//    max(own enter, root enter) + cost — early non-roots wait for a late
//    root ("Late Broadcast");
//  * root-sink (reduce, gather, gatherv): the root leaves at
//    max(all enters) + cost, non-roots at own enter + cost — an early root
//    waits for the last contributor ("Early Reduce"/"Early Gather").
#include <algorithm>
#include <cstring>

#include "mpisim/world.hpp"

namespace ats::mpi {

namespace {

// kCollBegin records carry ReduceOp values as raw int32 (Event::tag), which
// trace::reduce_op_name() renders without a trace -> mpisim dependency.  Pin
// the numeric values its name table assumes: {sum, prod, min, max, land, lor}.
static_assert(static_cast<int>(ReduceOp::kSum) == 0 &&
                  static_cast<int>(ReduceOp::kProd) == 1 &&
                  static_cast<int>(ReduceOp::kMin) == 2 &&
                  static_cast<int>(ReduceOp::kMax) == 3 &&
                  static_cast<int>(ReduceOp::kLand) == 4 &&
                  static_cast<int>(ReduceOp::kLor) == 5,
              "ReduceOp values must match trace::reduce_op_name's table");

std::int64_t bytes_of(int count, Datatype type) {
  require(count >= 0, "collective: negative element count");
  return static_cast<std::int64_t>(count) *
         static_cast<std::int64_t>(datatype_size(type));
}

/// Payload size used for the completion-cost term.
std::int64_t cost_bytes(const detail::CollInstance& inst) {
  if (inst.bytes_per_rank >= 0) return inst.bytes_per_rank;
  std::int64_t mx = 0;
  for (const auto& c : inst.contrib) {
    mx = std::max(mx, static_cast<std::int64_t>(c.size()));
  }
  return mx;
}

void check_capacity(std::int64_t need, std::int64_t have, const char* what) {
  if (need > have) {
    throw MpiError(std::string(what) + ": receive buffer too small (" +
                   std::to_string(need) + " > " + std::to_string(have) + ")");
  }
}

}  // namespace

detail::CollInstance& Proc::coll_enter(Comm& comm, trace::CollOp op,
                                       int root, Datatype type,
                                       std::int64_t bytes,
                                       std::int64_t& seq_out,
                                       trace::RegionId region,
                                       std::int32_t rop) {
  const int me = rank(comm);
  const int p = comm.size();
  if (root >= 0) comm.member(root);  // range check

  ctx_.yield();  // act in global virtual-time order
  const std::int64_t seq = comm.coll_count_[static_cast<std::size_t>(me)]++;
  seq_out = seq;
  // Record the region enter and the per-participant call record *before*
  // the consistency checks below: when a mismatch aborts the run, the trace
  // must still show what every rank believed it was calling, so the replay
  // checker can cite the offending call sites.  region == kNone suppresses
  // both (the internal init/finalize barriers).
  if (region != trace::kNone) {
    const std::int32_t root_loc =
        root >= 0 ? static_cast<std::int32_t>(comm.member(root)) : trace::kNone;
    world_->trace()->enter(ctx_.id(), ctx_.now(), region);
    world_->trace()->coll_begin(ctx_.id(), ctx_.now(), comm.trace_id(), seq,
                                op, root_loc, rop, region);
  }
  auto [it, inserted] = comm.coll_.try_emplace(seq);
  detail::CollInstance& inst = it->second;
  if (inserted) {
    inst.op = op;
    inst.root = root;
    inst.type = type;
    inst.bytes_per_rank = bytes;
    inst.enter.assign(static_cast<std::size_t>(p), VTime::max());
    inst.present.assign(static_cast<std::size_t>(p), false);
    inst.exit_at.assign(static_cast<std::size_t>(p), VTime::max());
    inst.contrib.resize(static_cast<std::size_t>(p));
    inst.out_ptr.assign(static_cast<std::size_t>(p), nullptr);
    inst.out_capacity.assign(static_cast<std::size_t>(p), 0);
    inst.out_counts.assign(static_cast<std::size_t>(p), 0);
    inst.out_displs.assign(static_cast<std::size_t>(p), 0);
    inst.colors.assign(static_cast<std::size_t>(p), 0);
    inst.keys.assign(static_cast<std::size_t>(p), 0);
    inst.split_result.assign(static_cast<std::size_t>(p), nullptr);
  } else {
    if (inst.op != op) {
      throw MpiError("collective mismatch on '" + comm.name() + "' #" +
                     std::to_string(seq) + ": rank " + std::to_string(me) +
                     " called " + trace::to_string(op) + " but instance is " +
                     trace::to_string(inst.op));
    }
    if (inst.root != root) {
      throw MpiError("collective root mismatch on '" + comm.name() + "' #" +
                     std::to_string(seq) + ": rank " + std::to_string(me) +
                     " used root " + std::to_string(root) + ", others used " +
                     std::to_string(inst.root));
    }
    if (inst.type != type) {
      throw MpiError("collective datatype mismatch on '" + comm.name() +
                     "' #" + std::to_string(seq));
    }
    if (inst.bytes_per_rank >= 0 && bytes >= 0 &&
        inst.bytes_per_rank != bytes) {
      throw MpiError("collective count mismatch on '" + comm.name() + "' #" +
                     std::to_string(seq) + ": " + std::to_string(bytes) +
                     " vs " + std::to_string(inst.bytes_per_rank) +
                     " bytes per rank");
    }
  }
  const std::size_t ume = static_cast<std::size_t>(me);
  if (inst.present[ume]) {
    throw MpiError("rank " + std::to_string(me) +
                   " entered collective #" + std::to_string(seq) + " twice");
  }
  inst.present[ume] = true;
  inst.enter[ume] = ctx_.now();
  inst.max_enter = later(inst.max_enter, ctx_.now());
  ++inst.arrived;
  if (root >= 0 && me == root) {
    inst.root_arrived = true;
    inst.root_enter = ctx_.now();
  }
  return inst;
}

void Proc::coll_all_wait(
    Comm& comm, detail::CollInstance& inst, std::int64_t seq,
    const std::function<void(detail::CollInstance&)>& compute_outputs) {
  (void)seq;
  const int me = rank(comm);
  const int p = comm.size();
  if (inst.arrived < p) {
    ctx_.block("MPI collective (waiting for all ranks)");
    return;  // the last arriver computed outputs and set our clock
  }
  // Last arriver: compute everyone's result and release the others.
  inst.complete = true;
  compute_outputs(inst);
  const VTime end =
      inst.max_enter + world_->cost().collective_time(p, cost_bytes(inst));
  for (int r = 0; r < p; ++r) {
    inst.exit_at[static_cast<std::size_t>(r)] = end;
  }
  for (int r = 0; r < p; ++r) {
    if (r != me) ctx_.engine().wake(comm.member(r), end);
  }
  ctx_.advance_to(end);
}

void Proc::coll_finish(Comm& comm, std::int64_t seq, trace::CollOp op,
                       VTime enter_t, std::int64_t bytes_in,
                       std::int64_t bytes_out, trace::RegionId region) {
  const int me = rank(comm);
  auto it = comm.coll_.find(seq);
  require(it != comm.coll_.end(), "coll_finish: instance vanished");
  detail::CollInstance& inst = it->second;
  const std::int32_t root_loc =
      inst.root >= 0 ? comm.member(inst.root) : trace::kNone;
  world_->trace()->coll_end(ctx_.id(), ctx_.now(), enter_t, comm.trace_id(),
                            seq, op, root_loc, bytes_in, bytes_out);
  world_->trace()->exit(ctx_.id(), ctx_.now(), region);
  ++inst.exited;
  (void)me;
  if (inst.exited == comm.size()) comm.coll_.erase(it);
}

// ------------------------------------------------------------ operations

void Proc::barrier(Comm& comm) {
  const trace::RegionId reg =
      world_->region("MPI_Barrier", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst = coll_enter(comm, trace::CollOp::kBarrier, -1,
                                          Datatype::kByte, 0, seq, reg);
  const VTime enter_t = ctx_.now();
  coll_all_wait(comm, inst, seq, [](detail::CollInstance&) {});
  coll_finish(comm, seq, trace::CollOp::kBarrier, enter_t, 0, 0, reg);
}

void Proc::bcast(void* data, int count, Datatype type, int root, Comm& comm) {
  const int me = rank(comm);
  const std::int64_t bytes = bytes_of(count, type);
  const trace::RegionId reg =
      world_->region("MPI_Bcast", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst =
      coll_enter(comm, trace::CollOp::kBcast, root, type, bytes, seq, reg);
  const VTime enter_t = ctx_.now();
  const VDur cost =
      world_->cost().collective_time(comm.size(), bytes);

  if (me == root) {
    inst.root_data.assign(static_cast<const std::byte*>(data),
                          static_cast<const std::byte*>(data) + bytes);
    // Deliver to every already-waiting non-root and release it.
    for (int r = 0; r < comm.size(); ++r) {
      const std::size_t ur = static_cast<std::size_t>(r);
      if (r == me || !inst.present[ur]) continue;
      std::memcpy(inst.out_ptr[ur], inst.root_data.data(),
                  static_cast<std::size_t>(bytes));
      const VTime end = inst.root_enter + cost;
      inst.exit_at[ur] = end;
      ctx_.engine().wake(comm.member(r), end);
    }
    ctx_.advance_to(inst.root_enter + cost);
  } else {
    inst.out_ptr[static_cast<std::size_t>(me)] = data;
    inst.out_capacity[static_cast<std::size_t>(me)] = bytes;
    if (inst.root_arrived) {
      std::memcpy(data, inst.root_data.data(),
                  static_cast<std::size_t>(bytes));
      ctx_.advance_to(later(ctx_.now(), inst.root_enter) + cost);
    } else {
      ctx_.block("MPI_Bcast (waiting for root)");
    }
  }
  coll_finish(comm, seq, trace::CollOp::kBcast, enter_t,
              me == root ? bytes : 0, me == root ? 0 : bytes, reg);
}

void Proc::scatter(const void* sdata, int scount, void* rdata, int rcount,
                   Datatype type, int root, Comm& comm) {
  const int p = comm.size();
  std::vector<int> counts;
  std::vector<int> displs;
  if (rank(comm) == root) {
    counts.assign(static_cast<std::size_t>(p), scount);
    displs.resize(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      displs[static_cast<std::size_t>(r)] = r * scount;
    }
  }
  scatterv_impl(trace::CollOp::kScatter, sdata, counts, displs, rdata,
                rcount, type, root, comm);
}

void Proc::scatterv(const void* sdata, std::span<const int> scounts,
                    std::span<const int> displs, void* rdata, int rcount,
                    Datatype type, int root, Comm& comm) {
  scatterv_impl(trace::CollOp::kScatterv, sdata, scounts, displs, rdata,
                rcount, type, root, comm);
}

void Proc::scatterv_impl(trace::CollOp op, const void* sdata,
                         std::span<const int> scounts,
                         std::span<const int> displs, void* rdata, int rcount,
                         Datatype type, int root, Comm& comm) {
  const int me = rank(comm);
  const int p = comm.size();
  const std::size_t esz = datatype_size(type);
  const std::int64_t rcap = bytes_of(rcount, type);
  const trace::RegionId reg = world_->region(
      op == trace::CollOp::kScatter ? "MPI_Scatter" : "MPI_Scatterv",
      trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst = coll_enter(comm, op, root, type, -1, seq, reg);
  const VTime enter_t = ctx_.now();

  if (me == root) {
    require(op != trace::CollOp::kScatter || !scounts.empty(),
            "scatter: root must supply counts");
    require(static_cast<int>(scounts.size()) == p,
            "scatterv: scounts must have one entry per rank");
    require(static_cast<int>(displs.size()) == p,
            "scatterv: displs must have one entry per rank");
    std::int64_t total = 0;
    for (int r = 0; r < p; ++r) {
      const std::size_t ur = static_cast<std::size_t>(r);
      inst.out_counts[ur] = scounts[ur];
      inst.out_displs[ur] = displs[ur];
      total = std::max(total, static_cast<std::int64_t>(displs[ur]) +
                                  scounts[ur]);
    }
    inst.root_data.assign(
        static_cast<const std::byte*>(sdata),
        static_cast<const std::byte*>(sdata) +
            static_cast<std::int64_t>(esz) * total);
    const VDur cost = world_->cost().collective_time(
        p, static_cast<std::int64_t>(esz) *
               *std::max_element(scounts.begin(), scounts.end()));
    for (int r = 0; r < p; ++r) {
      const std::size_t ur = static_cast<std::size_t>(r);
      if (r == me || !inst.present[ur]) continue;
      const std::int64_t need =
          static_cast<std::int64_t>(esz) * inst.out_counts[ur];
      check_capacity(need, inst.out_capacity[ur], "scatterv");
      std::memcpy(inst.out_ptr[ur],
                  inst.root_data.data() +
                      static_cast<std::int64_t>(esz) * inst.out_displs[ur],
                  static_cast<std::size_t>(need));
      const VTime end = inst.root_enter + cost;
      inst.exit_at[ur] = end;
      ctx_.engine().wake(comm.member(r), end);
    }
    // Root's own slice.
    const std::int64_t own =
        static_cast<std::int64_t>(esz) *
        inst.out_counts[static_cast<std::size_t>(me)];
    check_capacity(own, rcap, "scatterv(root)");
    std::memcpy(rdata,
                inst.root_data.data() +
                    static_cast<std::int64_t>(esz) *
                        inst.out_displs[static_cast<std::size_t>(me)],
                static_cast<std::size_t>(own));
    ctx_.advance_to(inst.root_enter + cost);
  } else {
    const std::size_t ume = static_cast<std::size_t>(me);
    inst.out_ptr[ume] = rdata;
    inst.out_capacity[ume] = rcap;
    if (inst.root_arrived) {
      const std::int64_t need =
          static_cast<std::int64_t>(esz) * inst.out_counts[ume];
      check_capacity(need, rcap, "scatterv");
      std::memcpy(rdata,
                  inst.root_data.data() +
                      static_cast<std::int64_t>(esz) * inst.out_displs[ume],
                  static_cast<std::size_t>(need));
      const VDur cost = world_->cost().collective_time(
          p, static_cast<std::int64_t>(esz) * inst.out_counts[ume]);
      ctx_.advance_to(later(ctx_.now(), inst.root_enter) + cost);
    } else {
      ctx_.block("MPI_Scatterv (waiting for root)");
    }
  }
  coll_finish(comm, seq, op, enter_t, me == root ? rcap * p : 0,
              me == root ? 0 : rcap, reg);
}

void Proc::gather(const void* sdata, int scount, void* rdata, int rcount,
                  Datatype type, int root, Comm& comm) {
  const int p = comm.size();
  std::vector<int> counts;
  std::vector<int> displs;
  if (rank(comm) == root) {
    counts.assign(static_cast<std::size_t>(p), rcount);
    displs.resize(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      displs[static_cast<std::size_t>(r)] = r * rcount;
    }
  }
  gatherv_impl(trace::CollOp::kGather, sdata, scount, rdata, counts, displs,
               type, root, comm);
}

void Proc::gatherv(const void* sdata, int scount, void* rdata,
                   std::span<const int> rcounts, std::span<const int> displs,
                   Datatype type, int root, Comm& comm) {
  gatherv_impl(trace::CollOp::kGatherv, sdata, scount, rdata, rcounts,
               displs, type, root, comm);
}

void Proc::gatherv_impl(trace::CollOp op, const void* sdata, int scount,
                        void* rdata, std::span<const int> rcounts,
                        std::span<const int> displs, Datatype type, int root,
                        Comm& comm) {
  const int me = rank(comm);
  const int p = comm.size();
  const std::size_t esz = datatype_size(type);
  const std::int64_t sbytes = bytes_of(scount, type);
  const trace::RegionId reg = world_->region(
      op == trace::CollOp::kGather ? "MPI_Gather" : "MPI_Gatherv",
      trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst = coll_enter(comm, op, root, type, -1, seq, reg);
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(me);

  // Every rank (root included) contributes its send buffer.
  inst.contrib[ume].assign(static_cast<const std::byte*>(sdata),
                           static_cast<const std::byte*>(sdata) + sbytes);

  auto assemble = [&](detail::CollInstance& ci) {
    // Runs in whichever rank completes the instance; writes the root buffer.
    const std::size_t uroot = static_cast<std::size_t>(ci.root);
    std::byte* out = static_cast<std::byte*>(ci.out_ptr[uroot]);
    for (int r = 0; r < p; ++r) {
      const std::size_t ur = static_cast<std::size_t>(r);
      const std::int64_t need =
          static_cast<std::int64_t>(ci.contrib[ur].size());
      const std::int64_t want =
          static_cast<std::int64_t>(esz) * ci.out_counts[ur];
      if (need != want) {
        throw MpiError("gatherv: rank " + std::to_string(r) + " sent " +
                       std::to_string(need) + " bytes, root expected " +
                       std::to_string(want));
      }
      std::memcpy(out + static_cast<std::int64_t>(esz) * ci.out_displs[ur],
                  ci.contrib[ur].data(), static_cast<std::size_t>(need));
    }
  };

  const VDur cost = world_->cost().collective_time(p, sbytes);
  if (me == root) {
    require(static_cast<int>(rcounts.size()) == p,
            "gatherv: rcounts must have one entry per rank");
    require(static_cast<int>(displs.size()) == p,
            "gatherv: displs must have one entry per rank");
    std::int64_t total = 0;
    for (int r = 0; r < p; ++r) {
      const std::size_t ur = static_cast<std::size_t>(r);
      inst.out_counts[ur] = rcounts[ur];
      inst.out_displs[ur] = displs[ur];
      total = std::max(total, static_cast<std::int64_t>(displs[ur]) +
                                  rcounts[ur]);
    }
    inst.out_ptr[ume] = rdata;
    inst.out_capacity[ume] = static_cast<std::int64_t>(esz) * total;
    if (inst.arrived == p) {
      assemble(inst);
      ctx_.advance_to(inst.max_enter + cost);
    } else {
      inst.root_waiting = true;
      ctx_.block("MPI_Gatherv (root waiting for contributions)");
    }
  } else {
    if (inst.arrived == p && inst.root_waiting) {
      // We are the last contributor and the root is already blocked.
      assemble(inst);
      const VTime root_end = inst.max_enter + cost;
      inst.exit_at[static_cast<std::size_t>(root)] = root_end;
      inst.root_waiting = false;
      ctx_.engine().wake(comm.member(root), root_end);
    }
    ctx_.advance(cost);
  }
  coll_finish(comm, seq, op, enter_t, me == root ? 0 : sbytes,
              me == root ? sbytes * p : 0, reg);
}

void Proc::reduce(const void* sdata, void* rdata, int count, Datatype type,
                  ReduceOp rop, int root, Comm& comm) {
  const int me = rank(comm);
  const int p = comm.size();
  const std::int64_t bytes = bytes_of(count, type);
  const trace::RegionId reg =
      world_->region("MPI_Reduce", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst =
      coll_enter(comm, trace::CollOp::kReduce, root, type, bytes, seq, reg,
                 static_cast<std::int32_t>(rop));
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(me);
  inst.rop = rop;
  inst.contrib[ume].assign(static_cast<const std::byte*>(sdata),
                           static_cast<const std::byte*>(sdata) + bytes);

  auto combine_all = [&, count](detail::CollInstance& ci) {
    const std::size_t uroot = static_cast<std::size_t>(ci.root);
    std::byte* out = static_cast<std::byte*>(ci.out_ptr[uroot]);
    std::memcpy(out, ci.contrib[0].data(), ci.contrib[0].size());
    for (int r = 1; r < p; ++r) {
      reduce_combine(ci.rop, ci.type,
                     ci.contrib[static_cast<std::size_t>(r)].data(), out,
                     count);
    }
  };

  const VDur cost = world_->cost().collective_time(p, bytes);
  if (me == root) {
    inst.out_ptr[ume] = rdata;
    inst.out_capacity[ume] = bytes;
    if (inst.arrived == p) {
      combine_all(inst);
      ctx_.advance_to(inst.max_enter + cost);
    } else {
      inst.root_waiting = true;
      ctx_.block("MPI_Reduce (root waiting for contributions)");
    }
  } else {
    if (inst.arrived == p && inst.root_waiting) {
      combine_all(inst);
      const VTime root_end = inst.max_enter + cost;
      inst.exit_at[static_cast<std::size_t>(root)] = root_end;
      inst.root_waiting = false;
      ctx_.engine().wake(comm.member(root), root_end);
    }
    ctx_.advance(cost);
  }
  coll_finish(comm, seq, trace::CollOp::kReduce, enter_t,
              me == root ? 0 : bytes, me == root ? bytes : 0, reg);
}

void Proc::allreduce(const void* sdata, void* rdata, int count, Datatype type,
                     ReduceOp rop, Comm& comm) {
  const int p = comm.size();
  const std::int64_t bytes = bytes_of(count, type);
  const trace::RegionId reg =
      world_->region("MPI_Allreduce", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst =
      coll_enter(comm, trace::CollOp::kAllreduce, -1, type, bytes, seq, reg,
                 static_cast<std::int32_t>(rop));
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(rank(comm));
  inst.rop = rop;
  inst.contrib[ume].assign(static_cast<const std::byte*>(sdata),
                           static_cast<const std::byte*>(sdata) + bytes);
  inst.out_ptr[ume] = rdata;
  inst.out_capacity[ume] = bytes;

  coll_all_wait(comm, inst, seq, [&, count, p](detail::CollInstance& ci) {
    std::vector<std::byte> acc = ci.contrib[0];
    for (int r = 1; r < p; ++r) {
      reduce_combine(ci.rop, ci.type,
                     ci.contrib[static_cast<std::size_t>(r)].data(),
                     acc.data(), count);
    }
    for (int r = 0; r < p; ++r) {
      std::memcpy(ci.out_ptr[static_cast<std::size_t>(r)], acc.data(),
                  acc.size());
    }
  });
  coll_finish(comm, seq, trace::CollOp::kAllreduce, enter_t, bytes, bytes,
              reg);
}

void Proc::alltoall(const void* sdata, int scount, void* rdata, int rcount,
                    Datatype type, Comm& comm) {
  const int p = comm.size();
  const std::size_t esz = datatype_size(type);
  const std::int64_t block = bytes_of(scount, type);
  require(scount == rcount, "alltoall: scount must equal rcount");
  const trace::RegionId reg =
      world_->region("MPI_Alltoall", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst = coll_enter(comm, trace::CollOp::kAlltoall, -1,
                                          type, block * p, seq, reg);
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(rank(comm));
  inst.contrib[ume].assign(
      static_cast<const std::byte*>(sdata),
      static_cast<const std::byte*>(sdata) + block * p);
  inst.out_ptr[ume] = rdata;
  inst.out_capacity[ume] = static_cast<std::int64_t>(esz) * rcount * p;

  coll_all_wait(comm, inst, seq, [&, p, block](detail::CollInstance& ci) {
    for (int i = 0; i < p; ++i) {
      std::byte* out =
          static_cast<std::byte*>(ci.out_ptr[static_cast<std::size_t>(i)]);
      for (int j = 0; j < p; ++j) {
        std::memcpy(out + block * j,
                    ci.contrib[static_cast<std::size_t>(j)].data() +
                        block * i,
                    static_cast<std::size_t>(block));
      }
    }
  });
  coll_finish(comm, seq, trace::CollOp::kAlltoall, enter_t, block * p,
              block * p, reg);
}

void Proc::allgather(const void* sdata, int scount, void* rdata, int rcount,
                     Datatype type, Comm& comm) {
  const int p = comm.size();
  const std::int64_t block = bytes_of(scount, type);
  require(scount == rcount, "allgather: scount must equal rcount");
  const trace::RegionId reg =
      world_->region("MPI_Allgather", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst = coll_enter(comm, trace::CollOp::kAllgather, -1,
                                          type, block, seq, reg);
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(rank(comm));
  inst.contrib[ume].assign(static_cast<const std::byte*>(sdata),
                           static_cast<const std::byte*>(sdata) + block);
  inst.out_ptr[ume] = rdata;
  inst.out_capacity[ume] = block * p;

  coll_all_wait(comm, inst, seq, [&, p, block](detail::CollInstance& ci) {
    for (int i = 0; i < p; ++i) {
      std::byte* out =
          static_cast<std::byte*>(ci.out_ptr[static_cast<std::size_t>(i)]);
      for (int j = 0; j < p; ++j) {
        std::memcpy(out + block * j,
                    ci.contrib[static_cast<std::size_t>(j)].data(),
                    static_cast<std::size_t>(block));
      }
    }
  });
  coll_finish(comm, seq, trace::CollOp::kAllgather, enter_t, block,
              block * p, reg);
}

void Proc::scan(const void* sdata, void* rdata, int count, Datatype type,
                ReduceOp rop, Comm& comm) {
  const int p = comm.size();
  const std::int64_t bytes = bytes_of(count, type);
  const trace::RegionId reg =
      world_->region("MPI_Scan", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst =
      coll_enter(comm, trace::CollOp::kScan, -1, type, bytes, seq, reg,
                 static_cast<std::int32_t>(rop));
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(rank(comm));
  inst.rop = rop;
  inst.contrib[ume].assign(static_cast<const std::byte*>(sdata),
                           static_cast<const std::byte*>(sdata) + bytes);
  inst.out_ptr[ume] = rdata;
  inst.out_capacity[ume] = bytes;

  coll_all_wait(comm, inst, seq, [&, count, p](detail::CollInstance& ci) {
    std::vector<std::byte> acc = ci.contrib[0];
    std::memcpy(ci.out_ptr[0], acc.data(), acc.size());
    for (int r = 1; r < p; ++r) {
      reduce_combine(ci.rop, ci.type,
                     ci.contrib[static_cast<std::size_t>(r)].data(),
                     acc.data(), count);
      std::memcpy(ci.out_ptr[static_cast<std::size_t>(r)], acc.data(),
                  acc.size());
    }
  });
  coll_finish(comm, seq, trace::CollOp::kScan, enter_t, bytes, bytes, reg);
}

void Proc::reduce_scatter_block(const void* sdata, void* rdata, int count,
                                Datatype type, ReduceOp rop, Comm& comm) {
  const int p = comm.size();
  const std::int64_t block = bytes_of(count, type);
  const trace::RegionId reg =
      world_->region("MPI_Reduce_scatter", trace::RegionKind::kMpiColl);
  std::int64_t seq = 0;
  detail::CollInstance& inst =
      coll_enter(comm, trace::CollOp::kReduceScatter, -1, type, block * p,
                 seq, reg, static_cast<std::int32_t>(rop));
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(rank(comm));
  inst.rop = rop;
  inst.contrib[ume].assign(
      static_cast<const std::byte*>(sdata),
      static_cast<const std::byte*>(sdata) + block * p);
  inst.out_ptr[ume] = rdata;
  inst.out_capacity[ume] = block;

  coll_all_wait(comm, inst, seq, [&, count, p, block](
                                     detail::CollInstance& ci) {
    // Full elementwise reduction over all contributions...
    std::vector<std::byte> acc = ci.contrib[0];
    for (int r = 1; r < p; ++r) {
      reduce_combine(ci.rop, ci.type,
                     ci.contrib[static_cast<std::size_t>(r)].data(),
                     acc.data(), count * p);
    }
    // ... then scatter block i to rank i.
    for (int r = 0; r < p; ++r) {
      std::memcpy(ci.out_ptr[static_cast<std::size_t>(r)],
                  acc.data() + block * r, static_cast<std::size_t>(block));
    }
  });
  coll_finish(comm, seq, trace::CollOp::kReduceScatter, enter_t, block * p,
              block, reg);
}

// ------------------------------------------------- communicator management

Comm* Proc::split(Comm& comm, int color, int key) {
  const int me = rank(comm);
  const int p = comm.size();
  const trace::RegionId reg =
      world_->region("MPI_Comm_split", trace::RegionKind::kMpiOther);
  std::int64_t seq = 0;
  detail::CollInstance& inst = coll_enter(comm, trace::CollOp::kCommSplit, -1,
                                          Datatype::kInt32, 8, seq, reg);
  const VTime enter_t = ctx_.now();
  const std::size_t ume = static_cast<std::size_t>(me);
  inst.colors[ume] = color;
  inst.keys[ume] = key;

  coll_all_wait(comm, inst, seq, [&, p](detail::CollInstance& ci) {
    // Group ranks by color; order each group by (key, old rank).
    std::vector<int> colors_seen;
    for (int r = 0; r < p; ++r) {
      const int c = ci.colors[static_cast<std::size_t>(r)];
      if (c == kUndefined) continue;
      if (std::find(colors_seen.begin(), colors_seen.end(), c) ==
          colors_seen.end()) {
        colors_seen.push_back(c);
      }
    }
    std::sort(colors_seen.begin(), colors_seen.end());
    for (int c : colors_seen) {
      std::vector<int> group;
      for (int r = 0; r < p; ++r) {
        if (ci.colors[static_cast<std::size_t>(r)] == c) group.push_back(r);
      }
      std::stable_sort(group.begin(), group.end(), [&](int a, int b) {
        return ci.keys[static_cast<std::size_t>(a)] <
               ci.keys[static_cast<std::size_t>(b)];
      });
      std::vector<simt::LocationId> members;
      members.reserve(group.size());
      for (int r : group) members.push_back(comm.member(r));
      Comm& sub = world_->create_comm(
          std::move(members),
          comm.name() + ".split(c=" + std::to_string(c) + ")");
      for (int r : group) {
        ci.split_result[static_cast<std::size_t>(r)] = &sub;
      }
    }
  });
  Comm* result = inst.split_result[ume];
  coll_finish(comm, seq, trace::CollOp::kCommSplit, enter_t, 8, 8, reg);
  return result;
}

Comm& Proc::dup(Comm& comm) {
  const int me = rank(comm);
  const trace::RegionId reg =
      world_->region("MPI_Comm_dup", trace::RegionKind::kMpiOther);
  std::int64_t seq = 0;
  detail::CollInstance& inst = coll_enter(comm, trace::CollOp::kCommDup, -1,
                                          Datatype::kInt32, 0, seq, reg);
  const VTime enter_t = ctx_.now();
  coll_all_wait(comm, inst, seq, [&](detail::CollInstance& ci) {
    std::vector<simt::LocationId> members;
    for (int r = 0; r < comm.size(); ++r) members.push_back(comm.member(r));
    Comm& sub = world_->create_comm(std::move(members), comm.name() + ".dup");
    for (auto& slot : ci.split_result) slot = &sub;
  });
  Comm* result = inst.split_result[static_cast<std::size_t>(me)];
  coll_finish(comm, seq, trace::CollOp::kCommDup, enter_t, 0, 0, reg);
  return *result;
}

}  // namespace ats::mpi
