// Communicators and their matching/collective state.
//
// A Comm owns everything that is scoped to an MPI communicator: the member
// group (global engine locations, position == rank), the point-to-point
// matching queues, and in-flight collective instances.  All mutation happens
// while the acting location holds the engine token, so no locks are needed
// (see simt/engine.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/vtime.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/request.hpp"
#include "simt/engine.hpp"
#include "trace/trace.hpp"

namespace ats::mpi {

class World;
class Comm;

/// Wildcards for receive matching.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// MPI_UNDEFINED equivalent for Comm split colors.
inline constexpr int kUndefined = -32766;

namespace detail {

/// A message whose receive has not been posted yet (unexpected queue), or a
/// rendezvous offer whose sender is blocked.
struct PendingMsg {
  int src_rank = -1;
  int tag = -1;
  Datatype type = Datatype::kByte;
  std::vector<std::byte> payload;
  bool rendezvous = false;
  /// Eager: when the payload is available at the receiver.
  VTime avail;
  /// Rendezvous: when the sender became ready to transfer.
  VTime sender_ready;
  /// Rendezvous: the sender to wake (blocking ssend) ...
  simt::LocationId sender_loc = simt::kNoLocation;
  /// ... or the send request to complete (isend).
  std::shared_ptr<RequestState> send_req;
};

/// A blocked MPI_Probe waiting for a matching envelope.
struct ProbeWaiter {
  int src = kAnySource;
  int tag = kAnyTag;
  simt::LocationId loc = simt::kNoLocation;
  std::shared_ptr<RequestState> st;  ///< carries the resulting Status
};

/// A posted receive waiting for a matching message.
struct PendingRecv {
  int src = kAnySource;
  int tag = kAnyTag;
  Datatype type = Datatype::kByte;
  void* data = nullptr;
  std::int64_t capacity_bytes = 0;
  /// When the receiver posted (enter time + overhead).
  VTime posted_at;
  simt::LocationId recv_loc = simt::kNoLocation;
  /// Blocking recv: wake the receiver directly.  Non-blocking: complete req.
  bool blocking = false;
  std::shared_ptr<RequestState> req;
};

/// One in-flight collective operation instance on a communicator.
struct CollInstance {
  trace::CollOp op = trace::CollOp::kBarrier;
  int root = -1;
  int arrived = 0;
  int exited = 0;
  bool complete = false;           // outputs computed, exit times known
  VTime max_enter;
  VTime root_enter;
  bool root_arrived = false;
  /// Root-sink ops: the root is blocked waiting for contributions.
  bool root_waiting = false;
  std::vector<VTime> enter;        // per rank; VTime::max() = not yet
  std::vector<bool> present;
  std::vector<VTime> exit_at;      // per rank, valid once determinable
  // Data staging -------------------------------------------------------
  Datatype type = Datatype::kByte;
  ReduceOp rop = ReduceOp::kSum;
  std::vector<std::vector<std::byte>> contrib;  // per rank
  std::vector<std::byte> root_data;             // bcast/scatter source
  std::vector<void*> out_ptr;                   // per rank recv buffer
  std::vector<std::int64_t> out_capacity;
  std::vector<std::int64_t> out_counts;         // scatterv/gatherv
  std::vector<std::int64_t> out_displs;
  std::int64_t bytes_per_rank = 0;
  // comm_split support ---------------------------------------------------
  std::vector<int> colors, keys;
  std::vector<Comm*> split_result;              // per rank
};

}  // namespace detail

/// An MPI communicator over a fixed group of engine locations.
class Comm {
 public:
  int size() const { return static_cast<int>(members_.size()); }
  const std::string& name() const { return name_; }
  trace::CommId trace_id() const { return trace_id_; }

  /// Global engine location of `rank` (checked).
  simt::LocationId member(int rank) const;
  /// Rank of `loc` within this comm, or -1 if not a member.
  int rank_of(simt::LocationId loc) const;

 private:
  friend class World;
  friend class Proc;

  Comm(World* world, std::vector<simt::LocationId> members, std::string name,
       trace::CommId trace_id);

  World* world_;
  std::vector<simt::LocationId> members_;
  std::string name_;
  trace::CommId trace_id_;

  // rank_of is on the per-operation fast path (every Proc call resolves the
  // caller's rank); a linear member scan made it O(comm size) — quadratic
  // over a weak-scale run.  Comms made of consecutive locations (the
  // overwhelmingly common case: comm_world, most splits) resolve with one
  // subtraction; others fall back to a hash index built at construction.
  bool contiguous_ = false;
  std::unordered_map<simt::LocationId, int> rank_index_;

  // --- point-to-point matching state (indexed by destination rank) ------
  std::vector<std::deque<detail::PendingMsg>> unexpected_;
  std::vector<std::deque<detail::PendingRecv>> posted_;
  std::vector<std::vector<detail::ProbeWaiter>> probing_;

  // --- collective state --------------------------------------------------
  std::vector<std::int64_t> coll_count_;            // per rank
  std::map<std::int64_t, detail::CollInstance> coll_;
};

}  // namespace ats::mpi
