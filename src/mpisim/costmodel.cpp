#include "mpisim/costmodel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ats::mpi {

VDur CostModel::transfer_time(std::int64_t bytes) const {
  if (bytes < 0) throw UsageError("transfer_time: negative byte count");
  if (bandwidth_bytes_per_sec <= 0) {
    throw UsageError("CostModel: bandwidth must be positive");
  }
  return VDur::seconds(static_cast<double>(bytes) / bandwidth_bytes_per_sec);
}

VDur CostModel::collective_time(int nprocs, std::int64_t bytes) const {
  if (nprocs < 1) throw UsageError("collective_time: nprocs must be >= 1");
  const int stages =
      nprocs > 1 ? static_cast<int>(std::ceil(std::log2(nprocs))) : 1;
  return coll_stage * static_cast<std::int64_t>(stages) +
         transfer_time(bytes);
}

}  // namespace ats::mpi
