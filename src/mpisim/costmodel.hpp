// Communication cost model for the simulated MPI.
//
// A simple latency/bandwidth (Hockney-style) model for point-to-point plus a
// log(p) tree term for collectives.  The defaults resemble a 2002-era
// cluster interconnect; property tests inject imbalances that are orders of
// magnitude above these costs, so the exact constants affect only the
// "noise floor" that negative tests must stay under.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/vtime.hpp"

namespace ats::mpi {

struct CostModel {
  /// One-way point-to-point latency (alpha).
  VDur p2p_latency = VDur::micros(5);
  /// Link bandwidth in bytes per (virtual) second (1/beta).
  double bandwidth_bytes_per_sec = 100.0e6;
  /// Messages up to this size use the eager protocol; larger ones (and all
  /// ssend operations) rendezvous with the receiver.
  std::size_t eager_threshold = 16 * 1024;
  /// CPU-side cost of initiating a send / completing a receive.
  VDur send_overhead = VDur::micros(1);
  VDur recv_overhead = VDur::micros(1);
  /// Per-stage base cost of a collective (multiplied by ceil(log2 p)).
  VDur coll_stage = VDur::micros(10);
  /// Cost modelled for MPI_Init / MPI_Finalize; Fig. 3.2 of the paper notes
  /// that small test programs expose a "High MPI Init/Finalize Overhead"
  /// property, which we faithfully reproduce.
  VDur init_cost = VDur::millis(2);
  VDur finalize_cost = VDur::millis(1);

  /// Pure payload transfer time (bytes / bandwidth).
  VDur transfer_time(std::int64_t bytes) const;
  /// End-to-end completion component of a collective over `nprocs` ranks
  /// moving `bytes` per rank.
  VDur collective_time(int nprocs, std::int64_t bytes) const;
};

}  // namespace ats::mpi
