#include "mpisim/datatype.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ats::mpi {

std::size_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kByte:
    case Datatype::kChar: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kInt64: return 8;
    case Datatype::kFloat: return 4;
    case Datatype::kDouble: return 8;
  }
  throw UsageError("datatype_size: unknown datatype");
}

const char* to_string(Datatype t) {
  switch (t) {
    case Datatype::kByte: return "byte";
    case Datatype::kChar: return "char";
    case Datatype::kInt32: return "int32";
    case Datatype::kInt64: return "int64";
    case Datatype::kFloat: return "float";
    case Datatype::kDouble: return "double";
  }
  return "?";
}

const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kProd: return "prod";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kLand: return "land";
    case ReduceOp::kLor: return "lor";
  }
  return "?";
}

namespace {

template <typename T>
void combine_typed(ReduceOp op, const T* in, T* inout, int count) {
  for (int i = 0; i < count; ++i) {
    switch (op) {
      case ReduceOp::kSum: inout[i] = static_cast<T>(inout[i] + in[i]); break;
      case ReduceOp::kProd: inout[i] = static_cast<T>(inout[i] * in[i]); break;
      case ReduceOp::kMin: inout[i] = std::min(inout[i], in[i]); break;
      case ReduceOp::kMax: inout[i] = std::max(inout[i], in[i]); break;
      case ReduceOp::kLand:
        inout[i] = static_cast<T>((inout[i] != T{}) && (in[i] != T{}) ? 1 : 0);
        break;
      case ReduceOp::kLor:
        inout[i] = static_cast<T>((inout[i] != T{}) || (in[i] != T{}) ? 1 : 0);
        break;
    }
  }
}

}  // namespace

void reduce_combine(ReduceOp op, Datatype type, const void* in, void* inout,
                    int count) {
  switch (type) {
    case Datatype::kByte:
    case Datatype::kChar:
      combine_typed(op, static_cast<const std::int8_t*>(in),
                    static_cast<std::int8_t*>(inout), count);
      return;
    case Datatype::kInt32:
      combine_typed(op, static_cast<const std::int32_t*>(in),
                    static_cast<std::int32_t*>(inout), count);
      return;
    case Datatype::kInt64:
      combine_typed(op, static_cast<const std::int64_t*>(in),
                    static_cast<std::int64_t*>(inout), count);
      return;
    case Datatype::kFloat:
      combine_typed(op, static_cast<const float*>(in),
                    static_cast<float*>(inout), count);
      return;
    case Datatype::kDouble:
      combine_typed(op, static_cast<const double*>(in),
                    static_cast<double*>(inout), count);
      return;
  }
  throw UsageError("reduce_combine: unknown datatype");
}

}  // namespace ats::mpi
