// Basic datatypes and reduction operators for the simulated MPI.
//
// The ATS paper's buffer management only needs simple element types (it uses
// MPI_INT and MPI_DOUBLE); we provide the usual fixed-size scalars.  Payload
// is always moved as raw bytes; the datatype determines element size, and
// reductions interpret the bytes accordingly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ats::mpi {

enum class Datatype : std::uint8_t {
  kByte,
  kChar,
  kInt32,
  kInt64,
  kFloat,
  kDouble,
};

std::size_t datatype_size(Datatype t);
const char* to_string(Datatype t);

enum class ReduceOp : std::uint8_t {
  kSum,
  kProd,
  kMin,
  kMax,
  kLand,  ///< logical and
  kLor,   ///< logical or
};

const char* to_string(ReduceOp op);

/// Element-wise `inout[i] = op(inout[i], in[i])` for `count` elements.
/// kByte/kChar are treated as signed 8-bit integers.
void reduce_combine(ReduceOp op, Datatype type, const void* in, void* inout,
                    int count);

}  // namespace ats::mpi
