#include "mpisim/faultplan.hpp"

#include <sstream>

#include "common/error.hpp"

namespace ats::mpi {

const char* to_string(RankFaultKind k) {
  switch (k) {
    case RankFaultKind::kCrash: return "crash";
    case RankFaultKind::kStall: return "stall";
    case RankFaultKind::kDropSends: return "drop-sends";
  }
  return "?";
}

std::string RankFaultReport::str() const {
  std::ostringstream os;
  if (crashes > 0) os << "crashes: " << crashes << "\n";
  if (stalls > 0) os << "stalls: " << stalls << "\n";
  if (sends_dropped > 0) os << "sends dropped: " << sends_dropped << "\n";
  return os.str();
}

RankFaultPlan& RankFaultPlan::crash(int rank, VTime at) {
  faults.push_back({rank, RankFaultKind::kCrash, at, VDur::zero(), 1.0});
  return *this;
}

RankFaultPlan& RankFaultPlan::stall(int rank, VTime at, VDur duration) {
  faults.push_back({rank, RankFaultKind::kStall, at, duration, 1.0});
  return *this;
}

RankFaultPlan& RankFaultPlan::drop_sends(int rank, VTime from,
                                         double probability) {
  faults.push_back(
      {rank, RankFaultKind::kDropSends, from, VDur::zero(), probability});
  return *this;
}

void RankFaultPlan::validate(int nprocs) const {
  for (const RankFault& f : faults) {
    require(f.rank >= 0 && f.rank < nprocs,
            "RankFaultPlan: rank " + std::to_string(f.rank) +
                " out of range for " + std::to_string(nprocs) +
                " processes");
    if (f.kind == RankFaultKind::kStall) {
      require(!f.duration.is_negative(),
              "RankFaultPlan: negative stall duration");
    }
    if (f.kind == RankFaultKind::kDropSends) {
      require(f.probability > 0.0 && f.probability <= 1.0,
              "RankFaultPlan: drop probability must be in (0, 1]");
    }
  }
}

}  // namespace ats::mpi
