// Seeded rank-fault injection for the simulated MPI runtime.
//
// PR 2 injected faults into *traces*; this module injects them into the
// *runtime* itself: a RankFaultPlan attached to MpiRunOptions makes chosen
// ranks crash at a virtual time, stall for a duration, or silently drop
// point-to-point sends.  The scenarios a performance tool must survive —
// crashed ranks, hung peers, lost messages — become reproducible programs
// with known outcomes, extending the paper's negative-test idea (§2) from
// "no property" to "known pathology".  Consequences are modelled, not
// faked: a crashed rank aborts the run with MpiError, a stalled rank makes
// its peers genuinely wait (late-sender at the runtime level), a dropped
// send leaves its receiver blocked until the engine reports DeadlockError.
// Supervision and classification of these outcomes: src/runner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/vtime.hpp"

namespace ats::mpi {

enum class RankFaultKind : std::uint8_t {
  kCrash,      ///< the rank throws MpiError when its clock reaches `at`
  kStall,      ///< the rank silently advances `duration` once at `at`
  kDropSends,  ///< p2p sends from the rank vanish in the network from `at`
};

const char* to_string(RankFaultKind k);

struct RankFault {
  int rank = 0;
  RankFaultKind kind = RankFaultKind::kCrash;
  /// Trigger time: crash/stall fire at the first scheduling point at or
  /// after `at`; drop-sends applies to sends issued at or after `at`.
  VTime at = VTime::zero();
  /// Stall length (kStall only).
  VDur duration = VDur::zero();
  /// Per-message drop probability in (0, 1] (kDropSends only).
  double probability = 1.0;
};

/// What the armed faults actually did during a run.
struct RankFaultReport {
  std::size_t crashes = 0;
  std::size_t stalls = 0;
  std::size_t sends_dropped = 0;

  std::size_t total() const { return crashes + stalls + sends_dropped; }
  /// One line per non-zero counter ("crashes: 1\n...").
  std::string str() const;
};

/// A deterministic schedule of rank faults.  The same plan (including
/// `seed`, which drives probabilistic send drops) against the same program
/// produces the same faults and the same trace.
struct RankFaultPlan {
  std::uint64_t seed = 0x4641554c;  // "FAUL"
  std::vector<RankFault> faults;

  bool empty() const { return faults.empty(); }

  // Builder helpers (chainable).
  RankFaultPlan& crash(int rank, VTime at);
  RankFaultPlan& stall(int rank, VTime at, VDur duration);
  RankFaultPlan& drop_sends(int rank, VTime from = VTime::zero(),
                            double probability = 1.0);

  /// Throws UsageError when a fault names a rank outside [0, nprocs) or
  /// carries an out-of-range probability / negative duration.
  void validate(int nprocs) const;
};

}  // namespace ats::mpi
