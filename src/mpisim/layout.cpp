#include "mpisim/layout.hpp"

#include <cstring>

namespace ats::mpi {

Layout::Layout(Datatype base, int nblocks, int blocklen, int stride)
    : base_(base), nblocks_(nblocks), blocklen_(blocklen), stride_(stride) {
  require(nblocks >= 0, "Layout: negative block count");
  require(blocklen >= 1, "Layout: block length must be >= 1");
  require(stride >= blocklen,
          "Layout: stride must be at least the block length");
}

Layout Layout::contiguous(Datatype base, int count) {
  require(count >= 0, "Layout::contiguous: negative count");
  return Layout(base, count, 1, 1);
}

Layout Layout::vector(Datatype base, int nblocks, int blocklen, int stride) {
  return Layout(base, nblocks, blocklen, stride);
}

std::int64_t Layout::packed_bytes() const {
  return static_cast<std::int64_t>(element_count()) *
         static_cast<std::int64_t>(datatype_size(base_));
}

std::int64_t Layout::extent_bytes() const {
  if (nblocks_ == 0) return 0;
  const std::int64_t esz = static_cast<std::int64_t>(datatype_size(base_));
  return (static_cast<std::int64_t>(nblocks_ - 1) * stride_ + blocklen_) *
         esz;
}

std::vector<std::byte> Layout::pack(const void* src) const {
  const std::size_t esz = datatype_size(base_);
  std::vector<std::byte> out(static_cast<std::size_t>(packed_bytes()));
  const auto* in = static_cast<const std::byte*>(src);
  std::byte* dst = out.data();
  for (int b = 0; b < nblocks_; ++b) {
    std::memcpy(dst,
                in + static_cast<std::size_t>(b) * stride_ * esz,
                static_cast<std::size_t>(blocklen_) * esz);
    dst += static_cast<std::size_t>(blocklen_) * esz;
  }
  return out;
}

void Layout::unpack(std::span<const std::byte> packed, void* dst) const {
  require(packed.size() == static_cast<std::size_t>(packed_bytes()),
          "Layout::unpack: packed size mismatch");
  const std::size_t esz = datatype_size(base_);
  auto* out = static_cast<std::byte*>(dst);
  const std::byte* src = packed.data();
  for (int b = 0; b < nblocks_; ++b) {
    std::memcpy(out + static_cast<std::size_t>(b) * stride_ * esz, src,
                static_cast<std::size_t>(blocklen_) * esz);
    src += static_cast<std::size_t>(blocklen_) * esz;
  }
}

}  // namespace ats::mpi
