// Derived-datatype layouts (paper §3.1.3).
//
// "MPI provides the possibility to work with arbitrarily complex,
// structured and possibly non-contiguous data, so the data type argument is
// needed to represent an MPI buffer."  This module provides the classic
// derived layouts — contiguous and strided vector (MPI_Type_vector) — via
// explicit pack/unpack, which is exactly how MPI implementations move
// non-contiguous data.  Proc::send_packed / recv_packed transfer a layout's
// elements through the ordinary typed-message path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "mpisim/datatype.hpp"

namespace ats::mpi {

/// A non-contiguous view over memory: `nblocks` blocks of `blocklen` base
/// elements, block starts `stride` elements apart (stride >= blocklen).
class Layout {
 public:
  static Layout contiguous(Datatype base, int count);
  static Layout vector(Datatype base, int nblocks, int blocklen, int stride);

  Datatype base() const { return base_; }
  int nblocks() const { return nblocks_; }
  int blocklen() const { return blocklen_; }
  int stride() const { return stride_; }

  /// Number of base elements actually transferred.
  int element_count() const { return nblocks_ * blocklen_; }
  /// Bytes transferred (the packed size).
  std::int64_t packed_bytes() const;
  /// Bytes the layout spans in user memory (the extent).
  std::int64_t extent_bytes() const;

  /// Gathers the layout's elements from `src` into a contiguous buffer.
  std::vector<std::byte> pack(const void* src) const;
  /// Scatters `packed` (packed_bytes() long) back into `dst`.
  void unpack(std::span<const std::byte> packed, void* dst) const;

 private:
  Layout(Datatype base, int nblocks, int blocklen, int stride);

  Datatype base_;
  int nblocks_;
  int blocklen_;
  int stride_;
};

}  // namespace ats::mpi
