// Point-to-point operations of the simulated MPI.
//
// Protocols: messages up to CostModel::eager_threshold bytes are *eager* —
// the sender deposits the payload and returns; the receive completes at
// max(post time, arrival time).  Larger messages (and every ssend)
// *rendezvous*: the transfer starts only when both sides are ready, and the
// sender blocks (or its isend request stays open) until then.  This is what
// makes the paper's late_receiver property expressible: under rendezvous a
// sender whose receiver is late is demonstrably blocked.
#include <cstring>

#include "mpisim/world.hpp"

namespace ats::mpi {

namespace {

std::int64_t payload_bytes(int count, Datatype type) {
  require(count >= 0, "negative element count");
  return static_cast<std::int64_t>(count) *
         static_cast<std::int64_t>(datatype_size(type));
}

int element_count(std::int64_t bytes, Datatype type) {
  return static_cast<int>(bytes /
                          static_cast<std::int64_t>(datatype_size(type)));
}

}  // namespace

std::optional<detail::PendingMsg> Proc::match_unexpected(Comm& comm,
                                                         int my_rank,
                                                         int src, int tag) {
  auto& q = comm.unexpected_[static_cast<std::size_t>(my_rank)];
  for (auto it = q.begin(); it != q.end(); ++it) {
    if ((src == kAnySource || it->src_rank == src) &&
        (tag == kAnyTag || it->tag == tag)) {
      detail::PendingMsg m = std::move(*it);
      q.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::optional<detail::PendingRecv> Proc::match_posted(Comm& comm, int dest,
                                                      int src_rank, int tag) {
  auto& q = comm.posted_[static_cast<std::size_t>(dest)];
  for (auto it = q.begin(); it != q.end(); ++it) {
    if ((it->src == kAnySource || it->src == src_rank) &&
        (it->tag == kAnyTag || it->tag == tag)) {
      detail::PendingRecv r = std::move(*it);
      q.erase(it);
      return r;
    }
  }
  return std::nullopt;
}

void Proc::complete_request(RequestState& st, VTime at, const Status& status) {
  st.done = true;
  st.complete_at = at;
  st.status = status;
  if (st.waiter != simt::kNoLocation) {
    ctx_.engine().wake(st.waiter, at);
  }
}

// ------------------------------------------------------------------- send

void Proc::send(const void* data, int count, Datatype type, int dest,
                int tag, Comm& comm) {
  send_impl(data, count, type, dest, tag, comm, /*force_sync=*/false,
            "MPI_Send");
}

void Proc::ssend(const void* data, int count, Datatype type, int dest,
                 int tag, Comm& comm) {
  send_impl(data, count, type, dest, tag, comm, /*force_sync=*/true,
            "MPI_Ssend");
}

void Proc::send_impl(const void* data, int count, Datatype type, int dest,
                     int tag, Comm& comm, bool force_sync,
                     const char* region) {
  const int me = rank(comm);
  comm.member(dest);  // range check
  require(tag >= 0, "send: tag must be non-negative");
  const std::int64_t bytes = payload_bytes(count, type);
  auto* tr = world_->trace();
  const trace::RegionId reg =
      world_->region(region, trace::RegionKind::kMpiP2P);
  const CostModel& cm = world_->cost();

  ctx_.yield();  // act in global virtual-time order
  tr->enter(ctx_.id(), ctx_.now(), reg);
  ctx_.advance(cm.send_overhead);
  tr->send(ctx_.id(), ctx_.now(), comm.member(dest), tag, comm.trace_id(),
           bytes);

  // Injected network fault: the traced send vanishes in flight.  The
  // sender's completion is modelled eagerly (the payload left its buffer);
  // the receiver simply never sees the message.
  if (world_->fault_drop_send(world_rank_, ctx_.now())) {
    tr->exit(ctx_.id(), ctx_.now(), reg);
    return;
  }

  const bool eager =
      !force_sync && bytes <= static_cast<std::int64_t>(cm.eager_threshold);
  const Status st_out{me, tag, bytes, count};

  if (eager) {
    const VTime avail = ctx_.now() + cm.p2p_latency + cm.transfer_time(bytes);
    if (auto pr = match_posted(comm, dest, me, tag)) {
      if (bytes > pr->capacity_bytes) {
        throw MpiError("message truncation: rank " + std::to_string(me) +
                       " sent " + std::to_string(bytes) + " bytes, rank " +
                       std::to_string(dest) + " posted only " +
                       std::to_string(pr->capacity_bytes));
      }
      std::memcpy(pr->data, data, static_cast<std::size_t>(bytes));
      const VTime completion = later(avail, pr->posted_at);
      pr->req->is_recv = true;
      pr->req->comm_tid = comm.trace_id();
      pr->req->peer_loc = ctx_.id();
      complete_request(*pr->req, completion, st_out);
      if (pr->blocking) ctx_.engine().wake(pr->recv_loc, completion);
    } else {
      detail::PendingMsg m;
      m.src_rank = me;
      m.tag = tag;
      m.type = type;
      m.payload.assign(static_cast<const std::byte*>(data),
                       static_cast<const std::byte*>(data) + bytes);
      m.rendezvous = false;
      m.avail = avail;
      enqueue_unexpected(comm, dest, std::move(m));
    }
    tr->exit(ctx_.id(), ctx_.now(), reg);
    return;
  }

  // Rendezvous protocol.
  if (auto pr = match_posted(comm, dest, me, tag)) {
    if (bytes > pr->capacity_bytes) {
      throw MpiError("message truncation (rendezvous): " +
                     std::to_string(bytes) + " > " +
                     std::to_string(pr->capacity_bytes));
    }
    const VTime start = later(ctx_.now(), pr->posted_at);
    const VTime end = start + cm.p2p_latency + cm.transfer_time(bytes);
    std::memcpy(pr->data, data, static_cast<std::size_t>(bytes));
    pr->req->is_recv = true;
    pr->req->comm_tid = comm.trace_id();
    pr->req->peer_loc = ctx_.id();
    complete_request(*pr->req, end, st_out);
    if (pr->blocking) ctx_.engine().wake(pr->recv_loc, end);
    ctx_.advance_to(end);  // the sender participates in the transfer
  } else {
    detail::PendingMsg m;
    m.src_rank = me;
    m.tag = tag;
    m.type = type;
    m.payload.assign(static_cast<const std::byte*>(data),
                     static_cast<const std::byte*>(data) + bytes);
    m.rendezvous = true;
    m.sender_ready = ctx_.now();
    m.sender_loc = ctx_.id();
    enqueue_unexpected(comm, dest, std::move(m));
    ctx_.block("MPI_Send (rendezvous, waiting for receiver)");
    // Woken by the matching receive at transfer completion.
  }
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

Request Proc::isend(const void* data, int count, Datatype type, int dest,
                    int tag, Comm& comm) {
  return isend_impl(data, count, type, dest, tag, comm);
}

Request Proc::isend_impl(const void* data, int count, Datatype type,
                         int dest, int tag, Comm& comm) {
  const int me = rank(comm);
  comm.member(dest);  // range check
  require(tag >= 0, "isend: tag must be non-negative");
  const std::int64_t bytes = payload_bytes(count, type);
  auto* tr = world_->trace();
  const trace::RegionId reg =
      world_->region("MPI_Isend", trace::RegionKind::kMpiP2P);
  const CostModel& cm = world_->cost();

  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  ctx_.advance(cm.send_overhead);
  tr->send(ctx_.id(), ctx_.now(), comm.member(dest), tag, comm.trace_id(),
           bytes);

  auto st = std::make_shared<RequestState>();
  const Status st_out{me, tag, bytes, count};
  const bool eager = bytes <= static_cast<std::int64_t>(cm.eager_threshold);

  // Injected network fault: see send_impl.  The request completes locally;
  // the message is lost.
  if (world_->fault_drop_send(world_rank_, ctx_.now())) {
    st->done = true;
    st->complete_at = ctx_.now();
    st->status = st_out;
    tr->exit(ctx_.id(), ctx_.now(), reg);
    return Request(st);
  }

  if (eager) {
    const VTime avail = ctx_.now() + cm.p2p_latency + cm.transfer_time(bytes);
    if (auto pr = match_posted(comm, dest, me, tag)) {
      if (bytes > pr->capacity_bytes) {
        throw MpiError("message truncation on isend");
      }
      std::memcpy(pr->data, data, static_cast<std::size_t>(bytes));
      const VTime completion = later(avail, pr->posted_at);
      pr->req->is_recv = true;
      pr->req->comm_tid = comm.trace_id();
      pr->req->peer_loc = ctx_.id();
      complete_request(*pr->req, completion, st_out);
      if (pr->blocking) ctx_.engine().wake(pr->recv_loc, completion);
    } else {
      detail::PendingMsg m;
      m.src_rank = me;
      m.tag = tag;
      m.type = type;
      m.payload.assign(static_cast<const std::byte*>(data),
                       static_cast<const std::byte*>(data) + bytes);
      m.rendezvous = false;
      m.avail = avail;
      enqueue_unexpected(comm, dest, std::move(m));
    }
    // The eager isend is locally complete as soon as the payload is copied.
    st->done = true;
    st->complete_at = ctx_.now();
    st->status = st_out;
  } else if (auto pr = match_posted(comm, dest, me, tag)) {
    if (bytes > pr->capacity_bytes) {
      throw MpiError("message truncation on isend (rendezvous)");
    }
    const VTime start = later(ctx_.now(), pr->posted_at);
    const VTime end = start + cm.p2p_latency + cm.transfer_time(bytes);
    std::memcpy(pr->data, data, static_cast<std::size_t>(bytes));
    pr->req->is_recv = true;
    pr->req->comm_tid = comm.trace_id();
    pr->req->peer_loc = ctx_.id();
    complete_request(*pr->req, end, st_out);
    if (pr->blocking) ctx_.engine().wake(pr->recv_loc, end);
    st->done = true;
    st->complete_at = end;
    st->status = st_out;
  } else {
    // Rendezvous offer: the request completes when a receive matches.
    detail::PendingMsg m;
    m.src_rank = me;
    m.tag = tag;
    m.type = type;
    m.payload.assign(static_cast<const std::byte*>(data),
                     static_cast<const std::byte*>(data) + bytes);
    m.rendezvous = true;
    m.sender_ready = ctx_.now();
    m.send_req = st;
    enqueue_unexpected(comm, dest, std::move(m));
  }
  tr->exit(ctx_.id(), ctx_.now(), reg);
  return Request(st);
}

// ------------------------------------------------------------------- recv

void Proc::recv(void* data, int count, Datatype type, int src, int tag,
                Comm& comm, Status* status) {
  const int me = rank(comm);
  if (src != kAnySource) comm.member(src);  // range check
  const std::int64_t capacity = payload_bytes(count, type);
  auto* tr = world_->trace();
  const trace::RegionId reg =
      world_->region("MPI_Recv", trace::RegionKind::kMpiP2P);
  const CostModel& cm = world_->cost();

  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  ctx_.advance(cm.recv_overhead);

  Status st_out;
  if (auto m = match_unexpected(comm, me, src, tag)) {
    const std::int64_t bytes = static_cast<std::int64_t>(m->payload.size());
    if (bytes > capacity) {
      throw MpiError("message truncation: received " + std::to_string(bytes) +
                     " bytes into a " + std::to_string(capacity) +
                     "-byte buffer");
    }
    VTime end;
    if (!m->rendezvous) {
      end = later(ctx_.now(), m->avail);
    } else {
      const VTime start = later(ctx_.now(), m->sender_ready);
      end = start + cm.p2p_latency + cm.transfer_time(bytes);
      if (m->sender_loc != simt::kNoLocation) {
        ctx_.engine().wake(m->sender_loc, end);
      } else if (m->send_req) {
        complete_request(*m->send_req, end,
                         Status{m->src_rank, m->tag, bytes,
                                element_count(bytes, m->type)});
      }
    }
    std::memcpy(data, m->payload.data(), static_cast<std::size_t>(bytes));
    ctx_.advance_to(end);
    st_out = Status{m->src_rank, m->tag, bytes, element_count(bytes, type)};
    tr->recv(ctx_.id(), ctx_.now(), comm.member(m->src_rank), m->tag,
             comm.trace_id(), bytes);
  } else {
    auto st = std::make_shared<RequestState>();
    st->is_recv = true;
    detail::PendingRecv pr;
    pr.src = src;
    pr.tag = tag;
    pr.type = type;
    pr.data = data;
    pr.capacity_bytes = capacity;
    pr.posted_at = ctx_.now();
    pr.recv_loc = ctx_.id();
    pr.blocking = true;
    pr.req = st;
    comm.posted_[static_cast<std::size_t>(me)].push_back(std::move(pr));
    ctx_.block("MPI_Recv (waiting for message)");
    st_out = st->status;
    tr->recv(ctx_.id(), ctx_.now(), st->peer_loc, st->status.tag,
             comm.trace_id(), st->status.bytes);
  }
  tr->exit(ctx_.id(), ctx_.now(), reg);
  if (status != nullptr) *status = st_out;
}

Request Proc::irecv(void* data, int count, Datatype type, int src, int tag,
                    Comm& comm) {
  const int me = rank(comm);
  if (src != kAnySource) comm.member(src);
  const std::int64_t capacity = payload_bytes(count, type);
  auto* tr = world_->trace();
  const trace::RegionId reg =
      world_->region("MPI_Irecv", trace::RegionKind::kMpiP2P);
  const CostModel& cm = world_->cost();

  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  ctx_.advance(cm.recv_overhead);

  auto st = std::make_shared<RequestState>();
  st->is_recv = true;
  st->comm_tid = comm.trace_id();

  if (auto m = match_unexpected(comm, me, src, tag)) {
    const std::int64_t bytes = static_cast<std::int64_t>(m->payload.size());
    if (bytes > capacity) throw MpiError("message truncation on irecv");
    VTime end;
    if (!m->rendezvous) {
      end = later(ctx_.now(), m->avail);
    } else {
      const VTime start = later(ctx_.now(), m->sender_ready);
      end = start + cm.p2p_latency + cm.transfer_time(bytes);
      if (m->sender_loc != simt::kNoLocation) {
        ctx_.engine().wake(m->sender_loc, end);
      } else if (m->send_req) {
        complete_request(*m->send_req, end,
                         Status{m->src_rank, m->tag, bytes,
                                element_count(bytes, m->type)});
      }
    }
    std::memcpy(data, m->payload.data(), static_cast<std::size_t>(bytes));
    st->peer_loc = comm.member(m->src_rank);
    complete_request(
        *st, end, Status{m->src_rank, m->tag, bytes,
                         element_count(bytes, type)});
  } else {
    detail::PendingRecv pr;
    pr.src = src;
    pr.tag = tag;
    pr.type = type;
    pr.data = data;
    pr.capacity_bytes = capacity;
    pr.posted_at = ctx_.now();
    pr.recv_loc = ctx_.id();
    pr.blocking = false;
    pr.req = st;
    comm.posted_[static_cast<std::size_t>(me)].push_back(std::move(pr));
  }
  tr->exit(ctx_.id(), ctx_.now(), reg);
  return Request(st);
}

// ----------------------------------------------------------------- wait

void Proc::wait(Request& req, Status* status) {
  require(req.valid(), "wait on an invalid request");
  RequestState* st = req.state();
  auto* tr = world_->trace();
  const trace::RegionId reg =
      world_->region("MPI_Wait", trace::RegionKind::kMpiP2P);

  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  if (!st->done) {
    st->waiter = ctx_.id();
    ctx_.block("MPI_Wait");
    st->waiter = simt::kNoLocation;
  }
  ctx_.advance_to(st->complete_at);
  if (st->is_recv && !st->recv_traced) {
    st->recv_traced = true;
    tr->recv(ctx_.id(), ctx_.now(), st->peer_loc, st->status.tag,
             st->comm_tid, st->status.bytes);
  }
  if (status != nullptr) *status = st->status;
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void Proc::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

bool Proc::test(Request& req, Status* status) {
  require(req.valid(), "test on an invalid request");
  RequestState* st = req.state();
  ctx_.yield();
  if (!st->done || st->complete_at > ctx_.now()) return false;
  if (st->is_recv && !st->recv_traced) {
    st->recv_traced = true;
    world_->trace()->recv(ctx_.id(), ctx_.now(), st->peer_loc,
                          st->status.tag, st->comm_tid, st->status.bytes);
  }
  if (status != nullptr) *status = st->status;
  return true;
}

void Proc::enqueue_unexpected(Comm& comm, int dest,
                              detail::PendingMsg msg) {
  // When is the message visible to a probe / receivable?  Eager: at its
  // arrival time; rendezvous: as soon as the sender is ready.
  const VTime visible = msg.rendezvous ? msg.sender_ready : msg.avail;
  const int src_rank = msg.src_rank;
  const int tag = msg.tag;
  const std::int64_t bytes = static_cast<std::int64_t>(msg.payload.size());
  const int count =
      static_cast<int>(bytes /
                       static_cast<std::int64_t>(datatype_size(msg.type)));
  comm.unexpected_[static_cast<std::size_t>(dest)].push_back(std::move(msg));
  auto& waiters = comm.probing_[static_cast<std::size_t>(dest)];
  for (auto it = waiters.begin(); it != waiters.end();) {
    if ((it->src == kAnySource || it->src == src_rank) &&
        (it->tag == kAnyTag || it->tag == tag)) {
      it->st->status = Status{src_rank, tag, bytes, count};
      it->st->done = true;
      it->st->complete_at = visible;
      ctx_.engine().wake(it->loc, visible);
      it = waiters.erase(it);
    } else {
      ++it;
    }
  }
}

void Proc::send_packed(const void* data, const Layout& layout, int dest,
                       int tag, Comm& comm) {
  const std::vector<std::byte> packed = layout.pack(data);
  send(packed.data(), layout.element_count(), layout.base(), dest, tag,
       comm);
}

void Proc::recv_packed(void* data, const Layout& layout, int src, int tag,
                       Comm& comm, Status* status) {
  std::vector<std::byte> packed(
      static_cast<std::size_t>(layout.packed_bytes()));
  recv(packed.data(), layout.element_count(), layout.base(), src, tag, comm,
       status);
  layout.unpack(packed, data);
}

void Proc::probe(int src, int tag, Comm& comm, Status* status) {
  const int me = rank(comm);
  if (src != kAnySource) comm.member(src);
  auto* tr = world_->trace();
  const trace::RegionId reg =
      world_->region("MPI_Probe", trace::RegionKind::kMpiP2P);
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  Status st_out;
  bool found = false;
  for (const auto& m : comm.unexpected_[static_cast<std::size_t>(me)]) {
    if ((src == kAnySource || m.src_rank == src) &&
        (tag == kAnyTag || m.tag == tag)) {
      const std::int64_t bytes =
          static_cast<std::int64_t>(m.payload.size());
      st_out = Status{m.src_rank, m.tag, bytes,
                      static_cast<int>(
                          bytes / static_cast<std::int64_t>(
                                      datatype_size(m.type)))};
      ctx_.advance_to(m.rendezvous ? m.sender_ready : m.avail);
      found = true;
      break;
    }
  }
  if (!found) {
    detail::ProbeWaiter w;
    w.src = src;
    w.tag = tag;
    w.loc = ctx_.id();
    w.st = std::make_shared<RequestState>();
    comm.probing_[static_cast<std::size_t>(me)].push_back(w);
    ctx_.block("MPI_Probe (waiting for a matching envelope)");
    st_out = w.st->status;
  }
  tr->exit(ctx_.id(), ctx_.now(), reg);
  if (status != nullptr) *status = st_out;
}

bool Proc::iprobe(int src, int tag, Comm& comm, Status* status) {
  const int me = rank(comm);
  if (src != kAnySource) comm.member(src);
  ctx_.yield();
  for (const auto& m : comm.unexpected_[static_cast<std::size_t>(me)]) {
    if ((src == kAnySource || m.src_rank == src) &&
        (tag == kAnyTag || m.tag == tag)) {
      const VTime visible = m.rendezvous ? m.sender_ready : m.avail;
      if (visible > ctx_.now()) continue;  // not arrived yet
      if (status != nullptr) {
        const std::int64_t bytes =
            static_cast<std::int64_t>(m.payload.size());
        *status = Status{m.src_rank, m.tag, bytes,
                         static_cast<int>(
                             bytes / static_cast<std::int64_t>(
                                         datatype_size(m.type)))};
      }
      return true;
    }
  }
  return false;
}

void Proc::sendrecv(const void* sdata, int scount, Datatype stype, int dest,
                    int stag, void* rdata, int rcount, Datatype rtype,
                    int src, int rtag, Comm& comm, Status* status) {
  auto* tr = world_->trace();
  const trace::RegionId reg =
      world_->region("MPI_Sendrecv", trace::RegionKind::kMpiP2P);
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  Request r = irecv(rdata, rcount, rtype, src, rtag, comm);
  send(sdata, scount, stype, dest, stag, comm);
  wait(r, status);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

}  // namespace ats::mpi
