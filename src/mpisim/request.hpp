// Non-blocking operation handles for the simulated MPI.
#pragma once

#include <cstdint>
#include <memory>

#include "common/vtime.hpp"
#include "simt/engine.hpp"
#include "trace/trace.hpp"

namespace ats::mpi {

/// Completion information for a receive (source/tag resolve wildcards).
struct Status {
  int source = -1;
  int tag = -1;
  std::int64_t bytes = 0;
  int count = 0;
};

/// Shared state of a pending isend/irecv.  The initiating rank holds the
/// Request; the completing rank (the matching peer) fills the state.
struct RequestState {
  bool done = false;
  bool is_recv = false;
  /// Receives: the trace Recv record was already emitted (by wait or test).
  bool recv_traced = false;
  VTime complete_at;
  Status status;
  /// For the trace Recv record emitted when a recv request completes.
  trace::CommId comm_tid = trace::kNone;
  trace::LocId peer_loc = trace::kNone;
  /// Location blocked in wait() on this request, if any.
  simt::LocationId waiter = simt::kNoLocation;
};

/// Value-semantic handle; copies refer to the same operation.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> st) : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  RequestState* state() { return st_.get(); }
  const RequestState* state() const { return st_.get(); }

 private:
  std::shared_ptr<RequestState> st_;
};

}  // namespace ats::mpi
