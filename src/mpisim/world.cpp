#include "mpisim/world.hpp"

#include <algorithm>

namespace ats::mpi {

// ------------------------------------------------------------------- Comm

Comm::Comm(World* world, std::vector<simt::LocationId> members,
           std::string name, trace::CommId trace_id)
    : world_(world),
      members_(std::move(members)),
      name_(std::move(name)),
      trace_id_(trace_id) {
  unexpected_.resize(members_.size());
  posted_.resize(members_.size());
  probing_.resize(members_.size());
  coll_count_.assign(members_.size(), 0);
  contiguous_ = true;
  for (std::size_t i = 1; i < members_.size(); ++i) {
    if (members_[i] != members_[0] + static_cast<simt::LocationId>(i)) {
      contiguous_ = false;
      break;
    }
  }
  if (!contiguous_) {
    rank_index_.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      rank_index_.emplace(members_[i], static_cast<int>(i));
    }
  }
}

simt::LocationId Comm::member(int rank) const {
  if (rank < 0 || rank >= size()) {
    throw MpiError("rank " + std::to_string(rank) +
                   " out of range for communicator '" + name_ + "' of size " +
                   std::to_string(size()));
  }
  return members_[static_cast<std::size_t>(rank)];
}

int Comm::rank_of(simt::LocationId loc) const {
  if (contiguous_) {
    if (members_.empty() || loc < members_.front() ||
        loc > members_.back()) {
      return -1;
    }
    return static_cast<int>(loc - members_.front());
  }
  const auto it = rank_index_.find(loc);
  return it == rank_index_.end() ? -1 : it->second;
}

// ------------------------------------------------------------------ World

World::World(simt::Engine& engine, int nprocs, CostModel cost,
             trace::Trace* trace)
    : engine_(engine), nprocs_(nprocs), cost_(cost), trace_(trace) {
  require(nprocs >= 1, "World: need at least one process");
  require(trace != nullptr, "World: trace must not be null");
}

void World::launch(std::function<void(Proc&)> body) {
  require(!launched_, "World::launch called twice");
  launched_ = true;
  std::vector<simt::LocationId> members;
  members.reserve(static_cast<std::size_t>(nprocs_));
  auto shared_body =
      std::make_shared<std::function<void(Proc&)>>(std::move(body));
  for (int r = 0; r < nprocs_; ++r) {
    const std::string name = "rank " + std::to_string(r);
    const simt::LocationId id = engine_.add_location(
        name, [this, r, shared_body](simt::Context& ctx) {
          Proc proc(ctx, this, r);
          proc.init();
          (*shared_body)(proc);
          proc.finalize();
        });
    members.push_back(id);
    trace::LocationInfo info;
    info.id = id;
    info.parent = trace::kNone;
    info.kind = trace::LocKind::kProcess;
    info.rank = r;
    info.thread = 0;
    info.name = name;
    trace_->add_location(std::move(info));
  }
  world_comm_ = &create_comm(std::move(members), "MPI_COMM_WORLD");
}

Comm& World::comm_world() {
  require(world_comm_ != nullptr, "World: launch() has not been called");
  return *world_comm_;
}

trace::RegionId World::region(const std::string& name,
                              trace::RegionKind kind) {
  return trace_->regions().intern(name, kind);
}

Comm& World::create_comm(std::vector<simt::LocationId> members,
                         std::string name) {
  const trace::CommId tid =
      trace_->add_comm(trace::CommKind::kMpiComm, members, name);
  comms_.emplace_back(Comm(this, std::move(members), std::move(name), tid));
  return comms_.back();
}

// ------------------------------------------------------------ rank faults

void World::arm_faults(const RankFaultPlan& plan) {
  if (plan.empty()) return;
  require(launched_, "World::arm_faults before launch()");
  plan.validate(nprocs_);
  fault_state_.resize(static_cast<std::size_t>(nprocs_));
  for (const RankFault& f : plan.faults) {
    RankFaultState& st = fault_state_[static_cast<std::size_t>(f.rank)];
    switch (f.kind) {
      case RankFaultKind::kCrash:
        st.crash_pending = true;
        st.crash_at = f.at;
        break;
      case RankFaultKind::kStall:
        st.stall_pending = true;
        st.stall_at = f.at;
        st.stall_for = f.duration;
        break;
      case RankFaultKind::kDropSends:
        st.drop_sends = true;
        st.drop_from = f.at;
        st.drop_probability = f.probability;
        // One independent stream per rank, derived from the plan seed via
        // the suite-wide splittable PRNG (common/rng.hpp).
        st.drop_rng = std::make_unique<Rng>(
            SplitSeed(plan.seed).child("drop-sends").rng(
                static_cast<std::uint64_t>(f.rank)));
        break;
    }
  }
  // Crash/stall trigger at scheduling points; install a resume hook on each
  // affected rank.  Drop-sends needs no hook — the p2p layer asks.
  for (int r = 0; r < nprocs_; ++r) {
    const RankFaultState& st = fault_state_[static_cast<std::size_t>(r)];
    if (!st.crash_pending && !st.stall_pending) continue;
    engine_.set_resume_hook(
        world_comm_->member(r),
        [this, r](simt::Context& ctx) { fault_tick(r, ctx); });
  }
}

void World::fault_tick(int rank, simt::Context& ctx) {
  RankFaultState& st = fault_state_[static_cast<std::size_t>(rank)];
  // Stall before crash, so a plan that stalls at t1 and crashes at t2 > t1
  // applies both in order.
  if (st.stall_pending && ctx.now() >= st.stall_at) {
    st.stall_pending = false;
    ++fault_report_.stalls;
    ctx.advance(st.stall_for);
  }
  if (st.crash_pending && ctx.now() >= st.crash_at) {
    st.crash_pending = false;
    ++fault_report_.crashes;
    throw MpiError("injected fault: rank " + std::to_string(rank) +
                   " crashed at " + ctx.now().str());
  }
}

bool World::fault_drop_send(int world_rank, VTime now) {
  if (fault_state_.empty()) return false;
  RankFaultState& st = fault_state_[static_cast<std::size_t>(world_rank)];
  if (!st.drop_sends || now < st.drop_from) return false;
  if (st.drop_probability < 1.0 &&
      st.drop_rng->next_double() >= st.drop_probability) {
    return false;
  }
  ++fault_report_.sends_dropped;
  return true;
}

// ------------------------------------------------------------------- Proc

Proc::Proc(simt::Context& ctx, World* world, int world_rank)
    : ctx_(ctx), world_(world), world_rank_(world_rank) {}

int Proc::rank(const Comm& c) const {
  const int r = c.rank_of(ctx_.id());
  if (r < 0) {
    throw MpiError("rank " + std::to_string(world_rank_) +
                   " is not a member of communicator '" + c.name() + "'");
  }
  return r;
}

void Proc::init() {
  const trace::RegionId reg =
      world_->region("MPI_Init", trace::RegionKind::kMpiOther);
  world_->trace()->enter(ctx_.id(), ctx_.now(), reg);
  ctx_.advance(world_->cost().init_cost);
  // MPI_Init synchronises the ranks in practice (shared launcher); model it
  // as a barrier so stragglers show up inside MPI_Init, as in Fig. 3.2.
  std::int64_t seq = 0;
  Comm& comm = world_->comm_world();
  detail::CollInstance& inst =
      coll_enter(comm, trace::CollOp::kBarrier, -1, Datatype::kByte, 0, seq,
                 trace::kNone);
  coll_all_wait(comm, inst, seq, [](detail::CollInstance&) {});
  world_->trace()->exit(ctx_.id(), ctx_.now(), reg);
}

void Proc::finalize() {
  const trace::RegionId reg =
      world_->region("MPI_Finalize", trace::RegionKind::kMpiOther);
  world_->trace()->enter(ctx_.id(), ctx_.now(), reg);
  std::int64_t seq = 0;
  Comm& comm = world_->comm_world();
  detail::CollInstance& inst =
      coll_enter(comm, trace::CollOp::kBarrier, -1, Datatype::kByte, 0, seq,
                 trace::kNone);
  coll_all_wait(comm, inst, seq, [](detail::CollInstance&) {});
  ctx_.advance(world_->cost().finalize_cost);
  world_->trace()->exit(ctx_.id(), ctx_.now(), reg);
}

// ----------------------------------------------------------------- runner

MpiRunResult run_mpi(const MpiRunOptions& options,
                     const std::function<void(Proc&)>& body) {
  MpiRunResult result;
  trace::Trace* sink =
      options.external_trace ? options.external_trace : &result.trace;
  sink->set_enabled(options.trace_enabled);
  if (!options.trace_spill_path.empty()) {
    sink->enable_spill(options.trace_spill_path,
                       options.trace_spill_watermark);
  }
  simt::Engine engine(options.engine);
  World world(engine, options.nprocs, options.cost, sink);
  // Failure dumps report the trace payload next to location states; both
  // figures are identical across backends, keeping dumps parity-safe.
  engine.set_resource_probe([trace = sink] {
    simt::EngineResources r;
    r.trace_bytes = trace->memory_bytes();
    r.spilled_bytes = trace->spilled_bytes();
    return r;
  });
  world.launch(body);
  world.arm_faults(options.faults);
  engine.run();
  result.stats = engine.stats();
  result.makespan = engine.horizon();
  result.fault_report = world.fault_report();
  return result;
}

}  // namespace ats::mpi
