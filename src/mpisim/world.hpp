// The simulated MPI world: process launch, per-rank API (Proc), tracing.
//
// Usage mirrors an MPI program:
//
//   mpi::MpiRunOptions opt{.nprocs = 8};
//   auto result = mpi::run_mpi(opt, [](mpi::Proc& p) {
//     if (p.world_rank() == 0) { ... p.send(...); } else { ... p.recv(...); }
//     p.barrier(p.comm_world());
//   });
//   // result.trace is the event trace an analysis tool consumes.
//
// Every Proc method may only be called from inside the body, on the owning
// simulated process.  Semantic violations (mismatched collectives, truncating
// receives, invalid ranks) throw MpiError; deadlocks surface as
// simt::DeadlockError from Engine::run with a per-rank state dump.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/costmodel.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/faultplan.hpp"
#include "mpisim/layout.hpp"
#include "mpisim/request.hpp"
#include "simt/engine.hpp"
#include "trace/trace.hpp"

namespace ats::mpi {

class Proc;

/// Per-engine MPI state: the communicator registry, cost model and trace.
class World {
 public:
  World(simt::Engine& engine, int nprocs, CostModel cost,
        trace::Trace* trace);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Registers the rank locations; `body` runs once per rank.  Call once,
  /// before Engine::run().
  void launch(std::function<void(Proc&)> body);

  int nprocs() const { return nprocs_; }
  Comm& comm_world();
  const CostModel& cost() const { return cost_; }
  trace::Trace* trace() { return trace_; }
  simt::Engine& engine() { return engine_; }

  /// Interns an MPI region name (cached).
  trace::RegionId region(const std::string& name, trace::RegionKind kind);

  /// Creates a communicator over `members` (global locations; position ==
  /// rank) and registers it with the trace.
  Comm& create_comm(std::vector<simt::LocationId> members, std::string name);

  /// Arms a rank-fault plan: installs crash/stall resume hooks on the
  /// affected rank locations and records drop-send schedules consulted by
  /// the p2p layer.  Call after launch(), before Engine::run().
  void arm_faults(const RankFaultPlan& plan);
  const RankFaultReport& fault_report() const { return fault_report_; }

 private:
  friend class Proc;

  /// Crash/stall supervision, invoked on a faulty rank's thread each time
  /// it resumes with the token (Engine resume hook).
  void fault_tick(int rank, simt::Context& ctx);
  /// True iff a p2p message sent by `world_rank` at `now` must vanish.
  /// Serialised by the engine token, like all world state.
  bool fault_drop_send(int world_rank, VTime now);

  struct RankFaultState {
    bool crash_pending = false;
    VTime crash_at;
    bool stall_pending = false;
    VTime stall_at;
    VDur stall_for;
    bool drop_sends = false;
    VTime drop_from;
    double drop_probability = 1.0;
    std::unique_ptr<Rng> drop_rng;  // seeded per rank from the plan seed
  };

  simt::Engine& engine_;
  int nprocs_;
  CostModel cost_;
  trace::Trace* trace_;
  std::deque<Comm> comms_;  // stable addresses
  Comm* world_comm_ = nullptr;
  bool launched_ = false;
  std::vector<RankFaultState> fault_state_;  // empty when no plan armed
  RankFaultReport fault_report_;
};

/// Per-rank MPI handle, constructed by World::launch around the user body.
class Proc {
 public:
  // --- identity ---------------------------------------------------------
  int world_rank() const { return world_rank_; }
  int rank(const Comm& c) const;
  Comm& comm_world() { return world_->comm_world(); }
  World& world() { return *world_; }
  simt::Context& sim() { return ctx_; }

  // --- point-to-point ----------------------------------------------------
  void send(const void* data, int count, Datatype type, int dest, int tag,
            Comm& comm);
  /// Synchronous send: always rendezvous (completes only once matched).
  void ssend(const void* data, int count, Datatype type, int dest, int tag,
             Comm& comm);
  void recv(void* data, int count, Datatype type, int src, int tag,
            Comm& comm, Status* status = nullptr);
  Request isend(const void* data, int count, Datatype type, int dest,
                int tag, Comm& comm);
  Request irecv(void* data, int count, Datatype type, int src, int tag,
                Comm& comm);
  void wait(Request& req, Status* status = nullptr);
  void waitall(std::span<Request> reqs);
  /// Non-blocking completion check; never advances the clock past `now`.
  bool test(Request& req, Status* status = nullptr);
  /// Combined send+recv (deadlock-free pairwise exchange).
  void sendrecv(const void* sdata, int scount, Datatype stype, int dest,
                int stag, void* rdata, int rcount, Datatype rtype, int src,
                int rtag, Comm& comm, Status* status = nullptr);
  /// Sends a non-contiguous layout (derived datatype) by packing it into a
  /// contiguous message; pairs with recv_packed (or a plain recv of
  /// layout.element_count() base elements).
  void send_packed(const void* data, const Layout& layout, int dest,
                   int tag, Comm& comm);
  /// Receives into a non-contiguous layout by unpacking a contiguous
  /// message of layout.element_count() base elements.
  void recv_packed(void* data, const Layout& layout, int src, int tag,
                   Comm& comm, Status* status = nullptr);
  /// Blocks until a matching message could be received; fills `status`
  /// without consuming the message (MPI_Probe).
  void probe(int src, int tag, Comm& comm, Status* status);
  /// Non-blocking probe: true iff a matching message is available *now*.
  bool iprobe(int src, int tag, Comm& comm, Status* status = nullptr);

  // --- collectives --------------------------------------------------------
  void barrier(Comm& comm);
  void bcast(void* data, int count, Datatype type, int root, Comm& comm);
  void scatter(const void* sdata, int scount, void* rdata, int rcount,
               Datatype type, int root, Comm& comm);
  void scatterv(const void* sdata, std::span<const int> scounts,
                std::span<const int> displs, void* rdata, int rcount,
                Datatype type, int root, Comm& comm);
  void gather(const void* sdata, int scount, void* rdata, int rcount,
              Datatype type, int root, Comm& comm);
  void gatherv(const void* sdata, int scount, void* rdata,
               std::span<const int> rcounts, std::span<const int> displs,
               Datatype type, int root, Comm& comm);
  void reduce(const void* sdata, void* rdata, int count, Datatype type,
              ReduceOp op, int root, Comm& comm);
  void allreduce(const void* sdata, void* rdata, int count, Datatype type,
                 ReduceOp op, Comm& comm);
  void alltoall(const void* sdata, int scount, void* rdata, int rcount,
                Datatype type, Comm& comm);
  void allgather(const void* sdata, int scount, void* rdata, int rcount,
                 Datatype type, Comm& comm);
  void scan(const void* sdata, void* rdata, int count, Datatype type,
            ReduceOp op, Comm& comm);
  /// Element-wise reduction of p blocks of `count` elements; block i of the
  /// result lands on rank i (MPI_Reduce_scatter_block).
  void reduce_scatter_block(const void* sdata, void* rdata, int count,
                            Datatype type, ReduceOp op, Comm& comm);

  // --- communicator management -------------------------------------------
  /// Collective; returns the caller's new communicator, or nullptr when
  /// `color == kUndefined`.
  Comm* split(Comm& comm, int color, int key);
  Comm& dup(Comm& comm);

 private:
  friend class World;
  Proc(simt::Context& ctx, World* world, int world_rank);

  void init();      ///< models MPI_Init (cost + implicit synchronisation)
  void finalize();  ///< models MPI_Finalize

  // p2p internals (p2p.cpp)
  void send_impl(const void* data, int count, Datatype type, int dest,
                 int tag, Comm& comm, bool force_sync, const char* region);
  Request isend_impl(const void* data, int count, Datatype type, int dest,
                     int tag, Comm& comm);
  /// Finds a matching unexpected message; consumes and returns it.
  std::optional<detail::PendingMsg> match_unexpected(Comm& comm, int my_rank,
                                                     int src, int tag);
  /// Finds a matching posted recv; consumes and returns it.
  std::optional<detail::PendingRecv> match_posted(Comm& comm, int dest,
                                                  int src_rank, int tag);
  void complete_request(RequestState& st, VTime at, const Status& status);
  /// Enqueues an unexpected message and releases matching probe waiters.
  void enqueue_unexpected(Comm& comm, int dest, detail::PendingMsg msg);

  // collective internals (coll.cpp)
  /// Joins collective instance (comm, seq).  Records the region enter and
  /// the per-participant kCollBegin call record *before* the consistency
  /// checks, so a mismatching rank still leaves evidence the replay-side
  /// collective checker can cite; pass region == trace::kNone to suppress
  /// both records (the internal init/finalize barriers, which never reach
  /// coll_finish).  `rop` is the reduce-op id for reductions
  /// (trace::kNone for ops without one).
  detail::CollInstance& coll_enter(Comm& comm, trace::CollOp op, int root,
                                   Datatype type, std::int64_t bytes,
                                   std::int64_t& seq_out,
                                   trace::RegionId region,
                                   std::int32_t rop = trace::kNone);
  void coll_finish(Comm& comm, std::int64_t seq, trace::CollOp op,
                   VTime enter_t, std::int64_t bytes_in,
                   std::int64_t bytes_out, trace::RegionId region);
  /// Implements the wait/compute logic shared by all-to-all-shaped ops.
  void coll_all_wait(Comm& comm, detail::CollInstance& inst,
                     std::int64_t seq,
                     const std::function<void(detail::CollInstance&)>&
                         compute_outputs);
  void scatterv_impl(trace::CollOp op, const void* sdata,
                     std::span<const int> scounts, std::span<const int> displs,
                     void* rdata, int rcount, Datatype type, int root,
                     Comm& comm);
  void gatherv_impl(trace::CollOp op, const void* sdata, int scount,
                    void* rdata, std::span<const int> rcounts,
                    std::span<const int> displs, Datatype type, int root,
                    Comm& comm);

  simt::Context& ctx_;
  World* world_;
  int world_rank_;
};

/// Options for the one-call runner.
struct MpiRunOptions {
  int nprocs = 4;
  CostModel cost{};
  simt::EngineOptions engine{};
  /// When false, the trace records nothing (overhead measurements).
  bool trace_enabled = true;
  /// Seeded rank faults (crash / stall / drop sends); empty = clean run.
  RankFaultPlan faults{};
  /// When non-empty, the trace streams event blocks to this file once its
  /// resident payload exceeds trace_spill_watermark (see
  /// Trace::enable_spill).  The returned trace is then save-only: save()/
  /// save_binary() stream the segments back, but events_of()/merged()
  /// throw until the saved file is reloaded.
  std::string trace_spill_path;
  std::size_t trace_spill_watermark = 64u << 20;  // 64 MiB
  /// When non-null, events are recorded into *external_trace instead of
  /// MpiRunResult::trace (which is then left empty).  The sink outlives the
  /// run, so callers keep the partial trace even when run_mpi throws
  /// (deadlock, MPI error) — the collective checker analyses exactly these
  /// salvaged traces.
  trace::Trace* external_trace = nullptr;
};

struct MpiRunResult {
  trace::Trace trace;
  simt::EngineStats stats;
  /// Latest clock over all ranks at completion (simulated makespan).
  VTime makespan;
  /// What the armed rank faults actually did (all zero on clean runs).
  RankFaultReport fault_report;
};

/// Creates an engine + world, runs `body` on every rank, returns the trace.
MpiRunResult run_mpi(const MpiRunOptions& options,
                     const std::function<void(Proc&)>& body);

}  // namespace ats::mpi
