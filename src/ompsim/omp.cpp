#include "ompsim/omp.hpp"

#include <algorithm>

namespace ats::omp {

// ---------------------------------------------------------------- Runtime

Runtime::Runtime(trace::Trace* trace, OmpCostModel cost)
    : trace_(trace), cost_(cost) {
  require(trace != nullptr, "omp::Runtime: trace must not be null");
}

trace::RegionId Runtime::region(const std::string& name,
                                trace::RegionKind kind) {
  return trace_->regions().intern(name, kind);
}

Runtime::Lock& Runtime::lock(const std::string& name) {
  auto [it, inserted] = locks_.try_emplace(name);
  if (inserted) it->second.id = next_lock_id_++;
  return it->second;
}

// --------------------------------------------------------------- parallel

void parallel(simt::Context& ctx, Runtime& rt, int nthreads,
              const std::function<void(OmpCtx&)>& body,
              const std::string& region_name) {
  require(nthreads >= 1, "omp::parallel: need at least one thread");
  auto* tr = rt.trace();
  const trace::RegionId reg =
      rt.region("omp " + region_name, trace::RegionKind::kOmpParallel);

  ctx.yield();
  ctx.advance(rt.cost().fork_cost);

  auto team = std::make_shared<detail::Team>();
  team->rt = &rt;
  team->members.resize(static_cast<std::size_t>(nthreads));
  team->members[0] = ctx.id();
  team->barrier_count.assign(static_cast<std::size_t>(nthreads), 0);
  team->ws_count.assign(static_cast<std::size_t>(nthreads), 0);

  // Fork the worker threads; each runs the body as thread `t`, ends with
  // the region's implicit barrier, and exits.
  std::vector<std::pair<std::string, simt::LocationBody>> children;
  // Copy the parent metadata: add_location below may reallocate the
  // location table and invalidate references into it.
  const std::string parent_name = tr->location(ctx.id()).name;
  const std::int32_t parent_rank = tr->location(ctx.id()).rank;
  for (int t = 1; t < nthreads; ++t) {
    std::string name = parent_name + " thread " + std::to_string(t);
    children.emplace_back(
        std::move(name), [team, t, &body, reg](simt::Context& c) {
          auto* ttr = team->rt->trace();
          ttr->enter(c.id(), c.now(), reg);
          OmpCtx octx(c, team, t);
          body(octx);
          octx.barrier_impl(trace::CollOp::kOmpIBarrier);
          ttr->exit(c.id(), c.now(), reg);
        });
  }
  const std::vector<simt::LocationId> ids = ctx.spawn(children);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    team->members[i + 1] = ids[i];
    trace::LocationInfo info;
    info.id = ids[i];
    info.parent = ctx.id();
    info.kind = trace::LocKind::kThread;
    info.rank = parent_rank;
    info.thread = static_cast<std::int32_t>(i + 1);
    info.name = ctx.engine().name_of(ids[i]);
    tr->add_location(std::move(info));
  }
  team->comm_id = tr->add_comm(trace::CommKind::kOmpTeam, team->members,
                               parent_name + " team(" + region_name + ")");

  // Master participates as thread 0.
  tr->enter(ctx.id(), ctx.now(), reg);
  OmpCtx octx(ctx, team, 0);
  body(octx);
  octx.barrier_impl(trace::CollOp::kOmpIBarrier);
  tr->exit(ctx.id(), ctx.now(), reg);
  ctx.join(ids);
}

// ----------------------------------------------------------------- OmpCtx

void OmpCtx::barrier() {
  const trace::RegionId reg = runtime().region(
      "omp barrier", trace::RegionKind::kOmpSync);
  auto* tr = runtime().trace();
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  barrier_impl(trace::CollOp::kOmpBarrier);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::barrier_impl(trace::CollOp op) {
  const int p = num_threads();
  auto* tr = runtime().trace();
  ctx_.yield();
  const std::size_t utid = static_cast<std::size_t>(tid_);
  const std::int64_t seq = team_->barrier_count[utid]++;
  auto [it, inserted] = team_->barriers.try_emplace(seq);
  detail::BarrierInst& inst = it->second;
  if (inserted) {
    inst.enter.assign(static_cast<std::size_t>(p), VTime::max());
    inst.present.assign(static_cast<std::size_t>(p), false);
  }
  inst.present[utid] = true;
  inst.enter[utid] = ctx_.now();
  inst.max_enter = later(inst.max_enter, ctx_.now());
  ++inst.arrived;
  const VTime enter_t = ctx_.now();

  if (inst.arrived < p) {
    ctx_.block("omp barrier (waiting for team)");
  } else {
    const VTime end = inst.max_enter + runtime().cost().barrier_cost;
    for (int t = 0; t < p; ++t) {
      if (t != tid_) {
        ctx_.engine().wake(team_->members[static_cast<std::size_t>(t)], end);
      }
    }
    ctx_.advance_to(end);
  }
  tr->coll_end(ctx_.id(), ctx_.now(), enter_t, team_->comm_id, seq, op,
               trace::kNone, 0, 0);
  ++inst.exited;
  if (inst.exited == p) team_->barriers.erase(seq);
}

std::int64_t OmpCtx::next_ws_seq() {
  return team_->ws_count[static_cast<std::size_t>(tid_)]++;
}

void OmpCtx::for_static(std::int64_t n, std::int64_t chunk,
                        const std::function<void(std::int64_t)>& body,
                        bool nowait) {
  require(n >= 0, "for_static: negative trip count");
  const int p = num_threads();
  const trace::RegionId reg = runtime().region(
      "omp for(static)", trace::RegionKind::kOmpWork);
  auto* tr = runtime().trace();
  next_ws_seq();  // keep construct sequence aligned across schedules
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  if (chunk <= 0) {
    // One contiguous block per thread (OpenMP default static schedule).
    const std::int64_t base = n / p;
    const std::int64_t rem = n % p;
    const std::int64_t lo =
        tid_ * base + std::min<std::int64_t>(tid_, rem);
    const std::int64_t len = base + (tid_ < rem ? 1 : 0);
    for (std::int64_t i = lo; i < lo + len; ++i) body(i);
  } else {
    for (std::int64_t start = static_cast<std::int64_t>(tid_) * chunk;
         start < n; start += static_cast<std::int64_t>(p) * chunk) {
      const std::int64_t end = std::min(n, start + chunk);
      for (std::int64_t i = start; i < end; ++i) body(i);
    }
  }
  if (!nowait) barrier_impl(trace::CollOp::kOmpIBarrier);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::dynamic_schedule(
    std::int64_t n,
    const std::function<std::int64_t(std::int64_t)>& chunk_for_remaining,
    const std::function<void(std::int64_t)>& body) {
  detail::WsInst* inst;
  {
    const std::int64_t seq = next_ws_seq();
    auto [it, inserted] = team_->ws.try_emplace(seq);
    inst = &it->second;
    // The instance is erased lazily: WsInst is cheap and the map lives only
    // as long as the team, so constructs simply accumulate.
  }
  for (;;) {
    ctx_.yield();  // chunk grabbing happens in virtual-time order
    if (inst->next >= n) break;
    const std::int64_t remaining = n - inst->next;
    const std::int64_t chunk =
        std::max<std::int64_t>(1, chunk_for_remaining(remaining));
    const std::int64_t lo = inst->next;
    const std::int64_t hi = std::min(n, lo + chunk);
    inst->next = hi;
    ctx_.advance(runtime().cost().sched_chunk_cost);
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

void OmpCtx::for_dynamic(std::int64_t n, std::int64_t chunk,
                         const std::function<void(std::int64_t)>& body,
                         bool nowait) {
  require(n >= 0, "for_dynamic: negative trip count");
  require(chunk >= 1, "for_dynamic: chunk must be >= 1");
  const trace::RegionId reg = runtime().region(
      "omp for(dynamic)", trace::RegionKind::kOmpWork);
  auto* tr = runtime().trace();
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  dynamic_schedule(n, [chunk](std::int64_t) { return chunk; }, body);
  if (!nowait) barrier_impl(trace::CollOp::kOmpIBarrier);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::for_guided(std::int64_t n, std::int64_t min_chunk,
                        const std::function<void(std::int64_t)>& body,
                        bool nowait) {
  require(n >= 0, "for_guided: negative trip count");
  require(min_chunk >= 1, "for_guided: min_chunk must be >= 1");
  const int p = num_threads();
  const trace::RegionId reg = runtime().region(
      "omp for(guided)", trace::RegionKind::kOmpWork);
  auto* tr = runtime().trace();
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  dynamic_schedule(
      n,
      [min_chunk, p](std::int64_t remaining) {
        return std::max(min_chunk, remaining / (2 * p));
      },
      body);
  if (!nowait) barrier_impl(trace::CollOp::kOmpIBarrier);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::sections(const std::vector<std::function<void()>>& secs,
                      bool nowait) {
  const trace::RegionId reg = runtime().region(
      "omp sections", trace::RegionKind::kOmpWork);
  auto* tr = runtime().trace();
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  dynamic_schedule(
      static_cast<std::int64_t>(secs.size()),
      [](std::int64_t) { return 1; },
      [&](std::int64_t i) { secs[static_cast<std::size_t>(i)](); });
  if (!nowait) barrier_impl(trace::CollOp::kOmpIBarrier);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::single(const std::function<void()>& body, bool nowait) {
  const trace::RegionId reg = runtime().region(
      "omp single", trace::RegionKind::kOmpWork);
  auto* tr = runtime().trace();
  const std::int64_t seq = next_ws_seq();
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  auto [it, inserted] = team_->ws.try_emplace(seq);
  if (!it->second.single_taken) {
    it->second.single_taken = true;
    body();
  }
  if (!nowait) barrier_impl(trace::CollOp::kOmpIBarrier);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::master(const std::function<void()>& body) {
  const trace::RegionId reg = runtime().region(
      "omp master", trace::RegionKind::kOmpWork);
  auto* tr = runtime().trace();
  if (tid_ != 0) return;
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  body();
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::critical(const std::string& name,
                      const std::function<void()>& body) {
  const trace::RegionId reg = runtime().region(
      "omp critical(" + name + ")", trace::RegionKind::kOmpSync);
  auto* tr = runtime().trace();
  ctx_.yield();
  tr->enter(ctx_.id(), ctx_.now(), reg);
  set_lock("critical:" + name);
  body();
  unset_lock("critical:" + name);
  tr->exit(ctx_.id(), ctx_.now(), reg);
}

void OmpCtx::set_lock(const std::string& name) {
  auto* tr = runtime().trace();
  ctx_.yield();
  Runtime::Lock& lk = runtime().lock(name);
  if (!lk.held) {
    lk.held = true;
    ctx_.advance(runtime().cost().lock_cost);
  } else {
    lk.queue.push_back(ctx_.id());
    ctx_.block("omp lock (contended)");
    // Woken by unset_lock with the lock transferred to us.
  }
  tr->lock_acquire(ctx_.id(), ctx_.now(), lk.id);
}

void OmpCtx::unset_lock(const std::string& name) {
  auto* tr = runtime().trace();
  ctx_.yield();
  Runtime::Lock& lk = runtime().lock(name);
  require(lk.held, "unset_lock: lock '" + name + "' is not held");
  if (lk.queue.empty()) {
    lk.held = false;
  } else {
    const simt::LocationId next = lk.queue.front();
    lk.queue.erase(lk.queue.begin());
    ctx_.engine().wake(next, ctx_.now() + runtime().cost().lock_cost);
  }
  tr->lock_release(ctx_.id(), ctx_.now(), lk.id);
}

// ----------------------------------------------------------------- runner

OmpRunResult run_omp(
    const OmpRunOptions& options,
    const std::function<void(simt::Context&, Runtime&)>& body) {
  OmpRunResult result;
  result.trace.set_enabled(options.trace_enabled);
  simt::Engine engine(options.engine);
  Runtime rt(&result.trace, options.cost);
  engine.add_location("master", [&](simt::Context& ctx) { body(ctx, rt); });
  trace::LocationInfo info;
  info.id = 0;
  info.parent = trace::kNone;
  info.kind = trace::LocKind::kProcess;
  info.rank = 0;
  info.thread = 0;
  info.name = "master";
  result.trace.add_location(std::move(info));
  engine.run();
  result.stats = engine.stats();
  result.makespan = engine.horizon();
  return result;
}

}  // namespace ats::omp
