// Simulated OpenMP: fork/join thread teams on the simt engine.
//
// A parallel region forks `nthreads - 1` child locations; the encountering
// location participates as thread 0 (the master), exactly like an OpenMP
// runtime.  Worksharing constructs (static/dynamic/guided loops, sections,
// single) and synchronisation (explicit barriers, the implicit barrier at
// the end of every worksharing construct and region, critical sections,
// locks) are all expressed in virtual time, so an unbalanced loop shows up
// as per-thread wait time at the construct's implicit barrier — the event
// pattern the ATS OpenMP property functions are designed to inject.
//
//   omp::Runtime rt(&trace);                    // one per (simulated) process
//   omp::parallel(ctx, rt, 4, [&](omp::OmpCtx& o) {
//     o.for_static(100, 0, [&](std::int64_t i) { ... });
//     o.barrier();
//     o.critical("update", [&] { ... });
//   });
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/vtime.hpp"
#include "simt/engine.hpp"
#include "trace/trace.hpp"

namespace ats::omp {

struct OmpCostModel {
  /// Cost of forking/joining a team, paid by every member at region entry.
  VDur fork_cost = VDur::micros(20);
  /// Completion cost of a team barrier once the last thread has arrived.
  VDur barrier_cost = VDur::micros(5);
  /// Cost of grabbing a chunk from a dynamic/guided schedule.
  VDur sched_chunk_cost = VDur::micros(1);
  /// Cost of an uncontended lock acquire/release pair.
  VDur lock_cost = VDur::nanos(500);
};

/// Per-process OpenMP state: lock table, cost model, trace access.  Create
/// one per simulated process (locks are process-wide, like real OpenMP).
class Runtime {
 public:
  explicit Runtime(trace::Trace* trace, OmpCostModel cost = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  trace::Trace* trace() { return trace_; }
  const OmpCostModel& cost() const { return cost_; }
  trace::RegionId region(const std::string& name, trace::RegionKind kind);

 private:
  friend class OmpCtx;
  friend void parallel(simt::Context&, Runtime&, int,
                       const std::function<void(class OmpCtx&)>&,
                       const std::string&);

  struct Lock {
    std::int32_t id = 0;
    bool held = false;
    std::vector<simt::LocationId> queue;  // FIFO of blocked acquirers
  };
  Lock& lock(const std::string& name);

  trace::Trace* trace_;
  OmpCostModel cost_;
  std::map<std::string, Lock> locks_;
  std::int32_t next_lock_id_ = 0;
};

namespace detail {

struct BarrierInst {
  int arrived = 0;
  int exited = 0;
  VTime max_enter;
  std::vector<VTime> enter;
  std::vector<bool> present;
};

struct WsInst {
  std::int64_t next = 0;    // next unscheduled iteration / section
  bool single_taken = false;
  int exited = 0;
};

/// Shared state of one team (master + children).
struct Team {
  Runtime* rt = nullptr;
  std::vector<simt::LocationId> members;  // index == thread number
  trace::CommId comm_id = trace::kNone;
  std::vector<std::int64_t> barrier_count;  // per thread
  std::map<std::int64_t, BarrierInst> barriers;
  std::vector<std::int64_t> ws_count;  // per thread
  std::map<std::int64_t, WsInst> ws;
};

}  // namespace detail

/// Per-thread handle inside a parallel region.
class OmpCtx {
 public:
  int thread_num() const { return tid_; }
  int num_threads() const { return static_cast<int>(team_->members.size()); }
  simt::Context& sim() { return ctx_; }
  Runtime& runtime() { return *team_->rt; }

  /// Explicit team barrier (#pragma omp barrier).
  void barrier();

  /// Worksharing loop with static schedule over [0, n).  `chunk == 0`
  /// means one contiguous block per thread; otherwise round-robin chunks.
  /// Ends with the implicit barrier unless `nowait`.
  void for_static(std::int64_t n, std::int64_t chunk,
                  const std::function<void(std::int64_t)>& body,
                  bool nowait = false);
  /// Dynamic schedule: threads grab `chunk`-sized blocks first-come.
  void for_dynamic(std::int64_t n, std::int64_t chunk,
                   const std::function<void(std::int64_t)>& body,
                   bool nowait = false);
  /// Guided schedule: exponentially shrinking chunks, at least `min_chunk`.
  void for_guided(std::int64_t n, std::int64_t min_chunk,
                  const std::function<void(std::int64_t)>& body,
                  bool nowait = false);

  /// #pragma omp sections — each function is one section, distributed
  /// dynamically; implicit barrier at the end.
  void sections(const std::vector<std::function<void()>>& secs,
                bool nowait = false);

  /// #pragma omp single: the first thread to arrive executes `body`;
  /// implicit barrier afterwards unless `nowait`.
  void single(const std::function<void()>& body, bool nowait = false);

  /// #pragma omp master: thread 0 executes; no barrier.
  void master(const std::function<void()>& body);

  /// #pragma omp critical(name).
  void critical(const std::string& name, const std::function<void()>& body);

  /// Explicit lock API (omp_set_lock / omp_unset_lock).
  void set_lock(const std::string& name);
  void unset_lock(const std::string& name);

 private:
  friend void parallel(simt::Context&, Runtime&, int,
                       const std::function<void(OmpCtx&)>&,
                       const std::string&);

  OmpCtx(simt::Context& ctx, std::shared_ptr<detail::Team> team, int tid)
      : ctx_(ctx), team_(std::move(team)), tid_(tid) {}

  /// Team barrier tagged as explicit or implicit for the analyzer.
  void barrier_impl(trace::CollOp op);
  /// Generic driver for dynamically scheduled constructs.
  void dynamic_schedule(std::int64_t n,
                        const std::function<std::int64_t(std::int64_t)>&
                            chunk_for_remaining,
                        const std::function<void(std::int64_t)>& body);
  std::int64_t next_ws_seq();

  simt::Context& ctx_;
  std::shared_ptr<detail::Team> team_;
  int tid_;
};

/// Executes `body` on a team of `nthreads` (the calling location is thread
/// 0); returns when the team has joined.  `region_name` labels the parallel
/// region in the trace, so different regions are distinguishable call paths.
void parallel(simt::Context& ctx, Runtime& rt, int nthreads,
              const std::function<void(OmpCtx&)>& body,
              const std::string& region_name = "parallel_region");

/// Options for the standalone (non-MPI) OpenMP runner.
struct OmpRunOptions {
  OmpCostModel cost{};
  simt::EngineOptions engine{};
  bool trace_enabled = true;
};

struct OmpRunResult {
  trace::Trace trace;
  simt::EngineStats stats;
  VTime makespan;
};

/// Runs `body` on a single master location with an OpenMP runtime; the body
/// opens parallel regions via omp::parallel.
OmpRunResult run_omp(const OmpRunOptions& options,
                     const std::function<void(simt::Context&, Runtime&)>& body);

}  // namespace ats::omp
