#include "proptest/oracle.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/strutil.hpp"
#include "common/rng.hpp"
#include "diff/diff.hpp"
#include "faults/fault_injector.hpp"
#include "mpisim/world.hpp"
#include "ompsim/omp.hpp"
#include "report/cube_view.hpp"
#include "trace/trace_binary.hpp"
#include "trace/trace_io.hpp"

namespace ats::proptest {

namespace {

using analyze::AnalysisResult;
using analyze::AnalyzerOptions;
using analyze::PropertyId;
using gen::RunOutcome;

/// Supervision budgets for fuzz runs: generous for any generated program,
/// but tight enough that the pathological specs (deadlock / hang /
/// livelock) classify in milliseconds of host time.
constexpr double kVirtualLimitSec = 120.0;
constexpr std::uint64_t kYieldLimit = 2'000'000;

/// A dominant wait state below this fraction of total time counts as
/// "quiet" (the negative-program criterion of the detection matrix); a
/// positive spec's expected property must exceed it.
constexpr double kQuietFraction = 0.02;

/// True when `name` maps to `expected` or to an ancestor/descendant of it
/// in the property tree — the acceptable attribution family for a delay
/// injected into `expected` (a grown leaf also grows its roll-ups, and a
/// parent property can carry the attribution when the growth lands in a
/// child like late-sender/wrong-order).
bool in_attribution_family(const std::string& name, PropertyId expected) {
  PropertyId named = PropertyId::kCount_;
  for (PropertyId p : analyze::property_preorder()) {
    if (name == analyze::property_name(p)) {
      named = p;
      break;
    }
  }
  if (named == PropertyId::kCount_) return false;
  for (PropertyId cur = named;; cur = analyze::property_info(cur).parent) {
    if (cur == expected) return true;
    if (cur == PropertyId::kTotal) break;
  }
  for (PropertyId cur = expected;; cur = analyze::property_info(cur).parent) {
    if (cur == named) return true;
    if (cur == PropertyId::kTotal) break;
  }
  return false;
}

std::string first_line(const std::string& s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

/// "dropped=2 unmatched_sends=1" — the non-zero anomaly counters.
std::string quality_summary(const analyze::DataQuality& q) {
  std::ostringstream os;
  auto field = [&](const char* name, std::size_t v) {
    if (v > 0) os << (os.tellp() > 0 ? " " : "") << name << "=" << v;
  };
  field("dropped", q.events_dropped);
  field("repaired", q.events_repaired);
  field("unbalanced_exits", q.unbalanced_exits);
  field("unmatched_sends", q.unmatched_sends);
  field("unmatched_recvs", q.unmatched_recvs);
  field("incomplete_collectives", q.incomplete_collectives);
  field("negative_waits", q.negative_waits_clamped);
  field("skewed_messages", q.skewed_messages);
  field("unsorted_locations", q.unsorted_locations);
  if (q.clock_skew_detected) os << (os.tellp() > 0 ? " " : "") << "clock_skew";
  return os.str();
}

std::string save_text(const trace::Trace& t) {
  std::ostringstream os;
  t.save(os);
  return os.str();
}

/// The program body for one spec: the primary property, then any mix
/// members, bound to one PropCtx per rank exactly like run_single_property.
void invoke_members(const ProgramSpec& spec, mpi::Proc& p,
                    const gen::RunConfig& cfg) {
  const auto& reg = gen::Registry::instance();
  std::vector<const gen::PropertyDef*> defs;
  defs.push_back(&reg.find(spec.property));
  for (const auto& name : spec.mix) defs.push_back(&reg.find(name));
  const bool any_omp =
      std::any_of(defs.begin(), defs.end(),
                  [](const gen::PropertyDef* d) { return d->uses_openmp; });
  std::optional<omp::Runtime> rt;
  if (any_omp) rt.emplace(p.world().trace(), cfg.omp_cost);
  core::PropCtx ctx = core::PropCtx::from(p, rt ? &*rt : nullptr);
  for (const gen::PropertyDef* def : defs) {
    def->invoke(ctx, params_for(*def, spec));
  }
}

/// The injected-miscall epilogue: runs after the spec's program body, on
/// comm world, so the salvaged trace ends with exactly one known structural
/// defect for the collective checker to find.
void inject_coll_defect(const ProgramSpec& spec, mpi::Proc& p) {
  if (spec.coll_defect == SpecCollDefect::kNone) return;
  core::PropCtx ctx = core::PropCtx::from(p);
  const double work = static_cast<double>(spec.basework_us) * 1e-6;
  mpi::Comm& world = ctx.mpi_proc().comm_world();
  switch (spec.coll_defect) {
    case SpecCollDefect::kNone:
      break;
    case SpecCollDefect::kOpMismatch:
      core::defect_collective_op_mismatch(ctx, work, world);
      break;
    case SpecCollDefect::kMissingCall:
      core::defect_conditional_collective(ctx, work, world);
      break;
    case SpecCollDefect::kRootMismatch:
      core::defect_collective_root_mismatch(ctx, work, world);
      break;
    case SpecCollDefect::kReduceOpMismatch:
      core::defect_reduce_op_mismatch(ctx, work, world);
      break;
    case SpecCollDefect::kSplitColor:
      core::defect_split_comm_color(ctx, work, world);
      break;
  }
}

int effective_nprocs(const ProgramSpec& spec) {
  const auto& reg = gen::Registry::instance();
  int min_procs = spec.mode == ProgramMode::kSplit ? 4 : 1;
  if (spec.mode != ProgramMode::kSplit) {
    min_procs = reg.find(spec.property).min_procs;
    for (const auto& name : spec.mix) {
      min_procs = std::max(min_procs, reg.find(name).min_procs);
    }
  }
  // The injected miscalls disagree across rank parity (>= 2 ranks); the
  // split variant needs two sub-communicators of >= 2 ranks each.
  if (spec.coll_defect == SpecCollDefect::kSplitColor) {
    min_procs = std::max(min_procs, 4);
  } else if (spec.coll_defect != SpecCollDefect::kNone) {
    min_procs = std::max(min_procs, 2);
  }
  return std::max(spec.nprocs, min_procs);
}

mpi::RankFaultPlan fault_plan(const ProgramSpec& spec, int nprocs) {
  mpi::RankFaultPlan plan;
  if (spec.rank_fault == SpecRankFault::kNone) return plan;
  plan.seed = SplitSeed(spec.seed).child("rank-faults").value();
  const int rank = std::min(std::max(spec.fault_rank, 0), nprocs - 1);
  switch (spec.rank_fault) {
    case SpecRankFault::kNone:
      break;
    case SpecRankFault::kCrash:
      plan.crash(rank, VTime::zero());
      break;
    case SpecRankFault::kStall:
      plan.stall(rank, VTime::zero(), VDur::micros(spec.delay_us));
      break;
    case SpecRankFault::kDropSends:
      plan.drop_sends(rank);
      break;
  }
  return plan;
}

/// Outcomes a correct pipeline may produce for this spec.  Everything else
/// is a crash/hang-oracle violation.
std::vector<RunOutcome> expected_outcomes(const ProgramSpec& spec) {
  const auto& reg = gen::Registry::instance();
  switch (spec.coll_defect) {
    case SpecCollDefect::kOpMismatch:
    case SpecCollDefect::kRootMismatch:
      return {RunOutcome::kMpiError};  // runtime aborts at the second arriver
    case SpecCollDefect::kMissingCall:
    case SpecCollDefect::kSplitColor:
      return {RunOutcome::kDeadlock};  // skipped ranks starve the collective
    case SpecCollDefect::kNone:
    case SpecCollDefect::kReduceOpMismatch:
      break;  // the run completes; only the checker sees a reduce-op clash
  }
  if (spec.mode == ProgramMode::kSingle && reg.contains(spec.property)) {
    const RunOutcome declared = reg.find(spec.property).expected_outcome;
    if (declared != RunOutcome::kOk) return {declared};
  }
  switch (spec.rank_fault) {
    case SpecRankFault::kCrash:
      return {RunOutcome::kMpiError};
    case SpecRankFault::kDropSends:
      // A rank that sends nothing p2p leaves the run clean; one that does
      // starves its receiver until the engine reports deadlock (or a
      // supervision budget fires first on a retry loop).
      return {RunOutcome::kOk, RunOutcome::kDeadlock, RunOutcome::kHang};
    case SpecRankFault::kNone:
    case SpecRankFault::kStall:
      return {RunOutcome::kOk};
  }
  return {RunOutcome::kOk};
}

std::vector<PropertyId> waitstate_properties() {
  std::vector<PropertyId> out;
  for (const PropertyId p : analyze::property_preorder()) {
    if (analyze::property_info(p).is_waitstate) out.push_back(p);
  }
  return out;
}

/// Targeted FaultConfig for one corruption class; seeds derive from the
/// spec so the same spec always plants the same faults.
faults::FaultConfig fault_config_for(SpecTraceFault f, std::uint64_t seed) {
  faults::FaultConfig cfg;
  cfg.seed = seed;
  switch (f) {
    case SpecTraceFault::kNone:
      break;
    case SpecTraceFault::kDrop:
      cfg.drop_event = 0.05;
      break;
    case SpecTraceFault::kDuplicate:
      cfg.duplicate_event = 0.05;
      break;
    case SpecTraceFault::kReorder:
      cfg.reorder_events = 0.05;
      break;
    case SpecTraceFault::kClockSkew:
      cfg.clock_skew_ns = 2'000'000;
      cfg.skew_locations = 0.5;
      break;
    case SpecTraceFault::kJitter:
      cfg.jitter_ns = 500'000;
      cfg.jitter_events = 0.2;
      break;
    case SpecTraceFault::kRecord:
      cfg.corrupt_record = 0.05;
      cfg.bogus_location = 0.02;
      break;
    case SpecTraceFault::kTruncate:
      cfg.truncate_fraction = 0.7;
      break;
    case SpecTraceFault::kMixed:
      cfg = faults::FaultInjector::random_config(seed);
      break;
  }
  return cfg;
}

bool is_record_level(SpecTraceFault f) {
  return f == SpecTraceFault::kRecord || f == SpecTraceFault::kTruncate ||
         f == SpecTraceFault::kMixed;
}

}  // namespace

const char* to_string(Oracle o) {
  switch (o) {
    case Oracle::kOutcome: return "outcome";
    case Oracle::kDetection: return "detection";
    case Oracle::kNegativeQuiet: return "negative-quiet";
    case Oracle::kMonotone: return "monotone";
    case Oracle::kMaskPermutation: return "mask-permutation";
    case Oracle::kBackendDifferential: return "backend-differential";
    case Oracle::kLoaderDifferential: return "loader-differential";
    case Oracle::kFormatDifferential: return "format-differential";
    case Oracle::kCorruptionInvariant: return "corruption-invariant";
    case Oracle::kCollectiveCheck: return "collective-check";
    case Oracle::kDiffSelf: return "diff-self";
    case Oracle::kDiffMonotone: return "diff-monotone";
  }
  return "?";
}

std::string Violation::str() const {
  return "[" + std::string(to_string(oracle)) + "] " + message;
}

std::string CheckResult::str() const {
  std::ostringstream os;
  for (const Violation& v : violations) os << v.str() << "\n";
  return os.str();
}

RunResult run_program(const ProgramSpec& spec, simt::EngineBackend backend) {
  RunResult res;
  const int nprocs = effective_nprocs(spec);

  gen::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.engine.seed = SplitSeed(spec.seed).child("engine").value();
  cfg.engine.backend = backend;
  cfg.engine.virtual_time_limit = VDur::seconds(kVirtualLimitSec);
  cfg.engine.yield_limit = kYieldLimit;
  cfg.faults = fault_plan(spec, nprocs);

  mpi::MpiRunOptions opt;
  opt.nprocs = cfg.nprocs;
  opt.cost = cfg.mpi_cost;
  opt.engine = cfg.engine;
  opt.trace_enabled = true;
  opt.faults = cfg.faults;
  // Record straight into the result so a run that ends in a deadlock or an
  // MpiError still leaves the events up to the failure behind — injected
  // collective defects are diagnosed from exactly this salvaged trace.
  opt.external_trace = &res.trace;

  try {
    auto result = mpi::run_mpi(opt, [&](mpi::Proc& p) {
      if (spec.mode == ProgramMode::kSplit) {
        core::CompositeParams params;
        params.basework = static_cast<double>(spec.basework_us) * 1e-6;
        params.extrawork = static_cast<double>(spec.delay_us) * 1e-6;
        params.repeats = spec.repeats;
        core::PropCtx ctx = core::PropCtx::from(p);
        core::run_split_communicator_program(ctx, params);
      } else {
        invoke_members(spec, p, cfg);
      }
      inject_coll_defect(spec, p);
    });
    res.fault_report = result.fault_report;
  } catch (const DeadlockError& e) {
    res.outcome = RunOutcome::kDeadlock;
    res.error = first_line(e.what());
  } catch (const HangError& e) {
    res.outcome = RunOutcome::kHang;
    res.error = first_line(e.what());
  } catch (const MpiError& e) {
    res.outcome = RunOutcome::kMpiError;
    res.error = first_line(e.what());
  } catch (const OmpError& e) {
    res.outcome = RunOutcome::kMpiError;
    res.error = first_line(e.what());
  } catch (const UsageError&) {
    throw;  // spec misuse (unknown property, bad params) is the caller's bug
  } catch (const std::exception& e) {
    res.unclassified = true;
    res.error = first_line(e.what());
  }
  return res;
}

CheckResult check_spec(const ProgramSpec& spec, const CheckOptions& options) {
  CheckResult res;
  res.spec = spec;
  auto violate = [&](Oracle o, std::string msg) {
    res.violations.push_back(Violation{o, std::move(msg)});
  };

  const auto& reg = gen::Registry::instance();
  const std::vector<RunOutcome> expected = expected_outcomes(spec);
  auto check_outcome = [&](const RunResult& r, const char* backend) {
    if (r.unclassified) {
      violate(Oracle::kOutcome, std::string(backend) +
                                    ": unclassified exception escaped: " +
                                    r.error);
      return;
    }
    if (std::find(expected.begin(), expected.end(), r.outcome) ==
        expected.end()) {
      std::string want;
      for (const RunOutcome o : expected) {
        if (!want.empty()) want += "|";
        want += gen::to_string(o);
      }
      violate(Oracle::kOutcome, std::string(backend) + ": outcome " +
                                    gen::to_string(r.outcome) +
                                    ", expected " + want +
                                    (r.error.empty() ? "" : " (" + r.error + ")"));
    }
  };

  // --- crash/hang + backend-differential oracles -------------------------
  RunResult base = run_program(spec, simt::EngineBackend::kFiber);
  res.outcome = base.outcome;
  check_outcome(base, "fiber");
  const RunResult threads = run_program(spec, simt::EngineBackend::kThread);
  check_outcome(threads, "thread");

  if (!base.unclassified && !threads.unclassified) {
    if (threads.outcome != base.outcome) {
      violate(Oracle::kBackendDifferential,
              std::string("fiber ended ") + gen::to_string(base.outcome) +
                  ", thread ended " + gen::to_string(threads.outcome));
    } else if (base.outcome == RunOutcome::kOk) {
      if (save_text(base.trace) != save_text(threads.trace)) {
        violate(Oracle::kBackendDifferential,
                "fiber and thread traces are not bit-identical");
      }
    }
  }

  // --- injected collective defect: must-detect oracle ---------------------
  // The remaining oracles assume a structurally sound program, so a spec
  // with an injected miscall is judged here and returns: the checker must
  // report the expected DefectKind from each backend's salvaged trace, and
  // both backends must render identical defect reports.
  if (spec.coll_defect != SpecCollDefect::kNone) {
    const analyze::DefectKind want = defect_kind(spec.coll_defect);
    auto defect_report =
        [&](const RunResult& r,
            const char* backend) -> std::optional<std::string> {
      if (r.unclassified) return std::nullopt;
      AnalyzerOptions lenient;
      lenient.disabled_patterns = options.disabled_patterns;
      lenient.lenient = true;  // salvaged traces end mid-operation
      try {
        const AnalysisResult dar = analyze::analyze(r.trace, lenient);
        const bool found =
            std::any_of(dar.defects.begin(), dar.defects.end(),
                        [&](const analyze::StructuralDefect& d) {
                          return d.kind == want;
                        });
        if (!found) {
          violate(Oracle::kCollectiveCheck,
                  std::string(backend) + ": injected " +
                      std::string(to_string(spec.coll_defect)) +
                      " not reported (" + std::to_string(dar.defects.size()) +
                      " defects found)");
        }
        return report::render_defects(dar, r.trace);
      } catch (const std::exception& e) {
        violate(Oracle::kCollectiveCheck,
                std::string(backend) +
                    ": analysis of the salvaged trace threw: " +
                    first_line(e.what()));
        return std::nullopt;
      }
    };
    const auto fiber_report = defect_report(base, "fiber");
    const auto thread_report = defect_report(threads, "thread");
    if (fiber_report && thread_report && *fiber_report != *thread_report) {
      violate(Oracle::kBackendDifferential,
              "fiber and thread defect reports differ");
    }
    return res;
  }

  if (base.outcome != RunOutcome::kOk || base.unclassified) return res;
  const std::string pristine = save_text(base.trace);

  // --- loader differential on the pristine bytes --------------------------
  {
    bool strict_ok = true;
    std::string strict_err;
    std::string strict_resave;
    try {
      std::istringstream in(pristine);
      strict_resave = save_text(trace::Trace::load(in));
    } catch (const TraceError& e) {
      strict_ok = false;
      strict_err = first_line(e.what());
    }
    std::istringstream in(pristine);
    const trace::LoadResult lr = trace::load_trace(in);
    if (!strict_ok) {
      violate(Oracle::kLoaderDifferential,
              "strict loader rejected a pristine trace: " + strict_err);
    } else if (strict_resave != pristine) {
      violate(Oracle::kLoaderDifferential,
              "strict round-trip is not byte-identical");
    }
    if (!lr.ok() || !lr.diagnostics.empty()) {
      violate(Oracle::kLoaderDifferential,
              "lenient loader diagnosed a pristine trace (" +
                  std::to_string(lr.records_dropped) + " dropped, " +
                  std::to_string(lr.diagnostics.size()) + " diagnostics)");
    } else if (save_text(lr.trace) != pristine) {
      violate(Oracle::kLoaderDifferential,
              "lenient round-trip is not byte-identical");
    }
  }

  // --- strict analysis of the pristine trace -----------------------------
  AnalyzerOptions aopts;
  aopts.disabled_patterns = options.disabled_patterns;
  std::optional<AnalysisResult> ar;
  try {
    ar = analyze::analyze(base.trace, aopts);
  } catch (const std::exception& e) {
    violate(Oracle::kOutcome,
            std::string("strict analysis threw on a pristine trace: ") +
                first_line(e.what()));
    return res;
  }
  if (!ar->quality.clean()) {
    violate(Oracle::kOutcome, "pristine trace replayed with anomalies: " +
                                  quality_summary(ar->quality));
  }
  // Zero false positives: a structurally sound program must produce no
  // structural collective defects (docs/DEFECTS.md).
  if (!ar->defects.empty()) {
    violate(Oracle::kCollectiveCheck,
            "sound program reported " + std::to_string(ar->defects.size()) +
                " structural defect(s): " +
                first_line(ar->defects.front().describe(base.trace)));
  }
  const std::string pristine_csv = report::severity_csv(*ar, base.trace);

  // --- diff self-consistency ---------------------------------------------
  // The metamorphic identity of the cross-run differ (docs/DIFF.md):
  // diff(run, same run) must be empty, both for a live snapshot and across
  // the severity-CSV serialisation round-trip — if either fails, the diff
  // layer (not the analysis) manufactured a phantom regression.
  {
    const diff::Snapshot snap = diff::Snapshot::from_result(*ar, base.trace);
    if (!diff::diff_snapshots(snap, snap).empty()) {
      violate(Oracle::kDiffSelf, "diff(run, same run) is not empty");
    }
    const diff::Snapshot parsed =
        diff::Snapshot::from_severity_csv(pristine_csv);
    if (!diff::diff_snapshots(snap, parsed).empty()) {
      violate(Oracle::kDiffSelf,
              "snapshot differs from its own severity-CSV round-trip");
    }
  }

  // --- format differential -----------------------------------------------
  // The binary container (TRACE_FORMAT.md §7) must be a lossless twin of
  // the text one: binary writer + zero-copy loader, re-serialised as text,
  // reproduces the pristine bytes, and the analysis of the binary-loaded
  // trace matches the pristine severity profile exactly.
  {
    std::ostringstream bos;
    base.trace.save_binary(bos);
    try {
      const trace::LoadResult br = trace::load_trace_binary(
          std::make_shared<const std::string>(bos.str()));
      if (!br.ok() || !br.diagnostics.empty()) {
        violate(Oracle::kFormatDifferential,
                "binary loader diagnosed a pristine trace (" +
                    std::to_string(br.records_dropped) + " dropped, " +
                    std::to_string(br.diagnostics.size()) + " diagnostics)");
      } else if (save_text(br.trace) != pristine) {
        violate(Oracle::kFormatDifferential,
                "binary -> text re-serialisation is not byte-identical");
      } else if (report::severity_csv(analyze::analyze(br.trace, aopts),
                                      br.trace) != pristine_csv) {
        violate(Oracle::kFormatDifferential,
                "analysis of the binary-loaded trace differs from the "
                "text-pipeline result");
      }
    } catch (const std::exception& e) {
      violate(Oracle::kFormatDifferential,
              std::string("binary round-trip threw: ") +
                  first_line(e.what()));
    }
  }

  // --- mask-permutation oracle -------------------------------------------
  {
    Rng mr = SplitSeed(spec.seed).child("mask").rng();
    const std::vector<PropertyId> ws = waitstate_properties();
    const std::size_t k = 2 + mr.next_below(3);
    std::vector<PropertyId> chosen;
    while (chosen.size() < k) {
      const PropertyId p = ws[mr.next_below(ws.size())];
      if (std::find(chosen.begin(), chosen.end(), p) == chosen.end()) {
        chosen.push_back(p);
      }
    }
    AnalyzerOptions fwd = aopts;
    AnalyzerOptions rev = aopts;
    fwd.disabled_patterns.insert(fwd.disabled_patterns.end(), chosen.begin(),
                                 chosen.end());
    rev.disabled_patterns.insert(rev.disabled_patterns.end(), chosen.rbegin(),
                                 chosen.rend());
    const AnalysisResult fa = analyze::analyze(base.trace, fwd);
    const AnalysisResult ra = analyze::analyze(base.trace, rev);
    if (report::severity_csv(fa, base.trace) !=
        report::severity_csv(ra, base.trace)) {
      violate(Oracle::kMaskPermutation,
              "disabled-pattern order changed surviving severities");
    }
  }

  // --- detection / negative / monotone (single-property specs) -----------
  if (spec.mode == ProgramMode::kSingle) {
    const gen::PropertyDef& def = reg.find(spec.property);
    if (spec.negative) {
      const auto dom = ar->dominant();
      if (dom && dom->fraction >= kQuietFraction) {
        violate(Oracle::kNegativeQuiet,
                std::string("negative spec dominated by ") +
                    analyze::property_name(dom->prop) + " at " +
                    fmt_percent(dom->fraction));
      }
    } else if (def.expected.has_value()) {
      // Deliberately NOT excluding options.disabled_patterns: an injected
      // analyzer defect (--defect) must surface as detection violations
      // here — the paper's suite-fails-a-broken-tool property, at fuzz
      // scale.
      const double frac = ar->severity_fraction(*def.expected);
      if (frac <= kQuietFraction) {
        violate(Oracle::kDetection,
                std::string(analyze::property_name(*def.expected)) +
                    " at " + fmt_percent(frac) + " (threshold " +
                    fmt_percent(kQuietFraction) + ")");
      }
      if (has_delay_knob(def) && spec.rank_fault == SpecRankFault::kNone) {
        ProgramSpec doubled = spec;
        doubled.delay_us *= 2;
        const RunResult more =
            run_program(doubled, simt::EngineBackend::kFiber);
        if (more.outcome != RunOutcome::kOk || more.unclassified) {
          violate(Oracle::kMonotone,
                  std::string("doubled-delay variant ended ") +
                      gen::to_string(more.outcome));
        } else {
          const AnalysisResult ar2 = analyze::analyze(more.trace, aopts);
          const VDur s1 = ar->cube.subtree_total(*def.expected);
          const VDur s2 = ar2.cube.subtree_total(*def.expected);
          // Slack absorbs constant-cost effects (collective stages, eager
          // overheads) that do not scale with the delay.
          const VDur slack = longer(VDur::millis(1), s1 * 0.05);
          if (s2 + slack < s1) {
            violate(Oracle::kMonotone,
                    std::string(analyze::property_name(*def.expected)) +
                        " fell from " + s1.str() + " to " + s2.str() +
                        " when the delay doubled");
          }
          // kDiffMonotone: when the doubled delay grew the severity far
          // beyond any noise floor, the cross-run diff must report a
          // regression and attribute it inside the expected property's
          // subtree family — an attribution elsewhere means the differ
          // blames the wrong property for an injected slowdown.
          if (s2 > s1 + longer(VDur::millis(10), s1 * 0.5)) {
            const diff::DiffResult dd = diff::diff_snapshots(
                diff::Snapshot::from_result(*ar, base.trace),
                diff::Snapshot::from_result(ar2, more.trace));
            if (!dd.regression()) {
              violate(Oracle::kDiffMonotone,
                      std::string(analyze::property_name(*def.expected)) +
                          " grew from " + s1.str() + " to " + s2.str() +
                          " but the diff reports no regression");
            } else if (dd.attribution.empty() ||
                       !in_attribution_family(dd.attribution,
                                              *def.expected)) {
              violate(Oracle::kDiffMonotone,
                      "injected " +
                          std::string(
                              analyze::property_name(*def.expected)) +
                          " delay attributed to '" + dd.attribution + "'");
            }
          }
        }
      }
    }
  }

  // --- corruption invariants ---------------------------------------------
  if (spec.trace_fault != SpecTraceFault::kNone) {
    const std::uint64_t fseed =
        SplitSeed(spec.seed).child("trace-faults").value();
    faults::FaultInjector injector(fault_config_for(spec.trace_fault, fseed));
    if (is_record_level(spec.trace_fault)) {
      std::string text = pristine;
      if (spec.trace_fault == SpecTraceFault::kMixed) {
        // Mixed = the full random_config blend: event level first, then
        // record level on the serialised result.
        try {
          text = save_text(injector.apply(base.trace));
        } catch (const std::exception& e) {
          violate(Oracle::kCorruptionInvariant,
                  std::string("event-level injection threw: ") +
                      first_line(e.what()));
          return res;
        }
      }
      const std::string corrupted = injector.corrupt_text(text);
      // Strict and lenient must agree on whether the bytes are pristine.
      bool strict_ok = true;
      try {
        std::istringstream in(corrupted);
        (void)trace::Trace::load(in);
      } catch (const TraceError&) {
        strict_ok = false;
      } catch (const std::exception& e) {
        violate(Oracle::kCorruptionInvariant,
                std::string("strict loader threw a non-TraceError: ") +
                    first_line(e.what()));
        return res;
      }
      std::istringstream in(corrupted);
      const trace::LoadResult lr = trace::load_trace(in);
      if (strict_ok != lr.ok()) {
        violate(Oracle::kLoaderDifferential,
                std::string("on corrupted bytes: strict ") +
                    (strict_ok ? "accepts" : "rejects") + ", lenient " +
                    (lr.ok() ? "accepts" : "rejects"));
      }
      try {
        AnalyzerOptions lenient = aopts;
        lenient.lenient = true;
        (void)analyze::analyze(lr.trace, lenient);
      } catch (const std::exception& e) {
        violate(Oracle::kCorruptionInvariant,
                std::string("lenient analysis threw on a corrupted load: ") +
                    first_line(e.what()));
      }
    } else {
      trace::Trace corrupted;
      try {
        corrupted = injector.apply(base.trace);
      } catch (const std::exception& e) {
        violate(Oracle::kCorruptionInvariant,
                std::string("event-level injection threw: ") +
                    first_line(e.what()));
        return res;
      }
      std::optional<AnalysisResult> car;
      try {
        AnalyzerOptions lenient = aopts;
        lenient.lenient = true;
        car = analyze::analyze(corrupted, lenient);
      } catch (const std::exception& e) {
        violate(Oracle::kCorruptionInvariant,
                std::string("lenient analysis threw on a corrupted trace: ") +
                    first_line(e.what()));
        return res;
      }
      if (car->quality.events_seen != corrupted.event_count()) {
        violate(Oracle::kCorruptionInvariant,
                "events_seen " + std::to_string(car->quality.events_seen) +
                    " != corrupted event count " +
                    std::to_string(corrupted.event_count()));
      }
      // The "never silently wrong" check, for duplications only: a
      // duplicated event always breaks region balance, message matching,
      // or collective grouping, so a clean DataQuality plus a changed
      // severity cube means the analyzer swallowed the damage.  Drops and
      // retimings are exempt — a trace minus a balanced region pair (or
      // with self-consistent shifted clocks) is indistinguishable from a
      // real run by construction (DESIGN.md §10).
      if (spec.trace_fault == SpecTraceFault::kDuplicate &&
          injector.report().total() > 0 && car->quality.clean() &&
          report::severity_csv(*car, corrupted) != pristine_csv) {
        violate(Oracle::kCorruptionInvariant,
                "duplicated events changed severities without any "
                "DataQuality anomaly");
      }
    }
  }
  return res;
}

}  // namespace ats::proptest
