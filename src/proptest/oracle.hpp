// The oracle layer of the metamorphic fuzzing harness (DESIGN.md §10).
//
// A randomly generated ProgramSpec has no hand-written expected output; the
// harness instead checks *relations* any correct pipeline must satisfy:
//
//   metamorphic   — severity is monotone in the spec's delay knob; the
//                   order of disabled analyzer patterns never changes the
//                   surviving severities; a negative spec stays quiet.
//   differential  — fiber and thread backends serialise bit-identical
//                   traces; the strict and lenient trace loaders agree on
//                   whether a byte stream is pristine, and both round-trip
//                   it exactly.
//   invariant     — a trace corrupted by the seeded FaultInjector is
//                   analysed leniently without throwing, and structural
//                   duplications are either diagnosed in DataQuality or
//                   leave the severity cube untouched (never silently
//                   wrong).  Timing faults (skew/jitter) are exempt from
//                   the equality check: a self-consistent retimed trace is
//                   indistinguishable from a real run by construction.
//   crash/hang    — every run ends in a classified gen::RunOutcome that
//                   matches the spec (injected crash => kMpiError, ...);
//                   no exception ever escapes unclassified.
//
// check_spec runs them all and returns the violations; ats_fuzz drives it
// over seed ranges, and shrink.hpp minimises any spec that fails.
#pragma once

#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "gen/registry.hpp"
#include "proptest/progspec.hpp"
#include "simt/engine.hpp"

namespace ats::proptest {

/// Which oracle a violation came from.
enum class Oracle : std::uint8_t {
  kOutcome,              ///< run ended in the wrong/unclassified outcome
  kDetection,            ///< positive spec: expected property not found
  kNegativeQuiet,        ///< negative spec: a wait state dominates anyway
  kMonotone,             ///< severity shrank when the delay grew
  kMaskPermutation,      ///< disabled-pattern order changed the result
  kBackendDifferential,  ///< fiber and thread runs disagree
  kLoaderDifferential,   ///< strict and lenient loaders disagree
  kFormatDifferential,   ///< binary and text containers disagree: the
                         ///< binary writer + zero-copy loader must
                         ///< reproduce the text pipeline bit for bit
  kCorruptionInvariant,  ///< corrupted trace crashed the pipeline or was
                         ///< silently mis-analysed
  kCollectiveCheck,      ///< the structural collective checker missed an
                         ///< injected defect, or flagged a sound program
  kDiffSelf,             ///< diff(run, same run) was not empty, or a
                         ///< snapshot changed across its severity-CSV
                         ///< round-trip (docs/DIFF.md)
  kDiffMonotone,         ///< added delay did not diff as a regression, or
                         ///< the diff attributed it outside the expected
                         ///< property's subtree family
};

const char* to_string(Oracle o);

struct Violation {
  Oracle oracle = Oracle::kOutcome;
  std::string message;

  /// "[monotone] severity fell from ... to ..."
  std::string str() const;
};

/// One simulated execution of a spec's program under one backend.
struct RunResult {
  gen::RunOutcome outcome = gen::RunOutcome::kOk;
  /// A non-ATS exception escaped the run — itself an oracle violation.
  bool unclassified = false;
  std::string error;   ///< first line of the exception, when any
  /// Complete when outcome == kOk; otherwise the partial trace salvaged up
  /// to the failure (MpiRunOptions::external_trace), which is what the
  /// structural collective checker inspects for injected-defect specs.
  trace::Trace trace;
  mpi::RankFaultReport fault_report;
};

/// Executes the spec's program (single property, mix, or split-communicator
/// composite) on the given backend.  Every sub-seed — engine schedule, rank
/// faults — derives from spec.seed via SplitSeed children.  Supervision
/// budgets are always armed, so pathological specs terminate as kDeadlock /
/// kHang instead of wedging the fuzzer.
RunResult run_program(const ProgramSpec& spec, simt::EngineBackend backend);

struct CheckOptions {
  /// Injected analyzer defect (ats_fuzz --defect): the fuzzer must then
  /// report detection-oracle violations for specs exercising the pattern —
  /// the suite-validates-the-tool experiment (TAB-FZ) at fuzz scale.
  std::vector<analyze::PropertyId> disabled_patterns;
};

struct CheckResult {
  ProgramSpec spec;
  gen::RunOutcome outcome = gen::RunOutcome::kOk;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// All violations, one line each.
  std::string str() const;
};

/// Runs every applicable oracle against one spec.  Deterministic: the same
/// spec (and options) yields the same violations.
CheckResult check_spec(const ProgramSpec& spec, const CheckOptions& options = {});

}  // namespace ats::proptest
