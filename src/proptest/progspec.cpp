#include "proptest/progspec.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strutil.hpp"

namespace ats::proptest {

namespace {

/// Microseconds -> exact decimal seconds ("0.050000"); round-trips through
/// ParamMap::get_double without loss at the resolutions the specs use.
std::string us_to_sec(std::int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld.%06lld",
                static_cast<long long>(us / 1'000'000),
                static_cast<long long>(us % 1'000'000));
  return buf;
}

bool has_param(const gen::PropertyDef& def, std::string_view name) {
  return std::any_of(def.params.begin(), def.params.end(),
                     [&](const gen::ParamSpec& p) { return p.name == name; });
}

/// Scalar delay-parameter names, in lookup order.  Each is the knob the
/// corresponding property function's severity grows with.
constexpr const char* kDelayParams[] = {"extrawork", "masterextra",
                                        "singlework", "serialwork",
                                        "holdwork"};

template <typename E>
E parse_enum(const std::string& s, std::initializer_list<E> all,
             const char* what) {
  for (const E e : all) {
    if (s == to_string(e)) return e;
  }
  throw UsageError(std::string("ats-repro: unknown ") + what + " '" + s + "'");
}

std::int64_t parse_i64(const std::string& s, const char* key) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw UsageError(std::string("ats-repro: bad integer for '") + key +
                     "': " + s);
  }
}

std::uint64_t parse_u64(const std::string& s, const char* key) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw UsageError(std::string("ats-repro: bad integer for '") + key +
                     "': " + s);
  }
}

}  // namespace

const char* to_string(ProgramMode m) {
  switch (m) {
    case ProgramMode::kSingle: return "single";
    case ProgramMode::kMix: return "mix";
    case ProgramMode::kSplit: return "split";
  }
  return "?";
}

const char* to_string(SpecRankFault f) {
  switch (f) {
    case SpecRankFault::kNone: return "none";
    case SpecRankFault::kCrash: return "crash";
    case SpecRankFault::kStall: return "stall";
    case SpecRankFault::kDropSends: return "drop-sends";
  }
  return "?";
}

const char* to_string(SpecTraceFault f) {
  switch (f) {
    case SpecTraceFault::kNone: return "none";
    case SpecTraceFault::kDrop: return "drop";
    case SpecTraceFault::kDuplicate: return "duplicate";
    case SpecTraceFault::kReorder: return "reorder";
    case SpecTraceFault::kClockSkew: return "clock-skew";
    case SpecTraceFault::kJitter: return "jitter";
    case SpecTraceFault::kRecord: return "record";
    case SpecTraceFault::kTruncate: return "truncate";
    case SpecTraceFault::kMixed: return "mixed";
  }
  return "?";
}

const char* to_string(SpecCollDefect d) {
  switch (d) {
    case SpecCollDefect::kNone: return "none";
    case SpecCollDefect::kOpMismatch: return "op-mismatch";
    case SpecCollDefect::kMissingCall: return "missing-call";
    case SpecCollDefect::kRootMismatch: return "root-mismatch";
    case SpecCollDefect::kReduceOpMismatch: return "reduce-op-mismatch";
    case SpecCollDefect::kSplitColor: return "split-color";
  }
  return "?";
}

analyze::DefectKind defect_kind(SpecCollDefect d) {
  switch (d) {
    case SpecCollDefect::kNone:
      break;
    case SpecCollDefect::kOpMismatch:
      return analyze::DefectKind::kOperationMismatch;
    case SpecCollDefect::kMissingCall:
      return analyze::DefectKind::kMissingCall;
    case SpecCollDefect::kRootMismatch:
      return analyze::DefectKind::kRootMismatch;
    case SpecCollDefect::kReduceOpMismatch:
      return analyze::DefectKind::kReduceOpMismatch;
    case SpecCollDefect::kSplitColor:
      return analyze::DefectKind::kMissingCall;
  }
  throw UsageError("defect_kind: spec has no injected collective defect");
}

// ---------------------------------------------------------- serialisation

std::string ProgramSpec::str() const {
  std::ostringstream os;
  os << "# ats-repro v1\n";
  os << "seed " << seed << "\n";
  os << "mode " << to_string(mode) << "\n";
  os << "property " << property << "\n";
  if (!mix.empty()) os << "mix " << join(mix, ",") << "\n";
  if (negative) os << "negative 1\n";
  os << "nprocs " << nprocs << "\n";
  os << "repeats " << repeats << "\n";
  os << "nthreads " << nthreads << "\n";
  os << "basework_us " << basework_us << "\n";
  os << "delay_us " << delay_us << "\n";
  if (rank_fault != SpecRankFault::kNone) {
    os << "rank_fault " << to_string(rank_fault) << "\n";
    os << "fault_rank " << fault_rank << "\n";
  }
  if (trace_fault != SpecTraceFault::kNone) {
    os << "trace_fault " << to_string(trace_fault) << "\n";
  }
  if (coll_defect != SpecCollDefect::kNone) {
    os << "coll_defect " << to_string(coll_defect) << "\n";
  }
  return os.str();
}

ProgramSpec ProgramSpec::parse(const std::string& text) {
  ProgramSpec s;
  s.mix.clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    const auto sp = line.find_first_of(" \t");
    if (sp == std::string::npos) {
      throw UsageError("ats-repro:" + std::to_string(lineno) +
                       ": expected 'key value', got '" + line + "'");
    }
    const std::string key = line.substr(0, sp);
    const auto vbegin = line.find_first_not_of(" \t", sp);
    const std::string value = line.substr(vbegin);

    if (key == "seed") {
      s.seed = parse_u64(value, "seed");
    } else if (key == "mode") {
      s.mode = parse_enum(value,
                          {ProgramMode::kSingle, ProgramMode::kMix,
                           ProgramMode::kSplit},
                          "mode");
    } else if (key == "property") {
      s.property = value;
    } else if (key == "mix") {
      s.mix = split(value, ',');
    } else if (key == "negative") {
      s.negative = value == "1" || value == "true";
    } else if (key == "nprocs") {
      s.nprocs = static_cast<int>(parse_i64(value, "nprocs"));
    } else if (key == "repeats") {
      s.repeats = static_cast<int>(parse_i64(value, "repeats"));
    } else if (key == "nthreads") {
      s.nthreads = static_cast<int>(parse_i64(value, "nthreads"));
    } else if (key == "basework_us") {
      s.basework_us = parse_i64(value, "basework_us");
    } else if (key == "delay_us") {
      s.delay_us = parse_i64(value, "delay_us");
    } else if (key == "rank_fault") {
      s.rank_fault = parse_enum(value,
                                {SpecRankFault::kNone, SpecRankFault::kCrash,
                                 SpecRankFault::kStall,
                                 SpecRankFault::kDropSends},
                                "rank_fault");
    } else if (key == "fault_rank") {
      s.fault_rank = static_cast<int>(parse_i64(value, "fault_rank"));
    } else if (key == "trace_fault") {
      s.trace_fault = parse_enum(
          value,
          {SpecTraceFault::kNone, SpecTraceFault::kDrop,
           SpecTraceFault::kDuplicate, SpecTraceFault::kReorder,
           SpecTraceFault::kClockSkew, SpecTraceFault::kJitter,
           SpecTraceFault::kRecord, SpecTraceFault::kTruncate,
           SpecTraceFault::kMixed},
          "trace_fault");
    } else if (key == "coll_defect") {
      s.coll_defect = parse_enum(
          value,
          {SpecCollDefect::kNone, SpecCollDefect::kOpMismatch,
           SpecCollDefect::kMissingCall, SpecCollDefect::kRootMismatch,
           SpecCollDefect::kReduceOpMismatch, SpecCollDefect::kSplitColor},
          "coll_defect");
    } else {
      throw UsageError("ats-repro:" + std::to_string(lineno) +
                       ": unknown key '" + key + "'");
    }
  }
  require(s.nprocs >= 1, "ats-repro: nprocs must be >= 1");
  require(s.repeats >= 1, "ats-repro: repeats must be >= 1");
  require(s.nthreads >= 1, "ats-repro: nthreads must be >= 1");
  require(s.basework_us >= 0 && s.delay_us >= 0,
          "ats-repro: work values must be non-negative");
  return s;
}

ProgramSpec ProgramSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "ats-repro: cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

void ProgramSpec::save_file(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "ats-repro: cannot write '" + path + "'");
  out << str();
}

std::string ProgramSpec::summary() const {
  std::ostringstream os;
  os << "seed " << seed << " " << to_string(mode) << " "
     << (mode == ProgramMode::kSplit ? "split_communicators" : property);
  for (const auto& m : mix) os << "+" << m;
  if (negative) os << " (negative)";
  os << " np=" << nprocs << " r=" << repeats;
  if (rank_fault != SpecRankFault::kNone) {
    os << " rank_fault=" << to_string(rank_fault) << "@" << fault_rank;
  }
  if (trace_fault != SpecTraceFault::kNone) {
    os << " trace_fault=" << to_string(trace_fault);
  }
  if (coll_defect != SpecCollDefect::kNone) {
    os << " coll_defect=" << to_string(coll_defect);
  }
  return os.str();
}

int ProgramSpec::complexity() const {
  const auto& reg = gen::Registry::instance();
  int min_procs = 1;
  if (mode == ProgramMode::kSplit) {
    min_procs = 4;  // two halves, each running two-rank properties
  } else if (reg.contains(property)) {
    min_procs = reg.find(property).min_procs;
  }
  int c = 0;
  if (mode != ProgramMode::kSingle) ++c;
  c += static_cast<int>(mix.size());
  if (negative) ++c;
  if (nprocs > std::max(min_procs, 1)) ++c;
  if (repeats != 1) ++c;
  if (nthreads != 2) ++c;
  if (basework_us != 10'000) ++c;
  if (delay_us != 50'000) ++c;
  if (rank_fault != SpecRankFault::kNone) ++c;
  if (trace_fault != SpecTraceFault::kNone) ++c;
  if (coll_defect != SpecCollDefect::kNone) ++c;
  return c;
}

// -------------------------------------------------------------- generator

ProgramSpec random_spec(std::uint64_t seed) {
  const auto& reg = gen::Registry::instance();
  const std::vector<std::string> names = reg.names();
  const std::vector<std::string> patho = reg.pathological_names();

  Rng r = SplitSeed(seed).child("gen").rng();
  ProgramSpec s;
  s.seed = seed;
  s.repeats = static_cast<int>(1 + r.next_below(3));
  s.nthreads = static_cast<int>(2 + r.next_below(3));
  s.basework_us = static_cast<std::int64_t>(5'000 + r.next_below(15'001));
  s.delay_us = static_cast<std::int64_t>(30'000 + r.next_below(90'001));

  const double mode_roll = r.next_double();
  if (mode_roll < 0.60) {
    s.mode = ProgramMode::kSingle;
    if (r.next_double() < 0.08 && !patho.empty()) {
      // Pathological program: known *failure* instead of known property.
      s.property = patho[r.next_below(patho.size())];
      const auto& def = reg.find(s.property);
      s.nprocs = std::max(def.min_procs, 2);
      return s;  // faults on top of a declared failure would blur the oracle
    }
    s.property = names[r.next_below(names.size())];
    const auto& def = reg.find(s.property);
    s.negative = r.next_double() < 0.25;
    s.nprocs = def.min_procs +
               static_cast<int>(r.next_below(
                   static_cast<std::uint64_t>(std::max(1, 9 - def.min_procs))));
    const bool mpi_like = def.paradigm == gen::Paradigm::kMpi ||
                          def.paradigm == gen::Paradigm::kHybrid;
    if (!s.negative && mpi_like && r.next_double() < 0.12) {
      const double kind = r.next_double();
      s.rank_fault = kind < 0.34   ? SpecRankFault::kCrash
                     : kind < 0.67 ? SpecRankFault::kStall
                                   : SpecRankFault::kDropSends;
      s.fault_rank = static_cast<int>(
          r.next_below(static_cast<std::uint64_t>(s.nprocs)));
    }
  } else if (mode_roll < 0.80) {
    s.mode = ProgramMode::kMix;
    s.nprocs = static_cast<int>(2 + r.next_below(7));
    auto eligible = [&](const std::string& n) {
      return reg.find(n).min_procs <= s.nprocs;
    };
    std::vector<std::string> pool;
    for (const auto& n : names) {
      if (eligible(n)) pool.push_back(n);
    }
    s.property = pool[r.next_below(pool.size())];
    const std::size_t extra = 1 + r.next_below(3);
    for (std::size_t i = 0; i < extra; ++i) {
      const std::string& cand = pool[r.next_below(pool.size())];
      if (cand != s.property &&
          std::find(s.mix.begin(), s.mix.end(), cand) == s.mix.end()) {
        s.mix.push_back(cand);
      }
    }
  } else {
    s.mode = ProgramMode::kSplit;
    s.nprocs = static_cast<int>(4 + 2 * r.next_below(3));
    s.property = "late_sender";  // unused; kept valid for complexity()
  }

  if (r.next_double() < 0.30) {
    constexpr SpecTraceFault kClasses[] = {
        SpecTraceFault::kDrop,      SpecTraceFault::kDuplicate,
        SpecTraceFault::kReorder,   SpecTraceFault::kClockSkew,
        SpecTraceFault::kJitter,    SpecTraceFault::kRecord,
        SpecTraceFault::kTruncate,  SpecTraceFault::kMixed};
    s.trace_fault = kClasses[r.next_below(std::size(kClasses))];
  }
  return s;
}

ProgramSpec random_defect_spec(std::uint64_t seed) {
  const auto& reg = gen::Registry::instance();
  ProgramSpec s = random_spec(seed);

  Rng r = SplitSeed(seed).child("coll-defect").rng();
  constexpr SpecCollDefect kKinds[] = {
      SpecCollDefect::kOpMismatch, SpecCollDefect::kMissingCall,
      SpecCollDefect::kRootMismatch, SpecCollDefect::kReduceOpMismatch,
      SpecCollDefect::kSplitColor};
  s.coll_defect = kKinds[r.next_below(std::size(kKinds))];

  // The epilogue only runs if the program body completes, and the oracle
  // is sharpest when the injected miscall is the run's sole failure:
  // strip rank/trace faults and swap a pathological primary for a safe one.
  s.rank_fault = SpecRankFault::kNone;
  s.fault_rank = 0;
  s.trace_fault = SpecTraceFault::kNone;
  if (reg.contains(s.property) &&
      reg.find(s.property).expected_outcome != gen::RunOutcome::kOk) {
    const std::vector<std::string> names = reg.names();
    s.property = names[r.next_below(names.size())];
    s.nprocs = std::max(s.nprocs, reg.find(s.property).min_procs);
  }
  return s;
}

// ------------------------------------------------------------- parameters

std::string delay_param(const gen::PropertyDef& def) {
  for (const char* name : kDelayParams) {
    if (has_param(def, name)) return name;
  }
  return {};
}

bool has_delay_knob(const gen::PropertyDef& def) {
  return !delay_param(def).empty() || has_param(def, "df");
}

gen::ParamMap params_for(const gen::PropertyDef& def,
                         const ProgramSpec& spec) {
  // The canonical negative configuration is used verbatim: it encodes the
  // exact "well-tuned" variant (including e.g. nthreads=1 for lock
  // contention), which is what the negative oracle certifies.
  if (spec.negative) return def.negative;

  gen::ParamMap pm = def.positive;
  if (has_param(def, "r")) pm.set("r", std::to_string(spec.repeats));
  if (has_param(def, "nthreads")) {
    pm.set("nthreads", std::to_string(spec.nthreads));
  }
  if (has_param(def, "basework")) {
    pm.set("basework", us_to_sec(spec.basework_us));
  }
  if (has_param(def, "work")) pm.set("work", us_to_sec(spec.basework_us));
  const std::string dp = delay_param(def);
  if (!dp.empty()) {
    pm.set(dp, us_to_sec(spec.delay_us));
  } else if (has_param(def, "df")) {
    pm.set("df", "linear:low=" + us_to_sec(spec.basework_us) +
                     ",high=" + us_to_sec(spec.delay_us));
  }
  return pm;
}

}  // namespace ats::proptest
