// Randomized composite-program specifications for the metamorphic fuzzing
// harness (DESIGN.md §10).
//
// The paper's thesis is that programs with *known* properties certify a
// performance tool.  A ProgramSpec pushes that idea to scale: it is a
// compact, fully deterministic description of one synthetic scenario — a
// property mix, rank/thread counts, a work distribution, optional runtime
// and trace faults — from which a single 64-bit master seed (via
// ats::SplitSeed) derives every sub-seed in the pipeline.  Specs serialise
// to self-contained `.ats-repro` text files, so every fuzz failure becomes
// a replayable regression (tests/corpus/) and the delta-debugging shrinker
// (shrink.hpp) can minimise them field by field.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gen/registry.hpp"

namespace ats::proptest {

/// Shape of the generated program.
enum class ProgramMode : std::uint8_t {
  kSingle,  ///< one property function (the paper's §3.2 generated program)
  kMix,     ///< a sequence of property functions in one program (§3.3)
  kSplit,   ///< the split-communicator composite (Figs. 3.4/3.5)
};

const char* to_string(ProgramMode m);

/// Runtime fault injected through mpi::RankFaultPlan (none = clean run).
enum class SpecRankFault : std::uint8_t { kNone, kCrash, kStall, kDropSends };

const char* to_string(SpecRankFault f);

/// Trace corruption class exercised through faults::FaultInjector.  One
/// class per spec keeps the oracle semantics sharp (see oracle.hpp).
enum class SpecTraceFault : std::uint8_t {
  kNone,
  kDrop,       ///< events removed (structural; must be diagnosed)
  kDuplicate,  ///< events recorded twice (structural; must be diagnosed)
  kReorder,    ///< adjacent same-location events swapped
  kClockSkew,  ///< constant per-location timestamp offsets
  kJitter,     ///< random per-event timestamp offsets
  kRecord,     ///< serialised record lines garbled
  kTruncate,   ///< serialised text cut short
  kMixed,      ///< a moderate blend of everything (random_config)
};

const char* to_string(SpecTraceFault f);

/// Collective miscall injected as an epilogue after the spec's program body
/// (ats_fuzz --inject-collectives).  Each value maps onto one core::defect_*
/// function and one analyze::DefectKind the structural checker must report
/// from the salvaged trace (docs/DEFECTS.md) — the must-detect oracle.
enum class SpecCollDefect : std::uint8_t {
  kNone,
  kOpMismatch,        ///< even ranks allreduce, odd ranks barrier
  kMissingCall,       ///< only even ranks join the barrier
  kRootMismatch,      ///< bcast rooted at rank % 2
  kReduceOpMismatch,  ///< allreduce kMin vs kMax (run completes)
  kSplitColor,        ///< parity split, half of each sub-comm skips
};

const char* to_string(SpecCollDefect d);

/// The StructuralDefect kind the checker must report for an injection.
analyze::DefectKind defect_kind(SpecCollDefect d);

/// One generated program, fully determined by its fields.  Every knob the
/// pipeline has is derived from `seed` via SplitSeed children, so the spec
/// *is* the reproduction: same fields, same run, same trace, same analysis.
struct ProgramSpec {
  std::uint64_t seed = 1;  ///< master seed; derives engine/fault sub-seeds

  ProgramMode mode = ProgramMode::kSingle;
  /// Primary property function (registry name).  Unused for kSplit.
  std::string property = "late_sender";
  /// Additional members for kMix, run after the primary, in order.
  std::vector<std::string> mix;
  /// Run the primary's canonical *negative* configuration (severity ~ 0).
  bool negative = false;

  int nprocs = 4;
  int repeats = 2;
  int nthreads = 2;  ///< OpenMP team size, where the property takes one

  /// Base computation per phase, microseconds (param "basework"/"work",
  /// distribution low end).
  std::int64_t basework_us = 10'000;
  /// The property's delay knob, microseconds ("extrawork", "holdwork",
  /// "serialwork", ..., distribution high end).  Severity must be monotone
  /// in this value — the central metamorphic oracle.
  std::int64_t delay_us = 50'000;

  SpecRankFault rank_fault = SpecRankFault::kNone;
  int fault_rank = 0;  ///< target rank for rank_fault

  SpecTraceFault trace_fault = SpecTraceFault::kNone;

  /// Collective miscall appended after the program body (kNone = sound
  /// program).  Serialised only when set, so pre-existing repro files
  /// parse unchanged.
  SpecCollDefect coll_defect = SpecCollDefect::kNone;

  // ---- serialisation (.ats-repro) --------------------------------------
  /// Self-contained text form; round-trips through parse().
  std::string str() const;
  /// Parses the text form; throws UsageError with a line-tagged message on
  /// malformed input.  Unknown keys are rejected (a repro must not rot
  /// silently).
  static ProgramSpec parse(const std::string& text);
  static ProgramSpec load_file(const std::string& path);
  void save_file(const std::string& path) const;

  /// One-line human summary ("seed 42 single late_sender np=4 ...").
  std::string summary() const;

  /// Number of fields that differ from the minimal baseline spec for the
  /// same property (mode single, no mix, no faults, minimal nprocs,
  /// repeats 1, canonical work/delay).  The shrinker minimises this.
  int complexity() const;

  bool operator==(const ProgramSpec& other) const = default;
};

/// The random composite-program generator: field values are drawn from the
/// "gen" child stream of `seed`, so the mapping seed -> spec is stable
/// across platforms and runs.
ProgramSpec random_spec(std::uint64_t seed);

/// random_spec(seed) overlaid with a collective-defect injection: the kind
/// is drawn from the "coll-defect" child stream, and failure modes that
/// would keep the epilogue from running (a pathological primary, rank or
/// trace faults) are stripped so the injected miscall is the program's only
/// defect.  random_spec's draw order is untouched — existing seeds map to
/// the same base specs.
ProgramSpec random_defect_spec(std::uint64_t seed);

/// Parameter map for one registry member of the spec's program: canonical
/// positive (or negative) parameters with the spec's repeats / nthreads /
/// basework / delay applied to the parameters the property declares.
gen::ParamMap params_for(const gen::PropertyDef& def, const ProgramSpec& spec);

/// Name of `def`'s scalar delay parameter ("extrawork", "holdwork", ...);
/// empty when the property's knob is a distribution ("df") or it has none.
std::string delay_param(const gen::PropertyDef& def);

/// True when the spec's primary property has any delay knob (scalar or
/// distribution) — the precondition for the monotonicity oracle.
bool has_delay_knob(const gen::PropertyDef& def);

}  // namespace ats::proptest
