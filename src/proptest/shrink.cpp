#include "proptest/shrink.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace ats::proptest {

namespace {

/// All single-step simplifications of `s`, most aggressive first, so the
/// greedy pass sheds whole dimensions (mode, faults) before polishing
/// scalars.
std::vector<ProgramSpec> candidates(const ProgramSpec& s) {
  const auto& reg = gen::Registry::instance();
  std::vector<ProgramSpec> out;
  auto push = [&](ProgramSpec c) { out.push_back(std::move(c)); };

  if (s.mode != ProgramMode::kSingle) {
    ProgramSpec c = s;
    c.mode = ProgramMode::kSingle;
    c.mix.clear();
    if (!reg.contains(c.property)) c.property = "late_sender";
    push(std::move(c));
  }
  for (std::size_t i = 0; i < s.mix.size(); ++i) {
    ProgramSpec c = s;
    c.mix.erase(c.mix.begin() + static_cast<std::ptrdiff_t>(i));
    push(std::move(c));
  }
  // A mix whose primary is innocent may fail because of a member: try
  // promoting each member to primary (keeps the program single-property).
  if (s.mode == ProgramMode::kMix) {
    for (const auto& m : s.mix) {
      ProgramSpec c = s;
      c.mode = ProgramMode::kSingle;
      c.property = m;
      c.mix.clear();
      push(std::move(c));
    }
  }
  if (s.trace_fault != SpecTraceFault::kNone) {
    ProgramSpec c = s;
    c.trace_fault = SpecTraceFault::kNone;
    push(std::move(c));
  }
  if (s.rank_fault != SpecRankFault::kNone) {
    ProgramSpec c = s;
    c.rank_fault = SpecRankFault::kNone;
    c.fault_rank = 0;
    push(std::move(c));
  }
  if (s.negative) {
    ProgramSpec c = s;
    c.negative = false;
    push(std::move(c));
  }
  if (s.coll_defect != SpecCollDefect::kNone) {
    ProgramSpec c = s;
    c.coll_defect = SpecCollDefect::kNone;
    push(std::move(c));
  }
  {
    int min_procs = s.mode == ProgramMode::kSplit ? 4 : 1;
    if (s.mode != ProgramMode::kSplit && reg.contains(s.property)) {
      min_procs = reg.find(s.property).min_procs;
      for (const auto& m : s.mix) {
        if (reg.contains(m)) {
          min_procs = std::max(min_procs, reg.find(m).min_procs);
        }
      }
    }
    if (s.nprocs > min_procs) {
      ProgramSpec c = s;
      c.nprocs = min_procs;
      push(std::move(c));
      if (s.fault_rank >= min_procs) {
        // Keep the fault on a live rank when shrinking the world.
        out.back().fault_rank = min_procs - 1;
      }
    }
  }
  if (s.repeats != 1) {
    ProgramSpec c = s;
    c.repeats = 1;
    push(std::move(c));
  }
  if (s.nthreads != 2) {
    ProgramSpec c = s;
    c.nthreads = 2;
    push(std::move(c));
  }
  if (s.basework_us != 10'000) {
    ProgramSpec c = s;
    c.basework_us = 10'000;
    push(std::move(c));
  }
  if (s.delay_us != 50'000) {
    ProgramSpec c = s;
    c.delay_us = 50'000;
    push(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkOutcome shrink_spec(const ProgramSpec& start, const FailPredicate& fails,
                          const ShrinkOptions& options) {
  ShrinkOutcome out;
  out.spec = start;
  require(static_cast<bool>(fails), "shrink: null predicate");

  bool shrunk = true;
  while (shrunk && out.evaluations < options.max_evaluations) {
    shrunk = false;
    ++out.rounds;
    for (ProgramSpec& cand : candidates(out.spec)) {
      if (out.evaluations >= options.max_evaluations) break;
      if (cand.complexity() >= out.spec.complexity()) continue;
      ++out.evaluations;
      if (!fails(cand)) continue;
      out.spec = std::move(cand);
      shrunk = true;
      break;  // restart from the simpler spec's candidate list
    }
  }
  return out;
}

}  // namespace ats::proptest
