// Delta-debugging spec shrinker (DESIGN.md §10).
//
// When a fuzzed ProgramSpec violates an oracle, the raw spec is rarely the
// story: a four-property mix on eight ranks with a trace fault usually
// fails for one property and one knob.  shrink_spec greedily simplifies the
// spec field by field — drop mix members, clear faults, collapse to single
// mode, restore canonical counts and work values — re-checking the failure
// predicate after each candidate and keeping only simplifications that
// still fail.  The result is the minimal repro written to tests/corpus/.
#pragma once

#include <cstddef>
#include <functional>

#include "proptest/progspec.hpp"

namespace ats::proptest {

/// Returns true when `spec` still exhibits the failure being minimised.
/// shrink_spec calls this on every candidate; make it deterministic.
using FailPredicate = std::function<bool(const ProgramSpec&)>;

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (each may simulate several runs).
  std::size_t max_evaluations = 200;
};

struct ShrinkOutcome {
  ProgramSpec spec;               ///< the minimal failing spec found
  std::size_t evaluations = 0;    ///< predicate calls spent
  std::size_t rounds = 0;         ///< greedy passes until a fixpoint
};

/// Minimises `start` (which must satisfy `fails`) under the predicate.
/// Greedy fixpoint: each round proposes every single-field simplification;
/// a candidate is kept iff it lowers ProgramSpec::complexity() and still
/// fails.  Deterministic for a deterministic predicate.
ShrinkOutcome shrink_spec(const ProgramSpec& start, const FailPredicate& fails,
                          const ShrinkOptions& options = {});

}  // namespace ats::proptest
