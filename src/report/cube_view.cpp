#include "report/cube_view.hpp"

#include <sstream>

#include "common/strutil.hpp"

namespace ats::report {

namespace {

using analyze::AnalysisResult;
using analyze::NodeId;
using analyze::PropertyId;

std::string percent_of(VDur part, VDur whole) {
  if (whole <= VDur::zero()) return "   -  ";
  return pad_left(fmt_percent(part / whole, 1), 6);
}

}  // namespace

std::string render_property_tree(const AnalysisResult& result,
                                 const trace::Trace& trace) {
  (void)trace;
  std::ostringstream os;
  os << "performance properties" << pad_left("severity", 24)
     << pad_left("share", 8) << "\n" << repeat('-', 60) << "\n";
  for (PropertyId p : analyze::property_preorder()) {
    const VDur sev = p == PropertyId::kTotal ? result.total_time
                                             : result.cube.total(p);
    if (p != PropertyId::kTotal && sev <= VDur::zero()) continue;
    const int depth = analyze::property_depth(p);
    std::string label = repeat(' ', static_cast<std::size_t>(2 * depth));
    label += analyze::property_name(p);
    os << pad_right(label, 34) << pad_left(sev.str(), 12) << "  "
       << percent_of(sev, result.total_time) << "\n";
  }
  return os.str();
}

std::string render_property_detail(const AnalysisResult& result,
                                   const trace::Trace& trace,
                                   PropertyId prop) {
  std::ostringstream os;
  os << "property: " << analyze::property_name(prop) << " — "
     << analyze::property_info(prop).description << "\n";
  const auto nodes = result.cube.nodes_of(prop);
  if (nodes.empty()) {
    os << "  (no severity recorded)\n";
    return os.str();
  }
  os << "  call paths:\n";
  NodeId heaviest = nodes.front();
  VDur heaviest_sev = VDur::zero();
  for (NodeId n : nodes) {
    const VDur sev = result.cube.node_total(prop, n);
    os << "    " << pad_right(result.profile.path_string(n, trace), 52)
       << pad_left(sev.str(), 12) << percent_of(sev, result.total_time)
       << "\n";
    if (sev > heaviest_sev) {
      heaviest_sev = sev;
      heaviest = n;
    }
  }
  os << "  locations of '" << result.profile.path_string(heaviest, trace)
     << "':\n";
  const auto locs = result.cube.locations_of(prop, heaviest);
  for (std::size_t l = 0; l < locs.size(); ++l) {
    if (locs[l] <= VDur::zero()) continue;
    os << "    " << pad_right(trace.location(
                                  static_cast<trace::LocId>(l)).name, 24)
       << pad_left(locs[l].str(), 12) << "\n";
  }
  return os.str();
}

std::string render_findings(const AnalysisResult& result,
                            const trace::Trace& trace) {
  std::ostringstream os;
  os << pad_right("finding", 30) << pad_left("severity", 12)
     << pad_left("share", 8) << "  dominant call path\n"
     << repeat('-', 92) << "\n";
  if (result.findings.empty()) {
    os << "(no performance property above threshold — well-tuned)\n";
    return os.str();
  }
  for (const auto& f : result.findings) {
    os << pad_right(analyze::property_name(f.prop), 30)
       << pad_left(f.severity.str(), 12)
       << pad_left(fmt_percent(f.fraction, 1), 8) << "  "
       << result.profile.path_string(f.node, trace) << "\n";
  }
  return os.str();
}

std::string render_data_quality(const AnalysisResult& result) {
  const analyze::DataQuality& q = result.quality;
  std::ostringstream os;
  os << "=== data quality ===\n";
  if (q.clean()) {
    os << "clean: " << q.events_seen << " events, no anomalies\n";
    return os.str();
  }
  const auto row = [&](const char* label, std::size_t n) {
    if (n == 0 && std::string(label) != "events seen") return;
    os << pad_right(label, 28) << pad_left(std::to_string(n), 10) << "\n";
  };
  row("events seen", q.events_seen);
  row("events dropped", q.events_dropped);
  row("events repaired", q.events_repaired);
  row("unbalanced exits", q.unbalanced_exits);
  row("unmatched sends", q.unmatched_sends);
  row("unmatched receives", q.unmatched_recvs);
  row("incomplete collectives", q.incomplete_collectives);
  row("negative waits clamped", q.negative_waits_clamped);
  row("skewed messages", q.skewed_messages);
  row("unsorted locations", q.unsorted_locations);
  os << pad_right("clock skew detected", 28)
     << pad_left(q.clock_skew_detected ? "yes" : "no", 10) << "\n";
  return os.str();
}

std::string render_defects(const AnalysisResult& result,
                           const trace::Trace& trace) {
  std::ostringstream os;
  os << "=== structural defects ===\n";
  if (result.defects.empty()) {
    os << "(none)\n";
    return os.str();
  }
  for (const auto& d : result.defects) {
    os << d.describe(trace) << "\n";
  }
  return os.str();
}

std::string defect_csv(const AnalysisResult& result,
                       const trace::Trace& trace) {
  std::ostringstream os;
  os << "kind,comm,call_index,rank,loc,op,root,reduce_op,status\n";
  for (const auto& d : result.defects) {
    const std::string prefix = std::string(analyze::to_string(d.kind)) +
                               "," + trace.comm(d.comm).name + "," +
                               std::to_string(d.call_index) + ",";
    for (const auto& p : d.participants) {
      os << prefix << p.comm_rank << "," << p.loc << ","
         << trace::to_string(p.op) << "," << p.root << ","
         << trace::reduce_op_name(p.rop) << ","
         << (p.completed ? "completed" : "called") << "\n";
    }
    for (int r : d.missing) {
      os << prefix << r << ",-1,,,," << "missing" << "\n";
    }
  }
  return os.str();
}

std::string render_analysis(const AnalysisResult& result,
                            const trace::Trace& trace) {
  std::ostringstream os;
  os << "=== automatic analysis (" << trace.location_count()
     << " locations, total time " << result.total_time.str() << ") ===\n\n";
  os << render_property_tree(result, trace) << "\n";
  os << render_findings(result, trace) << "\n";
  // Pristine traces keep the historical report byte-for-byte; the pane
  // appears only when there is degradation to report.
  if (!result.quality.clean()) {
    os << render_data_quality(result) << "\n";
  }
  // Same rule for the structural-defect pane: sound traces stay unchanged.
  if (!result.defects.empty()) {
    os << render_defects(result, trace) << "\n";
  }
  for (const auto& f : result.findings) {
    os << render_property_detail(result, trace, f.prop) << "\n";
  }
  return os.str();
}

std::string render_profile(const AnalysisResult& result,
                           const trace::Trace& trace, int max_depth) {
  std::ostringstream os;
  os << pad_right("call path", 46) << pad_left("visits", 9)
     << pad_left("incl", 12) << pad_left("excl", 12) << "\n"
     << repeat('-', 79) << "\n";
  result.profile.preorder([&](NodeId n, int depth) {
    if (depth > max_depth) return;
    if (n == analyze::kRootNode) return;
    std::string label = repeat(' ', static_cast<std::size_t>(2 * (depth - 1)));
    label += result.profile.name_of(n, trace);
    os << pad_right(label, 46)
       << pad_left(std::to_string(result.profile.visits_total(n)), 9)
       << pad_left(result.profile.inclusive_total(n).str(), 12)
       << pad_left(result.profile.exclusive_total(n).str(), 12) << "\n";
  });
  return os.str();
}

std::string severity_csv(const AnalysisResult& result,
                         const trace::Trace& trace) {
  std::ostringstream os;
  os << "property,call_path,location,severity_sec\n";
  // SeverityCube::for_each is the stable-order contract shared with
  // diff::Snapshot; rows here and cells there must stay in lockstep.
  result.cube.for_each([&](PropertyId p, NodeId n, trace::LocId l, VDur d) {
    os << analyze::property_name(p) << ","
       << result.profile.path_string(n, trace) << ","
       << trace.location(l).name << "," << fmt_double(d.sec(), 9) << "\n";
  });
  return os.str();
}

}  // namespace ats::report
