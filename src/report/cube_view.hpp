// EXPERT-style result presentation (paper Fig. 3.5).
//
// Three linked panes rendered as text:
//   1. the performance-property tree with severities (% of total time),
//   2. the call tree of the selected property's severity,
//   3. the per-location severities of the selected call path.
// render_analysis shows the full tree plus the three-pane drill-down for
// every reported finding; render_findings is the compact ranked list.
#pragma once

#include <string>

#include "analyzer/analyzer.hpp"
#include "trace/trace.hpp"

namespace ats::report {

/// Pane 1: the property tree with severity percentages.
std::string render_property_tree(const analyze::AnalysisResult& result,
                                 const trace::Trace& trace);

/// Pane 2+3 for one property: severity by call path, and per-location
/// breakdown of the heaviest call path.
std::string render_property_detail(const analyze::AnalysisResult& result,
                                   const trace::Trace& trace,
                                   analyze::PropertyId prop);

/// Ranked findings table (property, severity, share, dominant call path).
std::string render_findings(const analyze::AnalysisResult& result,
                            const trace::Trace& trace);

/// Data-quality pane: what the replay dropped, repaired, or could not
/// match, plus the clock-skew verdict (analyze::DataQuality).
std::string render_data_quality(const analyze::AnalysisResult& result);

/// Structural-defect pane: one line per collective-correctness violation
/// (analyze::StructuralDefect), citing ranks and per-rank call index.
std::string render_defects(const analyze::AnalysisResult& result,
                           const trace::Trace& trace);

/// Machine-readable defect dump: one CSV row per (defect, rank), including
/// a row per missing rank; empty defect list yields the header only.
/// Schema: docs/DEFECTS.md.
std::string defect_csv(const analyze::AnalysisResult& result,
                       const trace::Trace& trace);

/// The full EXPERT-like report: property tree, findings, per-finding
/// drill-down panes, and — when the trace was not pristine — the
/// data-quality pane.
std::string render_analysis(const analyze::AnalysisResult& result,
                            const trace::Trace& trace);

/// Call-path profile rendering (inclusive/exclusive times per node).
std::string render_profile(const analyze::AnalysisResult& result,
                           const trace::Trace& trace, int max_depth = 6);

/// Machine-readable severity dump: one CSV row per
/// (property, call path, location) with a non-zero severity.
std::string severity_csv(const analyze::AnalysisResult& result,
                         const trace::Trace& trace);

}  // namespace ats::report
