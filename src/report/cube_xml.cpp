#include "report/cube_xml.hpp"

#include <ostream>
#include <sstream>

#include "common/strutil.hpp"

namespace ats::report {

namespace {

using analyze::AnalysisResult;
using analyze::NodeId;
using analyze::PropertyId;

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return out;
}

void write_metric(std::ostream& os, PropertyId p, int indent) {
  const auto& info = analyze::property_info(p);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "<metric id=\"" << static_cast<int>(p) << "\" name=\""
     << xml_escape(info.name) << "\" waitstate=\""
     << (info.is_waitstate ? 1 : 0) << "\">\n";
  os << pad << "  <descr>" << xml_escape(info.description) << "</descr>\n";
  for (PropertyId c : analyze::property_children(p)) {
    write_metric(os, c, indent + 2);
  }
  os << pad << "</metric>\n";
}

void write_cnode(std::ostream& os, const AnalysisResult& result,
                 const trace::Trace& trace, NodeId n, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "<cnode id=\"" << n << "\" name=\""
     << xml_escape(result.profile.name_of(n, trace)) << "\">\n";
  for (NodeId c : result.profile.node(n).children) {
    write_cnode(os, result, trace, c, indent + 2);
  }
  os << pad << "</cnode>\n";
}

}  // namespace

void write_cube_xml(std::ostream& os, const AnalysisResult& result,
                    const trace::Trace& trace) {
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<cube version=\"ats-1.0\">\n";

  os << " <metrics>\n";
  write_metric(os, PropertyId::kTotal, 2);
  os << " </metrics>\n";

  os << " <program>\n";
  write_cnode(os, result, trace, analyze::kRootNode, 2);
  os << " </program>\n";

  os << " <system>\n";
  for (std::size_t l = 0; l < trace.location_count(); ++l) {
    const auto& info = trace.location(static_cast<trace::LocId>(l));
    os << "  <location id=\"" << info.id << "\" kind=\""
       << (info.kind == trace::LocKind::kProcess ? "process" : "thread")
       << "\" rank=\"" << info.rank << "\" thread=\"" << info.thread
       << "\" name=\"" << xml_escape(info.name) << "\"/>\n";
  }
  os << " </system>\n";

  const analyze::DataQuality& q = result.quality;
  os << " <dataquality events_seen=\"" << q.events_seen
     << "\" events_dropped=\"" << q.events_dropped << "\" events_repaired=\""
     << q.events_repaired << "\" unbalanced_exits=\"" << q.unbalanced_exits
     << "\" unmatched_sends=\"" << q.unmatched_sends
     << "\" unmatched_recvs=\"" << q.unmatched_recvs
     << "\" incomplete_collectives=\"" << q.incomplete_collectives
     << "\" negative_waits_clamped=\"" << q.negative_waits_clamped
     << "\" skewed_messages=\"" << q.skewed_messages
     << "\" unsorted_locations=\"" << q.unsorted_locations
     << "\" clock_skew=\"" << (q.clock_skew_detected ? 1 : 0) << "\"/>\n";

  // Structural collective-correctness defects (docs/DEFECTS.md).  Emitted
  // only when present, keeping sound-trace documents byte-identical.
  if (!result.defects.empty()) {
    os << " <defects>\n";
    for (const auto& d : result.defects) {
      os << "  <defect kind=\"" << analyze::to_string(d.kind)
         << "\" comm=\"" << xml_escape(trace.comm(d.comm).name)
         << "\" call_index=\"" << d.call_index << "\" op=\""
         << trace::to_string(d.op) << "\">\n";
      for (const auto& p : d.participants) {
        os << "   <participant rank=\"" << p.comm_rank << "\" loc=\""
           << p.loc << "\" op=\"" << trace::to_string(p.op) << "\" root=\""
           << p.root << "\" reduce_op=\"" << trace::reduce_op_name(p.rop)
           << "\" completed=\"" << (p.completed ? 1 : 0) << "\"/>\n";
      }
      for (int r : d.missing) {
        os << "   <missing rank=\"" << r << "\"/>\n";
      }
      os << "  </defect>\n";
    }
    os << " </defects>\n";
  }

  os << " <severity>\n";
  for (PropertyId p : analyze::property_preorder()) {
    const auto nodes = result.cube.nodes_of(p);
    if (nodes.empty()) continue;
    os << "  <matrix metric=\"" << static_cast<int>(p) << "\">\n";
    for (NodeId n : nodes) {
      const auto locs = result.cube.locations_of(p, n);
      os << "   <row cnode=\"" << n << "\">";
      for (std::size_t l = 0; l < locs.size(); ++l) {
        if (l != 0) os << ' ';
        os << fmt_double(locs[l].sec(), 9);
      }
      os << "</row>\n";
    }
    os << "  </matrix>\n";
  }
  os << " </severity>\n";
  os << "</cube>\n";
}

std::string cube_xml(const AnalysisResult& result,
                     const trace::Trace& trace) {
  std::ostringstream os;
  write_cube_xml(os, result, trace);
  return os.str();
}

}  // namespace ats::report
