// CUBE-style XML export of an analysis result.
//
// EXPERT's result format evolved into the CUBE profile format: three
// dimensions (metrics = performance properties, program = call tree,
// system = processes/threads) plus a severity matrix.  This writer emits a
// structurally equivalent XML document so results of the simulated tool
// chain can be inspected/post-processed with generic tooling.  The format
// is self-describing, not byte-compatible with any specific CUBE version.
#pragma once

#include <iosfwd>

#include "analyzer/analyzer.hpp"
#include "trace/trace.hpp"

namespace ats::report {

/// Writes the full (property x call path x location) cube as XML.
void write_cube_xml(std::ostream& os, const analyze::AnalysisResult& result,
                    const trace::Trace& trace);

/// Convenience: render into a string.
std::string cube_xml(const analyze::AnalysisResult& result,
                     const trace::Trace& trace);

}  // namespace ats::report
