#include "report/timeline.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/strutil.hpp"

namespace ats::report {

char glyph_for(trace::RegionKind kind) {
  switch (kind) {
    case trace::RegionKind::kUser: return '-';
    case trace::RegionKind::kWork: return '#';
    case trace::RegionKind::kMpiP2P: return 'p';
    case trace::RegionKind::kMpiColl: return 'C';
    case trace::RegionKind::kMpiOther: return 'i';
    case trace::RegionKind::kOmpParallel: return 'o';
    case trace::RegionKind::kOmpWork: return 'w';
    case trace::RegionKind::kOmpSync: return 'b';
    case trace::RegionKind::kIdle: return '.';
  }
  return '?';
}

std::string timeline_legend() {
  return "legend: '#' work  'p' MPI p2p  'C' MPI collective  'i' MPI "
         "init/mgmt  'o' omp region\n        'w' omp worksharing  'b' omp "
         "sync  '-' user code  ' ' not active";
}

namespace {

struct Interval {
  VTime begin;
  VTime end;
  trace::RegionKind kind;
};

/// Flattens a location's enter/exit events into innermost-region intervals.
std::vector<Interval> intervals_of(const trace::Trace& trace,
                                   trace::LocId loc) {
  std::vector<Interval> out;
  std::vector<trace::RegionId> stack;
  VTime cursor;
  bool started = false;
  auto emit = [&](VTime upto) {
    if (!started || upto <= cursor) return;
    const trace::RegionKind kind =
        stack.empty() ? trace::RegionKind::kIdle
                      : trace.regions().info(stack.back()).kind;
    if (!out.empty() && out.back().kind == kind &&
        out.back().end == cursor) {
      out.back().end = upto;
    } else {
      out.push_back({cursor, upto, kind});
    }
  };
  for (const trace::Event& e : trace.events_of(loc)) {
    if (!started) {
      cursor = e.t;
      started = true;
    }
    switch (e.type) {
      case trace::EventType::kEnter:
        emit(e.t);
        cursor = e.t;
        stack.push_back(e.region);
        break;
      case trace::EventType::kExit:
        emit(e.t);
        cursor = e.t;
        if (!stack.empty()) stack.pop_back();
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace

std::string render_timeline(const trace::Trace& trace,
                            const TimelineOptions& options) {
  require(options.width >= 10, "render_timeline: width too small");
  const VTime begin =
      options.t1 > options.t0 ? options.t0 : trace.begin_time();
  const VTime end = options.t1 > options.t0 ? options.t1 : trace.end_time();
  std::ostringstream os;
  if (end <= begin) {
    os << "(empty trace)\n";
    return os.str();
  }
  const std::int64_t span = (end - begin).ns();
  const int width = options.width;

  // Label column width.
  std::size_t label_w = 8;
  for (std::size_t l = 0; l < trace.location_count(); ++l) {
    label_w = std::max(label_w,
                       trace.location(static_cast<trace::LocId>(l))
                           .name.size());
  }
  label_w = std::min<std::size_t>(label_w, 24);

  // Header with the time axis.
  os << pad_right("", label_w) << " " << VTime(begin.ns()).str()
     << repeat(' ',
               static_cast<std::size_t>(std::max(0, width - 24)))
     << end.str() << "\n";
  os << pad_right("", label_w) << " |" << repeat('-', width - 2) << "|\n";

  for (std::size_t l = 0; l < trace.location_count(); ++l) {
    const auto loc = static_cast<trace::LocId>(l);
    const auto ivs = intervals_of(trace, loc);
    std::string lane(static_cast<std::size_t>(width), ' ');
    // For every bin pick the kind covering the most time.
    for (int b = 0; b < width; ++b) {
      const VTime bin_lo = begin + VDur(span * b / width);
      const VTime bin_hi = begin + VDur(span * (b + 1) / width);
      std::array<std::int64_t, 9> cover{};
      for (const Interval& iv : ivs) {
        const VTime lo = later(iv.begin, bin_lo);
        const VTime hi = earlier(iv.end, bin_hi);
        if (hi > lo) {
          cover[static_cast<std::size_t>(iv.kind)] += (hi - lo).ns();
        }
      }
      std::int64_t best = 0;
      int best_kind = -1;
      for (std::size_t k = 0; k < cover.size(); ++k) {
        if (cover[k] > best) {
          best = cover[k];
          best_kind = static_cast<int>(k);
        }
      }
      if (best_kind >= 0) {
        lane[static_cast<std::size_t>(b)] =
            glyph_for(static_cast<trace::RegionKind>(best_kind));
      }
    }
    os << pad_right(trace.location(loc).name, label_w) << " " << lane
       << "\n";
  }
  if (options.legend) os << "\n" << timeline_legend() << "\n";
  return os.str();
}

std::string render_location_summary(const trace::Trace& trace) {
  std::ostringstream os;
  os << pad_right("location", 22) << pad_left("events", 9)
     << pad_left("span", 12) << pad_left("work", 12) << pad_left("mpi", 12)
     << pad_left("omp", 12) << "\n";
  os << repeat('-', 79) << "\n";
  for (std::size_t l = 0; l < trace.location_count(); ++l) {
    const auto loc = static_cast<trace::LocId>(l);
    const auto& events = trace.events_of(loc);
    VDur work = VDur::zero(), mpi = VDur::zero(), omp = VDur::zero();
    // Innermost-interval walk (same as the timeline).
    std::vector<trace::RegionId> stack;
    VTime cursor;
    bool started = false;
    auto account = [&](VTime upto) {
      if (!started || stack.empty() || upto <= cursor) return;
      const trace::RegionKind kind =
          trace.regions().info(stack.back()).kind;
      const VDur d = upto - cursor;
      switch (kind) {
        case trace::RegionKind::kWork: work += d; break;
        case trace::RegionKind::kMpiP2P:
        case trace::RegionKind::kMpiColl:
        case trace::RegionKind::kMpiOther: mpi += d; break;
        case trace::RegionKind::kOmpParallel:
        case trace::RegionKind::kOmpWork:
        case trace::RegionKind::kOmpSync: omp += d; break;
        default: break;
      }
    };
    for (const trace::Event& e : events) {
      if (!started) {
        cursor = e.t;
        started = true;
      }
      if (e.type == trace::EventType::kEnter) {
        account(e.t);
        cursor = e.t;
        stack.push_back(e.region);
      } else if (e.type == trace::EventType::kExit) {
        account(e.t);
        cursor = e.t;
        if (!stack.empty()) stack.pop_back();
      }
    }
    const VDur span = events.empty()
                          ? VDur::zero()
                          : events.back().t - events.front().t;
    os << pad_right(trace.location(loc).name, 22)
       << pad_left(std::to_string(events.size()), 9)
       << pad_left(span.str(), 12) << pad_left(work.str(), 12)
       << pad_left(mpi.str(), 12) << pad_left(omp.str(), 12) << "\n";
  }
  return os.str();
}

}  // namespace ats::report
