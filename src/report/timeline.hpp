// ASCII timeline rendering (the library's Vampir substitute).
//
// Figures 3.2–3.4 of the paper use Vampir timeline displays to show the
// structure the synthetic programs inject.  render_timeline draws the same
// information as text: one lane per location, rasterised into fixed-width
// character bins, where each bin shows the region class that covers most of
// it.  Work phases, MPI calls, OpenMP constructs and idle time are visually
// distinct, so the alternating compute/communicate phases and their
// imbalance are directly visible in a terminal.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace ats::report {

struct TimelineOptions {
  /// Characters available for the time axis.
  int width = 100;
  /// Print the glyph legend under the timeline.
  bool legend = true;
  /// Restrict rendering to [t0, t1]; zeros mean the full trace extent.
  VTime t0{};
  VTime t1{};
};

/// Glyph used for a region class in the timeline.
char glyph_for(trace::RegionKind kind);
/// Glyph legend text.
std::string timeline_legend();

/// Renders the whole trace as one lane per location.
std::string render_timeline(const trace::Trace& trace,
                            const TimelineOptions& options = {});

/// Renders a per-location state summary table: total time and time per
/// region class (work/MPI/OpenMP), plus event counts.
std::string render_location_summary(const trace::Trace& trace);

}  // namespace ats::report
