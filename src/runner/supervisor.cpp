#include "runner/supervisor.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "common/fsatomic.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/strutil.hpp"

namespace ats::runner {

namespace {

using gen::ExperimentPlan;
using gen::ExperimentRow;
using gen::PropertyDef;
using gen::RunOutcome;

/// Journal notes are free-form error text; flatten the separators the
/// journal itself uses.
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

bool parse_outcome(const std::string& s, RunOutcome* out) {
  for (std::size_t i = 0; i < gen::kRunOutcomeCount; ++i) {
    const auto o = static_cast<RunOutcome>(i);
    if (s == gen::to_string(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

}  // namespace

/// One journal line per completed cell, keyed by the plan fingerprint so a
/// stale journal never pollutes a different sweep.  All numeric fields are
/// exact integers (virtual nanoseconds); `fraction` is re-derived on load
/// the same way the analyzer derives it, keeping resumed rows
/// bit-identical to freshly computed ones.
std::string format_journal_row(std::uint64_t fp, std::size_t index,
                               const ExperimentRow& r) {
  std::ostringstream os;
  os << std::hex << fp << std::dec << '\t' << index << '\t'
     << sanitize(r.value) << '\t' << r.severity.ns() << '\t'
     << (r.detected ? 1 : 0) << '\t' << sanitize(r.dominant) << '\t'
     << r.total_time.ns() << '\t' << gen::to_string(r.outcome) << '\t'
     << r.attempts << '\t' << sanitize(r.note);
  return os.str();
}

bool parse_journal_row(const std::string& line, std::uint64_t fp,
                       std::size_t* index, ExperimentRow* row) {
  const std::vector<std::string> f = split(line, '\t');
  if (f.size() != 10) return false;
  try {
    if (std::stoull(f[0], nullptr, 16) != fp) return false;
    *index = std::stoull(f[1]);
    ExperimentRow r;
    r.value = f[2];
    r.severity = VDur::nanos(std::stoll(f[3]));
    r.detected = f[4] == "1";
    r.dominant = f[5];
    r.total_time = VDur::nanos(std::stoll(f[6]));
    if (!parse_outcome(f[7], &r.outcome)) return false;
    r.attempts = std::stoi(f[8]);
    r.note = f[9];
    r.fraction = r.total_time > VDur::zero() ? r.severity / r.total_time : 0.0;
    *row = std::move(r);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

namespace {

void hash_bytes(std::uint64_t* h, std::string_view bytes) {
  for (const char c : bytes) {
    *h ^= static_cast<unsigned char>(c);
    *h *= 0x100000001b3ULL;
  }
  *h ^= 0xff;  // field separator, so {"ab",""} != {"a","b"}
  *h *= 0x100000001b3ULL;
}

void hash_int(std::uint64_t* h, std::int64_t v) {
  hash_bytes(h, std::to_string(v));
}

void hash_double(std::uint64_t* h, double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  hash_bytes(h, os.str());
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t SupervisedRunner::plan_fingerprint(const ExperimentPlan& plan) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_bytes(&h, plan.property);
  hash_bytes(&h, plan.axis.param);
  for (const auto& v : plan.axis.values) hash_bytes(&h, v);
  for (const auto& k : plan.base.keys()) {
    hash_bytes(&h, k);
    hash_bytes(&h, plan.base.get_raw(k, ""));
  }
  const auto& cfg = plan.config;
  hash_int(&h, cfg.nprocs);
  hash_int(&h, cfg.trace_enabled ? 1 : 0);
  hash_int(&h, static_cast<std::int64_t>(cfg.engine.seed));
  hash_int(&h, cfg.mpi_cost.p2p_latency.ns());
  hash_double(&h, cfg.mpi_cost.bandwidth_bytes_per_sec);
  hash_int(&h, static_cast<std::int64_t>(cfg.mpi_cost.eager_threshold));
  hash_int(&h, cfg.mpi_cost.send_overhead.ns());
  hash_int(&h, cfg.mpi_cost.recv_overhead.ns());
  hash_int(&h, cfg.mpi_cost.coll_stage.ns());
  hash_int(&h, cfg.mpi_cost.init_cost.ns());
  hash_int(&h, cfg.mpi_cost.finalize_cost.ns());
  hash_int(&h, cfg.omp_cost.fork_cost.ns());
  hash_int(&h, cfg.omp_cost.barrier_cost.ns());
  hash_int(&h, cfg.omp_cost.sched_chunk_cost.ns());
  hash_int(&h, cfg.omp_cost.lock_cost.ns());
  hash_int(&h, static_cast<std::int64_t>(cfg.faults.seed));
  for (const auto& f : cfg.faults.faults) {
    hash_int(&h, f.rank);
    hash_bytes(&h, mpi::to_string(f.kind));
    hash_int(&h, f.at.ns());
    hash_int(&h, f.duration.ns());
    hash_double(&h, f.probability);
  }
  hash_double(&h, plan.analyzer.threshold);
  for (const auto p : plan.analyzer.disabled_patterns) {
    hash_bytes(&h, analyze::property_name(p));
  }
  hash_int(&h, plan.analyzer.lenient ? 1 : 0);
  return h;
}

ExperimentRow SupervisedRunner::run_cell(const ExperimentPlan& plan,
                                         const PropertyDef& def,
                                         const std::string& value) const {
  ExperimentPlan p = plan;
  auto& eng = p.config.engine;
  // Supervisor budgets fill in zeros only: a plan that sets its own budget
  // keeps it.
  if (eng.virtual_time_limit == VDur::zero()) {
    eng.virtual_time_limit = opt_.virtual_time_limit;
  }
  if (eng.yield_limit == 0) eng.yield_limit = opt_.yield_limit;
  if (eng.wall_clock_limit.count() == 0) {
    eng.wall_clock_limit = opt_.wall_clock_limit;
  }

  const int max_attempts = std::max(1, opt_.retry.max_attempts);
  ExperimentRow row;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (opt_.retry.perturb_seed && attempt > 1) {
      // Retry seeds are derived, not incremented: the splittable PRNG keeps
      // them well-separated from the base seed (and from each other), and a
      // fuzz master seed that chose the base engine seed deterministically
      // reproduces every retry's schedule too.
      eng.seed = SplitSeed(plan.config.engine.seed)
                     .child("retry")
                     .child(static_cast<std::uint64_t>(attempt - 1))
                     .value();
    }
    row = gen::run_experiment_cell(p, def, value);
    row.attempts = attempt;
    if (row.outcome == RunOutcome::kOk) break;
  }
  return row;
}

std::vector<ExperimentRow> SupervisedRunner::run_sweep(
    const ExperimentPlan& plan) const {
  const PropertyDef& def = gen::Registry::instance().find(plan.property);
  require(!plan.axis.param.empty(), "runner: sweep axis has no name");
  require(!plan.axis.values.empty(), "runner: sweep axis has no values");

  const std::uint64_t fp = plan_fingerprint(plan);
  const std::size_t n = plan.axis.values.size();
  std::vector<ExperimentRow> rows(n);
  std::vector<char> done(n, 0);

  // The journal is loaded whether or not we resume: appends preserve any
  // existing lines (e.g. cells of a differently-fingerprinted sweep), and
  // every append is persisted write-to-temp + atomic-rename so a kill at
  // any instant leaves only complete lines behind (common/fsatomic.hpp).
  AtomicJournal journal(opt_.journal_path);

  if (opt_.resume && !opt_.journal_path.empty()) {
    for (const std::string& line : journal.lines()) {
      std::size_t index = 0;
      ExperimentRow row;
      if (!parse_journal_row(line, fp, &index, &row)) continue;
      if (index >= n || row.value != plan.axis.values[index]) continue;
      rows[index] = std::move(row);
      done[index] = 1;
    }
  }
  std::mutex journal_mu;

  par::ThreadPool pool(plan.jobs);
  pool.parallel_for(n, [&](std::size_t i) {
    if (done[i]) return;
    rows[i] = run_cell(plan, def, plan.axis.values[i]);
    if (!opt_.journal_path.empty()) {
      std::string line = format_journal_row(fp, i, rows[i]);
      std::lock_guard<std::mutex> lk(journal_mu);
      journal.append(std::move(line));
    }
  });
  return rows;
}

}  // namespace ats::runner
