// Supervised experiment execution (DESIGN.md §8).
//
// A large parameter sweep over the ATS property functions must survive the
// very pathologies the suite generates on purpose: deadlocks, runaway
// loops, injected rank crashes.  The SupervisedRunner wraps every
// experiment cell with
//
//   * supervision budgets (virtual time / yields / host wall clock) filled
//     into the cell's EngineOptions so hangs terminate as HangError,
//   * outcome classification (gen::RunOutcome) instead of sweep abortion,
//   * a bounded retry policy with optional seed perturbation,
//   * a crash-safe journal of completed cells, so an interrupted sweep can
//     be resumed without re-simulating finished work.
//
// Clean sweeps produce exactly the rows (and therefore the CSV/table
// bytes) that gen::run_experiment produces unsupervised.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gen/experiment.hpp"

namespace ats::runner {

struct RetryPolicy {
  /// Total simulation attempts per cell (>= 1).  A cell whose outcome is
  /// still non-kOk after the last attempt keeps that outcome.
  int max_attempts = 1;
  /// Derive a fresh engine seed per retry (SplitSeed child of the base
  /// seed, keyed by attempt number), so a retry explores a different
  /// deterministic schedule instead of replaying the identical failure.
  bool perturb_seed = false;
};

struct SupervisorOptions {
  RetryPolicy retry{};

  // Budgets filled into each cell's EngineOptions where the plan leaves
  // them zero (a nonzero value in the plan wins).  The defaults bound any
  // property-function run by a wide margin: one virtual hour, ten million
  // scheduler yields.
  VDur virtual_time_limit = VDur::seconds(3600.0);
  std::uint64_t yield_limit = 10'000'000;
  /// Per-cell host wall-clock budget (zero = none).  Enforced by the
  /// engine's scheduler loop itself between handoffs — no watchdog
  /// thread on either execution backend — so it can only trip while
  /// locations still yield.
  std::chrono::milliseconds wall_clock_limit{0};

  /// Journal file: completed cells are appended as they finish, each
  /// append persisted crash-consistently (write-to-temp + atomic rename,
  /// see common/fsatomic.hpp) so a sweep killed mid-write never leaves a
  /// torn journal line for --resume to misparse.  Empty = no journal.
  std::string journal_path;
  /// Load journaled cells (matching this plan's fingerprint) instead of
  /// re-running them.
  bool resume = false;
};

class SupervisedRunner {
 public:
  explicit SupervisedRunner(SupervisorOptions opt = {}) : opt_(std::move(opt)) {}

  const SupervisorOptions& options() const { return opt_; }

  /// Runs one cell under supervision: budgets applied, retries spent,
  /// outcome classified.  `attempts` in the returned row is the number of
  /// simulation attempts actually consumed.
  gen::ExperimentRow run_cell(const gen::ExperimentPlan& plan,
                              const gen::PropertyDef& def,
                              const std::string& value) const;

  /// Runs the whole sweep (parallel per plan.jobs, like
  /// gen::run_experiment), journaling completed cells and skipping
  /// journaled ones when resuming.  Never throws for runtime faults; rows
  /// carry the outcome.
  std::vector<gen::ExperimentRow> run_sweep(const gen::ExperimentPlan& plan) const;

  /// Stable 64-bit fingerprint of everything that determines a sweep's
  /// rows (property, axis, base parameters, run configuration, fault
  /// plan).  Journal entries are keyed by it, so a journal written for a
  /// different plan is ignored on resume.
  static std::uint64_t plan_fingerprint(const gen::ExperimentPlan& plan);

 private:
  SupervisorOptions opt_;
};

/// FNV-1a 64-bit over a byte string (the journal/fingerprint hash).
std::uint64_t fnv1a64(std::string_view bytes);

/// One completed cell as a journal line: tab-separated
///   fp(hex) \t index \t value \t severity_ns \t detected \t dominant
///   \t total_ns \t outcome \t attempts \t note
/// This is the one persistent row format shared by the sweep journal and
/// the analysis service's result cache (docs/SERVICE.md §cache); numeric
/// fields are exact integers so a reloaded row is bit-identical to the
/// freshly computed one.
std::string format_journal_row(std::uint64_t fp, std::size_t index,
                               const gen::ExperimentRow& row);

/// Parses a journal line keyed by `fp`.  Returns false (and leaves the
/// outputs untouched) for torn, malformed, or differently-keyed lines —
/// resume and cache loads skip those instead of failing.
bool parse_journal_row(const std::string& line, std::uint64_t fp,
                       std::size_t* index, gen::ExperimentRow* row);

}  // namespace ats::runner
