#include "service/admission.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ats::service {

AdmissionController::AdmissionController(AdmissionOptions opt)
    : opt_(opt),
      analyze_free_(std::max(1, opt.analyze_slots)),
      sweep_free_(std::max(1, opt.sweep_slots)),
      generate_free_(std::max(1, opt.generate_slots)) {
  require(opt_.queue_depth >= 1, "admission: queue_depth must be >= 1");
  opt_.workers = std::max(1, opt_.workers);
}

int& AdmissionController::slots_free(RequestClass c) {
  switch (c) {
    case RequestClass::kAnalyze: return analyze_free_;
    case RequestClass::kSweep: return sweep_free_;
    case RequestClass::kGenerate: return generate_free_;
    case RequestClass::kControl: break;
  }
  throw Error("admission: control requests are never queued");
}

int AdmissionController::retry_after_locked() const {
  // Expected drain time of the backlog ahead of a retry: one EWMA service
  // time per queued request, divided across the workers, floored at 1 ms
  // so a retry_after of zero can never suggest an immediate hammer-loop.
  const double backlog = static_cast<double>(queue_.size()) + 1.0;
  const double est = ewma_ms_ * backlog / static_cast<double>(opt_.workers);
  return static_cast<int>(std::clamp(est, 1.0, 60'000.0));
}

std::optional<AdmissionController::ShedInfo> AdmissionController::admit(
    QueuedRequest task, bool force) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shutdown_) {
    return ShedInfo{1, static_cast<int>(queue_.size())};
  }
  if (!force && queue_.size() >= static_cast<std::size_t>(opt_.queue_depth)) {
    return ShedInfo{retry_after_locked(), static_cast<int>(queue_.size())};
  }
  queue_.push_back(std::move(task));
  work_cv_.notify_one();
  return std::nullopt;
}

bool AdmissionController::next(QueuedRequest* task) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // First queued task whose class has a free slot (FIFO within a class).
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      int& free = slots_free(request_class(it->req.op));
      if (free > 0) {
        --free;
        *task = std::move(*it);
        queue_.erase(it);
        return true;
      }
    }
    if (shutdown_ && queue_.empty()) return false;
    work_cv_.wait(lk);
  }
}

void AdmissionController::release(RequestClass c) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++slots_free(c);
  }
  // A freed slot may unblock a queued task of this class.
  work_cv_.notify_all();
}

void AdmissionController::record_service_time(std::chrono::milliseconds ms) {
  std::lock_guard<std::mutex> lk(mu_);
  const double v = static_cast<double>(ms.count());
  if (!ewma_seeded_) {
    ewma_ms_ = std::max(1.0, v);
    ewma_seeded_ = true;
  } else {
    ewma_ms_ = 0.8 * ewma_ms_ + 0.2 * std::max(1.0, v);
  }
}

void AdmissionController::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(queue_.size());
}

int AdmissionController::retry_after_ms_estimate() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retry_after_locked();
}

}  // namespace ats::service
