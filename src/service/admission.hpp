// Admission control for the analysis service (docs/SERVICE.md).
//
// A long-running daemon must degrade predictably under overload: a
// request the server cannot serve promptly is *rejected immediately with
// a retry hint* (load shedding), never parked in an unbounded queue or
// silently dropped.  The controller enforces
//
//   * one bounded FIFO of admitted-but-not-started work (queue_depth);
//     an arrival that would exceed it is shed with a retry_after_ms
//     computed from the observed service time and the backlog,
//   * per-class concurrency limits: sweeps (long, many cells) are capped
//     independently from analyzes and generates, so a burst of sweeps
//     cannot monopolise every worker while cheap requests starve,
//   * shutdown draining: after shutdown(), no new work is admitted,
//     workers finish what was queued, and next() then returns false.
//
// The controller is pure bookkeeping — it owns no threads; the server's
// worker pool calls next()/release() and the connection readers call
// admit().
#pragma once

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "service/protocol.hpp"

namespace ats::service {

/// One admitted unit of work, queued between a connection reader and a
/// worker.  `reply` delivers the complete rendered response text; it is
/// null for work re-admitted from the recovery journal (the client is
/// gone — the result's value is warming the cache).
struct QueuedRequest {
  Request req;
  std::string canonical;  ///< canonical_request_line(req)
  std::uint64_t id = 0;   ///< fnv1a64(canonical)
  std::chrono::steady_clock::time_point enqueued{};
  /// Absolute deadline (steady clock); time_point::max() = none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  bool recovered = false;
  std::shared_ptr<std::promise<std::string>> reply;
};

struct AdmissionOptions {
  int queue_depth = 64;    ///< max admitted-but-not-started requests
  int workers = 4;         ///< informs the retry_after estimate
  int analyze_slots = 4;   ///< concurrent analyze executions
  int sweep_slots = 2;     ///< concurrent sweep executions
  int generate_slots = 4;  ///< concurrent generate executions
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opt);

  struct ShedInfo {
    int retry_after_ms = 1;
    int queued = 0;
  };

  /// Admits `task` into the queue, or returns the shed decision when the
  /// queue is at depth.  `force` bypasses the depth check (recovery
  /// re-admission of previously accepted work).  Never blocks.
  std::optional<ShedInfo> admit(QueuedRequest task, bool force = false);

  /// Blocks until a task whose class has a free slot is available (the
  /// slot is claimed) or shutdown has drained the queue.  Returns false
  /// only at shutdown with an empty eligible queue.  Tasks of one class
  /// stay FIFO; across classes a task may overtake a blocked class.
  bool next(QueuedRequest* task);

  /// Returns the slot claimed by the next() that produced the task.
  void release(RequestClass c);

  /// Feeds the retry_after estimator with one observed execution time.
  void record_service_time(std::chrono::milliseconds ms);

  /// Stops admission; queued tasks still drain through next().
  void shutdown();

  int queued() const;
  /// The retry hint the next shed response would carry.
  int retry_after_ms_estimate() const;

 private:
  int& slots_free(RequestClass c);
  int retry_after_locked() const;

  AdmissionOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<QueuedRequest> queue_;
  int analyze_free_;
  int sweep_free_;
  int generate_free_;
  /// EWMA of observed per-request service time, for retry_after hints.
  double ewma_ms_ = 50.0;
  bool ewma_seeded_ = false;
  bool shutdown_ = false;
};

}  // namespace ats::service
