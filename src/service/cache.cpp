#include "service/cache.hpp"

#include <sstream>

#include "runner/supervisor.hpp"

namespace ats::service {

ResultCache::ResultCache(std::string journal_path)
    : journal_(std::move(journal_path)) {
  // Warm restart: reload every complete journal line.  Each line is keyed
  // by its own cell key (stored in the fingerprint slot of the shared
  // runner row format, with index 0), so parse keyed by the line's own
  // prefix: read the key back out first, then parse normally.
  for (const std::string& line : journal_.lines()) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    std::uint64_t key = 0;
    try {
      key = std::stoull(line.substr(0, tab), nullptr, 16);
    } catch (const std::exception&) {
      continue;  // malformed prefix: skip the line, keep the rest
    }
    std::size_t index = 0;
    gen::ExperimentRow row;
    if (!runner::parse_journal_row(line, key, &index, &row)) continue;
    rows_[key] = std::move(row);
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.entries = rows_.size();
}

std::uint64_t ResultCache::cell_key(std::uint64_t plan_fp,
                                    const std::string& value) {
  std::ostringstream os;
  os << std::hex << plan_fp << '\t' << value;
  return runner::fnv1a64(os.str());
}

ResultCache::Found ResultCache::lookup_or_begin(std::uint64_t key,
                                                gen::ExperimentRow* row) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (const auto it = rows_.find(key); it != rows_.end()) {
      *row = it->second;
      ++stats_.hits;
      return Found::kHit;
    }
    auto pit = pending_.find(key);
    if (pit == pending_.end()) {
      auto p = std::make_unique<Pending>();
      p->owned = true;
      pending_.emplace(key, std::move(p));
      ++stats_.misses;
      return Found::kOwner;
    }
    Pending& p = *pit->second;
    if (!p.owned) {
      // The previous owner abandoned; this waiter takes over.
      p.owned = true;
      ++stats_.misses;
      return Found::kOwner;
    }
    ++p.waiters;
    p.cv.wait(lk, [&] {
      return rows_.count(key) != 0 || !pit->second->owned;
    });
    --p.waiters;
    if (const auto it = rows_.find(key); it != rows_.end()) {
      *row = it->second;
      ++stats_.waits;
      if (p.waiters == 0) pending_.erase(pit);
      return Found::kWaited;
    }
    // Owner abandoned: loop around; this thread (or another waiter)
    // becomes the new owner.
  }
}

bool ResultCache::peek(std::uint64_t key, gen::ExperimentRow* row) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  *row = it->second;
  ++stats_.hits;
  return true;
}

void ResultCache::publish(std::uint64_t key, const gen::ExperimentRow& row) {
  std::lock_guard<std::mutex> lk(mu_);
  // Wall-clock-dependent outcomes are not reusable (see header).
  if (row.outcome != gen::RunOutcome::kHang) {
    rows_[key] = row;
    stats_.entries = rows_.size();
    journal_.append(runner::format_journal_row(key, 0, row));
  }
  const auto pit = pending_.find(key);
  if (pit != pending_.end()) {
    pit->second->owned = false;
    if (pit->second->waiters == 0) {
      pending_.erase(pit);
    } else {
      pit->second->cv.notify_all();
    }
  }
}

void ResultCache::abandon(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto pit = pending_.find(key);
  if (pit == pending_.end()) return;
  pit->second->owned = false;
  if (pit->second->waiters == 0) {
    pending_.erase(pit);
  } else {
    pit->second->cv.notify_all();
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace ats::service
