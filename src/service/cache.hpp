// Fingerprint-keyed result memoization for the analysis service.
//
// The unit of caching is one experiment cell — exactly the unit the
// supervised runner journals.  A cell's key combines the plan fingerprint
// (runner::SupervisedRunner::plan_fingerprint, which already folds in the
// property, parameters, run configuration and analyzer options) with the
// axis value, so a repeated analyze request or a repeated sweep cell is a
// cache hit, never a re-simulation.
//
// Concurrency: lookup_or_begin() deduplicates *in-flight* work too.  The
// first caller for a key becomes its owner and simulates; concurrent
// callers for the same key block until the owner publishes, then return
// the published row.  N clients hitting the same fingerprint cost one
// simulation and N-1 waits (tested in tests/service_test.cpp).
//
// Persistence: completed rows append to a crash-consistent journal
// (common/fsatomic.hpp: write-to-temp + atomic rename per append) in the
// runner's journal-row format, so a killed daemon restarts warm — the
// constructor reloads every complete line and a torn file is impossible
// by construction.  Rows whose outcome depends on host wall clock
// (RunOutcome::kHang) are never cached: a hang under one request's
// deadline says nothing about a retry with a larger budget.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/fsatomic.hpp"
#include "gen/experiment.hpp"

namespace ats::service {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;     ///< rows served from memory/disk
    std::uint64_t misses = 0;   ///< rows the caller had to simulate
    std::uint64_t waits = 0;    ///< rows served by waiting on an in-flight owner
    std::uint64_t entries = 0;  ///< rows currently cached
  };

  /// `journal_path` empty = memory-only cache.  Otherwise existing rows
  /// are loaded immediately (warm restart).
  explicit ResultCache(std::string journal_path);

  /// Cell key: plan fingerprint x axis value.
  static std::uint64_t cell_key(std::uint64_t plan_fp, const std::string& value);

  /// Outcome of a lookup.
  enum class Found : std::uint8_t {
    kHit,    ///< *row filled from the cache
    kOwner,  ///< caller must simulate and then call publish() or abandon()
    kWaited, ///< *row filled after blocking on the in-flight owner
  };

  /// Looks up `key`; registers the caller as owner on a miss.  Blocks
  /// while another thread owns the key.  If the owner abandons, one
  /// waiter is promoted to owner (returns kOwner).
  Found lookup_or_begin(std::uint64_t key, gen::ExperimentRow* row);

  /// Read-only, non-blocking lookup: fills *row and returns true when the
  /// key is already published.  Never registers ownership and never waits
  /// on in-flight work — the diff verb's primitive (a cache *reader* must
  /// not be able to wedge behind a simulating owner).
  bool peek(std::uint64_t key, gen::ExperimentRow* row);

  /// Publishes the owner's row: journals it (unless outcome == kHang),
  /// caches it, wakes all waiters.
  void publish(std::uint64_t key, const gen::ExperimentRow& row);

  /// Owner failed without a row (exception): releases the key and
  /// promotes one waiter, if any, to owner.
  void abandon(std::uint64_t key);

  Stats stats() const;

 private:
  struct Pending {
    bool owned = false;
    std::condition_variable cv;
    int waiters = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, gen::ExperimentRow> rows_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> pending_;
  Stats stats_{};
  // Mutated only under mu_; AtomicJournal is not internally locked.
  AtomicJournal journal_;
};

}  // namespace ats::service
