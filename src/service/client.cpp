#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace ats::service {

Client::Client(std::string socket_path) : path_(std::move(socket_path)) {
  struct sockaddr_un addr{};
  require(!path_.empty() && path_.size() < sizeof(addr.sun_path),
          "client: bad socket path '" + path_ + "'");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("client: socket(): " + std::string(std::strerror(errno)));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path_.c_str(), path_.size());
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("client: cannot connect to '" + path_ + "': " + err +
                " (is ats_serve running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::read_line() {
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("client: connection to '" + path_ + "' closed");
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::read_exact(std::size_t n) {
  while (buf_.size() < n) {
    char chunk[4096];
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) throw Error("client: connection to '" + path_ + "' closed");
    buf_.append(chunk, static_cast<std::size_t>(r));
  }
  std::string out = buf_.substr(0, n);
  buf_.erase(0, n);
  return out;
}

Response Client::call(const std::string& request_line) {
  std::string out = request_line;
  out += "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("client: send to '" + path_ + "' failed: " +
                  std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }

  Response resp = parse_response_line(read_line());
  if (resp.status != Status::kOk) return resp;

  // Framed payloads: generate announces bytes=, sweep announces rows=.
  // Both end with an "end" line that confirms the frame arrived whole.
  if (resp.fields.count("bytes") != 0) {
    resp.payload = read_exact(static_cast<std::size_t>(resp.get_int("bytes")));
    std::string tail = read_line();
    if (tail.empty()) tail = read_line();
    require(tail == "end", "client: generate frame missing 'end'");
  } else if (resp.fields.count("rows") != 0) {
    const std::int64_t rows = resp.get_int("rows");
    resp.rows.reserve(static_cast<std::size_t>(rows));
    for (std::int64_t i = 0; i < rows; ++i) resp.rows.push_back(read_line());
    require(read_line() == "end", "client: sweep frame missing 'end'");
  }
  return resp;
}

}  // namespace ats::service
