// Thin client for the ATS analysis service (docs/SERVICE.md).
//
// Connects to the daemon's Unix socket and speaks the line protocol
// (service/protocol.hpp): one request line out, one framed response back.
// The connection is persistent — call() may be invoked repeatedly; work
// requests block until the daemon answers (ok / shed / error), so callers
// get backpressure, not buffering.
#pragma once

#include <string>

#include "service/protocol.hpp"

namespace ats::service {

class Client {
 public:
  /// Connects to the daemon at `socket_path`.  Throws ats::Error when the
  /// socket does not exist or refuses the connection.
  explicit Client(std::string socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (without trailing newline) and reads the full
  /// framed response.  Throws ats::Error on a broken connection.
  Response call(const std::string& request_line);

  const std::string& socket_path() const { return path_; }

 private:
  /// Blocking line read through the internal buffer.  Throws on EOF.
  std::string read_line();
  /// Reads exactly `n` raw payload bytes.
  std::string read_exact(std::size_t n);

  std::string path_;
  int fd_ = -1;
  std::string buf_;
};

}  // namespace ats::service
