#include "service/protocol.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/strutil.hpp"

namespace ats::service {

namespace {

/// Splits on single spaces, dropping empty tokens (robust against
/// double spaces and trailing whitespace).
std::vector<std::string> tokens(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::uint64_t parse_hex64_field(const std::string& key,
                                const std::string& value) {
  require(!value.empty() && value.size() <= 16,
          "request: " + key + " is not a hex fingerprint: '" + value + "'");
  std::uint64_t out = 0;
  for (const char c : value) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                    (c >= 'A' && c <= 'F');
    require(ok, "request: " + key + " is not a hex fingerprint: '" + value +
                    "'");
    out = (out << 4) | static_cast<std::uint64_t>(
                           c <= '9' ? c - '0'
                                    : (c | 0x20) - 'a' + 10);
  }
  return out;
}

int parse_int_field(const std::string& key, const std::string& value, int lo,
                    int hi) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(value, &pos);
    require(pos == value.size(), key + " is not an integer: '" + value + "'");
    require(v >= lo && v <= hi, key + " out of range: " + value);
    return static_cast<int>(v);
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError("request: " + key + " is not an integer: '" + value + "'");
  }
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kAnalyze: return "analyze";
    case Op::kSweep: return "sweep";
    case Op::kGenerate: return "generate";
    case Op::kDiff: return "diff";
    case Op::kStatus: return "status";
    case Op::kPing: return "ping";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(RequestClass c) {
  switch (c) {
    case RequestClass::kControl: return "control";
    case RequestClass::kGenerate: return "generate";
    case RequestClass::kAnalyze: return "analyze";
    case RequestClass::kSweep: return "sweep";
  }
  return "?";
}

RequestClass request_class(Op op) {
  switch (op) {
    case Op::kAnalyze: return RequestClass::kAnalyze;
    case Op::kSweep: return RequestClass::kSweep;
    case Op::kGenerate: return RequestClass::kGenerate;
    case Op::kDiff:  // pure cache reads: answered inline, never queued
    case Op::kStatus:
    case Op::kPing:
    case Op::kShutdown: return RequestClass::kControl;
  }
  return RequestClass::kControl;
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kShed: return "shed";
    case Status::kError: return "error";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  require(line.size() <= kMaxRequestLine, "request: line too long");
  const std::vector<std::string> toks = tokens(line);
  require(!toks.empty(), "request: empty line");

  Request req;
  const std::string& opname = toks[0];
  if (opname == "analyze") {
    req.op = Op::kAnalyze;
  } else if (opname == "sweep") {
    req.op = Op::kSweep;
  } else if (opname == "generate") {
    req.op = Op::kGenerate;
  } else if (opname == "diff") {
    req.op = Op::kDiff;
  } else if (opname == "status") {
    req.op = Op::kStatus;
  } else if (opname == "ping") {
    req.op = Op::kPing;
  } else if (opname == "shutdown") {
    req.op = Op::kShutdown;
  } else {
    throw UsageError("request: unknown operation '" + opname + "'");
  }

  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    const auto eq = t.find('=');
    require(eq != std::string::npos && eq > 0,
            "request: expected key=value, got '" + t + "'");
    const std::string key = t.substr(0, eq);
    const std::string value = t.substr(eq + 1);
    if (key == "prop") {
      req.prop = value;
    } else if (key == "np") {
      req.np = parse_int_field("np", value, 1, 1 << 20);
    } else if (key == "deadline_ms") {
      req.deadline = std::chrono::milliseconds(
          parse_int_field("deadline_ms", value, 0, 86'400'000));
    } else if (key == "axis") {
      req.axis = value;
    } else if (key == "values") {
      req.values = split(value, ',');
    } else if (key == "fp_a" || key == "fp_b") {
      (key == "fp_a" ? req.fp_a : req.fp_b) = parse_hex64_field(key, value);
    } else {
      require(!value.empty(), "request: empty value for '" + key + "'");
      req.params.set(key, value);
    }
  }

  const bool needs_prop =
      req.op == Op::kAnalyze || req.op == Op::kSweep || req.op == Op::kGenerate;
  require(!needs_prop || !req.prop.empty(),
          "request: '" + std::string(to_string(req.op)) + "' needs prop=");
  if (req.op == Op::kSweep) {
    require(!req.axis.empty(), "request: sweep needs axis=");
    require(!req.values.empty(), "request: sweep needs values=");
    for (const auto& v : req.values) {
      require(!v.empty(), "request: sweep values contain an empty entry");
    }
  }
  if (req.op == Op::kDiff) {
    require(req.fp_a != 0, "request: diff needs fp_a=");
    require(req.fp_b != 0, "request: diff needs fp_b=");
    require(!req.values.empty(), "request: diff needs values=");
    for (const auto& v : req.values) {
      require(!v.empty(), "request: diff values contain an empty entry");
    }
  }
  return req;
}

std::string canonical_request_line(const Request& req) {
  std::ostringstream os;
  os << to_string(req.op);
  if (!req.prop.empty()) os << " prop=" << req.prop;
  if (req.op == Op::kAnalyze || req.op == Op::kSweep) os << " np=" << req.np;
  if (req.op == Op::kSweep) {
    os << " axis=" << req.axis << " values=" << join(req.values, ",");
  }
  if (req.op == Op::kDiff) {
    os << " fp_a=" << std::hex << req.fp_a << " fp_b=" << req.fp_b
       << std::dec << " values=" << join(req.values, ",");
  }
  for (const std::string& k : req.params.keys()) {
    os << ' ' << k << '=' << req.params.get_raw(k, "");
  }
  return os.str();
}

std::string Response::get(const std::string& key, const std::string& def) const {
  const auto it = fields.find(key);
  return it == fields.end() ? def : it->second;
}

std::int64_t Response::get_int(const std::string& key, std::int64_t def) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    return def;
  }
}

Response parse_response_line(const std::string& line) {
  Response r;
  r.first_line = line;
  const auto sp = line.find(' ');
  const std::string status = line.substr(0, sp);
  if (status == "ok") {
    r.status = Status::kOk;
  } else if (status == "shed") {
    r.status = Status::kShed;
  } else if (status == "error") {
    r.status = Status::kError;
  } else {
    throw Error("response: unknown status token in '" + line + "'");
  }
  std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);
  while (!rest.empty()) {
    // msg= swallows the rest of the line (free text with spaces).
    if (starts_with(rest, "msg=")) {
      r.fields["msg"] = rest.substr(4);
      break;
    }
    const auto end = rest.find(' ');
    const std::string tok = rest.substr(0, end);
    rest = end == std::string::npos ? "" : rest.substr(end + 1);
    if (tok.empty()) continue;
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) continue;  // tolerate junk
    r.fields[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return r;
}

std::string format_fields(
    Status s, const std::vector<std::pair<std::string, std::string>>& kv) {
  std::string out = to_string(s);
  for (const auto& [k, v] : kv) {
    out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace ats::service
