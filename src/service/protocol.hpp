// Wire protocol of the ATS analysis service (docs/SERVICE.md).
//
// Requests and responses are single text lines over a local stream socket.
// A request is an operation name followed by key=value fields:
//
//   analyze prop=late_sender np=4 extrawork=0.05 deadline_ms=2000
//   sweep prop=late_sender axis=extrawork values=0.01,0.02,0.05 np=4
//   generate prop=late_sender
//   status | ping | shutdown
//
// Responses start with a status token — "ok", "shed" or "error" — followed
// by key=value fields; "generate" and "sweep" responses carry a framed
// multi-line payload terminated by an "end" line.  The full grammar,
// field tables and failure-mode semantics live in docs/SERVICE.md; this
// header is the parsing/formatting layer shared by server and client, so
// the two can never drift apart.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gen/params.hpp"

namespace ats::service {

/// Operations a request can name.  kAnalyze/kSweep are *work* requests
/// (admitted, queued, cached, journaled for recovery); kGenerate is cheap
/// CPU-bound work (admitted but not journaled); the rest — including
/// kDiff, which only reads the result cache — are control requests
/// answered inline and never shed.
enum class Op : std::uint8_t {
  kAnalyze,
  kSweep,
  kGenerate,
  kDiff,
  kStatus,
  kPing,
  kShutdown,
};

const char* to_string(Op op);

/// Admission classes: control requests bypass the queue entirely, the
/// work classes have independent concurrency limits (docs/SERVICE.md).
enum class RequestClass : std::uint8_t { kControl, kGenerate, kAnalyze, kSweep };

const char* to_string(RequestClass c);

RequestClass request_class(Op op);

/// A parsed request.  `params` holds only property parameters — the
/// reserved keys (prop, np, axis, values, deadline_ms, fp_a, fp_b) are
/// lifted into typed fields.
struct Request {
  Op op = Op::kPing;
  std::string prop;
  int np = 4;
  gen::ParamMap params;
  /// Sweep axis parameter name and values (kSweep; also the cell values a
  /// kDiff compares).
  std::string axis;
  std::vector<std::string> values;
  /// Relative deadline; zero = the server default applies.
  std::chrono::milliseconds deadline{0};
  /// Plan fingerprints of the two cached sweeps a kDiff compares
  /// (hex, as returned in analyze/sweep responses' fp= field).
  std::uint64_t fp_a = 0;
  std::uint64_t fp_b = 0;
};

/// Parses one request line.  Throws ats::UsageError with a message safe
/// to echo to the client on malformed input (unknown op, bad key=value
/// syntax, missing prop, non-numeric np/deadline_ms).
Request parse_request(const std::string& line);

/// Renders `req` back into a canonical request line: fixed field order,
/// property parameters sorted by key, no deadline (deadlines are
/// per-attempt, not part of the work's identity).  Canonical lines key
/// the in-flight recovery journal, so the same work always maps to the
/// same line bytes.
std::string canonical_request_line(const Request& req);

/// Response status tokens.
enum class Status : std::uint8_t { kOk, kShed, kError };

const char* to_string(Status s);

/// A parsed response: the leading status, the key=value fields of the
/// first line, and the framed payload (generate source / sweep rows) when
/// the first line announced one via bytes= / rows=.
struct Response {
  Status status = Status::kError;
  std::map<std::string, std::string> fields;
  std::string payload;             ///< raw framed bytes (kGenerate)
  std::vector<std::string> rows;   ///< framed row lines (kSweep)
  std::string first_line;          ///< verbatim, for logging

  /// Field access with default.
  std::string get(const std::string& key, const std::string& def = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t def = 0) const;
};

/// Parses a response first line (status token + fields).  Payload framing
/// is handled by the transport (client.cpp) since it needs more reads.
Response parse_response_line(const std::string& line);

/// Formats fields as " k=v" pairs appended to a status token.  `msg`-style
/// free-text values must be passed last by callers that include them (the
/// parser treats everything after "msg=" as the value).
std::string format_fields(Status s,
                          const std::vector<std::pair<std::string, std::string>>& kv);

/// Hard cap on request-line length; longer lines are rejected as
/// too_large without being buffered (robustness against garbage input).
inline constexpr std::size_t kMaxRequestLine = 64 * 1024;

}  // namespace ats::service
