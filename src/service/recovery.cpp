#include "service/recovery.hpp"

#include <map>
#include <sstream>

#include "common/strutil.hpp"

namespace ats::service {

namespace {

std::string hex_id(std::uint64_t id) {
  std::ostringstream os;
  os << std::hex << id;
  return os.str();
}

/// Parses "admit <hex> <line...>" / "done <hex>".  Returns false for
/// anything else (torn files cannot happen — AtomicJournal — but a
/// hand-edited one degrades gracefully).
bool parse_entry(const std::string& line, bool* is_admit, std::uint64_t* id,
                 std::string* payload) {
  std::string rest;
  if (starts_with(line, "admit ")) {
    *is_admit = true;
    rest = line.substr(6);
  } else if (starts_with(line, "done ")) {
    *is_admit = false;
    rest = line.substr(5);
  } else {
    return false;
  }
  const auto sp = rest.find(' ');
  const std::string hex = sp == std::string::npos ? rest : rest.substr(0, sp);
  try {
    *id = std::stoull(hex, nullptr, 16);
  } catch (const std::exception&) {
    return false;
  }
  *payload = sp == std::string::npos ? "" : rest.substr(sp + 1);
  return *is_admit ? !payload->empty() : true;
}

}  // namespace

RecoveryLog::RecoveryLog(std::string path) : journal_(std::move(path)) {
  if (!enabled()) return;
  // Net admit count and first-seen payload per id, in admission order.
  std::map<std::uint64_t, int> balance;
  std::map<std::uint64_t, std::string> payloads;
  std::vector<std::uint64_t> order;
  for (const std::string& line : journal_.lines()) {
    bool is_admit = false;
    std::uint64_t id = 0;
    std::string payload;
    if (!parse_entry(line, &is_admit, &id, &payload)) continue;
    if (is_admit) {
      if (balance[id]++ == 0) order.push_back(id);
      if (payloads.find(id) == payloads.end()) payloads[id] = payload;
    } else {
      --balance[id];
    }
  }
  std::vector<std::string> compacted;
  for (const std::uint64_t id : order) {
    if (balance[id] <= 0) continue;
    // One pending entry per unique id, however many times it was
    // admitted: recovery re-admits exactly once.
    pending_.push_back(payloads[id]);
    compacted.push_back("admit " + hex_id(id) + " " + payloads[id]);
  }
  journal_.rewrite(std::move(compacted));
}

void RecoveryLog::admit(std::uint64_t id, const std::string& canonical_line) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  journal_.append("admit " + hex_id(id) + " " + canonical_line);
}

void RecoveryLog::done(std::uint64_t id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  journal_.append("done " + hex_id(id));
  if (++dones_since_compact_ >= 64) compact_locked();
}

void RecoveryLog::compact_locked() {
  std::map<std::uint64_t, int> balance;
  std::map<std::uint64_t, std::string> payloads;
  std::vector<std::uint64_t> order;
  for (const std::string& line : journal_.lines()) {
    bool is_admit = false;
    std::uint64_t id = 0;
    std::string payload;
    if (!parse_entry(line, &is_admit, &id, &payload)) continue;
    if (is_admit) {
      if (balance[id]++ == 0) order.push_back(id);
      if (payloads.find(id) == payloads.end()) payloads[id] = payload;
    } else {
      --balance[id];
    }
  }
  std::vector<std::string> compacted;
  for (const std::uint64_t id : order) {
    for (int i = 0; i < balance[id]; ++i) {
      compacted.push_back("admit " + hex_id(id) + " " + payloads[id]);
    }
  }
  journal_.rewrite(std::move(compacted));
  dones_since_compact_ = 0;
}

}  // namespace ats::service
