// The in-flight request table: crash recovery for admitted work.
//
// Every admitted analyze/sweep request is recorded (`admit <id> <line>`)
// before execution starts and marked (`done <id>`) when its response has
// been produced, in a crash-consistent journal (common/fsatomic.hpp).  A
// daemon killed mid-request therefore restarts knowing exactly which work
// it had accepted but not finished, and re-admits each such request
// exactly once — the cells the interrupted run already completed are in
// the result cache, so recovery re-simulates only the remainder and a
// client's retry of the same request becomes a cache hit.
//
// Exactly-once is per unique request identity (the canonical request
// line): N identical interrupted admissions recover as one re-admission.
// The journal compacts on load — fully-done entries are dropped through
// an atomic rewrite — so it stays proportional to the in-flight set, not
// to the daemon's lifetime.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/fsatomic.hpp"

namespace ats::service {

class RecoveryLog {
 public:
  /// Loads `path` (empty = disabled) and compacts it: entries whose admit
  /// count is matched by dones are dropped; the rest become pending().
  explicit RecoveryLog(std::string path);

  /// Canonical request lines that were admitted but never completed, in
  /// admission order, deduplicated.  Computed at load time.
  const std::vector<std::string>& pending() const { return pending_; }

  /// Records an admission.  Thread-safe.
  void admit(std::uint64_t id, const std::string& canonical_line);

  /// Records completion.  Thread-safe.  Periodically compacts.
  void done(std::uint64_t id);

  bool enabled() const { return !journal_.path().empty(); }

 private:
  void compact_locked();

  std::mutex mu_;
  AtomicJournal journal_;
  std::vector<std::string> pending_;
  /// Completions since the last compaction.
  int dones_since_compact_ = 0;
};

}  // namespace ats::service
