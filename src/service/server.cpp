#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/strutil.hpp"
#include "diff/diff.hpp"
#include "gen/source_gen.hpp"

namespace ats::service {

namespace {

using Clock = std::chrono::steady_clock;

std::string error_response(const std::string& code, const std::string& msg) {
  return format_fields(Status::kError, {{"code", code}, {"msg", msg}});
}

std::string shed_response(const AdmissionController::ShedInfo& info) {
  return format_fields(Status::kShed,
                       {{"retry_after_ms", std::to_string(info.retry_after_ms)},
                        {"queued", std::to_string(info.queued)}});
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// First line of a (possibly multi-line) error message, protocol-safe.
std::string first_line(const char* what) {
  std::string s(what);
  const auto nl = s.find('\n');
  if (nl != std::string::npos) s.resize(nl);
  return s;
}

/// Writes all of `data` to `fd`, ignoring SIGPIPE (EPIPE just fails).
bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// One accepted client connection: the fd, the thread reading it, and a
/// liveness flag so the acceptor can reap finished threads.
struct Server::Conn {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {
  require(!opt_.socket_path.empty(), "service: socket_path is required");
  if (opt_.workers <= 0) opt_.workers = par::default_jobs();
  if (opt_.analyze_slots <= 0) opt_.analyze_slots = opt_.workers;
  if (opt_.generate_slots <= 0) opt_.generate_slots = opt_.workers;
  if (opt_.sweep_slots <= 0) opt_.sweep_slots = std::max(1, opt_.workers / 2);
  // A service must never run a cell without *some* wall-clock bound — a
  // deadline-less request would otherwise pin a worker on a pathological
  // spec forever.  Requests with deadlines get the tighter of the two.
  if (opt_.supervise.wall_clock_limit.count() == 0) {
    opt_.supervise.wall_clock_limit = std::chrono::milliseconds(60'000);
  }

  std::string cache_path, inflight_path;
  if (!opt_.state_dir.empty()) {
    std::filesystem::create_directories(opt_.state_dir);
    cache_path = opt_.state_dir + "/cache.journal";
    inflight_path = opt_.state_dir + "/inflight.journal";
  }
  AdmissionOptions aopt;
  aopt.queue_depth = opt_.queue_depth;
  aopt.workers = opt_.workers;
  aopt.analyze_slots = opt_.analyze_slots;
  aopt.sweep_slots = opt_.sweep_slots;
  aopt.generate_slots = opt_.generate_slots;
  admission_ = std::make_unique<AdmissionController>(aopt);
  cache_ = std::make_unique<ResultCache>(cache_path);
  recovery_ = std::make_unique<RecoveryLog>(inflight_path);
  runner_ = std::make_unique<runner::SupervisedRunner>(opt_.supervise);
}

Server::~Server() { stop(); }

void Server::start() {
  require(!started_.exchange(true), "service: start() called twice");
  started_at_ = Clock::now();

  // Build every function-local static on the request path *now*, so the
  // first request races nothing and a registry construction failure
  // aborts startup, not a client (gen/registry.hpp reentrancy contract).
  gen::Registry::instance();

  // Interrupted work from a previous life re-runs before the socket
  // opens: clients reconnecting after a crash observe a warm cache, and
  // each interrupted request is re-admitted exactly once.
  recover();

  struct sockaddr_un addr{};
  require(opt_.socket_path.size() < sizeof(addr.sun_path),
          "service: socket path too long: " + opt_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("service: socket(): " + std::string(std::strerror(errno)));
  ::unlink(opt_.socket_path.c_str());  // stale socket from a killed daemon
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(), opt_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("service: cannot bind '" + opt_.socket_path + "': " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("service: listen(): " + err);
  }
  if (::pipe(wake_pipe_) != 0) {
    throw Error("service: pipe(): " + std::string(std::strerror(errno)));
  }

  pool_thread_ = std::thread([this] {
    // The service's workers *are* the existing thread pool: one long
    // parallel_for grid whose every index is a worker loop draining the
    // admission queue until shutdown.
    par::ThreadPool pool(opt_.workers);
    pool.parallel_for(static_cast<std::size_t>(opt_.workers),
                      [this](std::size_t) { worker_main(); });
  });
  acceptor_ = std::thread([this] { acceptor_main(); });
}

void Server::recover() {
  for (const std::string& line : recovery_->pending()) {
    Request req;
    try {
      req = parse_request(line);
    } catch (const UsageError&) {
      continue;  // unparseable journal payload: drop it
    }
    QueuedRequest task;
    task.req = std::move(req);
    task.canonical = line;
    task.id = runner::fnv1a64(line);
    task.enqueued = Clock::now();
    task.recovered = true;
    // Recovered work runs under the default deadline (its original one
    // died with the client); without this a recovered pathological spec
    // would burn the full supervision budget before the socket opens.
    if (opt_.default_deadline.count() != 0) {
      task.deadline = task.enqueued + opt_.default_deadline;
    }
    ctr_.recovered.fetch_add(1, std::memory_order_relaxed);
    try {
      execute(task);  // result lands in the cache; there is no client
    } catch (const std::exception&) {
      // Classified failures are already rows; anything else must not
      // wedge startup.
    }
    recovery_->done(task.id);
  }
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::wait() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfd{};
    pfd.fd = wake_pipe_[0];
    pfd.events = POLLIN;
    ::poll(&pfd, 1, 100);
  }
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true)) return;
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opt_.socket_path.c_str());
  }
  // Drain: workers finish everything admitted, so every connection
  // blocked on a response gets one before its socket is shut down.
  admission_->shutdown();
  if (pool_thread_.joinable()) pool_thread_.join();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& c : conns) {
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (const auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Server::acceptor_main() {
  for (;;) {
    struct pollfd pfds[2] = {};
    pfds[0].fd = listen_fd_;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_pipe_[0];
    pfds[1].events = POLLIN;
    if (::poll(pfds, 2, 500) < 0 && errno != EINTR) return;
    if (stopping_.load(std::memory_order_acquire)) return;
    if (!(pfds[0].revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ctr_.connections.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lk(conns_mu_);
    // Reap finished connection threads while we are here.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        if ((*it)->fd >= 0) ::close((*it)->fd);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    if (conns_.size() >= static_cast<std::size_t>(opt_.max_connections)) {
      // Connection-level shedding: tell the client to back off rather
      // than letting the accept backlog grow unboundedly.
      ctr_.shed.fetch_add(1, std::memory_order_relaxed);
      write_all(fd, shed_response({admission_->retry_after_ms_estimate(),
                                   admission_->queued()}) +
                        "\n");
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { connection_main(conn); });
    conns_.push_back(conn);
  }
}

void Server::connection_main(std::shared_ptr<Conn> conn) {
  // Idle connections time out instead of pinning a reader thread.
  struct timeval tv{};
  tv.tv_sec = static_cast<time_t>(opt_.idle_timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((opt_.idle_timeout.count() % 1000) * 1000);
  ::setsockopt(conn->fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string buf;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed, idle timeout, or shutdown
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string resp = handle_line(line, conn->fd);
      if (!resp.empty() && !write_all(conn->fd, resp + "\n")) break;
    }
    if (buf.size() > kMaxRequestLine) {
      // A request line that long is garbage or abuse: reject and hang up
      // rather than buffering without bound.
      ctr_.errors.fetch_add(1, std::memory_order_relaxed);
      write_all(conn->fd,
                error_response("too_large", "request line exceeds 64KiB") + "\n");
      break;
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

std::string Server::handle_line(const std::string& line, int fd) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const UsageError& e) {
    ctr_.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response("usage", first_line(e.what()));
  }

  switch (req.op) {
    case Op::kPing:
      return format_fields(Status::kOk, {{"pong", "1"}});
    case Op::kStatus:
      return status_response();
    case Op::kDiff:
      // Pure cache reads: answered inline like the other control ops, so a
      // warm daemon compares without re-simulating (and a cold one answers
      // not_cached instead of queueing work the client never asked for).
      return diff_response(req);
    case Op::kShutdown:
      // Reply *before* signalling: once request_stop() fires, stop() may
      // shut this connection down and the acknowledgement would be lost.
      write_all(fd, format_fields(Status::kOk, {{"stopping", "1"}}) + "\n");
      request_stop();
      return "";
    default:
      break;
  }

  if (req.op == Op::kSweep &&
      req.values.size() > static_cast<std::size_t>(opt_.max_sweep_values)) {
    ctr_.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response(
        "too_large", "sweep of " + std::to_string(req.values.size()) +
                         " values exceeds max_sweep_values=" +
                         std::to_string(opt_.max_sweep_values));
  }

  QueuedRequest task;
  task.req = std::move(req);
  task.canonical = canonical_request_line(task.req);
  task.id = runner::fnv1a64(task.canonical);
  task.enqueued = Clock::now();
  const auto deadline = task.req.deadline.count() != 0 ? task.req.deadline
                                                       : opt_.default_deadline;
  if (deadline.count() != 0) task.deadline = task.enqueued + deadline;
  task.reply = std::make_shared<std::promise<std::string>>();
  auto future = task.reply->get_future();

  const Op op = task.req.op;
  const std::uint64_t id = task.id;
  // Journal the admission *before* queueing: a kill between here and
  // completion leaves an admit without a done, which is exactly the set
  // recovery re-admits.
  if (op != Op::kGenerate) recovery_->admit(id, task.canonical);
  if (const auto shed = admission_->admit(std::move(task))) {
    if (op != Op::kGenerate) recovery_->done(id);
    ctr_.shed.fetch_add(1, std::memory_order_relaxed);
    return shed_response(*shed);
  }
  ctr_.accepted.fetch_add(1, std::memory_order_relaxed);
  return future.get();
}

void Server::worker_main() {
  QueuedRequest task;
  while (admission_->next(&task)) {
    const RequestClass cls = request_class(task.req.op);
    const auto t0 = Clock::now();
    std::string resp;
    try {
      resp = execute(task);
    } catch (const std::exception& e) {
      ctr_.errors.fetch_add(1, std::memory_order_relaxed);
      resp = error_response("internal", first_line(e.what()));
    }
    admission_->release(cls);
    admission_->record_service_time(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              t0));
    if (task.req.op != Op::kGenerate) recovery_->done(task.id);
    if (starts_with(resp, "ok")) {
      ctr_.completed.fetch_add(1, std::memory_order_relaxed);
    }
    if (task.reply) task.reply->set_value(std::move(resp));
    task = QueuedRequest{};
  }
}

std::string Server::execute(const QueuedRequest& task) {
  if (Clock::now() >= task.deadline) {
    ctr_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    ctr_.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response("deadline", "deadline expired before execution");
  }
  try {
    switch (task.req.op) {
      case Op::kGenerate: return execute_generate(task);
      case Op::kAnalyze:
      case Op::kSweep: return execute_analyze_or_sweep(task);
      default:
        return error_response("internal", "control op reached a worker");
    }
  } catch (const UsageError& e) {
    ctr_.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response("usage", first_line(e.what()));
  }
}

std::string Server::execute_generate(const QueuedRequest& task) {
  const auto& def = gen::Registry::instance().find(task.req.prop);
  const std::string source = gen::generate_driver_source(def);
  std::string out = format_fields(
      Status::kOk, {{"op", "generate"},
                    {"prop", def.name},
                    {"bytes", std::to_string(source.size())}});
  out += "\n";
  out += source;
  out += "\nend";
  return out;
}

gen::ExperimentRow Server::cell_through_cache(
    const gen::ExperimentPlan& plan, const gen::PropertyDef& def,
    const std::string& value, std::uint64_t key,
    std::chrono::milliseconds wall_budget, bool* cached) {
  gen::ExperimentRow row;
  const auto found = cache_->lookup_or_begin(key, &row);
  if (found != ResultCache::Found::kOwner) {
    *cached = true;
    return row;
  }
  *cached = false;
  gen::ExperimentPlan p = plan;
  if (wall_budget.count() > 0) {
    // The request's remaining deadline bounds the simulation: a
    // pathological spec degrades to a classified hang row at its own
    // deadline, not at the generous service-wide budget.  The tighter of
    // the two wins (a plan-level nonzero limit overrides the supervisor
    // default, so clamp here).
    p.config.engine.wall_clock_limit =
        opt_.supervise.wall_clock_limit.count() > 0
            ? std::min(wall_budget, opt_.supervise.wall_clock_limit)
            : wall_budget;
  }
  try {
    row = runner_->run_cell(p, def, value);
  } catch (...) {
    cache_->abandon(key);
    throw;
  }
  ctr_.simulations.fetch_add(1, std::memory_order_relaxed);
  cache_->publish(key, row);
  return row;
}

std::string Server::execute_analyze_or_sweep(const QueuedRequest& task) {
  const Request& req = task.req;
  const auto& def = gen::Registry::instance().find(req.prop);
  req.params.check_against(def.params);

  gen::ExperimentPlan plan;
  plan.property = req.prop;
  plan.base = req.params;
  plan.jobs = 1;
  plan.config.nprocs = req.np;
  if (req.op == Op::kAnalyze) {
    plan.axis.param = "np";
    plan.axis.values = {std::to_string(req.np)};
  } else {
    require(req.axis == "np" ||
                std::any_of(def.params.begin(), def.params.end(),
                            [&](const auto& p) { return p.name == req.axis; }),
            "sweep: unknown axis parameter '" + req.axis + "' for '" +
                req.prop + "'");
    plan.axis.param = req.axis;
    plan.axis.values = req.values;
  }
  const std::uint64_t fp = runner::SupervisedRunner::plan_fingerprint(plan);

  const bool bounded = task.deadline != Clock::time_point::max();
  std::vector<std::string> rows;
  rows.reserve(plan.axis.values.size());
  std::size_t cached_cells = 0;
  for (std::size_t i = 0; i < plan.axis.values.size(); ++i) {
    const std::string& value = plan.axis.values[i];
    std::chrono::milliseconds budget{0};
    if (bounded) {
      budget = std::chrono::duration_cast<std::chrono::milliseconds>(
          task.deadline - Clock::now());
      if (budget.count() <= 0) {
        ctr_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        ctr_.errors.fetch_add(1, std::memory_order_relaxed);
        // Completed cells are cached: the client's retry picks them up
        // for free and only the remainder simulates.
        return error_response(
            "deadline", "deadline expired after " + std::to_string(i) + "/" +
                            std::to_string(plan.axis.values.size()) +
                            " cells (completed cells are cached)");
      }
    }
    bool cached = false;
    const gen::ExperimentRow row = cell_through_cache(
        plan, def, value, ResultCache::cell_key(fp, value), budget, &cached);
    if (cached) ++cached_cells;
    rows.push_back(runner::format_journal_row(fp, i, row));

    if (req.op == Op::kAnalyze) {
      // Finding names contain spaces ("late sender"); key=value fields
      // must not, or the parser would truncate at the first space.
      std::string dominant = row.dominant;
      std::replace(dominant.begin(), dominant.end(), ' ', '_');
      std::vector<std::pair<std::string, std::string>> kv = {
          {"op", "analyze"},
          {"prop", req.prop},
          {"outcome", gen::to_string(row.outcome)},
          {"cached", cached ? "1" : "0"},
          {"severity_ns", std::to_string(row.severity.ns())},
          {"fraction", fmt_double(row.fraction, 6)},
          {"detected", row.detected ? "1" : "0"},
          {"dominant", dominant},
          {"total_ns", std::to_string(row.total_time.ns())},
          {"attempts", std::to_string(row.attempts)},
          {"fp", hex64(fp)},
      };
      if (!row.note.empty()) kv.emplace_back("msg", first_line(row.note.c_str()));
      return format_fields(Status::kOk, kv);
    }
  }

  std::string out = format_fields(
      Status::kOk,
      {{"op", "sweep"},
       {"prop", req.prop},
       {"rows", std::to_string(rows.size())},
       {"cached", std::to_string(cached_cells)},
       {"fp", hex64(fp)}});
  for (const std::string& r : rows) {
    out += "\n";
    out += r;
  }
  out += "\nend";
  return out;
}

std::string Server::diff_response(const Request& req) {
  // Both sweeps must already be cached cell by cell; a missing cell is an
  // error, never a fresh simulation (the verb's contract: a diff reader
  // can't create load).
  std::vector<gen::ExperimentRow> rows_a, rows_b;
  for (const std::string& value : req.values) {
    gen::ExperimentRow row;
    if (!cache_->peek(ResultCache::cell_key(req.fp_a, value), &row)) {
      ctr_.errors.fetch_add(1, std::memory_order_relaxed);
      return error_response("not_cached",
                            "fp_a=" + hex64(req.fp_a) + " value=" + value +
                                " is not in the result cache");
    }
    rows_a.push_back(std::move(row));
    if (!cache_->peek(ResultCache::cell_key(req.fp_b, value), &row)) {
      ctr_.errors.fetch_add(1, std::memory_order_relaxed);
      return error_response("not_cached",
                            "fp_b=" + hex64(req.fp_b) + " value=" + value +
                                " is not in the result cache");
    }
    rows_b.push_back(std::move(row));
  }
  const std::vector<diff::RowDelta> deltas = diff::diff_rows(rows_a, rows_b);
  std::size_t changed = 0;
  bool regressed = false;
  double max_rel = 0.0;
  for (const diff::RowDelta& d : deltas) {
    if (!d.changed) continue;
    ++changed;
    if (d.delta() > 0 || d.outcome_changed) regressed = true;
    max_rel = std::max(max_rel, d.rel());
  }
  // Framed like a sweep response: rows= row lines, then "end".  Row format:
  //   value,a_ns,b_ns,delta_ns,rel,changed,outcome_changed
  std::string out = format_fields(
      Status::kOk, {{"op", "diff"},
                    {"fp_a", hex64(req.fp_a)},
                    {"fp_b", hex64(req.fp_b)},
                    {"rows", std::to_string(deltas.size())},
                    {"changed", std::to_string(changed)},
                    {"regressed", regressed ? "1" : "0"},
                    {"max_rel", fmt_double(max_rel, 4)}});
  for (const diff::RowDelta& d : deltas) {
    const auto ns = [](double sec) {
      return std::to_string(static_cast<std::int64_t>(sec * 1e9 + 0.5));
    };
    out += "\n" + d.value + "," + ns(d.a_sec) + "," + ns(d.b_sec) + "," +
           std::to_string(static_cast<std::int64_t>(d.delta() * 1e9 +
                                                    (d.delta() < 0 ? -0.5 : 0.5))) +
           "," + fmt_double(d.rel(), 4) + "," + (d.changed ? "1" : "0") + "," +
           (d.outcome_changed ? "1" : "0");
  }
  out += "\nend";
  return out;
}

std::string Server::status_response() {
  const auto up = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - started_at_);
  const ServerCounters c = counters();
  const ResultCache::Stats cs = cache_->stats();
  return format_fields(
      Status::kOk,
      {{"up_ms", std::to_string(up.count())},
       {"queued", std::to_string(admission_->queued())},
       {"accepted", std::to_string(c.accepted)},
       {"completed", std::to_string(c.completed)},
       {"shed", std::to_string(c.shed)},
       {"errors", std::to_string(c.errors)},
       {"deadline_expired", std::to_string(c.deadline_expired)},
       {"simulations", std::to_string(c.simulations)},
       {"recovered", std::to_string(c.recovered)},
       {"connections", std::to_string(c.connections)},
       {"cache_hits", std::to_string(cs.hits)},
       {"cache_misses", std::to_string(cs.misses)},
       {"cache_waits", std::to_string(cs.waits)},
       {"cache_entries", std::to_string(cs.entries)},
       {"retry_after_ms", std::to_string(admission_->retry_after_ms_estimate())},
       {"workers", std::to_string(opt_.workers)}});
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.accepted = ctr_.accepted.load(std::memory_order_relaxed);
  c.completed = ctr_.completed.load(std::memory_order_relaxed);
  c.shed = ctr_.shed.load(std::memory_order_relaxed);
  c.errors = ctr_.errors.load(std::memory_order_relaxed);
  c.deadline_expired = ctr_.deadline_expired.load(std::memory_order_relaxed);
  c.simulations = ctr_.simulations.load(std::memory_order_relaxed);
  c.recovered = ctr_.recovered.load(std::memory_order_relaxed);
  c.connections = ctr_.connections.load(std::memory_order_relaxed);
  return c;
}

ResultCache::Stats Server::cache_stats() const { return cache_->stats(); }

}  // namespace ats::service
