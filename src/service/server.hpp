// The ATS analysis daemon (docs/SERVICE.md).
//
// A persistent server over a local Unix stream socket that accepts
// generate/analyze/sweep/status requests, schedules them on the existing
// thread pool (common/parallel.hpp) behind an admission controller, and
// memoizes results in a crash-consistent cell cache.  The robustness
// contract:
//
//   * overload sheds (a "shed retry_after_ms=..." response, never an
//     unbounded wait, never a silent drop),
//   * every admitted request has a deadline; a pathological spec burns
//     its own budget and comes back as a classified hang/deadlock row,
//     not a stuck worker,
//   * repeated work is a cache hit (single simulation under concurrent
//     identical requests),
//   * a SIGKILL'd daemon restarts warm: completed cells reload from the
//     cache journal, interrupted requests re-admit exactly once from the
//     in-flight table (service/recovery.hpp) before the socket reopens.
//
// The server is embeddable (tests and bench run it in-process); the
// `ats_serve` example wraps it into the standalone daemon.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runner/supervisor.hpp"
#include "service/admission.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/recovery.hpp"

namespace ats::service {

struct ServerOptions {
  /// Filesystem path of the Unix stream socket (required).  A stale
  /// socket file from a killed daemon is replaced on start.
  std::string socket_path;
  /// Directory for the cache and in-flight journals; created if missing.
  /// Empty = fully in-memory (no warm restart, no recovery).
  std::string state_dir;
  /// Worker threads executing admitted requests (the par::ThreadPool
  /// width).  <= 0 selects par::default_jobs().
  int workers = 0;
  /// Bounded queue depth; arrivals beyond it are shed.
  int queue_depth = 64;
  /// Per-class concurrency limits; <= 0 derives from `workers`
  /// (analyze/generate: workers, sweep: max(1, workers/2)).
  int analyze_slots = 0;
  int sweep_slots = 0;
  int generate_slots = 0;
  /// Cap on sweep request size; larger requests are rejected as
  /// too_large (one request must not monopolise the daemon).
  int max_sweep_values = 512;
  /// Deadline applied to requests that carry none; zero = unbounded
  /// (still subject to the supervision budgets below).
  std::chrono::milliseconds default_deadline{0};
  /// Idle connections are closed after this long without a request.
  std::chrono::milliseconds idle_timeout{30'000};
  /// Concurrent client connections; excess connections are shed at
  /// accept time.
  int max_connections = 64;
  /// Budgets/retries applied to every simulated cell (the per-request
  /// deadline additionally bounds host wall clock).
  runner::SupervisorOptions supervise{};
};

/// Monotonic counters exposed by the status request.
struct ServerCounters {
  std::uint64_t accepted = 0;          ///< work requests admitted
  std::uint64_t completed = 0;         ///< work requests answered ok
  std::uint64_t shed = 0;              ///< requests rejected under load
  std::uint64_t errors = 0;            ///< error responses (usage, too_large, ...)
  std::uint64_t deadline_expired = 0;  ///< requests that ran out of deadline
  std::uint64_t simulations = 0;       ///< cells actually simulated
  std::uint64_t recovered = 0;         ///< requests re-admitted at startup
  std::uint64_t connections = 0;       ///< connections ever accepted
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Recovers interrupted work, then binds the socket and starts the
  /// acceptor and the worker pool.  Throws ats::Error on bind failure.
  void start();

  /// Blocks until a shutdown request or request_stop() arrives.
  void wait();

  /// Signals shutdown (safe to call from any thread; a signal handler
  /// may call it — it only sets an atomic and writes a pipe byte).
  void request_stop();

  /// Graceful shutdown: stops accepting, drains the queue, joins all
  /// threads, removes the socket file.  Idempotent.
  void stop();

  ServerCounters counters() const;
  ResultCache::Stats cache_stats() const;
  const ServerOptions& options() const { return opt_; }

 private:
  struct Conn;

  void recover();
  void acceptor_main();
  void connection_main(std::shared_ptr<Conn> conn);
  void worker_main();

  /// Handles one request line, returning the full response text
  /// (possibly multi-line, "end"-terminated) to write back.  Returns ""
  /// when the response was already written to `fd` (shutdown, which must
  /// acknowledge before signalling).
  std::string handle_line(const std::string& line, int fd);

  /// Executes one admitted work request to a rendered response.
  std::string execute(const QueuedRequest& task);
  std::string execute_analyze_or_sweep(const QueuedRequest& task);
  std::string execute_generate(const QueuedRequest& task);

  /// Runs one cell through the cache (single simulation under concurrent
  /// identical requests).  `wall_budget` bounds the simulation when
  /// positive.  Sets *cached when served without simulating.
  gen::ExperimentRow cell_through_cache(const gen::ExperimentPlan& plan,
                                        const gen::PropertyDef& def,
                                        const std::string& value,
                                        std::uint64_t key,
                                        std::chrono::milliseconds wall_budget,
                                        bool* cached);

  std::string status_response();
  /// Answers a diff request from cached cells only (never simulates);
  /// missing cells yield an error code=not_cached response.
  std::string diff_response(const Request& req);

  ServerOptions opt_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<RecoveryLog> recovery_;
  std::unique_ptr<runner::SupervisedRunner> runner_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread acceptor_;
  std::thread pool_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> started_{false};

  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, completed{0}, shed{0}, errors{0},
        deadline_expired{0}, simulations{0}, recovered{0}, connections{0};
  };
  Counters ctr_;
  std::chrono::steady_clock::time_point started_at_{};
};

}  // namespace ats::service
