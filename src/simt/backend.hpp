// Internal: the engine's execution backends (engine.hpp, DESIGN.md §9).
//
// All scheduling *decisions* — who runs next, budgets, stats, state
// transitions, failure dumps — live in Engine and are shared.  A backend
// implements only the mechanics: how control transfers between the
// scheduler and a location, and how parked locations are unwound at
// shutdown.  That split is what makes the two backends produce
// bit-identical simulations.
//
// Concurrency contract (what makes the thread backend race-free without
// guarding engine state):
//  * The scheduler touches engine state only while no location holds the
//    token (outside resume()); a location touches it only while it does
//    (between suspend() returns).  Execution never overlaps.
//  * Each handoff passes through the thread backend's mutex, which
//    publishes one side's writes to the other (release/acquire).  The
//    fiber backend runs everything on one thread and needs neither.
//  * During poisoned shutdown, locations unwind concurrently on the
//    thread backend; they must not touch engine state on that path
//    (location_main checks `poisoned_`, which is atomic for exactly this
//    reason).  Finish bookkeeping for unwound locations happens in
//    Engine::shutdown() after the backend has quiesced.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "simt/engine.hpp"
#include "simt/fiber.hpp"
#include "simt/stack_pool.hpp"

namespace ats::simt::detail {

/// Thrown through parked locations to unwind their stacks during poisoned
/// shutdown; location_main absorbs it.  Never escapes the engine.
struct ShutdownSignal {};

/// Per-location backend resource: the OS thread or the fiber + stack.
/// Owned by the Location, created by ExecutionBackend::adopt.
struct ExecSlot {
  virtual ~ExecSlot() = default;
};

struct Location {
  LocationId id = kNoLocation;
  LocationId parent = kNoLocation;
  std::string name;
  LocationBody body;
  LocationState state = LocationState::kRunnable;
  const char* block_reason = "";
  VTime now;
  std::exception_ptr error;
  std::unique_ptr<Context> context;
  std::unique_ptr<Rng> rng;
  // join bookkeeping: set while blocked in Context::join()
  std::vector<LocationId> joining;
  // Reverse index: locations blocked in join() waiting on *this* location.
  // Lets a finishing location wake exactly its joiners instead of scanning
  // every location (the scan was O(locations) per finish — quadratic over
  // a 100k-location run).
  std::vector<LocationId> waiters;
  // supervision hook (set_resume_hook); in_hook guards re-entry when the
  // hook itself advances or yields.
  LocationBody resume_hook;
  bool in_hook = false;
  std::unique_ptr<ExecSlot> exec;
};

class ExecutionBackend {
 public:
  explicit ExecutionBackend(Engine* engine) : engine_(engine) {}
  virtual ~ExecutionBackend() = default;

  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  /// Creates the execution slot for a freshly spawned location.  Called
  /// from the main thread before run(), or from the token-holding
  /// location for Context::spawn.
  virtual void adopt(Location* loc) = 0;

  /// Scheduler side: transfers control to `loc` and returns once `loc`
  /// suspends (yield/block) or finishes.
  virtual void resume(Location* loc) = 0;

  /// Location side: gives the token back to the scheduler; returns when
  /// the scheduler resumes this location again.  Throws ShutdownSignal
  /// instead of parking (or on re-resume) once the engine is poisoned.
  virtual void suspend(Location* loc) = 0;

  /// Unwinds every unfinished location after the engine is poisoned and
  /// releases all execution resources (joins threads / leaves fiber
  /// stacks frame-free).  The scheduler's thread; no location runs after
  /// this returns.
  virtual void shutdown() = 0;

 protected:
  // Friendship with Engine is on this base class only; these accessors
  // hand the pieces backends need to the derived classes.
  bool poisoned() const {
    return engine_->poisoned_.load(std::memory_order_acquire);
  }
  void location_main(Location* loc) { engine_->location_main(loc); }
  const std::vector<std::unique_ptr<Location>>& locations() const {
    return engine_->locations_;
  }

  Engine* engine_;
};

#if ATS_SIMT_HAS_FIBERS
/// Stackful-fiber backend: all locations are fibers of the scheduler's
/// thread; a handoff is one userspace register switch.
///
/// Stacks come from a StackPool and fibers are created lazily: adopt()
/// only records the entry, the slab + fiber materialise at the first
/// resume, and the slab is recycled the moment the fiber finishes — so at
/// any instant the pool holds stacks for *active* locations only, and a
/// spawned-but-idle or already-finished location costs a few hundred
/// bytes, not a quarter-megabyte of pages.
class FiberBackend final : public ExecutionBackend {
 public:
  FiberBackend(Engine* engine, std::size_t stack_bytes)
      : ExecutionBackend(engine), pool_(stack_bytes) {}

  void adopt(Location* loc) override;
  void resume(Location* loc) override;
  void suspend(Location* loc) override;
  void shutdown() override;

  const StackPool& stack_pool() const { return pool_; }

 private:
  struct Slot;
  void release_if_finished(Slot* slot);

  StackPool pool_;
};
#endif

/// Thread-per-location backend: a handoff is a directed notify_one on the
/// target's own condition variable (no thundering herd), with the
/// scheduler parked on its own.  Keeps the engine usable under
/// ThreadSanitizer, which cannot follow fiber switches.
class ThreadBackend final : public ExecutionBackend {
 public:
  explicit ThreadBackend(Engine* engine) : ExecutionBackend(engine) {}

  void adopt(Location* loc) override;
  void resume(Location* loc) override;
  void suspend(Location* loc) override;
  void shutdown() override;

 private:
  struct Slot;
  void thread_entry(Location* loc);

  std::mutex mu_;                 // guards granted_/live_ handoff protocol
  std::condition_variable sched_cv_;  // scheduler parks here
  LocationId granted_ = kNoLocation;  // location allowed to run
  std::size_t live_ = 0;              // location threads not yet exited
};

std::unique_ptr<ExecutionBackend> make_backend(EngineBackend kind,
                                               Engine* engine,
                                               const EngineOptions& options);

}  // namespace ats::simt::detail
