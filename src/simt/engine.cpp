#include "simt/engine.hpp"

#include <algorithm>
#include <sstream>

namespace ats::simt {

const char* to_string(LocationState s) {
  switch (s) {
    case LocationState::kRunnable: return "runnable";
    case LocationState::kRunning: return "running";
    case LocationState::kBlocked: return "blocked";
    case LocationState::kFinished: return "finished";
  }
  return "?";
}

// ---------------------------------------------------------------- Context

const std::string& Context::name() const {
  return engine_->locations_[static_cast<std::size_t>(id_)]->name;
}

VTime Context::now() const {
  return engine_->locations_[static_cast<std::size_t>(id_)]->now;
}

Rng& Context::rng() {
  return *engine_->locations_[static_cast<std::size_t>(id_)]->rng;
}

void Context::advance(VDur d) {
  if (d.is_negative()) {
    throw UsageError("Context::advance: negative duration");
  }
  {
    std::unique_lock lk(engine_->mu_);
    engine_->locations_[static_cast<std::size_t>(id_)]->now += d;
  }
  yield();
}

void Context::advance_to(VTime t) {
  advance(non_negative(t - now()));
}

void Context::yield() {
  Engine::Location* loc =
      engine_->locations_[static_cast<std::size_t>(id_)].get();
  {
    std::unique_lock lk(engine_->mu_);
    if (engine_->poisoned_) throw Engine::ShutdownSignal{};
    if (engine_->token_ != id_) {
      throw UsageError(
          "Context::yield called by a location without the token");
    }
    ++engine_->stats_.yields;
    loc->state = LocationState::kRunnable;
    engine_->token_ = kNoLocation;
    engine_->cv_.notify_all();
    engine_->cv_.wait(
        lk, [&] { return engine_->token_ == id_ || engine_->poisoned_; });
    if (engine_->poisoned_) throw Engine::ShutdownSignal{};
    loc->state = LocationState::kRunning;
  }
  engine_->run_resume_hook(loc);
}

void Context::block(const char* reason) {
  Engine::Location* loc =
      engine_->locations_[static_cast<std::size_t>(id_)].get();
  {
    std::unique_lock lk(engine_->mu_);
    if (engine_->poisoned_) throw Engine::ShutdownSignal{};
    if (engine_->token_ != id_) {
      throw UsageError(
          "Context::block called by a location without the token");
    }
    ++engine_->stats_.blocks;
    loc->state = LocationState::kBlocked;
    loc->block_reason = reason;
    engine_->token_ = kNoLocation;
    engine_->cv_.notify_all();
    // Wait until some other location wakes us (making us runnable) *and*
    // the scheduler hands us the token.
    engine_->cv_.wait(
        lk, [&] { return engine_->token_ == id_ || engine_->poisoned_; });
    if (engine_->poisoned_) throw Engine::ShutdownSignal{};
    loc->state = LocationState::kRunning;
    loc->block_reason = "";
  }
  engine_->run_resume_hook(loc);
}

std::vector<LocationId> Context::spawn(
    std::span<const std::pair<std::string, LocationBody>> children) {
  std::vector<LocationId> ids;
  ids.reserve(children.size());
  std::unique_lock lk(engine_->mu_);
  if (engine_->token_ != id_) {
    throw UsageError("Context::spawn called by a location without the token");
  }
  const VTime start =
      engine_->locations_[static_cast<std::size_t>(id_)]->now;
  for (const auto& [child_name, child_body] : children) {
    ids.push_back(
        engine_->spawn_internal(child_name, child_body, id_, start));
  }
  return ids;
}

void Context::join(std::span<const LocationId> children) {
  Engine::Location* loc =
      engine_->locations_[static_cast<std::size_t>(id_)].get();
  for (;;) {
    {
      std::unique_lock lk(engine_->mu_);
      if (engine_->token_ != id_) {
        throw UsageError(
            "Context::join called by a location without the token");
      }
      bool all_finished = true;
      VTime latest = loc->now;
      for (LocationId c : children) {
        const auto& child = *engine_->locations_[static_cast<std::size_t>(c)];
        if (child.state != LocationState::kFinished) {
          all_finished = false;
          break;
        }
        latest = later(latest, child.now);
      }
      if (all_finished) {
        loc->now = latest;
        return;
      }
      loc->joining.assign(children.begin(), children.end());
    }
    block("join");
  }
}

// ----------------------------------------------------------------- Engine

Engine::Engine(EngineOptions options) : options_(options) {}

Engine::~Engine() {
  // Normal completion joins in run(); this path covers engines that were
  // never run (or whose run() threw after joining).  Unwind any parked
  // threads so the process can exit cleanly.
  {
    std::unique_lock lk(mu_);
    poisoned_ = true;
    cv_.notify_all();
    cv_.wait(lk, [&] { return finished_count_ == locations_.size(); });
  }
  for (auto& loc : locations_) {
    if (loc->thread.joinable()) loc->thread.join();
  }
}

LocationId Engine::add_location(std::string name, LocationBody body) {
  std::unique_lock lk(mu_);
  if (started_) {
    throw UsageError(
        "Engine::add_location after run(); use Context::spawn instead");
  }
  return spawn_internal(std::move(name), std::move(body), kNoLocation,
                        VTime::zero());
}

void Engine::set_resume_hook(LocationId id, LocationBody hook) {
  std::unique_lock lk(mu_);
  if (started_) {
    throw UsageError("Engine::set_resume_hook after run()");
  }
  locations_.at(static_cast<std::size_t>(id))->resume_hook = std::move(hook);
}

void Engine::run_resume_hook(Location* loc) {
  // Called on the location's thread with the token held and mu_ released.
  // The hook may advance/yield (which re-enters this function; in_hook
  // suppresses the recursion) and may throw into the location body.
  if (!loc->resume_hook || loc->in_hook) return;
  loc->in_hook = true;
  struct Reset {
    bool* flag;
    ~Reset() { *flag = false; }
  } reset{&loc->in_hook};
  loc->resume_hook(*loc->context);
}

LocationId Engine::spawn_internal(std::string name, LocationBody body,
                                  LocationId parent, VTime start) {
  // Caller holds mu_ (or the engine has not started yet).
  if (locations_.size() >= options_.max_locations) {
    throw UsageError("Engine: location limit exceeded (" +
                     std::to_string(options_.max_locations) + ")");
  }
  const LocationId id = static_cast<LocationId>(locations_.size());
  auto loc = std::make_unique<Location>();
  loc->id = id;
  loc->parent = parent;
  loc->name = std::move(name);
  loc->body = std::move(body);
  loc->state = LocationState::kRunnable;
  loc->now = start;
  loc->context = std::unique_ptr<Context>(new Context(this, id));
  loc->rng = std::make_unique<Rng>(options_.seed,
                                   static_cast<std::uint64_t>(id));
  Location* raw = loc.get();
  locations_.push_back(std::move(loc));
  ++stats_.spawns;
  raw->thread = std::thread([this, raw] { thread_main(raw); });
  return id;
}

void Engine::thread_main(Location* loc) {
  {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return token_ == loc->id || poisoned_; });
    if (poisoned_) {
      loc->state = LocationState::kFinished;
      ++finished_count_;
      cv_.notify_all();
      return;
    }
    loc->state = LocationState::kRunning;
  }
  try {
    run_resume_hook(loc);
    loc->body(*loc->context);
  } catch (ShutdownSignal) {
    // Unwound during engine shutdown; not an error.
  } catch (...) {
    loc->error = std::current_exception();
  }
  std::unique_lock lk(mu_);
  loc->state = LocationState::kFinished;
  ++finished_count_;
  maybe_wake_joiners(loc);
  if (token_ == loc->id) token_ = kNoLocation;
  cv_.notify_all();
}

void Engine::maybe_wake_joiners(Location* finished) {
  // Caller holds mu_.  A joiner whose whole join set is now finished becomes
  // runnable with its clock advanced to the latest child end time.
  for (auto& l : locations_) {
    if (l->state != LocationState::kBlocked || l->joining.empty()) continue;
    if (std::find(l->joining.begin(), l->joining.end(), finished->id) ==
        l->joining.end()) {
      continue;
    }
    bool all = true;
    VTime latest = l->now;
    for (LocationId c : l->joining) {
      const auto& child = *locations_[static_cast<std::size_t>(c)];
      if (child.state != LocationState::kFinished) {
        all = false;
        break;
      }
      latest = later(latest, child.now);
    }
    if (all) {
      l->now = latest;
      l->joining.clear();
      l->state = LocationState::kRunnable;
      ++stats_.wakes;
    }
  }
}

Engine::Location* Engine::pick_next() {
  // Caller holds mu_.  Minimum (clock, id) over runnable locations.
  Location* best = nullptr;
  for (auto& l : locations_) {
    if (l->state != LocationState::kRunnable) continue;
    if (best == nullptr || l->now < best->now) best = l.get();
  }
  return best;
}

void Engine::run() {
  std::unique_lock lk(mu_);
  if (started_) throw UsageError("Engine::run called twice");
  started_ = true;
  std::exception_ptr first_error;
  std::string deadlock;
  std::string hang;
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t iterations = 0;
  while (true) {
    for (auto& l : locations_) {
      if (l->error) {
        first_error = l->error;
        break;
      }
    }
    if (first_error) break;
    if (finished_count_ == locations_.size()) break;
    Location* next = pick_next();
    if (next == nullptr) {
      deadlock = deadlock_dump();
      break;
    }
    if (options_.virtual_time_limit > VDur::zero() &&
        next->now >= VTime::zero() + options_.virtual_time_limit) {
      hang = state_dump("simulated hang: virtual-time budget (" +
                        options_.virtual_time_limit.str() + ") exhausted");
      break;
    }
    if (options_.yield_limit != 0 &&
        stats_.yields >= options_.yield_limit) {
      hang = state_dump(
          "simulated hang: yield budget (" +
          std::to_string(options_.yield_limit) +
          " yields) exhausted without completing (livelock?)");
      break;
    }
    if (options_.wall_clock_limit.count() > 0 &&
        (++iterations & 0xFF) == 0 &&
        std::chrono::steady_clock::now() - wall_start >=
            options_.wall_clock_limit) {
      hang = state_dump("simulated hang: wall-clock budget (" +
                        std::to_string(options_.wall_clock_limit.count()) +
                        " ms) exhausted");
      break;
    }
    token_ = next->id;
    cv_.notify_all();
    cv_.wait(lk, [&] { return token_ == kNoLocation; });
  }
  // Shut down any still-parked or blocked locations.
  poisoned_ = true;
  cv_.notify_all();
  cv_.wait(lk, [&] { return finished_count_ == locations_.size(); });
  lk.unlock();
  for (auto& loc : locations_) {
    if (loc->thread.joinable()) loc->thread.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  if (!deadlock.empty()) throw DeadlockError(deadlock);
  if (!hang.empty()) throw HangError(hang);
}

std::string Engine::state_dump(const std::string& headline) const {
  // Caller holds mu_.
  std::ostringstream os;
  os << headline << "\n";
  for (const auto& l : locations_) {
    os << "  [" << l->id << "] " << l->name << ": " << to_string(l->state)
       << " at " << l->now.str();
    if (l->state == LocationState::kBlocked) os << " (" << l->block_reason
                                                << ")";
    os << "\n";
  }
  return os.str();
}

std::string Engine::deadlock_dump() const {
  return state_dump(
      "simulated deadlock: all unfinished locations are blocked");
}

void Engine::wake(LocationId id, VTime not_before) {
  std::unique_lock lk(mu_);
  Location* loc = locations_.at(static_cast<std::size_t>(id)).get();
  if (loc->state != LocationState::kBlocked) {
    throw UsageError("Engine::wake: location " + std::to_string(id) + " (" +
                     loc->name + ") is not blocked but " +
                     to_string(loc->state));
  }
  loc->now = later(loc->now, not_before);
  loc->state = LocationState::kRunnable;
  ++stats_.wakes;
}

std::size_t Engine::location_count() const {
  std::unique_lock lk(mu_);
  return locations_.size();
}

VTime Engine::end_time_of(LocationId id) const {
  std::unique_lock lk(mu_);
  return locations_.at(static_cast<std::size_t>(id))->now;
}

const std::string& Engine::name_of(LocationId id) const {
  std::unique_lock lk(mu_);
  return locations_.at(static_cast<std::size_t>(id))->name;
}

LocationId Engine::parent_of(LocationId id) const {
  std::unique_lock lk(mu_);
  return locations_.at(static_cast<std::size_t>(id))->parent;
}

VTime Engine::now_of(LocationId id) const {
  std::unique_lock lk(mu_);
  return locations_.at(static_cast<std::size_t>(id))->now;
}

bool Engine::is_blocked(LocationId id) const {
  std::unique_lock lk(mu_);
  return locations_.at(static_cast<std::size_t>(id))->state ==
         LocationState::kBlocked;
}

VTime Engine::horizon() const {
  std::unique_lock lk(mu_);
  VTime h = VTime::zero();
  for (const auto& l : locations_) h = later(h, l->now);
  return h;
}

}  // namespace ats::simt
