#include "simt/engine.hpp"

#include <algorithm>
#include <sstream>

#include "common/env.hpp"
#include "simt/backend.hpp"

namespace ats::simt {

const char* to_string(LocationState s) {
  switch (s) {
    case LocationState::kRunnable: return "runnable";
    case LocationState::kRunning: return "running";
    case LocationState::kBlocked: return "blocked";
    case LocationState::kFinished: return "finished";
  }
  return "?";
}

const char* to_string(EngineBackend b) {
  switch (b) {
    case EngineBackend::kAuto: return "auto";
    case EngineBackend::kFiber: return "fiber";
    case EngineBackend::kThread: return "thread";
  }
  return "?";
}

EngineBackend resolve_backend(EngineBackend requested) {
  if (requested == EngineBackend::kAuto) {
    if (const auto env = env_value("ATS_ENGINE_BACKEND")) {
      if (*env == "fiber") {
        requested = EngineBackend::kFiber;
      } else if (*env == "thread") {
        requested = EngineBackend::kThread;
      } else {
        throw UsageError("ATS_ENGINE_BACKEND: unknown backend '" + *env +
                         "' (expected fiber or thread)");
      }
    }
    if (requested == EngineBackend::kAuto) requested = EngineBackend::kFiber;
  }
#if !ATS_SIMT_HAS_FIBERS
  // ThreadSanitizer cannot follow fiber switches; fibers are compiled out.
  if (requested == EngineBackend::kFiber) requested = EngineBackend::kThread;
#endif
  return requested;
}

namespace {
// Min-heap order on (clock, id): `after(a, b)` is the "less" predicate of
// a std:: max-heap, so the heap top is the minimum element.
bool ready_after(const VTime& at, LocationId aid, const VTime& bt,
                 LocationId bid) {
  if (at != bt) return bt < at;
  return bid < aid;
}
}  // namespace

// ---------------------------------------------------------------- Context

const std::string& Context::name() const { return engine_->loc(id_)->name; }

VTime Context::now() const { return engine_->loc(id_)->now; }

Rng& Context::rng() { return *engine_->loc(id_)->rng; }

void Context::advance(VDur d) {
  if (d.is_negative()) {
    throw UsageError("Context::advance: negative duration");
  }
  engine_->loc(id_)->now += d;
  yield();
}

void Context::advance_to(VTime t) {
  advance(non_negative(t - now()));
}

void Context::yield() {
  detail::Location* l = engine_->loc(id_);
  if (engine_->poisoned_.load(std::memory_order_acquire)) {
    throw detail::ShutdownSignal{};
  }
  engine_->check_running(id_, "Context::yield");
  ++engine_->stats_.yields;
  engine_->make_runnable(l);
  engine_->backend_->suspend(l);
  l->state = LocationState::kRunning;
  engine_->run_resume_hook(l);
}

void Context::block(const char* reason) {
  detail::Location* l = engine_->loc(id_);
  if (engine_->poisoned_.load(std::memory_order_acquire)) {
    throw detail::ShutdownSignal{};
  }
  engine_->check_running(id_, "Context::block");
  ++engine_->stats_.blocks;
  l->state = LocationState::kBlocked;
  l->block_reason = reason;
  // No ready-queue entry: Engine::wake (or a finishing join child) pushes
  // one when this location becomes runnable again.
  engine_->backend_->suspend(l);
  l->state = LocationState::kRunning;
  l->block_reason = "";
  engine_->run_resume_hook(l);
}

std::vector<LocationId> Context::spawn(
    std::span<const std::pair<std::string, LocationBody>> children) {
  engine_->check_running(id_, "Context::spawn");
  std::vector<LocationId> ids;
  ids.reserve(children.size());
  const VTime start = engine_->loc(id_)->now;
  for (const auto& [child_name, child_body] : children) {
    ids.push_back(
        engine_->spawn_internal(child_name, child_body, id_, start));
  }
  return ids;
}

void Context::join(std::span<const LocationId> children) {
  detail::Location* l = engine_->loc(id_);
  for (;;) {
    engine_->check_running(id_, "Context::join");
    bool all_finished = true;
    VTime latest = l->now;
    for (LocationId c : children) {
      const detail::Location* child = engine_->loc(c);
      if (child->state != LocationState::kFinished) {
        all_finished = false;
        break;
      }
      latest = later(latest, child->now);
    }
    if (all_finished) {
      l->now = latest;
      return;
    }
    l->joining.assign(children.begin(), children.end());
    // Register on every unfinished child so maybe_wake_joiners can find
    // this joiner without scanning all locations.
    for (LocationId c : children) {
      detail::Location* child = engine_->loc(c);
      if (child->state == LocationState::kFinished) continue;
      auto& w = child->waiters;
      if (std::find(w.begin(), w.end(), id_) == w.end()) w.push_back(id_);
    }
    block("join");
  }
}

// ----------------------------------------------------------------- Engine

Engine::Engine(EngineOptions options)
    : options_(options),
      backend_kind_(resolve_backend(options.backend)),
      backend_(detail::make_backend(backend_kind_, this, options_)) {}

Engine::~Engine() {
  // Normal completion (and every failure path) shuts down inside run();
  // this covers engines that were never run.  Parked locations are
  // unwound so stacks and threads are released before members die.
  shutdown();
}

detail::Location* Engine::loc(LocationId id) const {
  return locations_.at(static_cast<std::size_t>(id)).get();
}

void Engine::check_running(LocationId id, const char* what) const {
  if (running_ != id) {
    throw UsageError(std::string(what) +
                     " called by a location without the token");
  }
}

LocationId Engine::add_location(std::string name, LocationBody body) {
  if (started_) {
    throw UsageError(
        "Engine::add_location after run(); use Context::spawn instead");
  }
  return spawn_internal(std::move(name), std::move(body), kNoLocation,
                        VTime::zero());
}

void Engine::set_resume_hook(LocationId id, LocationBody hook) {
  if (started_) {
    throw UsageError("Engine::set_resume_hook after run()");
  }
  loc(id)->resume_hook = std::move(hook);
}

void Engine::run_resume_hook(detail::Location* l) {
  // Runs in the location's execution context with the token held.  The
  // hook may advance/yield (which re-enters this function; in_hook
  // suppresses the recursion) and may throw into the location body.
  if (!l->resume_hook || l->in_hook) return;
  l->in_hook = true;
  struct Reset {
    bool* flag;
    ~Reset() { *flag = false; }
  } reset{&l->in_hook};
  l->resume_hook(*l->context);
}

LocationId Engine::spawn_internal(std::string name, LocationBody body,
                                  LocationId parent, VTime start) {
  // Called from the main thread before run(), or by the token holder.
  if (locations_.size() >= options_.max_locations) {
    throw UsageError("Engine: location limit exceeded (" +
                     std::to_string(options_.max_locations) + ")");
  }
  const LocationId id = static_cast<LocationId>(locations_.size());
  auto l = std::make_unique<detail::Location>();
  l->id = id;
  l->parent = parent;
  l->name = std::move(name);
  l->body = std::move(body);
  l->now = start;
  l->context = std::unique_ptr<Context>(new Context(this, id));
  l->rng = std::make_unique<Rng>(options_.seed,
                                 static_cast<std::uint64_t>(id));
  detail::Location* raw = l.get();
  locations_.push_back(std::move(l));
  ++stats_.spawns;
  backend_->adopt(raw);
  make_runnable(raw);
  return id;
}

void Engine::location_main(detail::Location* l) {
  // The body driver, run inside the location's execution context by the
  // backend (fiber trampoline / location thread) each time from the top.
  l->state = LocationState::kRunning;
  // Token is held here on both backends, so the counters need no lock.
  ++stats_.live_locations;
  if (stats_.live_locations > stats_.peak_live_locations) {
    stats_.peak_live_locations = stats_.live_locations;
  }
  bool unwound = false;
  try {
    run_resume_hook(l);
    l->body(*l->context);
  } catch (detail::ShutdownSignal) {
    unwound = true;  // poisoned teardown; not an error
  } catch (...) {
    l->error = std::current_exception();
  }
  if (unwound || poisoned_.load(std::memory_order_acquire)) {
    // Poisoned teardown: locations exit concurrently on the thread
    // backend, so shared bookkeeping is deferred to Engine::shutdown().
    return;
  }
  l->state = LocationState::kFinished;
  ++finished_count_;
  --stats_.live_locations;
  if (l->error && !first_error_) first_error_ = l->error;
  maybe_wake_joiners(l);
  // The backend performs the final handoff to the scheduler on return.
}

void Engine::make_runnable(detail::Location* l) {
  l->state = LocationState::kRunnable;
  ready_.push_back(ReadyEntry{l->now, l->id});
  std::push_heap(ready_.begin(), ready_.end(),
                 [](const ReadyEntry& a, const ReadyEntry& b) {
                   return ready_after(a.t, a.id, b.t, b.id);
                 });
}

detail::Location* Engine::pick_next() {
  // Minimum (clock, id) over runnable locations.  Entries are immutable
  // snapshots and each runnable location has exactly one, so the heap top
  // is always current — O(log n) per handoff instead of the old O(n) scan.
  if (ready_.empty()) return nullptr;
  std::pop_heap(ready_.begin(), ready_.end(),
                [](const ReadyEntry& a, const ReadyEntry& b) {
                  return ready_after(a.t, a.id, b.t, b.id);
                });
  const ReadyEntry e = ready_.back();
  ready_.pop_back();
  return loc(e.id);
}

void Engine::maybe_wake_joiners(detail::Location* finished) {
  // A joiner whose whole join set is now finished becomes runnable with
  // its clock advanced to the latest child end time.  Only this location's
  // registered waiters are examined (Context::join maintains the reverse
  // index), so a finish costs O(own joiners), not O(all locations).
  if (finished->waiters.empty()) return;
  for (LocationId wid : finished->waiters) {
    detail::Location* l = loc(wid);
    if (l->state != LocationState::kBlocked || l->joining.empty()) continue;
    bool all = true;
    VTime latest = l->now;
    for (LocationId c : l->joining) {
      const detail::Location* child = loc(c);
      if (child->state != LocationState::kFinished) {
        all = false;
        break;
      }
      latest = later(latest, child->now);
    }
    if (all) {
      l->now = latest;
      l->joining.clear();
      ++stats_.wakes;
      make_runnable(l);
    }
  }
  finished->waiters.clear();
}

void Engine::run() {
  if (started_) throw UsageError("Engine::run called twice");
  started_ = true;
  std::string deadlock;
  std::string hang;
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t iterations = 0;
  while (true) {
    if (first_error_) break;
    if (finished_count_ == locations_.size()) break;
    detail::Location* next = pick_next();
    if (next == nullptr) {
      deadlock = deadlock_dump();
      break;
    }
    if (options_.virtual_time_limit > VDur::zero() &&
        next->now >= VTime::zero() + options_.virtual_time_limit) {
      hang = state_dump("simulated hang: virtual-time budget (" +
                        options_.virtual_time_limit.str() + ") exhausted");
      break;
    }
    if (options_.yield_limit != 0 &&
        stats_.yields >= options_.yield_limit) {
      hang = state_dump(
          "simulated hang: yield budget (" +
          std::to_string(options_.yield_limit) +
          " yields) exhausted without completing (livelock?)");
      break;
    }
    if (options_.wall_clock_limit.count() > 0 &&
        (++iterations & 0xFF) == 0 &&
        std::chrono::steady_clock::now() - wall_start >=
            options_.wall_clock_limit) {
      hang = state_dump("simulated hang: wall-clock budget (" +
                        std::to_string(options_.wall_clock_limit.count()) +
                        " ms) exhausted");
      break;
    }
    running_ = next->id;
    backend_->resume(next);
    running_ = kNoLocation;
  }
  shutdown();
  if (first_error_) std::rethrow_exception(first_error_);
  if (!deadlock.empty()) throw DeadlockError(deadlock);
  if (!hang.empty()) throw HangError(hang);
}

void Engine::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  poisoned_.store(true, std::memory_order_release);
  if (backend_) backend_->shutdown();
  // The backend has quiesced: finish bookkeeping for every location that
  // was unwound (or never started) is safe single-threaded here.
  for (auto& l : locations_) {
    if (l->state != LocationState::kFinished) {
      l->state = LocationState::kFinished;
      ++finished_count_;
    }
  }
  // Unwound locations skipped their own decrement (they must not touch
  // engine state on the poisoned path); everything is finished now.
  stats_.live_locations = 0;
}

std::string Engine::state_dump(const std::string& headline) const {
  std::ostringstream os;
  os << headline << "\n";
  for (const auto& l : locations_) {
    os << "  [" << l->id << "] " << l->name << ": " << to_string(l->state)
       << " at " << l->now.str();
    if (l->state == LocationState::kBlocked) os << " (" << l->block_reason
                                                << ")";
    os << "\n";
  }
  // Peak-RSS proxy: live location count (== live fiber stacks on the fiber
  // backend) plus the trace payload when a probe is installed.  Everything
  // here is backend-deterministic — parity tests compare dumps verbatim.
  os << "  resources: locations=" << locations_.size() << " live="
     << stats_.live_locations << " peak=" << stats_.peak_live_locations;
  if (resource_probe_) {
    const EngineResources r = resource_probe_();
    const std::size_t total = r.trace_bytes + r.spilled_bytes;
    os << " trace_bytes=" << r.trace_bytes << " spilled_bytes="
       << r.spilled_bytes << " bytes/loc="
       << (locations_.empty() ? 0 : total / locations_.size());
  }
  os << "\n";
  return os.str();
}

std::string Engine::deadlock_dump() const {
  return state_dump(
      "simulated deadlock: all unfinished locations are blocked");
}

void Engine::wake(LocationId id, VTime not_before) {
  detail::Location* l = loc(id);
  if (l->state != LocationState::kBlocked) {
    throw UsageError("Engine::wake: location " + std::to_string(id) + " (" +
                     l->name + ") is not blocked but " +
                     to_string(l->state));
  }
  l->now = later(l->now, not_before);
  ++stats_.wakes;
  make_runnable(l);
}

std::size_t Engine::location_count() const { return locations_.size(); }

VTime Engine::end_time_of(LocationId id) const { return loc(id)->now; }

const std::string& Engine::name_of(LocationId id) const {
  return loc(id)->name;
}

LocationId Engine::parent_of(LocationId id) const { return loc(id)->parent; }

VTime Engine::now_of(LocationId id) const { return loc(id)->now; }

bool Engine::is_blocked(LocationId id) const {
  return loc(id)->state == LocationState::kBlocked;
}

VTime Engine::horizon() const {
  VTime h = VTime::zero();
  for (const auto& l : locations_) h = later(h, l->now);
  return h;
}

namespace detail {

std::unique_ptr<ExecutionBackend> make_backend(
    EngineBackend kind, Engine* engine,
    [[maybe_unused]] const EngineOptions& options) {
  switch (kind) {
#if ATS_SIMT_HAS_FIBERS
    case EngineBackend::kFiber:
      return std::make_unique<FiberBackend>(engine,
                                            options.fiber_stack_bytes);
#endif
    case EngineBackend::kThread:
      return std::make_unique<ThreadBackend>(engine);
    default:
      break;
  }
  throw UsageError(std::string("engine backend unavailable: ") +
                   to_string(kind));
}

}  // namespace detail

}  // namespace ats::simt
