// Deterministic discrete-event execution engine ("simt").
//
// The engine runs a set of *locations* — simulated processes or threads,
// each backed by one OS thread — under a token-passing scheduler: exactly
// one location executes at any moment, and the scheduler always resumes the
// runnable location with the smallest virtual clock (ties broken by id).
// Locations yield the token at every simulated primitive (work advance,
// message operation, barrier), so all externally visible operations execute
// in global virtual-time order.  Consequences:
//
//  * runs are bit-deterministic regardless of host core count,
//  * shared runtime state (message queues, barrier counters) needs no locks
//    because access is serialised by the token,
//  * simulated waiting costs no host CPU: a blocked location's clock jumps
//    forward when it is woken.
//
// This is the substrate on which mpisim and ompsim implement MPI-like and
// OpenMP-like semantics.  It replaces the real parallel machine of the ATS
// paper with an exact, laptop-scale equivalent (see DESIGN.md §2).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/vtime.hpp"

namespace ats::simt {

/// Index of a location within its engine (dense, starting at zero).
using LocationId = std::int32_t;
inline constexpr LocationId kNoLocation = -1;

class Engine;
class Context;

/// A location's body: runs on its own OS thread under the engine token.
using LocationBody = std::function<void(Context&)>;

enum class LocationState : std::uint8_t {
  kRunnable,  ///< waiting to be scheduled
  kRunning,   ///< currently holds the token
  kBlocked,   ///< waiting for an explicit wake()
  kFinished,  ///< body returned (or unwound)
};

const char* to_string(LocationState s);

struct EngineOptions {
  /// Seed for the per-location deterministic RNG streams.
  std::uint64_t seed = 0x415453;  // "ATS"
  /// Hard cap on locations, as a runaway-fork backstop.
  std::size_t max_locations = 4096;

  // --- supervision budgets (all zero = unlimited) -----------------------
  // Exceeding any budget raises HangError from run() with the same
  // per-location state dump that DeadlockError carries, so runaway loops
  // and livelocks terminate deterministically instead of spinning.

  /// Virtual-time horizon: the scheduler refuses to resume a location whose
  /// clock has reached this limit.  Catches infinite compute loops (clock
  /// grows without bound).
  VDur virtual_time_limit = VDur::zero();
  /// Total yield budget over all locations.  Catches livelocks: locations
  /// that keep yielding without ever advancing virtual time.
  std::uint64_t yield_limit = 0;
  /// Host wall-clock budget for run(), checked periodically by the
  /// scheduler.  A cooperative backstop against host-level hangs; it can
  /// only trigger while locations still yield.
  std::chrono::milliseconds wall_clock_limit{0};
};

struct EngineStats {
  std::uint64_t spawns = 0;
  std::uint64_t yields = 0;
  std::uint64_t blocks = 0;
  std::uint64_t wakes = 0;
};

/// Handle passed to a location body; the only way a body interacts with
/// simulated time and the scheduler.  Valid only on the owning location's
/// thread while that location holds the token.
class Context {
 public:
  LocationId id() const { return id_; }
  const std::string& name() const;
  VTime now() const;
  Engine& engine() { return *engine_; }
  /// Deterministic per-location random stream (see common/rng.hpp).
  Rng& rng();

  /// Simulated computation: advances the local clock by `d`, then yields so
  /// the engine preserves global time order.  `d` must be non-negative.
  void advance(VDur d);

  /// Advances the local clock to `t` if `t` is in the future; no-op (plus a
  /// yield) otherwise.
  void advance_to(VTime t);

  /// Yields the token without advancing the clock.  Runtime layers call
  /// this before touching shared state so that all locations with earlier
  /// clocks act first.
  void yield();

  /// Blocks until another location calls Engine::wake() on this location.
  /// On return the local clock has been advanced to the wake time (if that
  /// is later).  `reason` appears in deadlock dumps.
  void block(const char* reason);

  /// Spawns child locations starting at the current local clock.  The
  /// children become runnable; the caller keeps the token until it yields.
  std::vector<LocationId> spawn(
      std::span<const std::pair<std::string, LocationBody>> children);

  /// Blocks until every listed location has finished, then advances the
  /// local clock to the latest of their end times.
  void join(std::span<const LocationId> children);

 private:
  friend class Engine;
  Context(Engine* engine, LocationId id) : engine_(engine), id_(id) {}

  Engine* engine_;
  LocationId id_;
};

/// The discrete-event engine.  Typical use:
///
///   Engine eng;
///   eng.add_location("rank 0", [](Context& c) { c.advance(VDur::millis(5)); });
///   eng.add_location("rank 1", [](Context& c) { ... });
///   eng.run();
///
/// run() returns when every location finished; it throws DeadlockError when
/// all unfinished locations are blocked, and rethrows the first exception
/// (in virtual-time order) escaping a location body.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Adds a top-level location (before run()).  Returns its id; ids are
  /// assigned densely in spawn order.
  LocationId add_location(std::string name, LocationBody body);

  /// Installs a hook invoked on `id`'s thread each time the location
  /// obtains the token (at start and after every yield/block), before
  /// control returns to the body.  Fault injection uses this to crash or
  /// stall a location when its clock reaches a trigger time.  The hook may
  /// call Context methods (it holds the token) and may throw; a hook that
  /// advances or yields does not re-enter itself.  Install before run().
  void set_resume_hook(LocationId id, LocationBody hook);

  /// Runs the simulation to completion.  May be called exactly once.
  /// Throws DeadlockError when all unfinished locations are blocked and
  /// HangError when a supervision budget (EngineOptions) is exhausted; both
  /// paths join every location thread before throwing.
  void run();

  // --- introspection (valid after run(), or for finished locations) ---
  std::size_t location_count() const;
  VTime end_time_of(LocationId id) const;
  const std::string& name_of(LocationId id) const;
  LocationId parent_of(LocationId id) const;
  const EngineStats& stats() const { return stats_; }
  /// Latest clock over all locations (after run(): makespan).
  VTime horizon() const;

  // --- services for runtime layers; call only from the running location ---

  /// Makes `id` runnable with clock at least `not_before`.  `id` must be
  /// blocked.  Called by the token holder (e.g. a sender waking a receiver).
  void wake(LocationId id, VTime not_before);

  /// Clock of an arbitrary location (token holder only).
  VTime now_of(LocationId id) const;

  /// True if `id` is blocked (token holder only).
  bool is_blocked(LocationId id) const;

 private:
  friend class Context;

  struct Location {
    LocationId id = kNoLocation;
    LocationId parent = kNoLocation;
    std::string name;
    LocationBody body;
    LocationState state = LocationState::kRunnable;
    const char* block_reason = "";
    VTime now;
    std::thread thread;
    std::exception_ptr error;
    std::unique_ptr<Context> context;
    std::unique_ptr<Rng> rng;
    // join bookkeeping: set while blocked in Context::join()
    std::vector<LocationId> joining;
    // supervision hook (set_resume_hook); in_hook guards re-entry when the
    // hook itself advances or yields.
    LocationBody resume_hook;
    bool in_hook = false;
  };

  LocationId spawn_internal(std::string name, LocationBody body,
                            LocationId parent, VTime start);
  void thread_main(Location* loc);
  void handoff_to_scheduler(Location* loc);  // called on location thread
  void wait_for_token(Location* loc);        // called on location thread
  Location* pick_next();                     // scheduler: min (time, id)
  void resume(Location* loc);                // scheduler side
  /// Per-location state dump under `headline` (shared by deadlock/hang).
  std::string state_dump(const std::string& headline) const;
  std::string deadlock_dump() const;
  void run_resume_hook(Location* loc);       // called on location thread
  void maybe_wake_joiners(Location* finished);

  // Thrown through blocked locations to unwind them during shutdown.
  struct ShutdownSignal {};

  EngineOptions options_;
  EngineStats stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  LocationId token_ = kNoLocation;   // which location may run; kNoLocation =
                                     // scheduler's turn
  bool started_ = false;
  bool poisoned_ = false;
  std::vector<std::unique_ptr<Location>> locations_;
  std::size_t finished_count_ = 0;
};

}  // namespace ats::simt
