// Deterministic discrete-event execution engine ("simt").
//
// The engine runs a set of *locations* — simulated processes or threads —
// under a token-passing scheduler: exactly one location executes at any
// moment, and the scheduler always resumes the runnable location with the
// smallest virtual clock (ties broken by id).  Locations yield the token
// at every simulated primitive (work advance, message operation, barrier),
// so all externally visible operations execute in global virtual-time
// order.  Consequences:
//
//  * runs are bit-deterministic regardless of host core count,
//  * shared runtime state (message queues, barrier counters) needs no locks
//    because access is serialised by the token,
//  * simulated waiting costs no host CPU: a blocked location's clock jumps
//    forward when it is woken.
//
// *How* the token moves is an execution-backend choice (DESIGN.md §9):
//
//  * kFiber (default): every location is a stackful fiber on the caller's
//    thread; a handoff is one userspace register switch — no mutex, no
//    condition variable, no kernel.
//  * kThread: every location is an OS thread; a handoff is a directed
//    condition-variable signal.  ~50× slower per handoff, but visible to
//    ThreadSanitizer, which cannot follow fiber switches.
//
// Scheduling decisions, statistics, budgets and failure dumps live above
// the backend, so both produce bit-identical traces, EngineStats and
// deadlock/hang dumps (pinned by tests/backend_parity_test.cpp).
//
// This is the substrate on which mpisim and ompsim implement MPI-like and
// OpenMP-like semantics.  It replaces the real parallel machine of the ATS
// paper with an exact, laptop-scale equivalent (see DESIGN.md §2).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/vtime.hpp"

namespace ats::simt {

/// Index of a location within its engine (dense, starting at zero).
using LocationId = std::int32_t;
inline constexpr LocationId kNoLocation = -1;

class Engine;
class Context;

namespace detail {
struct Location;
class ExecutionBackend;
}  // namespace detail

/// A location's body: runs in its own execution context (fiber or OS
/// thread) under the engine token.
using LocationBody = std::function<void(Context&)>;

enum class LocationState : std::uint8_t {
  kRunnable,  ///< waiting to be scheduled
  kRunning,   ///< currently holds the token
  kBlocked,   ///< waiting for an explicit wake()
  kFinished,  ///< body returned (or unwound)
};

const char* to_string(LocationState s);

/// How locations execute (see the header comment).
enum class EngineBackend : std::uint8_t {
  kAuto,    ///< ATS_ENGINE_BACKEND env var ("fiber"/"thread"), else fiber
  kFiber,   ///< stackful fibers on the calling thread (fast path)
  kThread,  ///< one OS thread per location (TSan-friendly fallback)
};

const char* to_string(EngineBackend b);

/// Resolves kAuto against the ATS_ENGINE_BACKEND environment variable
/// (default fiber).  Under ThreadSanitizer builds — where fibers are
/// unavailable — every request resolves to kThread.  Throws UsageError on
/// an unrecognised environment value.
EngineBackend resolve_backend(EngineBackend requested);

struct EngineOptions {
  /// Seed for the per-location deterministic RNG streams.
  std::uint64_t seed = 0x415453;  // "ATS"
  /// Hard cap on locations, as a runaway-fork backstop.
  std::size_t max_locations = 4096;

  /// Execution backend; kAuto resolves via ATS_ENGINE_BACKEND.  An
  /// explicit kFiber/kThread here wins over the environment.
  EngineBackend backend = EngineBackend::kAuto;
  /// Stack size per location on the fiber backend (clamped to >= 64 KiB).
  /// Location bodies in this repo are shallow; raise it for deep client
  /// recursion.
  std::size_t fiber_stack_bytes = 256 * 1024;

  // --- supervision budgets (all zero = unlimited) -----------------------
  // Exceeding any budget raises HangError from run() with the same
  // per-location state dump that DeadlockError carries, so runaway loops
  // and livelocks terminate deterministically instead of spinning.

  /// Virtual-time horizon: the scheduler refuses to resume a location whose
  /// clock has reached this limit.  Catches infinite compute loops (clock
  /// grows without bound).
  VDur virtual_time_limit = VDur::zero();
  /// Total yield budget over all locations.  Catches livelocks: locations
  /// that keep yielding without ever advancing virtual time.
  std::uint64_t yield_limit = 0;
  /// Host wall-clock budget for run(), checked periodically by the
  /// scheduler loop itself (no cooperating watchdog thread on either
  /// backend).  A backstop against host-level hangs; it can only trigger
  /// while locations still yield.
  std::chrono::milliseconds wall_clock_limit{0};
};

struct EngineStats {
  std::uint64_t spawns = 0;
  std::uint64_t yields = 0;
  std::uint64_t blocks = 0;
  std::uint64_t wakes = 0;
  /// Locations whose body has started and not yet finished.  On the fiber
  /// backend this equals the number of live pooled stacks, so it is the
  /// backend-neutral peak-RSS proxy surfaced in hang/deadlock dumps.
  std::uint64_t live_locations = 0;
  std::uint64_t peak_live_locations = 0;
};

/// Snapshot of memory-relevant resources owned by the layers above the
/// engine (the engine itself cannot see the trace).  Returned by the probe
/// installed via Engine::set_resource_probe and folded into failure dumps.
struct EngineResources {
  std::size_t trace_bytes = 0;    ///< resident event payload bytes
  std::size_t spilled_bytes = 0;  ///< event payload bytes spilled to disk
};

/// Handle passed to a location body; the only way a body interacts with
/// simulated time and the scheduler.  Valid only in the owning location's
/// execution context while that location holds the token.
class Context {
 public:
  LocationId id() const { return id_; }
  const std::string& name() const;
  VTime now() const;
  Engine& engine() { return *engine_; }
  /// Deterministic per-location random stream (see common/rng.hpp).
  Rng& rng();

  /// Simulated computation: advances the local clock by `d`, then yields so
  /// the engine preserves global time order.  `d` must be non-negative.
  void advance(VDur d);

  /// Advances the local clock to `t` if `t` is in the future; no-op (plus a
  /// yield) otherwise.
  void advance_to(VTime t);

  /// Yields the token without advancing the clock.  Runtime layers call
  /// this before touching shared state so that all locations with earlier
  /// clocks act first.
  void yield();

  /// Blocks until another location calls Engine::wake() on this location.
  /// On return the local clock has been advanced to the wake time (if that
  /// is later).  `reason` appears in deadlock dumps.
  void block(const char* reason);

  /// Spawns child locations starting at the current local clock.  The
  /// children become runnable; the caller keeps the token until it yields.
  std::vector<LocationId> spawn(
      std::span<const std::pair<std::string, LocationBody>> children);

  /// Blocks until every listed location has finished, then advances the
  /// local clock to the latest of their end times.
  void join(std::span<const LocationId> children);

 private:
  friend class Engine;
  Context(Engine* engine, LocationId id) : engine_(engine), id_(id) {}

  Engine* engine_;
  LocationId id_;
};

/// The discrete-event engine.  Typical use:
///
///   Engine eng;
///   eng.add_location("rank 0", [](Context& c) { c.advance(VDur::millis(5)); });
///   eng.add_location("rank 1", [](Context& c) { ... });
///   eng.run();
///
/// run() returns when every location finished; it throws DeadlockError when
/// all unfinished locations are blocked, and rethrows the first exception
/// (in virtual-time order) escaping a location body.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The backend actually executing this engine (kAuto already resolved).
  EngineBackend backend() const { return backend_kind_; }

  /// Adds a top-level location (before run()).  Returns its id; ids are
  /// assigned densely in spawn order.
  LocationId add_location(std::string name, LocationBody body);

  /// Installs a hook invoked in `id`'s execution context each time the
  /// location obtains the token (at start and after every yield/block),
  /// before control returns to the body.  Fault injection uses this to
  /// crash or stall a location when its clock reaches a trigger time.  The
  /// hook may call Context methods (it holds the token) and may throw; a
  /// hook that advances or yields does not re-enter itself.  Install
  /// before run().
  void set_resume_hook(LocationId id, LocationBody hook);

  /// Installs a callback the engine polls when composing a failure dump
  /// (deadlock/hang), so dumps can report trace memory alongside location
  /// states.  The probe runs on the scheduler's thread with no location
  /// holding the token.  Values must be backend-deterministic — dumps are
  /// compared verbatim between the fiber and thread backends.
  void set_resource_probe(std::function<EngineResources()> probe) {
    resource_probe_ = std::move(probe);
  }

  /// Runs the simulation to completion.  May be called exactly once.
  /// Throws DeadlockError when all unfinished locations are blocked and
  /// HangError when a supervision budget (EngineOptions) is exhausted; on
  /// every exit path — completion or failure — all location stacks have
  /// been unwound and all backend resources released before run() returns
  /// or throws.
  void run();

  // --- introspection (valid after run(), or for finished locations) ---
  std::size_t location_count() const;
  VTime end_time_of(LocationId id) const;
  const std::string& name_of(LocationId id) const;
  LocationId parent_of(LocationId id) const;
  const EngineStats& stats() const { return stats_; }
  /// Latest clock over all locations (after run(): makespan).
  VTime horizon() const;

  // --- services for runtime layers; call only from the running location ---

  /// Makes `id` runnable with clock at least `not_before`.  `id` must be
  /// blocked.  Called by the token holder (e.g. a sender waking a receiver).
  void wake(LocationId id, VTime not_before);

  /// Clock of an arbitrary location (token holder only).
  VTime now_of(LocationId id) const;

  /// True if `id` is blocked (token holder only).
  bool is_blocked(LocationId id) const;

 private:
  friend class Context;
  friend class detail::ExecutionBackend;

  /// Ready-queue entry: a (clock, id) snapshot taken when the location
  /// became runnable.  A location's clock never changes while it sits in
  /// the queue, so entries are immutable and each location appears at most
  /// once — no lazy deletion needed.
  struct ReadyEntry {
    VTime t;
    LocationId id;
  };

  detail::Location* loc(LocationId id) const;
  LocationId spawn_internal(std::string name, LocationBody body,
                            LocationId parent, VTime start);
  /// Body driver, run inside the location's execution context by the
  /// backend: resume hook, body, error capture, finish bookkeeping.
  void location_main(detail::Location* l);
  /// Marks `l` runnable and pushes its (clock, id) onto the ready heap.
  void make_runnable(detail::Location* l);
  /// Pops the minimum-(clock, id) runnable location; nullptr = none left.
  detail::Location* pick_next();
  /// Throws UsageError unless `id` currently holds the token.
  void check_running(LocationId id, const char* what) const;
  /// Per-location state dump under `headline` (shared by deadlock/hang).
  std::string state_dump(const std::string& headline) const;
  std::string deadlock_dump() const;
  void run_resume_hook(detail::Location* l);  // in the location's context
  void maybe_wake_joiners(detail::Location* finished);
  /// Poisons the engine, unwinds every unfinished location through the
  /// backend and finalises their bookkeeping.  Idempotent; called by run()
  /// on every exit path and by the destructor for never-run engines.
  void shutdown();

  EngineOptions options_;
  EngineBackend backend_kind_;
  EngineStats stats_;

  std::unique_ptr<detail::ExecutionBackend> backend_;
  LocationId running_ = kNoLocation;  // token holder; kNoLocation =
                                      // scheduler's turn
  bool started_ = false;
  bool shutdown_done_ = false;
  /// Set (once) when the engine starts tearing down; locations observing
  /// it unwind via ShutdownSignal.  Atomic because thread-backend
  /// locations read it while exiting concurrently during shutdown.
  std::atomic<bool> poisoned_{false};
  std::vector<std::unique_ptr<detail::Location>> locations_;
  std::vector<ReadyEntry> ready_;  // min-heap on (clock, id)
  std::size_t finished_count_ = 0;
  std::exception_ptr first_error_;
  std::function<EngineResources()> resource_probe_;
};

}  // namespace ats::simt
