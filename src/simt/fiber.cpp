#include "simt/fiber.hpp"

#if ATS_SIMT_HAS_FIBERS

#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>

namespace ats::simt {

// The C-linkage entry the switch code calls into; forwards to the private
// run_entry() through a friend so the asm only needs one symbol.
extern "C" void ats_fiber_run_c(void* f);

void fiber_run_entry(Fiber* f) { f->run_entry(); }

extern "C" void ats_fiber_run_c(void* f) {
  fiber_run_entry(static_cast<Fiber*>(f));
}

#if defined(ATS_FIBER_RAW)

// void ats_fiber_switch(void** save_sp, void* restore_sp)
//
// Saves the callee-saved register set on the current stack, stores the
// resulting stack pointer to *save_sp, installs restore_sp and pops the
// same set.  Everything the ABI lets a called function clobber is left to
// the compiler, so a switch costs one cache line of stores and loads —
// no signal mask, no kernel.
extern "C" void ats_fiber_switch(void** save_sp, void* restore_sp);

#if defined(__x86_64__)

// System V AMD64: rbx, rbp, r12-r15 are callee-saved.  A fresh fiber's
// stack is pre-filled so the restore path "returns" into the entry thunk
// with r12 = Fiber* and r13 = &ats_fiber_run_c (an indirect call avoids
// PLT relocation concerns inside hand-written asm).
asm(R"(
  .text
  .globl ats_fiber_switch
  .p2align 4
ats_fiber_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret

  .globl ats_fiber_entry_thunk
  .p2align 4
ats_fiber_entry_thunk:
  movq %r12, %rdi
  callq *%r13
  ud2
)");

extern "C" void ats_fiber_entry_thunk();

namespace {
// Indices into the pre-filled initial frame, matching the pop order of
// ats_fiber_switch: r15 r14 r13 r12 rbx rbp, then the return address.
constexpr std::size_t kFrameWords = 7;
constexpr std::size_t kSlotR13 = 2;
constexpr std::size_t kSlotR12 = 3;
constexpr std::size_t kSlotRet = 6;

void* make_initial_frame(char* stack, std::size_t bytes, Fiber* self) {
  // Entry-thunk alignment: the thunk starts at sp = frame + 56; its
  // `call` then gives ats_fiber_run_c the standard entry alignment
  // (sp % 16 == 8) provided frame % 16 == 8, which top16 - 56 satisfies.
  auto top16 = (reinterpret_cast<std::uintptr_t>(stack) + bytes) &
               ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<std::uintptr_t*>(top16) - kFrameWords;
  std::memset(frame, 0, kFrameWords * sizeof(std::uintptr_t));
  frame[kSlotR12] = reinterpret_cast<std::uintptr_t>(self);
  frame[kSlotR13] = reinterpret_cast<std::uintptr_t>(&ats_fiber_run_c);
  frame[kSlotRet] = reinterpret_cast<std::uintptr_t>(&ats_fiber_entry_thunk);
  return frame;
}
}  // namespace

#elif defined(__aarch64__)

// AAPCS64: x19-x28, x29 (fp), x30 (lr) and d8-d15 are callee-saved.  A
// fresh fiber's frame carries x19 = Fiber*, x20 = &ats_fiber_run_c and
// x30 = the entry thunk, so the restore path's `ret` starts the fiber.
asm(R"(
  .text
  .globl ats_fiber_switch
  .p2align 4
ats_fiber_switch:
  sub sp, sp, #160
  stp x19, x20, [sp]
  stp x21, x22, [sp, #16]
  stp x23, x24, [sp, #32]
  stp x25, x26, [sp, #48]
  stp x27, x28, [sp, #64]
  stp x29, x30, [sp, #80]
  stp d8,  d9,  [sp, #96]
  stp d10, d11, [sp, #112]
  stp d12, d13, [sp, #128]
  stp d14, d15, [sp, #144]
  mov x2, sp
  str x2, [x0]
  mov sp, x1
  ldp x19, x20, [sp]
  ldp x21, x22, [sp, #16]
  ldp x23, x24, [sp, #32]
  ldp x25, x26, [sp, #48]
  ldp x27, x28, [sp, #64]
  ldp x29, x30, [sp, #80]
  ldp d8,  d9,  [sp, #96]
  ldp d10, d11, [sp, #112]
  ldp d12, d13, [sp, #128]
  ldp d14, d15, [sp, #144]
  add sp, sp, #160
  ret

  .globl ats_fiber_entry_thunk
  .p2align 4
ats_fiber_entry_thunk:
  mov x0, x19
  blr x20
  brk #0
)");

extern "C" void ats_fiber_entry_thunk();

namespace {
constexpr std::size_t kFrameBytes = 160;
constexpr std::size_t kSlotX19 = 0;   // byte offset / 8
constexpr std::size_t kSlotX20 = 1;
constexpr std::size_t kSlotX30 = 11;  // [sp, #88]

void* make_initial_frame(char* stack, std::size_t bytes, Fiber* self) {
  auto top16 = (reinterpret_cast<std::uintptr_t>(stack) + bytes) &
               ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<std::uintptr_t*>(top16 - kFrameBytes);
  std::memset(frame, 0, kFrameBytes);
  frame[kSlotX19] = reinterpret_cast<std::uintptr_t>(self);
  frame[kSlotX20] = reinterpret_cast<std::uintptr_t>(&ats_fiber_run_c);
  frame[kSlotX30] = reinterpret_cast<std::uintptr_t>(&ats_fiber_entry_thunk);
  return frame;
}
}  // namespace

#endif  // arch

Fiber::Fiber(char* stack_base, std::size_t stack_bytes,
             std::function<void()> entry)
    : entry_(std::move(entry)), stack_(stack_base),
      stack_bytes_(stack_bytes) {
  assert(stack_bytes_ >= 16 * 1024 && "fiber stack too small");
  fiber_sp_ = make_initial_frame(stack_, stack_bytes_, this);
}

Fiber::~Fiber() = default;

void Fiber::resume() {
  assert(!finished_ && "resume of a finished fiber");
  started_ = true;
  ats_fiber_switch(&return_sp_, fiber_sp_);
}

void Fiber::suspend() { ats_fiber_switch(&fiber_sp_, return_sp_); }

void Fiber::run_entry() {
  entry_();
  finished_ = true;
  // Final switch out; nothing ever resumes a finished fiber, so control
  // never comes back (the thunk's trap instruction guards the impossible).
  ats_fiber_switch(&fiber_sp_, return_sp_);
}

#else  // ATS_FIBER_UCONTEXT

// Portable fallback: POSIX ucontext.  swapcontext saves and restores the
// signal mask with a kernel call per switch, so this path is an order of
// magnitude slower than the raw switch — still several times faster than
// a thread handoff.

namespace {
// makecontext passes only ints; split the Fiber pointer across two.
void trampoline(unsigned hi, unsigned lo) {
  auto p = (static_cast<std::uintptr_t>(hi) << 32) |
           static_cast<std::uintptr_t>(lo);
  ats_fiber_run_c(reinterpret_cast<void*>(p));
}
}  // namespace

Fiber::Fiber(char* stack_base, std::size_t stack_bytes,
             std::function<void()> entry)
    : entry_(std::move(entry)), stack_(stack_base),
      stack_bytes_(stack_bytes) {
  assert(stack_bytes_ >= 16 * 1024 && "fiber stack too small");
  getcontext(&fiber_ctx_);
  fiber_ctx_.uc_stack.ss_sp = stack_;
  fiber_ctx_.uc_stack.ss_size = stack_bytes_;
  // When the trampoline returns, control goes back to the latest resume
  // point (return_ctx_ is refreshed by every swap in resume()).
  fiber_ctx_.uc_link = &return_ctx_;
  const auto p = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&fiber_ctx_,
              reinterpret_cast<void (*)()>(
                  reinterpret_cast<void*>(&trampoline)),
              2, static_cast<unsigned>(p >> 32),
              static_cast<unsigned>(p & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::resume() {
  assert(!finished_ && "resume of a finished fiber");
  started_ = true;
  swapcontext(&return_ctx_, &fiber_ctx_);
}

void Fiber::suspend() { swapcontext(&fiber_ctx_, &return_ctx_); }

void Fiber::run_entry() {
  entry_();
  finished_ = true;
  // Returning from the trampoline lands on uc_link == return_ctx_.
}

#endif  // ATS_FIBER_RAW / ATS_FIBER_UCONTEXT

}  // namespace ats::simt

#endif  // ATS_SIMT_HAS_FIBERS
