// Stackful fibers — the execution primitive behind the engine's fiber
// backend (see engine.hpp, DESIGN.md §9).
//
// A Fiber is a cooperatively scheduled execution context with its own
// stack.  Switching between the owning thread and a fiber is a plain
// userspace register swap: on x86-64 and aarch64 a hand-rolled
// callee-saved-register switch (~tens of nanoseconds, no syscall), on
// other POSIX platforms the ucontext fallback (correct, but swapcontext
// re-loads the signal mask with a kernel call per switch).
//
// Rules of use (all enforced by the engine, not the class):
//  * resume() and suspend() must be called from the same OS thread; fibers
//    never migrate between threads (so thread-local state stays valid).
//  * The entry function must not let an exception escape — there is no
//    unwind information below the fiber's first frame.  Exceptions thrown
//    and caught *within* the fiber (including full-stack unwinds during
//    engine shutdown) are fine: the whole throw/catch lives on the fiber's
//    own stack.
//  * A fiber that has started but not finished holds live frames on its
//    stack; unwind it (resume it and make it return or throw) before
//    destroying it, or those frames' destructors never run.
//  * The raw switch does not save floating-point control state (MXCSR /
//    FPCR); entry code must not change rounding or exception modes.
//
// ThreadSanitizer cannot follow userspace context switches, so fibers are
// compiled out under TSan (ATS_SIMT_HAS_FIBERS == 0) and the engine falls
// back to the thread backend.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#if defined(__SANITIZE_THREAD__)
#define ATS_SIMT_HAS_FIBERS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ATS_SIMT_HAS_FIBERS 0
#else
#define ATS_SIMT_HAS_FIBERS 1
#endif
#else
#define ATS_SIMT_HAS_FIBERS 1
#endif

#if ATS_SIMT_HAS_FIBERS

#if defined(ATS_FIBER_FORCE_UCONTEXT)
#define ATS_FIBER_UCONTEXT 1
#elif defined(__ELF__) && defined(__x86_64__)
#define ATS_FIBER_RAW 1
#elif defined(__ELF__) && defined(__aarch64__)
#define ATS_FIBER_RAW 1
#else
#define ATS_FIBER_UCONTEXT 1
#endif

#if defined(ATS_FIBER_UCONTEXT)
#include <ucontext.h>
#endif

namespace ats::simt {

class Fiber {
 public:
  /// Creates a fiber that will run `entry` on the caller-owned stack
  /// [stack_base, stack_base + stack_bytes) when first resumed.  Nothing
  /// runs until resume().  The stack is borrowed (see StackPool): the
  /// caller keeps it alive until the fiber is destroyed, and must not
  /// recycle it while the fiber has live frames.
  Fiber(char* stack_base, std::size_t stack_bytes,
        std::function<void()> entry);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the calling context into the fiber; returns when the
  /// fiber calls suspend() or its entry function returns.  Must not be
  /// called on a finished fiber.
  void resume();

  /// Called from inside the fiber: switches back to whoever called
  /// resume().  Returns when the fiber is resumed again.
  void suspend();

  /// True once the entry function has returned.  A finished fiber's stack
  /// holds no live frames and may be destroyed freely.
  bool finished() const { return finished_; }

  /// True once resume() has been called at least once.  A started,
  /// unfinished fiber must be unwound before destruction.
  bool started() const { return started_; }

 private:
  friend void fiber_run_entry(Fiber* f);
  void run_entry();  // trampoline target: entry_(), then the final switch

  std::function<void()> entry_;
  char* stack_;  ///< borrowed, not owned
  std::size_t stack_bytes_;
  bool started_ = false;
  bool finished_ = false;

#if defined(ATS_FIBER_RAW)
  void* fiber_sp_ = nullptr;   // fiber's saved stack pointer while parked
  void* return_sp_ = nullptr;  // resumer's saved stack pointer while inside
#else
  ucontext_t fiber_ctx_;
  ucontext_t return_ctx_;
#endif
};

}  // namespace ats::simt

#endif  // ATS_SIMT_HAS_FIBERS
