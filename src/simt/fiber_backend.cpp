#include "simt/backend.hpp"

#if ATS_SIMT_HAS_FIBERS

#include <optional>
#include <utility>

namespace ats::simt::detail {

// Fiber-per-location backend: every location is a stackful fiber of the
// scheduler's thread, so a handoff is a single userspace register switch —
// no mutex, no condition variable, no kernel involvement.
//
// Slots are lazy: the fiber (and its pooled stack slab) exist only between
// a location's first resume and its finish.  This is what keeps a 100k-
// location sweep inside a few hundred megabytes — the pool's live-slab
// count tracks the engine's active locations, not its spawned ones.

struct FiberBackend::Slot final : ExecSlot {
  explicit Slot(std::function<void()> e) : entry(std::move(e)) {}
  std::function<void()> entry;   ///< pending body until the first resume
  std::optional<Fiber> fiber;    ///< live between first resume and finish
  char* slab = nullptr;          ///< pooled stack while the fiber is live
};

void FiberBackend::adopt(Location* loc) {
  loc->exec =
      std::make_unique<Slot>([this, loc] { location_main(loc); });
}

void FiberBackend::release_if_finished(Slot* slot) {
  if (slot->fiber && slot->fiber->finished()) {
    slot->fiber.reset();
    pool_.release(slot->slab);
    slot->slab = nullptr;
  }
}

void FiberBackend::resume(Location* loc) {
  auto* slot = static_cast<Slot*>(loc->exec.get());
  if (!slot->fiber) {
    slot->slab = pool_.acquire();
    slot->fiber.emplace(slot->slab, pool_.slab_bytes(),
                        std::move(slot->entry));
  }
  slot->fiber->resume();
  // The slab is recycled the moment the body returns: control is back on
  // the scheduler's stack here, so no live frame can touch it.
  release_if_finished(slot);
}

void FiberBackend::suspend(Location* loc) {
  // Pre-swap check: a location that keeps running after absorbing a
  // ShutdownSignal (or that was granted the token just as the engine
  // poisoned) must not park again.
  if (poisoned()) throw ShutdownSignal{};
  static_cast<Slot*>(loc->exec.get())->fiber->suspend();
  // Post-swap check: shutdown() resumes parked fibers exactly so that this
  // throw unwinds their stacks at the park point.
  if (poisoned()) throw ShutdownSignal{};
}

void FiberBackend::shutdown() {
  // Unwind every started, unfinished fiber: resuming it makes the
  // post-swap check in suspend() throw ShutdownSignal at its park point;
  // location_main absorbs the signal and the fiber finishes.  The whole
  // throw/catch runs on the fiber's own stack, so unwinding parked frames
  // (and their destructors) is ordinary exception handling.  Never-resumed
  // locations have no fiber (and no slab) at all.
  // The outer loop is defensive: unwinding must not create new parked
  // fibers (Context calls throw immediately once poisoned), but if a
  // pathological body did, another sweep would catch it.
  for (bool progress = true; progress;) {
    progress = false;
    for (const auto& l : locations()) {
      auto* slot = static_cast<Slot*>(l->exec.get());
      if (slot == nullptr || !slot->fiber) continue;
      if (slot->fiber->started() && !slot->fiber->finished()) {
        slot->fiber->resume();
        release_if_finished(slot);
        progress = true;
      }
    }
  }
}

}  // namespace ats::simt::detail

#endif  // ATS_SIMT_HAS_FIBERS
