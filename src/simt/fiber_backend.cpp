#include "simt/backend.hpp"

#if ATS_SIMT_HAS_FIBERS

namespace ats::simt::detail {

// Fiber-per-location backend: every location is a stackful fiber of the
// scheduler's thread, so a handoff is a single userspace register switch —
// no mutex, no condition variable, no kernel involvement.

struct FiberBackend::Slot final : ExecSlot {
  Slot(std::size_t stack_bytes, std::function<void()> entry)
      : fiber(stack_bytes, std::move(entry)) {}
  Fiber fiber;
};

void FiberBackend::adopt(Location* loc) {
  loc->exec = std::make_unique<Slot>(stack_bytes_,
                                     [this, loc] { location_main(loc); });
}

void FiberBackend::resume(Location* loc) {
  static_cast<Slot*>(loc->exec.get())->fiber.resume();
}

void FiberBackend::suspend(Location* loc) {
  // Pre-swap check: a location that keeps running after absorbing a
  // ShutdownSignal (or that was granted the token just as the engine
  // poisoned) must not park again.
  if (poisoned()) throw ShutdownSignal{};
  static_cast<Slot*>(loc->exec.get())->fiber.suspend();
  // Post-swap check: shutdown() resumes parked fibers exactly so that this
  // throw unwinds their stacks at the park point.
  if (poisoned()) throw ShutdownSignal{};
}

void FiberBackend::shutdown() {
  // Unwind every started, unfinished fiber: resuming it makes the
  // post-swap check in suspend() throw ShutdownSignal at its park point;
  // location_main absorbs the signal and the fiber finishes.  The whole
  // throw/catch runs on the fiber's own stack, so unwinding parked frames
  // (and their destructors) is ordinary exception handling.  Never-started
  // fibers hold no frames and are simply destroyed with the engine.
  // The outer loop is defensive: unwinding must not create new parked
  // fibers (Context calls throw immediately once poisoned), but if a
  // pathological body did, another sweep would catch it.
  for (bool progress = true; progress;) {
    progress = false;
    for (const auto& l : locations()) {
      auto* slot = static_cast<Slot*>(l->exec.get());
      if (slot == nullptr) continue;
      if (slot->fiber.started() && !slot->fiber.finished()) {
        slot->fiber.resume();
        progress = true;
      }
    }
  }
}

}  // namespace ats::simt::detail

#endif  // ATS_SIMT_HAS_FIBERS
