#include "simt/stack_pool.hpp"

#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#define ATS_SIMT_HAS_MMAP_STACKS 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define ATS_SIMT_HAS_MMAP_STACKS 0
#endif

namespace ats::simt::detail {

namespace {
std::size_t page_size() {
#if ATS_SIMT_HAS_MMAP_STACKS
  const long p = ::sysconf(_SC_PAGESIZE);
  return p > 0 ? static_cast<std::size_t>(p) : 4096;
#else
  return 4096;
#endif
}
}  // namespace

StackPool::StackPool(std::size_t slab_bytes) : page_bytes_(page_size()) {
  // Round the slab up to whole pages so MADV_DONTNEED on release covers it
  // exactly and every slab base is page-aligned.
  slab_bytes_ = ((slab_bytes + page_bytes_ - 1) / page_bytes_) * page_bytes_;
  if (slab_bytes_ == 0) slab_bytes_ = page_bytes_;
}

StackPool::~StackPool() {
#if ATS_SIMT_HAS_MMAP_STACKS
  for (const Chunk& c : chunks_) {
    if (c.base != nullptr) ::munmap(c.base, c.bytes);
  }
#else
  for (const Chunk& c : chunks_) std::free(c.base);
#endif
}

char* StackPool::acquire() {
  char* slab = nullptr;
  if (!free_.empty()) {
    slab = free_.back();
    free_.pop_back();
  } else {
    if (chunks_.empty() || chunks_.back().used == kSlabsPerChunk) {
      Chunk c;
#if ATS_SIMT_HAS_MMAP_STACKS
      c.bytes = page_bytes_ + kSlabsPerChunk * slab_bytes_;
      void* addr =
          ::mmap(nullptr, c.bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
      if (addr == MAP_FAILED) throw std::bad_alloc();
      c.base = static_cast<char*>(addr);
      // Guard page below the chunk's first slab (see the header comment).
      ::mprotect(c.base, page_bytes_, PROT_NONE);
#else
      c.bytes = kSlabsPerChunk * slab_bytes_;
      c.base = static_cast<char*>(std::malloc(c.bytes));
      if (c.base == nullptr) throw std::bad_alloc();
#endif
      chunks_.push_back(c);
    }
    Chunk& c = chunks_.back();
#if ATS_SIMT_HAS_MMAP_STACKS
    slab = c.base + page_bytes_ + c.used * slab_bytes_;
#else
    slab = c.base + c.used * slab_bytes_;
#endif
    ++c.used;
  }
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  return slab;
}

void StackPool::release(char* base) {
  if (base == nullptr) return;
#if ATS_SIMT_HAS_MMAP_STACKS
  // Hand the committed pages back; the address range stays reserved for
  // reuse, so recycling a slab re-faults zero pages only as frames grow.
  ::madvise(base, slab_bytes_, MADV_DONTNEED);
#endif
  free_.push_back(base);
  --live_;
}

std::size_t StackPool::reserved_bytes() const {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) n += c.bytes;
  return n;
}

}  // namespace ats::simt::detail
