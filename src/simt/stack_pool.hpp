// Pooled, lazily-committed fiber stacks (DESIGN.md §12).
//
// The naive fiber backend allocated (and zero-filled) a full stack per
// location up front: at 100k locations × 256 KiB that is ~25 GB of touched
// pages before the first event is simulated.  The pool replaces that with
// slabs carved out of large anonymous MAP_NORESERVE mappings:
//
//  * Lazily committed — a slab costs address space until the fiber's
//    frames actually touch its pages; an idle location costs bytes, not
//    pages.
//  * Chunked — slabs are carved 64 at a time from one mmap, so the VMA
//    count grows by ~2 per *chunk*, not per slab (vm.max_map_count is
//    ~65530 by default; per-slab mappings or guard pages would exhaust it
//    long before 100k locations).
//  * Recycled — a slab released on location exit goes to a free list after
//    MADV_DONTNEED returns its committed pages to the kernel, so peak
//    residency tracks *live* locations, not spawned ones.
//  * Guarded — the page below each chunk's first slab is PROT_NONE, so the
//    deepest slab of every chunk faults loudly on overflow (heap-allocated
//    stacks had no guard at all; per-slab guards are a VMA each).
//
// Non-mmap platforms fall back to plain heap slabs — correct, just without
// lazy commit.
#pragma once

#include <cstddef>
#include <vector>

namespace ats::simt::detail {

class StackPool {
 public:
  /// All slabs have the same size; `slab_bytes` is rounded up to a whole
  /// number of pages.
  explicit StackPool(std::size_t slab_bytes);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Returns a slab of slab_bytes(); recycles a released slab when one is
  /// free, otherwise carves the next slab from the current chunk (mapping
  /// a fresh chunk when exhausted).  Recycled slabs are *not* zeroed —
  /// fiber initial frames overwrite everything they read.
  char* acquire();

  /// Returns `base` (a pointer obtained from acquire) to the free list and
  /// releases its committed pages back to the kernel.
  void release(char* base);

  std::size_t slab_bytes() const { return slab_bytes_; }
  /// Slabs currently acquired and not released.
  std::size_t live_slabs() const { return live_; }
  /// High-water mark of live_slabs().
  std::size_t peak_live_slabs() const { return peak_live_; }
  /// Bytes of address space reserved across all chunks (not residency).
  std::size_t reserved_bytes() const;

 private:
  struct Chunk {
    char* base = nullptr;   ///< mapping base (guard page lives here)
    std::size_t bytes = 0;  ///< full mapping length
    std::size_t used = 0;   ///< slabs carved so far
  };

  static constexpr std::size_t kSlabsPerChunk = 64;

  std::size_t slab_bytes_;
  std::size_t page_bytes_;
  std::vector<Chunk> chunks_;
  std::vector<char*> free_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace ats::simt::detail
