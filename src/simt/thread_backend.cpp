#include "simt/backend.hpp"

namespace ats::simt::detail {

// Thread-per-location backend.  Handoff protocol (everything under mu_):
//
//   granted_ == id           location `id` may run; everyone else parks
//   granted_ == kNoLocation  the scheduler may run
//
// Each side wakes exactly the party it hands control to: the scheduler
// signals the target location's own condition variable, the location
// signals sched_cv_.  No other thread is ever woken (the old
// single-cv design notified every parked location on each handoff).
struct ThreadBackend::Slot final : ExecSlot {
  std::thread thread;
  std::condition_variable cv;  // this location parks here

  ~Slot() override {
    // Backstop only: shutdown() joins after the live_ count hits zero.
    if (thread.joinable()) thread.join();
  }
};

void ThreadBackend::adopt(Location* loc) {
  auto slot = std::make_unique<Slot>();
  Slot* raw = slot.get();
  loc->exec = std::move(slot);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++live_;
  }
  raw->thread = std::thread([this, loc] { thread_entry(loc); });
}

void ThreadBackend::thread_entry(Location* loc) {
  Slot* slot = static_cast<Slot*>(loc->exec.get());
  {
    std::unique_lock<std::mutex> lk(mu_);
    slot->cv.wait(lk, [&] { return granted_ == loc->id || poisoned(); });
    if (granted_ != loc->id) {
      // Poisoned before ever running: the body never started, so there is
      // nothing to unwind.  Engine::shutdown() finalises the bookkeeping.
      --live_;
      sched_cv_.notify_one();
      return;
    }
  }
  location_main(loc);
  std::lock_guard<std::mutex> lk(mu_);
  granted_ = kNoLocation;
  --live_;
  sched_cv_.notify_one();
}

void ThreadBackend::resume(Location* loc) {
  Slot* slot = static_cast<Slot*>(loc->exec.get());
  std::unique_lock<std::mutex> lk(mu_);
  granted_ = loc->id;
  slot->cv.notify_one();
  sched_cv_.wait(lk, [&] { return granted_ == kNoLocation; });
}

void ThreadBackend::suspend(Location* loc) {
  Slot* slot = static_cast<Slot*>(loc->exec.get());
  std::unique_lock<std::mutex> lk(mu_);
  if (poisoned()) throw ShutdownSignal{};
  granted_ = kNoLocation;
  sched_cv_.notify_one();
  slot->cv.wait(lk, [&] { return granted_ == loc->id || poisoned(); });
  if (granted_ != loc->id) throw ShutdownSignal{};
}

void ThreadBackend::shutdown() {
  // poisoned_ is already set (Engine::shutdown).  Wake every parked
  // location thread; each observes the poison, unwinds (ShutdownSignal
  // through suspend) or exits unstarted, and decrements live_.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& l : locations()) {
      if (auto* slot = static_cast<Slot*>(l->exec.get())) slot->cv.notify_one();
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  sched_cv_.wait(lk, [&] { return live_ == 0; });
  lk.unlock();
  for (const auto& l : locations()) {
    auto* slot = static_cast<Slot*>(l->exec.get());
    if (slot && slot->thread.joinable()) slot->thread.join();
  }
}

}  // namespace ats::simt::detail
