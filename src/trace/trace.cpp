#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

namespace ats::trace {

/// Spill-to-disk state (see enable_spill).  Event blocks are appended to a
/// single scratch file; each flushed block is remembered as an ordered
/// (offset, count) segment per location so savers can stream them back in
/// recording order.  The file is a private scratch — raw native-endian
/// Event records, no header — and is unlinked when the Trace dies.
struct Trace::Spill {
  struct Segment {
    std::uint64_t offset = 0;  ///< byte offset of the block in the file
    std::uint64_t count = 0;   ///< events in the block
  };

  std::string path;
  std::fstream file;
  std::size_t watermark_bytes = 0;
  std::uint64_t write_offset = 0;       ///< append position (bytes)
  std::vector<std::vector<Segment>> segments;  ///< per location, in order
  std::vector<std::uint64_t> spilled_counts;   ///< per location event totals

  ~Spill() {
    if (file.is_open()) file.close();
    if (!path.empty()) std::remove(path.c_str());
  }
};

const char* to_string(RegionKind k) {
  switch (k) {
    case RegionKind::kUser: return "user";
    case RegionKind::kWork: return "work";
    case RegionKind::kMpiP2P: return "mpi_p2p";
    case RegionKind::kMpiColl: return "mpi_coll";
    case RegionKind::kMpiOther: return "mpi_other";
    case RegionKind::kOmpParallel: return "omp_parallel";
    case RegionKind::kOmpWork: return "omp_work";
    case RegionKind::kOmpSync: return "omp_sync";
    case RegionKind::kIdle: return "idle";
  }
  return "?";
}

RegionKind region_kind_from_string(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(RegionKind::kIdle); ++k) {
    const auto kind = static_cast<RegionKind>(k);
    if (s == to_string(kind)) return kind;
  }
  throw TraceError("unknown region kind: " + s);
}

const char* to_string(CollOp op) {
  switch (op) {
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kScatter: return "scatter";
    case CollOp::kScatterv: return "scatterv";
    case CollOp::kGather: return "gather";
    case CollOp::kGatherv: return "gatherv";
    case CollOp::kReduce: return "reduce";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAlltoall: return "alltoall";
    case CollOp::kAllgather: return "allgather";
    case CollOp::kScan: return "scan";
    case CollOp::kReduceScatter: return "reduce_scatter";
    case CollOp::kCommSplit: return "comm_split";
    case CollOp::kCommDup: return "comm_dup";
    case CollOp::kOmpBarrier: return "omp_barrier";
    case CollOp::kOmpIBarrier: return "omp_ibarrier";
  }
  return "?";
}

CollOp coll_op_from_string(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(CollOp::kOmpIBarrier); ++k) {
    const auto op = static_cast<CollOp>(k);
    if (s == to_string(op)) return op;
  }
  throw TraceError("unknown collective op: " + s);
}

bool is_root_sink(CollOp op) {
  return op == CollOp::kReduce || op == CollOp::kGather ||
         op == CollOp::kGatherv;
}

bool is_root_source(CollOp op) {
  return op == CollOp::kBcast || op == CollOp::kScatter ||
         op == CollOp::kScatterv;
}

bool is_all_to_all(CollOp op) {
  return op == CollOp::kBarrier || op == CollOp::kAllreduce ||
         op == CollOp::kAlltoall || op == CollOp::kAllgather ||
         op == CollOp::kScan || op == CollOp::kReduceScatter ||
         op == CollOp::kCommSplit ||
         op == CollOp::kCommDup || op == CollOp::kOmpBarrier ||
         op == CollOp::kOmpIBarrier;
}

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kEnter: return "enter";
    case EventType::kExit: return "exit";
    case EventType::kSend: return "send";
    case EventType::kRecv: return "recv";
    case EventType::kCollEnd: return "coll_end";
    case EventType::kLockAcquire: return "lock_acquire";
    case EventType::kLockRelease: return "lock_release";
    case EventType::kCollBegin: return "coll_begin";
  }
  return "?";
}

namespace {
// Names mirror mpisim's ReduceOp enumeration order; mpisim/coll.cpp
// static_asserts the correspondence so the two can never drift apart.
constexpr const char* kReduceOpNames[] = {"sum", "prod", "min",
                                          "max", "land", "lor"};
}  // namespace

const char* reduce_op_name(std::int32_t rop) {
  if (rop == kNone) return "-";
  if (rop < 0 || static_cast<std::size_t>(rop) >= std::size(kReduceOpNames)) {
    return "?";
  }
  return kReduceOpNames[rop];
}

std::size_t reduce_op_count() { return std::size(kReduceOpNames); }

// --------------------------------------------------------- RegionRegistry

RegionId RegionRegistry::intern(const std::string& name, RegionKind kind) {
  for (const auto& r : regions_) {
    if (r.name == name) {
      if (r.kind != kind) {
        throw TraceError("region '" + name + "' re-interned with kind " +
                         std::string(to_string(kind)) + " (was " +
                         to_string(r.kind) + ")");
      }
      return r.id;
    }
  }
  RegionInfo info;
  info.id = static_cast<RegionId>(regions_.size());
  info.kind = kind;
  info.name = name;
  regions_.push_back(std::move(info));
  return regions_.back().id;
}

const RegionInfo& RegionRegistry::info(RegionId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= regions_.size()) {
    throw TraceError("unknown region id " + std::to_string(id));
  }
  return regions_[static_cast<std::size_t>(id)];
}

RegionId RegionRegistry::find(const std::string& name) const {
  for (const auto& r : regions_) {
    if (r.name == name) return r.id;
  }
  return kNone;
}

// ------------------------------------------------------------------ Trace

void Trace::add_location(LocationInfo info) {
  if (info.id != static_cast<LocId>(locations_.size())) {
    throw TraceError("locations must be added densely in id order (got " +
                     std::to_string(info.id) + ", expected " +
                     std::to_string(locations_.size()) + ")");
  }
  locations_.push_back(std::move(info));
  per_loc_.emplace_back();
  loc_sorted_.push_back(true);
  first_t_.push_back(VTime::zero());
  last_t_.push_back(VTime::zero());
  ext_.emplace_back();
  ext_set_.push_back(0);
  if (spill_) {
    spill_->segments.emplace_back();
    spill_->spilled_counts.push_back(0);
  }
  merged_valid_ = false;
}

CommId Trace::add_comm(CommKind kind, std::vector<LocId> members,
                       std::string name) {
  CommInfo info;
  info.id = static_cast<CommId>(comms_.size());
  info.kind = kind;
  info.members = std::move(members);
  info.name = std::move(name);
  comms_.push_back(std::move(info));
  return comms_.back().id;
}

const LocationInfo& Trace::location(LocId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= locations_.size()) {
    throw TraceError("unknown location id " + std::to_string(id));
  }
  return locations_[static_cast<std::size_t>(id)];
}

const CommInfo& Trace::comm(CommId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= comms_.size()) {
    throw TraceError("unknown comm id " + std::to_string(id));
  }
  return comms_[static_cast<std::size_t>(id)];
}

void Trace::push(LocId loc, Event e) {
  if (!enabled_) return;
  if (loc < 0 || static_cast<std::size_t>(loc) >= per_loc_.size()) {
    throw TraceError("event for unknown location " + std::to_string(loc));
  }
  const auto l = static_cast<std::size_t>(loc);
  if (ext_set_[l]) {
    throw TraceError("location " + std::to_string(loc) +
                     " has external (mapped) events; recording is frozen");
  }
  // The monotonicity check must survive spilling, where the predecessor may
  // no longer be resident — compare against the tracked last timestamp.
  if (loc_event_count(loc) == 0) {
    first_t_[l] = e.t;
  } else if (e.t < last_t_[l]) {
    loc_sorted_[l] = false;
  }
  last_t_[l] = e.t;
  per_loc_[l].push_back(e);
  ++resident_events_;
  merged_valid_ = false;
  if (spill_ && resident_events_ * sizeof(Event) > spill_->watermark_bytes) {
    maybe_spill();
  }
}

void Trace::enable_spill(std::string path, std::size_t watermark_bytes) {
  if (spill_) throw TraceError("spill already enabled");
  if (external_events()) {
    throw TraceError("cannot spill a trace with external (mapped) events");
  }
  auto s = std::make_unique<Spill>();
  s->file.open(path, std::ios::in | std::ios::out | std::ios::trunc |
                         std::ios::binary);
  if (!s->file) throw TraceError("cannot open spill file: " + path);
  s->path = std::move(path);
  s->watermark_bytes = watermark_bytes;
  s->segments.resize(per_loc_.size());
  s->spilled_counts.resize(per_loc_.size(), 0);
  spill_ = std::move(s);
}

/// Checkpoint flush: appends every non-empty resident buffer to the spill
/// file as one segment and releases its memory.  Flushing all locations at
/// once (rather than the single largest) turns the spill into large
/// sequential writes and keeps the per-location segment lists short — one
/// entry per watermark crossing.
void Trace::maybe_spill() {
  Spill& s = *spill_;
  s.file.clear();
  s.file.seekp(static_cast<std::streamoff>(s.write_offset));
  for (std::size_t l = 0; l < per_loc_.size(); ++l) {
    auto& v = per_loc_[l];
    if (v.empty()) continue;
    Spill::Segment seg;
    seg.offset = s.write_offset;
    seg.count = v.size();
    s.file.write(reinterpret_cast<const char*>(v.data()),
                 static_cast<std::streamsize>(v.size() * sizeof(Event)));
    if (!s.file) throw TraceError("spill write failed: " + s.path);
    s.write_offset += seg.count * sizeof(Event);
    s.segments[l].push_back(seg);
    s.spilled_counts[l] += seg.count;
    resident_events_ -= v.size();
    std::vector<Event>().swap(v);  // release capacity, not just size
  }
  s.file.flush();
}

std::size_t Trace::spilled_bytes() const {
  return spill_ ? static_cast<std::size_t>(spill_->write_offset) : 0;
}

std::size_t Trace::memory_bytes() const {
  return resident_events_ * sizeof(Event);
}

void Trace::enter(LocId loc, VTime t, RegionId region) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kEnter;
  e.region = region;
  push(loc, e);
}

void Trace::exit(LocId loc, VTime t, RegionId region) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kExit;
  e.region = region;
  push(loc, e);
}

void Trace::send(LocId loc, VTime t, LocId dst, std::int32_t tag, CommId comm,
                 std::int64_t bytes) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kSend;
  e.peer = dst;
  e.tag = tag;
  e.comm = comm;
  e.bytes = bytes;
  push(loc, e);
}

void Trace::recv(LocId loc, VTime t, LocId src, std::int32_t tag, CommId comm,
                 std::int64_t bytes) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kRecv;
  e.peer = src;
  e.tag = tag;
  e.comm = comm;
  e.bytes = bytes;
  push(loc, e);
}

void Trace::coll_end(LocId loc, VTime t, VTime enter_t, CommId comm,
                     std::int64_t seq, CollOp op, std::int32_t root,
                     std::int64_t bytes_in, std::int64_t bytes_out) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kCollEnd;
  e.comm = comm;
  e.seq = seq;
  e.op = op;
  e.root = root;
  e.bytes = bytes_in;
  e.bytes_out = bytes_out;
  e.enter_t = enter_t;
  push(loc, e);
}

void Trace::coll_begin(LocId loc, VTime t, CommId comm, std::int64_t seq,
                       CollOp op, std::int32_t root, std::int32_t rop,
                       RegionId region) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kCollBegin;
  e.comm = comm;
  e.seq = seq;
  e.op = op;
  e.root = root;
  e.tag = rop;
  e.region = region;
  push(loc, e);
}

void Trace::lock_acquire(LocId loc, VTime t, std::int32_t lock_id) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kLockAcquire;
  e.peer = lock_id;
  push(loc, e);
}

void Trace::lock_release(LocId loc, VTime t, std::int32_t lock_id) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kLockRelease;
  e.peer = lock_id;
  push(loc, e);
}

Trace::Trace() = default;
Trace::~Trace() = default;
Trace::Trace(Trace&&) noexcept = default;
Trace& Trace::operator=(Trace&&) noexcept = default;

std::size_t Trace::loc_event_count(LocId loc) const {
  const auto l = static_cast<std::size_t>(loc);
  if (ext_set_[l]) return ext_[l].size();
  std::size_t n = per_loc_[l].size();
  if (spill_) n += static_cast<std::size_t>(spill_->spilled_counts[l]);
  return n;
}

std::span<const Event> Trace::events_of(LocId loc) const {
  if (loc < 0 || static_cast<std::size_t>(loc) >= per_loc_.size()) {
    throw TraceError("unknown location id " + std::to_string(loc));
  }
  const auto l = static_cast<std::size_t>(loc);
  if (ext_set_[l]) return ext_[l];
  if (spill_ && spill_->spilled_counts[l] > 0) {
    throw TraceError("events of location " + std::to_string(loc) +
                     " were spilled to disk; save the trace and reload it "
                     "to analyze");
  }
  const auto& v = per_loc_[l];
  return {v.data(), v.size()};
}

void Trace::set_external_events(LocId loc, std::span<const Event> events,
                                std::shared_ptr<const void> owner) {
  if (loc < 0 || static_cast<std::size_t>(loc) >= per_loc_.size()) {
    throw TraceError("unknown location id " + std::to_string(loc));
  }
  const auto l = static_cast<std::size_t>(loc);
  if (!per_loc_[l].empty() || (spill_ && spill_->spilled_counts[l] > 0)) {
    throw TraceError("location " + std::to_string(loc) +
                     " already has recorded events");
  }
  if (!events.empty()) {
    first_t_[l] = events.front().t;
    last_t_[l] = events.back().t;
    // The recording path detects out-of-order timestamps incrementally; an
    // adopted span needs the same classification so the merge pre-sorts it.
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i].t < events[i - 1].t) {
        loc_sorted_[l] = false;
        break;
      }
    }
  }
  ext_[l] = events;
  ext_set_[l] = 1;
  ext_owners_.push_back(std::move(owner));
  merged_valid_ = false;
}

std::size_t Trace::event_count() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < per_loc_.size(); ++l) {
    n += loc_event_count(static_cast<LocId>(l));
  }
  return n;
}

void Trace::for_each_chunk_of(
    LocId loc, const std::function<void(const Event*, std::size_t)>& fn) const {
  const auto l = static_cast<std::size_t>(loc);
  if (ext_set_[l]) {
    if (!ext_[l].empty()) fn(ext_[l].data(), ext_[l].size());
    return;
  }
  if (spill_ && !spill_->segments[l].empty()) {
    // Bounded scratch: large enough for sequential-read throughput, small
    // enough that streaming a spilled trace stays O(1) in memory.
    static constexpr std::size_t kScratchEvents = 8192;
    std::vector<Event> scratch;
    Spill& s = *spill_;
    s.file.clear();
    for (const Spill::Segment& seg : s.segments[l]) {
      std::uint64_t done = 0;
      while (done < seg.count) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(seg.count - done, kScratchEvents));
        scratch.resize(n);
        s.file.seekg(
            static_cast<std::streamoff>(seg.offset + done * sizeof(Event)));
        s.file.read(reinterpret_cast<char*>(scratch.data()),
                    static_cast<std::streamsize>(n * sizeof(Event)));
        if (!s.file) throw TraceError("spill read failed: " + s.path);
        fn(scratch.data(), n);
        done += n;
      }
    }
  }
  const auto& v = per_loc_[l];
  if (!v.empty()) fn(v.data(), v.size());
}

const std::vector<const Event*>& Trace::merged() const {
  if (!merged_valid_) {
    merged_cache_.clear();
    merged_cache_.reserve(event_count());
    for_each_merged([&](const Event& e) { merged_cache_.push_back(&e); });
    merged_valid_ = true;
  }
  return merged_cache_;
}

// ------------------------------------------------------------ MergeCursor

MergeCursor::MergeCursor(const Trace& trace) {
  heap_.reserve(trace.location_count());
  for (std::size_t l = 0; l < trace.location_count(); ++l) {
    // events_of throws for spilled locations: a spilled trace is a
    // write-only stream until saved and reloaded.
    const std::span<const Event> v = trace.events_of(static_cast<LocId>(l));
    if (v.empty()) continue;
    Run run;
    run.loc = static_cast<LocId>(l);
    if (trace.loc_sorted_[l]) {
      run.head = v.data();
      run.end = v.data() + v.size();
    } else {
      // Hand-built trace recorded out of time order: stable-sort this
      // location's pointers once so each run the heap sees is sorted.
      if (remap_.empty()) remap_.resize(trace.location_count());
      auto& remap = remap_[l];
      remap.reserve(v.size());
      for (const Event& e : v) remap.push_back(&e);
      std::stable_sort(remap.begin(), remap.end(),
                       [](const Event* a, const Event* b) {
                         return a->t < b->t;
                       });
      run.rcur = remap.data();
      run.rend = remap.data() + remap.size();
      run.head = *run.rcur;
      run.end = nullptr;
    }
    run.t = run.head->t.ns();
    heap_.push_back(run);
  }
  // Build the min-heap bottom-up.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

const Event* MergeCursor::next() {
  if (heap_.empty()) return nullptr;
  Run& top = heap_.front();
  const Event* e = top.head;
  if (top.rcur == nullptr) {
    if (++top.head == top.end) {
      top = heap_.back();
      heap_.pop_back();
    } else {
      top.t = top.head->t.ns();
    }
  } else {
    if (++top.rcur == top.rend) {
      top = heap_.back();
      heap_.pop_back();
    } else {
      top.head = *top.rcur;
      top.t = top.head->t.ns();
    }
  }
  if (heap_.size() > 1) sift_down(0);
  return e;
}

std::size_t Trace::unsorted_location_count() const {
  std::size_t n = 0;
  for (const bool sorted : loc_sorted_) {
    if (!sorted) ++n;
  }
  return n;
}

VTime Trace::end_time() const {
  // Uses the tracked extrema (last *recorded* timestamp per location, same
  // as the previous buffer-tail behaviour) so spilled traces answer without
  // touching disk.
  VTime t = VTime::zero();
  for (std::size_t l = 0; l < per_loc_.size(); ++l) {
    if (loc_event_count(static_cast<LocId>(l)) > 0) t = later(t, last_t_[l]);
  }
  return t;
}

VTime Trace::begin_time() const {
  bool any = false;
  VTime t = VTime::max();
  for (std::size_t l = 0; l < per_loc_.size(); ++l) {
    if (loc_event_count(static_cast<LocId>(l)) > 0) {
      t = earlier(t, first_t_[l]);
      any = true;
    }
  }
  return any ? t : VTime::zero();
}

}  // namespace ats::trace
