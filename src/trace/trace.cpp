#include "trace/trace.hpp"

#include <algorithm>
#include <cstring>

namespace ats::trace {

const char* to_string(RegionKind k) {
  switch (k) {
    case RegionKind::kUser: return "user";
    case RegionKind::kWork: return "work";
    case RegionKind::kMpiP2P: return "mpi_p2p";
    case RegionKind::kMpiColl: return "mpi_coll";
    case RegionKind::kMpiOther: return "mpi_other";
    case RegionKind::kOmpParallel: return "omp_parallel";
    case RegionKind::kOmpWork: return "omp_work";
    case RegionKind::kOmpSync: return "omp_sync";
    case RegionKind::kIdle: return "idle";
  }
  return "?";
}

RegionKind region_kind_from_string(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(RegionKind::kIdle); ++k) {
    const auto kind = static_cast<RegionKind>(k);
    if (s == to_string(kind)) return kind;
  }
  throw TraceError("unknown region kind: " + s);
}

const char* to_string(CollOp op) {
  switch (op) {
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kScatter: return "scatter";
    case CollOp::kScatterv: return "scatterv";
    case CollOp::kGather: return "gather";
    case CollOp::kGatherv: return "gatherv";
    case CollOp::kReduce: return "reduce";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAlltoall: return "alltoall";
    case CollOp::kAllgather: return "allgather";
    case CollOp::kScan: return "scan";
    case CollOp::kReduceScatter: return "reduce_scatter";
    case CollOp::kCommSplit: return "comm_split";
    case CollOp::kCommDup: return "comm_dup";
    case CollOp::kOmpBarrier: return "omp_barrier";
    case CollOp::kOmpIBarrier: return "omp_ibarrier";
  }
  return "?";
}

CollOp coll_op_from_string(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(CollOp::kOmpIBarrier); ++k) {
    const auto op = static_cast<CollOp>(k);
    if (s == to_string(op)) return op;
  }
  throw TraceError("unknown collective op: " + s);
}

bool is_root_sink(CollOp op) {
  return op == CollOp::kReduce || op == CollOp::kGather ||
         op == CollOp::kGatherv;
}

bool is_root_source(CollOp op) {
  return op == CollOp::kBcast || op == CollOp::kScatter ||
         op == CollOp::kScatterv;
}

bool is_all_to_all(CollOp op) {
  return op == CollOp::kBarrier || op == CollOp::kAllreduce ||
         op == CollOp::kAlltoall || op == CollOp::kAllgather ||
         op == CollOp::kScan || op == CollOp::kReduceScatter ||
         op == CollOp::kCommSplit ||
         op == CollOp::kCommDup || op == CollOp::kOmpBarrier ||
         op == CollOp::kOmpIBarrier;
}

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kEnter: return "enter";
    case EventType::kExit: return "exit";
    case EventType::kSend: return "send";
    case EventType::kRecv: return "recv";
    case EventType::kCollEnd: return "coll_end";
    case EventType::kLockAcquire: return "lock_acquire";
    case EventType::kLockRelease: return "lock_release";
  }
  return "?";
}

// --------------------------------------------------------- RegionRegistry

RegionId RegionRegistry::intern(const std::string& name, RegionKind kind) {
  for (const auto& r : regions_) {
    if (r.name == name) {
      if (r.kind != kind) {
        throw TraceError("region '" + name + "' re-interned with kind " +
                         std::string(to_string(kind)) + " (was " +
                         to_string(r.kind) + ")");
      }
      return r.id;
    }
  }
  RegionInfo info;
  info.id = static_cast<RegionId>(regions_.size());
  info.kind = kind;
  info.name = name;
  regions_.push_back(std::move(info));
  return regions_.back().id;
}

const RegionInfo& RegionRegistry::info(RegionId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= regions_.size()) {
    throw TraceError("unknown region id " + std::to_string(id));
  }
  return regions_[static_cast<std::size_t>(id)];
}

RegionId RegionRegistry::find(const std::string& name) const {
  for (const auto& r : regions_) {
    if (r.name == name) return r.id;
  }
  return kNone;
}

// ------------------------------------------------------------------ Trace

void Trace::add_location(LocationInfo info) {
  if (info.id != static_cast<LocId>(locations_.size())) {
    throw TraceError("locations must be added densely in id order (got " +
                     std::to_string(info.id) + ", expected " +
                     std::to_string(locations_.size()) + ")");
  }
  locations_.push_back(std::move(info));
  per_loc_.emplace_back();
  loc_sorted_.push_back(true);
  merged_valid_ = false;
}

CommId Trace::add_comm(CommKind kind, std::vector<LocId> members,
                       std::string name) {
  CommInfo info;
  info.id = static_cast<CommId>(comms_.size());
  info.kind = kind;
  info.members = std::move(members);
  info.name = std::move(name);
  comms_.push_back(std::move(info));
  return comms_.back().id;
}

const LocationInfo& Trace::location(LocId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= locations_.size()) {
    throw TraceError("unknown location id " + std::to_string(id));
  }
  return locations_[static_cast<std::size_t>(id)];
}

const CommInfo& Trace::comm(CommId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= comms_.size()) {
    throw TraceError("unknown comm id " + std::to_string(id));
  }
  return comms_[static_cast<std::size_t>(id)];
}

void Trace::push(LocId loc, Event e) {
  if (!enabled_) return;
  if (loc < 0 || static_cast<std::size_t>(loc) >= per_loc_.size()) {
    throw TraceError("event for unknown location " + std::to_string(loc));
  }
  auto& v = per_loc_[static_cast<std::size_t>(loc)];
  if (!v.empty() && e.t < v.back().t) {
    loc_sorted_[static_cast<std::size_t>(loc)] = false;
  }
  v.push_back(e);
  merged_valid_ = false;
}

void Trace::enter(LocId loc, VTime t, RegionId region) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kEnter;
  e.region = region;
  push(loc, e);
}

void Trace::exit(LocId loc, VTime t, RegionId region) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kExit;
  e.region = region;
  push(loc, e);
}

void Trace::send(LocId loc, VTime t, LocId dst, std::int32_t tag, CommId comm,
                 std::int64_t bytes) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kSend;
  e.peer = dst;
  e.tag = tag;
  e.comm = comm;
  e.bytes = bytes;
  push(loc, e);
}

void Trace::recv(LocId loc, VTime t, LocId src, std::int32_t tag, CommId comm,
                 std::int64_t bytes) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kRecv;
  e.peer = src;
  e.tag = tag;
  e.comm = comm;
  e.bytes = bytes;
  push(loc, e);
}

void Trace::coll_end(LocId loc, VTime t, VTime enter_t, CommId comm,
                     std::int64_t seq, CollOp op, std::int32_t root,
                     std::int64_t bytes_in, std::int64_t bytes_out) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kCollEnd;
  e.comm = comm;
  e.seq = seq;
  e.op = op;
  e.root = root;
  e.bytes = bytes_in;
  e.bytes_out = bytes_out;
  e.enter_t = enter_t;
  push(loc, e);
}

void Trace::lock_acquire(LocId loc, VTime t, std::int32_t lock_id) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kLockAcquire;
  e.peer = lock_id;
  push(loc, e);
}

void Trace::lock_release(LocId loc, VTime t, std::int32_t lock_id) {
  Event e;
  e.t = t;
  e.loc = loc;
  e.type = EventType::kLockRelease;
  e.peer = lock_id;
  push(loc, e);
}

const std::vector<Event>& Trace::events_of(LocId loc) const {
  if (loc < 0 || static_cast<std::size_t>(loc) >= per_loc_.size()) {
    throw TraceError("unknown location id " + std::to_string(loc));
  }
  return per_loc_[static_cast<std::size_t>(loc)];
}

std::size_t Trace::event_count() const {
  std::size_t n = 0;
  for (const auto& v : per_loc_) n += v.size();
  return n;
}

const std::vector<const Event*>& Trace::merged() const {
  if (!merged_valid_) {
    merged_cache_.clear();
    merged_cache_.reserve(event_count());
    for_each_merged([&](const Event& e) { merged_cache_.push_back(&e); });
    merged_valid_ = true;
  }
  return merged_cache_;
}

// ------------------------------------------------------------ MergeCursor

MergeCursor::MergeCursor(const Trace& trace) {
  heap_.reserve(trace.per_loc_.size());
  for (std::size_t l = 0; l < trace.per_loc_.size(); ++l) {
    const auto& v = trace.per_loc_[l];
    if (v.empty()) continue;
    Run run;
    run.loc = static_cast<LocId>(l);
    if (trace.loc_sorted_[l]) {
      run.head = v.data();
      run.end = v.data() + v.size();
    } else {
      // Hand-built trace recorded out of time order: stable-sort this
      // location's pointers once so each run the heap sees is sorted.
      if (remap_.empty()) remap_.resize(trace.per_loc_.size());
      auto& remap = remap_[l];
      remap.reserve(v.size());
      for (const Event& e : v) remap.push_back(&e);
      std::stable_sort(remap.begin(), remap.end(),
                       [](const Event* a, const Event* b) {
                         return a->t < b->t;
                       });
      run.rcur = remap.data();
      run.rend = remap.data() + remap.size();
      run.head = *run.rcur;
      run.end = nullptr;
    }
    run.t = run.head->t.ns();
    heap_.push_back(run);
  }
  // Build the min-heap bottom-up.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
}

const Event* MergeCursor::next() {
  if (heap_.empty()) return nullptr;
  Run& top = heap_.front();
  const Event* e = top.head;
  if (top.rcur == nullptr) {
    if (++top.head == top.end) {
      top = heap_.back();
      heap_.pop_back();
    } else {
      top.t = top.head->t.ns();
    }
  } else {
    if (++top.rcur == top.rend) {
      top = heap_.back();
      heap_.pop_back();
    } else {
      top.head = *top.rcur;
      top.t = top.head->t.ns();
    }
  }
  if (heap_.size() > 1) sift_down(0);
  return e;
}

std::size_t Trace::unsorted_location_count() const {
  std::size_t n = 0;
  for (const bool sorted : loc_sorted_) {
    if (!sorted) ++n;
  }
  return n;
}

VTime Trace::end_time() const {
  VTime t = VTime::zero();
  for (const auto& v : per_loc_) {
    if (!v.empty()) t = later(t, v.back().t);
  }
  return t;
}

VTime Trace::begin_time() const {
  bool any = false;
  VTime t = VTime::max();
  for (const auto& v : per_loc_) {
    if (!v.empty()) {
      t = earlier(t, v.front().t);
      any = true;
    }
  }
  return any ? t : VTime::zero();
}

}  // namespace ats::trace
