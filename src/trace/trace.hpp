// Event-trace model for ATS.
//
// The simulated runtimes (mpisim, ompsim) record EPILOG/OTF-style events —
// region enter/exit, point-to-point message send/receive, per-participant
// collective-completion records, lock acquire/release — with virtual
// timestamps.  The analyzer consumes a Trace exactly the way an automatic
// performance tool such as EXPERT consumes a real trace file: it sees only
// the events, not the runtime's internal wait bookkeeping, so detection is a
// genuine reconstruction (message matching, collective grouping, call-path
// nesting).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/vtime.hpp"

namespace ats::trace {

using LocId = std::int32_t;
using RegionId = std::int32_t;
using CommId = std::int32_t;
inline constexpr std::int32_t kNone = -1;

/// Classification of source-code regions; drives both timeline rendering
/// and the analyzer's time hierarchy (MPI time vs OpenMP time vs user time).
enum class RegionKind : std::uint8_t {
  kUser,        ///< user function / property function body
  kWork,        ///< do_work computation
  kMpiP2P,      ///< MPI_Send/Recv/Isend/... call
  kMpiColl,     ///< MPI collective call
  kMpiOther,    ///< init/finalize/comm management
  kOmpParallel, ///< parallel region body
  kOmpWork,     ///< worksharing construct body
  kOmpSync,     ///< barrier / implicit barrier / critical / lock API
  kIdle,        ///< explicitly-recorded idle period
};

const char* to_string(RegionKind k);
RegionKind region_kind_from_string(const std::string& s);

/// Collective operation tags shared by mpisim and ompsim records.
enum class CollOp : std::uint8_t {
  kBarrier,
  kBcast,
  kScatter,
  kScatterv,
  kGather,
  kGatherv,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAllgather,
  kScan,
  kReduceScatter,
  kCommSplit,
  kCommDup,
  kOmpBarrier,   ///< explicit OpenMP barrier
  kOmpIBarrier,  ///< implicit barrier at end of region/loop/sections/single
};

const char* to_string(CollOp op);
CollOp coll_op_from_string(const std::string& s);

/// True for the "root waits for all" flavour (gather-like).
bool is_root_sink(CollOp op);
/// True for the "all wait for root" flavour (broadcast-like).
bool is_root_source(CollOp op);
/// True for the "all wait for all" flavour (barrier / NxN).
bool is_all_to_all(CollOp op);

enum class EventType : std::uint8_t {
  kEnter,
  kExit,
  kSend,
  kRecv,
  kCollEnd,
  kLockAcquire,
  kLockRelease,
  /// Per-participant collective *call* record, written when a rank enters
  /// the collective — before the runtime knows whether the instance is
  /// consistent.  This is what the collective-correctness checker
  /// (src/analyzer/collcheck.hpp) matches per communicator: a mismatched or
  /// abandoned collective still leaves its begin records even though the
  /// matching kCollEnd never happens.  Appended last so the byte values of
  /// the existing types (part of the §7 binary contract) are unchanged.
  kCollBegin,
};

const char* to_string(EventType t);

/// Reduce-op id carried by kCollBegin records (Event::tag): names the
/// mpisim ReduceOp values without a trace -> mpisim dependency.  Returns
/// "-" for kNone (no reduce op) and "?" for out-of-range ids.
const char* reduce_op_name(std::int32_t rop);
/// Number of named reduce ops (valid ids are 0 .. count-1).
std::size_t reduce_op_count();

/// One trace record.  Flat struct (not a variant) so serialisation and the
/// replay loop stay simple; unused fields are kNone/zero.
///
/// The field order is the on-disk layout of the binary trace format
/// (docs/TRACE_FORMAT.md §7): 8-byte fields first, then 4-byte, then the
/// two enum bytes, then an *explicit* zeroed tail pad, so the struct has no
/// compiler-inserted padding and a record is exactly 72 deterministic
/// bytes.  Keep the static_asserts below in sync with any change here.
struct Event {
  VTime t;                      // offset  0
  VTime enter_t;                // offset  8  kCollEnd: participant entry time
  std::int64_t bytes = 0;       // offset 16  kSend/kRecv payload;
                                //            kCollEnd: bytes sent
  std::int64_t bytes_out = 0;   // offset 24  kCollEnd: bytes received
  std::int64_t seq = kNone;     // offset 32  kCollEnd: collective instance
  LocId loc = kNone;            // offset 40
  RegionId region = kNone;      // offset 44  kEnter/kExit
  std::int32_t peer = kNone;    // offset 48  kSend: destination loc;
                                //            kRecv: source; locks: lock id
  std::int32_t tag = kNone;     // offset 52
  CommId comm = kNone;          // offset 56
  std::int32_t root = kNone;    // offset 60  kCollEnd: root as global loc id
  EventType type = EventType::kEnter;  // offset 64
  CollOp op = CollOp::kBarrier;        // offset 65  kCollEnd
  std::uint8_t pad_[6] = {};    // offsets 66-71: always zero on disk
};

static_assert(sizeof(Event) == 72,
              "Event is the binary trace record; its size is part of the "
              "on-disk contract (docs/TRACE_FORMAT.md §7)");
static_assert(alignof(Event) == 8, "binary event blocks are 8-aligned");
static_assert(std::is_trivially_copyable_v<Event>,
              "binary trace io memcpys whole Event records");

enum class LocKind : std::uint8_t { kProcess, kThread };

/// Static description of a location (one lane in the timeline).
struct LocationInfo {
  LocId id = kNone;
  LocId parent = kNone;  ///< forking location for threads; kNone for ranks
  LocKind kind = LocKind::kProcess;
  std::int32_t rank = kNone;    ///< MPI world rank of the owning process
  std::int32_t thread = 0;      ///< thread number within its team (0 = master)
  std::string name;
};

enum class CommKind : std::uint8_t { kMpiComm, kOmpTeam };

/// Static description of a communicator or OpenMP team.
struct CommInfo {
  CommId id = kNone;
  CommKind kind = CommKind::kMpiComm;
  std::vector<LocId> members;  ///< position == rank within the comm/team
  std::string name;
};

struct RegionInfo {
  RegionId id = kNone;
  RegionKind kind = RegionKind::kUser;
  std::string name;
};

/// Interns region names; ids are dense.
class RegionRegistry {
 public:
  RegionId intern(const std::string& name, RegionKind kind);
  const RegionInfo& info(RegionId id) const;
  /// Looks up by name; returns kNone when absent.
  RegionId find(const std::string& name) const;
  std::size_t size() const { return regions_.size(); }

 private:
  std::vector<RegionInfo> regions_;
};

/// An in-memory event trace: location/comm/region metadata plus one
/// time-ordered event vector per location.
class Trace {
 public:
  // ---- metadata -------------------------------------------------------
  RegionRegistry& regions() { return regions_; }
  const RegionRegistry& regions() const { return regions_; }

  /// Registers location `id`.  Ids must arrive densely in spawn order so
  /// that trace locations coincide with engine locations.
  void add_location(LocationInfo info);
  CommId add_comm(CommKind kind, std::vector<LocId> members,
                  std::string name);

  const LocationInfo& location(LocId id) const;
  const CommInfo& comm(CommId id) const;
  std::size_t location_count() const { return locations_.size(); }
  std::size_t comm_count() const { return comms_.size(); }

  // ---- recording ------------------------------------------------------
  /// When disabled, the record_* calls become no-ops (used to measure the
  /// instrumented/uninstrumented overhead delta, cf. paper Ch. 2).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void enter(LocId loc, VTime t, RegionId region);
  void exit(LocId loc, VTime t, RegionId region);
  void send(LocId loc, VTime t, LocId dst, std::int32_t tag, CommId comm,
            std::int64_t bytes);
  void recv(LocId loc, VTime t, LocId src, std::int32_t tag, CommId comm,
            std::int64_t bytes);
  void coll_end(LocId loc, VTime t, VTime enter_t, CommId comm,
                std::int64_t seq, CollOp op, std::int32_t root,
                std::int64_t bytes_in, std::int64_t bytes_out);
  /// Collective call record (kCollBegin): what this participant *believes*
  /// it is doing — op, root (global loc id, kNone when non-rooted), reduce
  /// op (`rop`, kNone when the op has none; stored in Event::tag) and the
  /// enclosing MPI call region.  `seq` is the participant's per-rank call
  /// index on `comm`, matching the seq of the eventual kCollEnd.
  void coll_begin(LocId loc, VTime t, CommId comm, std::int64_t seq,
                  CollOp op, std::int32_t root, std::int32_t rop,
                  RegionId region);
  void lock_acquire(LocId loc, VTime t, std::int32_t lock_id);
  void lock_release(LocId loc, VTime t, std::int32_t lock_id);

  // ---- spill-to-disk (docs/TRACE_FORMAT.md §7, DESIGN.md §12) ----------
  /// Streams event blocks to `path` whenever the resident event payload
  /// exceeds `watermark_bytes`, so a long-running generation never holds
  /// the whole trace in RAM.  Per-location recording order is preserved as
  /// ordered (offset, count) segments in the spill file.  A spilled trace
  /// can still be saved (text or binary — both stream the segments back in
  /// order) but its events are no longer addressable in memory:
  /// events_of()/merged() throw until the saved trace is reloaded.  Enable
  /// before recording; the spill file is deleted on destruction.
  void enable_spill(std::string path, std::size_t watermark_bytes);
  bool spill_enabled() const { return spill_ != nullptr; }
  /// Event payload bytes currently written to the spill file.
  std::size_t spilled_bytes() const;
  /// Event payload bytes resident in memory (spilled blocks excluded).
  std::size_t memory_bytes() const;

  // ---- views ----------------------------------------------------------
  /// Events of one location, in recording order.  Storage is either the
  /// recording buffer or — after a zero-copy binary load — an external
  /// mapped region kept alive by this Trace.  Throws for locations whose
  /// events were spilled to disk (see enable_spill).
  std::span<const Event> events_of(LocId loc) const;
  std::size_t event_count() const;

  /// Points location `loc`'s event storage at `events`, an external
  /// buffer kept alive by `owner` (an mmap mapping or a loaded byte
  /// buffer).  This is the zero-copy binary-load path: the analyzer's
  /// merge walks the records in place, no materialised vector<Event>.
  /// Recording further events to such a location throws.
  void set_external_events(LocId loc, std::span<const Event> events,
                           std::shared_ptr<const void> owner);
  /// True when any location's events live in an external mapped buffer.
  bool external_events() const { return !ext_owners_.empty(); }

  /// All events merged into global (time, loc) order.  Events of one
  /// location keep their recording order even at equal timestamps.
  ///
  /// The view is materialised lazily via a k-way heap merge over the
  /// per-location buffers (O(n log k) instead of the former O(n log n)
  /// stable_sort) and cached; appending events invalidates the cache.  Not
  /// safe to call concurrently on the same Trace from several threads —
  /// parallel pipelines analyze one trace per thread.
  const std::vector<const Event*>& merged() const;

  /// Streaming variant of merged(): visits every event in the same global
  /// (time, loc) order without materialising (or caching) the pointer
  /// vector.  `fn` is invoked as fn(const Event&).  This is what the
  /// analyzer's replay loop uses — a trace is merged exactly once per
  /// analysis, so the cache would only add allocation traffic.
  template <typename Fn>
  void for_each_merged(Fn&& fn) const;

  /// Locations whose event buffer was recorded out of time order.  The
  /// simulators always record monotonically, so a non-zero count marks a
  /// hand-built or clock-skewed trace; the analyzer folds it into its
  /// DataQuality summary.
  std::size_t unsorted_location_count() const;

  /// Latest timestamp in the trace (zero when empty).
  VTime end_time() const;
  /// Earliest timestamp in the trace (zero when empty).
  VTime begin_time() const;

  // ---- io (see trace_io.cpp / trace_binary.cpp) ------------------------
  /// Text format (docs/TRACE_FORMAT.md §1-§6).
  void save(std::ostream& os) const;
  /// Record-packed binary container (docs/TRACE_FORMAT.md §7).
  void save_binary(std::ostream& os) const;
  static Trace load(std::istream& is);

  // Spilled traces are single-owner (the spill file has one writer) and a
  // deep copy would silently duplicate hundreds of megabytes at weak-scale
  // sizes, so Trace is move-only.
  Trace();   // out-of-line: Spill is incomplete here
  ~Trace();
  Trace(Trace&&) noexcept;
  Trace& operator=(Trace&&) noexcept;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

 private:
  friend class MergeCursor;

  struct Spill;

  void push(LocId loc, Event e);
  void maybe_spill();

 public:
  // ---- saver plumbing (trace_io.cpp / trace_binary.cpp) ----------------
  /// Visits the full event sequence of `loc` in recording order as a
  /// series of contiguous chunks (spilled segments are read back through a
  /// bounded scratch buffer, then the resident tail).  This is how both
  /// savers stream a spilled trace without re-materialising it.
  void for_each_chunk_of(
      LocId loc,
      const std::function<void(const Event*, std::size_t)>& fn) const;
  std::size_t loc_event_count(LocId loc) const;

 private:

  RegionRegistry regions_;
  std::vector<LocationInfo> locations_;
  std::vector<CommInfo> comms_;
  std::vector<std::vector<Event>> per_loc_;
  /// Per-location flag: false once an event is recorded with a timestamp
  /// earlier than its predecessor (possible only for hand-built traces; the
  /// simulators record monotonically).  Unsorted buffers get a per-location
  /// stable pre-sort inside the merge so the global order always matches
  /// the documented (time, loc) semantics.
  std::vector<bool> loc_sorted_;
  /// Per-location timestamp extrema, valid when loc_event_count(l) > 0.
  /// Tracked incrementally so begin/end_time need no spilled read-back.
  std::vector<VTime> first_t_;
  std::vector<VTime> last_t_;
  bool enabled_ = true;

  // Zero-copy external storage (binary mmap load); parallel to per_loc_.
  std::vector<std::span<const Event>> ext_;
  std::vector<std::uint8_t> ext_set_;
  std::vector<std::shared_ptr<const void>> ext_owners_;

  std::unique_ptr<Spill> spill_;
  /// Events currently held in per_loc_ buffers (excludes spilled blocks and
  /// external mapped spans); drives the spill watermark in O(1).
  std::size_t resident_events_ = 0;

  // merged() cache; see the declaration comment for the threading contract.
  mutable std::vector<const Event*> merged_cache_;
  mutable bool merged_valid_ = false;
};

/// Streaming k-way merge over a Trace's per-location buffers: yields every
/// event in global (time, loc) order, events of one location in recording
/// order.  Used via Trace::for_each_merged(); exposed for code that wants
/// explicit pull-style iteration.  The trace must not be appended to while
/// a cursor is live.
class MergeCursor {
 public:
  explicit MergeCursor(const Trace& trace);

  /// Next event in merge order; nullptr when the trace is drained.
  const Event* next();

  /// Visits every remaining event in merge order.  Faster than a next()
  /// loop: consecutive events from the leading location are emitted with a
  /// single comparison against the runner-up heap key, and the heap is only
  /// re-sifted when the lead changes; once one run remains it drains in a
  /// tight loop.  This is what Trace::for_each_merged() uses.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (heap_.size() > 1) {
      Run& top = heap_.front();
      // Runner-up: the smaller child of the root.  `top` stays the global
      // minimum exactly while run_less(top, runner_up).
      const Run& up = (heap_.size() > 2 && run_less(heap_[2], heap_[1]))
                          ? heap_[2]
                          : heap_[1];
      const std::int64_t up_t = up.t;
      const LocId up_loc = up.loc;
      bool exhausted = false;
      for (;;) {
        fn(*top.head);
        if (top.rcur == nullptr) {
          if (++top.head == top.end) {
            exhausted = true;
            break;
          }
          top.t = top.head->t.ns();
        } else {
          if (++top.rcur == top.rend) {
            exhausted = true;
            break;
          }
          top.head = *top.rcur;
          top.t = top.head->t.ns();
        }
        if (top.t > up_t || (top.t == up_t && !(top.loc < up_loc))) break;
      }
      if (exhausted) {
        top = heap_.back();
        heap_.pop_back();
      }
      sift_down(0);
    }
    if (heap_.size() == 1) {
      const Run& top = heap_.front();
      if (top.rcur == nullptr) {
        for (const Event* p = top.head; p != top.end; ++p) fn(*p);
      } else {
        for (const Event* const* p = top.rcur; p != top.rend; ++p) fn(**p);
      }
      heap_.clear();
    }
  }

 private:
  struct Run {
    std::int64_t t;      ///< head timestamp, cached so heap comparisons
                         ///< never chase the event pointer
    const Event* head;   ///< current event of this location
    const Event* end;    ///< one past the last event (contiguous runs)
    /// Cursor over the stable time-sorted pointer remap; nullptr for
    /// locations recorded in time order (the simulator case).
    const Event* const* rcur = nullptr;
    const Event* const* rend = nullptr;
    LocId loc;
  };

  static bool run_less(const Run& a, const Run& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.loc < b.loc;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && run_less(heap_[l], heap_[best])) best = l;
      if (r < n && run_less(heap_[r], heap_[best])) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  /// Min-heap of one run per non-empty location, keyed by (t, loc).
  std::vector<Run> heap_;
  /// Stable time-sorted pointer remap, only for locations recorded out of
  /// order (loc_sorted_[l] == false); empty vectors otherwise.
  std::vector<std::vector<const Event*>> remap_;
};

template <typename Fn>
void Trace::for_each_merged(Fn&& fn) const {
  MergeCursor cursor(*this);
  cursor.drain(fn);
}

}  // namespace ats::trace
