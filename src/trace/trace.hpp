// Event-trace model for ATS.
//
// The simulated runtimes (mpisim, ompsim) record EPILOG/OTF-style events —
// region enter/exit, point-to-point message send/receive, per-participant
// collective-completion records, lock acquire/release — with virtual
// timestamps.  The analyzer consumes a Trace exactly the way an automatic
// performance tool such as EXPERT consumes a real trace file: it sees only
// the events, not the runtime's internal wait bookkeeping, so detection is a
// genuine reconstruction (message matching, collective grouping, call-path
// nesting).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/vtime.hpp"

namespace ats::trace {

using LocId = std::int32_t;
using RegionId = std::int32_t;
using CommId = std::int32_t;
inline constexpr std::int32_t kNone = -1;

/// Classification of source-code regions; drives both timeline rendering
/// and the analyzer's time hierarchy (MPI time vs OpenMP time vs user time).
enum class RegionKind : std::uint8_t {
  kUser,        ///< user function / property function body
  kWork,        ///< do_work computation
  kMpiP2P,      ///< MPI_Send/Recv/Isend/... call
  kMpiColl,     ///< MPI collective call
  kMpiOther,    ///< init/finalize/comm management
  kOmpParallel, ///< parallel region body
  kOmpWork,     ///< worksharing construct body
  kOmpSync,     ///< barrier / implicit barrier / critical / lock API
  kIdle,        ///< explicitly-recorded idle period
};

const char* to_string(RegionKind k);
RegionKind region_kind_from_string(const std::string& s);

/// Collective operation tags shared by mpisim and ompsim records.
enum class CollOp : std::uint8_t {
  kBarrier,
  kBcast,
  kScatter,
  kScatterv,
  kGather,
  kGatherv,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAllgather,
  kScan,
  kReduceScatter,
  kCommSplit,
  kCommDup,
  kOmpBarrier,   ///< explicit OpenMP barrier
  kOmpIBarrier,  ///< implicit barrier at end of region/loop/sections/single
};

const char* to_string(CollOp op);
CollOp coll_op_from_string(const std::string& s);

/// True for the "root waits for all" flavour (gather-like).
bool is_root_sink(CollOp op);
/// True for the "all wait for root" flavour (broadcast-like).
bool is_root_source(CollOp op);
/// True for the "all wait for all" flavour (barrier / NxN).
bool is_all_to_all(CollOp op);

enum class EventType : std::uint8_t {
  kEnter,
  kExit,
  kSend,
  kRecv,
  kCollEnd,
  kLockAcquire,
  kLockRelease,
};

const char* to_string(EventType t);

/// One trace record.  Flat struct (not a variant) so serialisation and the
/// replay loop stay simple; unused fields are kNone/zero.
struct Event {
  VTime t;
  LocId loc = kNone;
  EventType type = EventType::kEnter;
  RegionId region = kNone;   // kEnter/kExit
  std::int32_t peer = kNone; // kSend: destination loc; kRecv: source loc;
                             // lock events: lock id
  std::int32_t tag = kNone;
  CommId comm = kNone;
  std::int64_t bytes = 0;    // kSend/kRecv payload; kCollEnd: bytes sent
  std::int64_t bytes_out = 0;   // kCollEnd: bytes received
  std::int64_t seq = kNone;     // kCollEnd: collective instance number
  CollOp op = CollOp::kBarrier; // kCollEnd
  std::int32_t root = kNone;    // kCollEnd: root as global loc id
  VTime enter_t;                // kCollEnd: when this participant entered
};

enum class LocKind : std::uint8_t { kProcess, kThread };

/// Static description of a location (one lane in the timeline).
struct LocationInfo {
  LocId id = kNone;
  LocId parent = kNone;  ///< forking location for threads; kNone for ranks
  LocKind kind = LocKind::kProcess;
  std::int32_t rank = kNone;    ///< MPI world rank of the owning process
  std::int32_t thread = 0;      ///< thread number within its team (0 = master)
  std::string name;
};

enum class CommKind : std::uint8_t { kMpiComm, kOmpTeam };

/// Static description of a communicator or OpenMP team.
struct CommInfo {
  CommId id = kNone;
  CommKind kind = CommKind::kMpiComm;
  std::vector<LocId> members;  ///< position == rank within the comm/team
  std::string name;
};

struct RegionInfo {
  RegionId id = kNone;
  RegionKind kind = RegionKind::kUser;
  std::string name;
};

/// Interns region names; ids are dense.
class RegionRegistry {
 public:
  RegionId intern(const std::string& name, RegionKind kind);
  const RegionInfo& info(RegionId id) const;
  /// Looks up by name; returns kNone when absent.
  RegionId find(const std::string& name) const;
  std::size_t size() const { return regions_.size(); }

 private:
  std::vector<RegionInfo> regions_;
};

/// An in-memory event trace: location/comm/region metadata plus one
/// time-ordered event vector per location.
class Trace {
 public:
  // ---- metadata -------------------------------------------------------
  RegionRegistry& regions() { return regions_; }
  const RegionRegistry& regions() const { return regions_; }

  /// Registers location `id`.  Ids must arrive densely in spawn order so
  /// that trace locations coincide with engine locations.
  void add_location(LocationInfo info);
  CommId add_comm(CommKind kind, std::vector<LocId> members,
                  std::string name);

  const LocationInfo& location(LocId id) const;
  const CommInfo& comm(CommId id) const;
  std::size_t location_count() const { return locations_.size(); }
  std::size_t comm_count() const { return comms_.size(); }

  // ---- recording ------------------------------------------------------
  /// When disabled, the record_* calls become no-ops (used to measure the
  /// instrumented/uninstrumented overhead delta, cf. paper Ch. 2).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void enter(LocId loc, VTime t, RegionId region);
  void exit(LocId loc, VTime t, RegionId region);
  void send(LocId loc, VTime t, LocId dst, std::int32_t tag, CommId comm,
            std::int64_t bytes);
  void recv(LocId loc, VTime t, LocId src, std::int32_t tag, CommId comm,
            std::int64_t bytes);
  void coll_end(LocId loc, VTime t, VTime enter_t, CommId comm,
                std::int64_t seq, CollOp op, std::int32_t root,
                std::int64_t bytes_in, std::int64_t bytes_out);
  void lock_acquire(LocId loc, VTime t, std::int32_t lock_id);
  void lock_release(LocId loc, VTime t, std::int32_t lock_id);

  // ---- views ----------------------------------------------------------
  const std::vector<Event>& events_of(LocId loc) const;
  std::size_t event_count() const;

  /// All events merged into global (time, loc) order.  Events of one
  /// location keep their recording order even at equal timestamps.
  std::vector<const Event*> merged() const;

  /// Latest timestamp in the trace (zero when empty).
  VTime end_time() const;
  /// Earliest timestamp in the trace (zero when empty).
  VTime begin_time() const;

  // ---- io (see trace_io.cpp) -------------------------------------------
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

 private:
  void push(LocId loc, Event e);

  RegionRegistry regions_;
  std::vector<LocationInfo> locations_;
  std::vector<CommInfo> comms_;
  std::vector<std::vector<Event>> per_loc_;
  bool enabled_ = true;
};

}  // namespace ats::trace
