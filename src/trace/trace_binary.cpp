// Binary (de)serialisation of traces — see trace_binary.hpp for the layout.
//
// The loader is written around one principle: pay for validation once, then
// analyze in place.  It scans every event block; a block whose records all
// validate is adopted zero-copy via Trace::set_external_events (the span
// points into the mmap/byte buffer, which the Trace keeps alive), while a
// block with defects — or a misaligned buffer — degrades to copying the
// surviving records through the normal recording API, with the same
// per-record diagnostics contract as the text loader.
#include "trace/trace_binary.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define ATS_TRACE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ATS_TRACE_HAS_MMAP 0
#endif

namespace ats::trace {

// The event payload is memcpy'd Event structs, so the container is
// little-endian by construction on every supported target.  A big-endian
// port would need byte-swapping load/save paths; fail loudly instead of
// writing files that lie about their endianness.
static_assert(std::endian::native == std::endian::little,
              "the binary trace container is little-endian (TRACE_FORMAT.md "
              "§7); this platform needs a byte-swapping port");

namespace {

constexpr std::size_t kHeaderBytes = 16;  // magic + version + reserved

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_i32(std::string& out, std::int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_name(std::string& out, const std::string& name) {
  put_u32(out, static_cast<std::uint32_t>(name.size()));
  out += name;
}

}  // namespace

void Trace::save_binary(std::ostream& os) const {
  std::string out;
  out.append(kBinaryMagic, sizeof kBinaryMagic);
  put_u32(out, kBinaryVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const RegionInfo& r = regions_.info(static_cast<RegionId>(i));
    put_u8(out, static_cast<std::uint8_t>(r.kind));
    put_name(out, r.name);
  }
  put_u64(out, locations_.size());
  for (const LocationInfo& l : locations_) {
    put_i32(out, l.parent);
    put_u8(out, static_cast<std::uint8_t>(l.kind));
    put_i32(out, l.rank);
    put_i32(out, l.thread);
    put_name(out, l.name);
  }
  put_u64(out, comms_.size());
  for (const CommInfo& c : comms_) {
    put_u8(out, static_cast<std::uint8_t>(c.kind));
    put_u32(out, static_cast<std::uint32_t>(c.members.size()));
    for (LocId m : c.members) put_i32(out, m);
    put_name(out, c.name);
  }
  while (out.size() % alignof(Event) != 0) out.push_back('\0');
  put_u64(out, locations_.size());
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  // Event blocks go straight to the stream: for_each_chunk_of hands over
  // resident/mapped buffers directly and streams spilled segments back
  // through a bounded scratch, so saving never re-materialises the trace.
  for (std::size_t l = 0; l < locations_.size(); ++l) {
    const std::uint64_t count = loc_event_count(static_cast<LocId>(l));
    os.write(reinterpret_cast<const char*>(&count), sizeof count);
    for_each_chunk_of(static_cast<LocId>(l),
                      [&](const Event* ev, std::size_t n) {
                        os.write(reinterpret_cast<const char*>(ev),
                                 static_cast<std::streamsize>(
                                     n * sizeof(Event)));
                      });
  }
  if (!os) throw TraceError("binary trace write failed");
}

// ----------------------------------------------------------------- loading

namespace {

/// Thrown internally for defects; converted to a diagnostic (lenient) or a
/// TraceError (strict), mirroring the text loader.
struct BinFail {
  DiagnosticKind kind;
  std::uint64_t offset;  // byte offset of the defect
  std::string message;
};

class BinaryLoader {
 public:
  BinaryLoader(const char* data, std::size_t size,
               std::shared_ptr<const void> owner, const LoadOptions& opt)
      : data_(data), size_(size), owner_(std::move(owner)), opt_(opt) {}

  LoadResult run() {
    try {
      header();
    } catch (const BinFail& f) {
      fail(f);
      return std::move(res_);
    }
    try {
      tables();
      events();
    } catch (const BinFail& f) {
      // Structural damage (truncated tables, block-count mismatch): the
      // stream cannot be resynchronised, so report and return what loaded.
      ++res_.records_dropped;
      fail(f);
    }
    return std::move(res_);
  }

 private:
  void fail(const BinFail& f) {
    ParseDiagnostic d;
    d.kind = f.kind;
    d.binary = true;
    d.line = static_cast<int>(
        std::min<std::uint64_t>(record_, std::numeric_limits<int>::max()));
    d.column = static_cast<int>(
        std::min<std::uint64_t>(f.offset, std::numeric_limits<int>::max()));
    d.message = f.message;
    if (opt_.strict) throw TraceError(d.str());
    if (res_.diagnostics.size() < opt_.max_diagnostics) {
      res_.diagnostics.push_back(std::move(d));
    }
  }

  void need(std::uint64_t n, const char* what) {
    if (size_ - pos_ < n) {
      throw BinFail{DiagnosticKind::kTruncated, pos_,
                    std::string("stream ends inside ") + what};
    }
  }

  template <typename T>
  T raw(const char* what) {
    need(sizeof(T), what);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string name_field(const char* what) {
    const std::uint64_t at = pos_;
    const auto len = raw<std::uint32_t>(what);
    if (len > size_ - pos_) {
      throw BinFail{DiagnosticKind::kMalformedRecord, at,
                    std::string("implausible ") + what + " length " +
                        std::to_string(len)};
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  void header() {
    if (size_ < kHeaderBytes ||
        std::memcmp(data_, kBinaryMagic, sizeof kBinaryMagic) != 0) {
      throw BinFail{DiagnosticKind::kBadHeader, 0,
                    "missing binary trace magic"};
    }
    std::uint32_t version;
    std::memcpy(&version, data_ + sizeof kBinaryMagic, sizeof version);
    if (version != kBinaryVersion) {
      throw BinFail{DiagnosticKind::kBadHeader, sizeof kBinaryMagic,
                    "unsupported binary trace version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kBinaryVersion) + ")"};
    }
    pos_ = kHeaderBytes;
    res_.header_ok = true;
  }

  void tables() {
    Trace& t = res_.trace;
    const auto nregions = raw<std::uint64_t>("region table");
    check_count(nregions, "region");
    for (std::uint64_t i = 0; i < nregions; ++i) {
      ++record_;
      const std::uint64_t at = pos_;
      const auto kind = raw<std::uint8_t>("region kind");
      if (kind > static_cast<std::uint8_t>(RegionKind::kIdle)) {
        throw BinFail{DiagnosticKind::kBadEnum, at,
                      "bad region kind byte " + std::to_string(kind)};
      }
      const std::string name = name_field("region name");
      t.regions().intern(name, static_cast<RegionKind>(kind));
      ++res_.records_ok;
    }
    const auto nlocs = raw<std::uint64_t>("location table");
    check_count(nlocs, "location");
    for (std::uint64_t i = 0; i < nlocs; ++i) {
      ++record_;
      LocationInfo li;
      li.id = static_cast<LocId>(i);
      li.parent = raw<std::int32_t>("location parent");
      const std::uint64_t at = pos_;
      const auto kind = raw<std::uint8_t>("location kind");
      if (kind > static_cast<std::uint8_t>(LocKind::kThread)) {
        throw BinFail{DiagnosticKind::kBadEnum, at,
                      "bad location kind byte " + std::to_string(kind)};
      }
      li.kind = static_cast<LocKind>(kind);
      li.rank = raw<std::int32_t>("location rank");
      li.thread = raw<std::int32_t>("location thread");
      li.name = name_field("location name");
      t.add_location(std::move(li));
      ++res_.records_ok;
    }
    const auto ncomms = raw<std::uint64_t>("comm table");
    check_count(ncomms, "comm");
    for (std::uint64_t i = 0; i < ncomms; ++i) {
      ++record_;
      const std::uint64_t at = pos_;
      const auto kind = raw<std::uint8_t>("comm kind");
      if (kind > static_cast<std::uint8_t>(CommKind::kOmpTeam)) {
        throw BinFail{DiagnosticKind::kBadEnum, at,
                      "bad comm kind byte " + std::to_string(kind)};
      }
      const auto nmembers = raw<std::uint32_t>("comm member count");
      if (static_cast<std::uint64_t>(nmembers) * sizeof(std::int32_t) >
          size_ - pos_) {
        throw BinFail{DiagnosticKind::kMalformedRecord, at,
                      "implausible member count " + std::to_string(nmembers)};
      }
      std::vector<LocId> members(nmembers);
      for (auto& m : members) m = raw<std::int32_t>("comm member");
      for (LocId m : members) {
        if (m < 0 || static_cast<std::size_t>(m) >= t.location_count()) {
          throw BinFail{DiagnosticKind::kUnknownLocation, at,
                        "comm member " + std::to_string(m) +
                            " was never declared"};
        }
      }
      const std::string name = name_field("comm name");
      t.add_comm(static_cast<CommKind>(kind), std::move(members), name);
      ++res_.records_ok;
    }
    // Zero padding to the next 8-byte boundary (see the layout comment).
    while (pos_ % alignof(Event) != 0) {
      need(1, "alignment padding");
      ++pos_;
    }
  }

  /// A declared entry count larger than the bytes left cannot be honest;
  /// rejecting it here also guards table loops against absurd iteration.
  void check_count(std::uint64_t n, const char* what) {
    if (n > size_ - pos_) {
      throw BinFail{DiagnosticKind::kMalformedRecord, pos_,
                    std::string("implausible ") + what + " count " +
                        std::to_string(n)};
    }
  }

  void events() {
    Trace& t = res_.trace;
    const auto nblocks = raw<std::uint64_t>("event block count");
    if (nblocks != t.location_count()) {
      throw BinFail{DiagnosticKind::kMalformedRecord, pos_ - 8,
                    "event block count " + std::to_string(nblocks) +
                        " does not match " +
                        std::to_string(t.location_count()) +
                        " declared locations"};
    }
    for (std::uint64_t l = 0; l < nblocks; ++l) {
      const std::uint64_t count_at = pos_;
      const auto declared = raw<std::uint64_t>("event block header");
      std::uint64_t count = declared;
      if (count > (size_ - pos_) / sizeof(Event)) {
        // Corrupt length or truncated file: keep the whole records that are
        // actually present, report the rest as lost.
        count = (size_ - pos_) / sizeof(Event);
        ++res_.records_dropped;
        fail(BinFail{DiagnosticKind::kTruncated, count_at,
                     "event block for location " + std::to_string(l) +
                         " declares " + std::to_string(declared) +
                         " records but only " + std::to_string(count) +
                         " fit in the remaining bytes"});
      }
      block(static_cast<LocId>(l), count);
    }
    if (pos_ != size_) {
      fail(BinFail{DiagnosticKind::kMalformedRecord, pos_,
                   std::to_string(size_ - pos_) +
                       " trailing bytes after the last event block"});
      ++res_.records_dropped;
    }
  }

  /// Validates one location's record block.  All-valid and 8-aligned →
  /// zero-copy adoption; otherwise the surviving records are re-recorded
  /// through the typed API.
  void block(LocId loc, std::uint64_t count) {
    Trace& t = res_.trace;
    const char* base = data_ + pos_;
    const bool aligned =
        reinterpret_cast<std::uintptr_t>(base) % alignof(Event) == 0;
    bool all_valid = true;
    for (std::uint64_t i = 0; i < count; ++i) {
      ++record_;
      Event e;
      std::memcpy(&e, base + i * sizeof(Event), sizeof(Event));
      if (validate(loc, e, pos_ + i * sizeof(Event))) {
        ++res_.records_ok;
      } else {
        all_valid = false;
        ++res_.records_dropped;
      }
    }
    if (count > 0 && all_valid && aligned) {
      t.set_external_events(
          loc,
          std::span<const Event>(reinterpret_cast<const Event*>(base),
                                 static_cast<std::size_t>(count)),
          owner_);
    } else if (count > 0) {
      for (std::uint64_t i = 0; i < count; ++i) {
        Event e;
        std::memcpy(&e, base + i * sizeof(Event), sizeof(Event));
        if (validate_quiet(loc, e)) apply(e);
      }
    }
    pos_ += count * sizeof(Event);
  }

  /// Checks one record, emitting a diagnostic for each defect.  Returns
  /// whether the record is usable.
  bool validate(LocId loc, const Event& e, std::uint64_t at) {
    if (static_cast<std::uint8_t>(e.type) >
        static_cast<std::uint8_t>(EventType::kCollBegin)) {
      fail(BinFail{DiagnosticKind::kBadEnum, at,
                   "bad event type byte " +
                       std::to_string(static_cast<int>(e.type))});
      return false;
    }
    if (e.loc != loc) {
      fail(BinFail{DiagnosticKind::kMalformedRecord, at,
                   "record loc " + std::to_string(e.loc) +
                       " inside the block of location " +
                       std::to_string(loc)});
      return false;
    }
    const Trace& t = res_.trace;
    switch (e.type) {
      case EventType::kEnter:
      case EventType::kExit:
        if (e.region < 0 ||
            static_cast<std::size_t>(e.region) >= t.regions().size()) {
          fail(BinFail{DiagnosticKind::kUnknownRegion, at,
                       "region " + std::to_string(e.region) +
                           " was never declared"});
          return false;
        }
        break;
      case EventType::kCollEnd:
      case EventType::kCollBegin:
        if (static_cast<std::uint8_t>(e.op) >
            static_cast<std::uint8_t>(CollOp::kOmpIBarrier)) {
          fail(BinFail{DiagnosticKind::kBadEnum, at,
                       "bad collective op byte " +
                           std::to_string(static_cast<int>(e.op))});
          return false;
        }
        if (e.type == EventType::kCollBegin &&
            (e.region < 0 ||
             static_cast<std::size_t>(e.region) >= t.regions().size())) {
          fail(BinFail{DiagnosticKind::kUnknownRegion, at,
                       "region " + std::to_string(e.region) +
                           " was never declared"});
          return false;
        }
        [[fallthrough]];
      case EventType::kSend:
      case EventType::kRecv:
        if (e.comm < 0 ||
            static_cast<std::size_t>(e.comm) >= t.comm_count()) {
          fail(BinFail{DiagnosticKind::kUnknownComm, at,
                       "comm " + std::to_string(e.comm) +
                           " was never declared"});
          return false;
        }
        break;
      default:
        break;
    }
    return true;
  }

  /// Re-check without emitting diagnostics (the validate pass already did).
  bool validate_quiet(LocId loc, const Event& e) {
    if (static_cast<std::uint8_t>(e.type) >
        static_cast<std::uint8_t>(EventType::kCollBegin)) {
      return false;
    }
    if (e.loc != loc) return false;
    const Trace& t = res_.trace;
    switch (e.type) {
      case EventType::kEnter:
      case EventType::kExit:
        return e.region >= 0 &&
               static_cast<std::size_t>(e.region) < t.regions().size();
      case EventType::kCollEnd:
      case EventType::kCollBegin:
        if (static_cast<std::uint8_t>(e.op) >
            static_cast<std::uint8_t>(CollOp::kOmpIBarrier)) {
          return false;
        }
        if (e.type == EventType::kCollBegin &&
            (e.region < 0 ||
             static_cast<std::size_t>(e.region) >= t.regions().size())) {
          return false;
        }
        [[fallthrough]];
      case EventType::kSend:
      case EventType::kRecv:
        return e.comm >= 0 &&
               static_cast<std::size_t>(e.comm) < t.comm_count();
      default:
        return true;
    }
  }

  void apply(const Event& e) {
    Trace& t = res_.trace;
    switch (e.type) {
      case EventType::kEnter:
        t.enter(e.loc, e.t, e.region);
        break;
      case EventType::kExit:
        t.exit(e.loc, e.t, e.region);
        break;
      case EventType::kSend:
        t.send(e.loc, e.t, e.peer, e.tag, e.comm, e.bytes);
        break;
      case EventType::kRecv:
        t.recv(e.loc, e.t, e.peer, e.tag, e.comm, e.bytes);
        break;
      case EventType::kCollEnd:
        t.coll_end(e.loc, e.t, e.enter_t, e.comm, e.seq, e.op, e.root,
                   e.bytes, e.bytes_out);
        break;
      case EventType::kLockAcquire:
        t.lock_acquire(e.loc, e.t, e.peer);
        break;
      case EventType::kLockRelease:
        t.lock_release(e.loc, e.t, e.peer);
        break;
      case EventType::kCollBegin:
        t.coll_begin(e.loc, e.t, e.comm, e.seq, e.op, e.root, e.tag,
                     e.region);
        break;
    }
  }

  const char* data_;
  std::size_t size_;
  std::shared_ptr<const void> owner_;
  LoadOptions opt_;
  LoadResult res_;
  std::uint64_t pos_ = 0;
  std::uint64_t record_ = 0;  ///< 1-based ordinal across tables and events
};

LoadResult load_binary_impl(const char* data, std::size_t size,
                            std::shared_ptr<const void> owner,
                            const LoadOptions& options) {
  BinaryLoader loader(data, size, std::move(owner), options);
  return loader.run();
}

#if ATS_TRACE_HAS_MMAP
/// Owns a read-only file mapping; Traces loaded zero-copy hold a
/// shared_ptr to one of these, so the mapping outlives every span.
struct MappedFile {
  void* addr = MAP_FAILED;
  std::size_t len = 0;
  ~MappedFile() {
    if (addr != MAP_FAILED && len > 0) ::munmap(addr, len);
  }
};
#endif

LoadResult load_whole_file(const std::string& path,
                           const LoadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto data = std::make_shared<const std::string>(std::move(buf).str());
  return load_trace_binary(data, options);
}

}  // namespace

TraceFormat detect_trace_format(std::istream& is) {
  char head[sizeof kBinaryMagic] = {};
  const std::streampos at = is.tellg();
  is.read(head, sizeof head);
  const bool binary = is.gcount() == sizeof head &&
                      std::memcmp(head, kBinaryMagic, sizeof head) == 0;
  is.clear();
  is.seekg(at);
  return binary ? TraceFormat::kBinary : TraceFormat::kText;
}

LoadResult load_trace_binary(std::shared_ptr<const std::string> data,
                             const LoadOptions& options) {
  const char* p = data->data();
  const std::size_t n = data->size();
  return load_binary_impl(p, n, std::move(data), options);
}

LoadResult load_trace_binary(std::istream& is, const LoadOptions& options) {
  std::ostringstream buf;
  buf << is.rdbuf();
  auto data = std::make_shared<const std::string>(std::move(buf).str());
  return load_trace_binary(std::move(data), options);
}

LoadResult load_trace_binary_file(const std::string& path,
                                  const LoadOptions& options) {
#if ATS_TRACE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw TraceError("cannot open trace file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw TraceError("cannot stat trace file: " + path);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    return load_binary_impl(nullptr, 0, nullptr, options);
  }
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) return load_whole_file(path, options);
  auto mf = std::make_shared<MappedFile>();
  mf->addr = addr;
  mf->len = len;
  return load_binary_impl(static_cast<const char*>(addr), len, std::move(mf),
                          options);
#else
  return load_whole_file(path, options);
#endif
}

LoadResult load_trace_auto_file(const std::string& path,
                                const LoadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open trace file: " + path);
  if (detect_trace_format(in) == TraceFormat::kBinary) {
    in.close();
    return load_trace_binary_file(path, options);
  }
  return load_trace(in, options);
}

}  // namespace ats::trace
