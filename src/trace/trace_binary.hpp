// Record-packed binary trace container (docs/TRACE_FORMAT.md §7).
//
// The binary format exists for weak-scale sweeps: at 100k locations the
// text format costs a parse per field, while the binary container stores
// event records exactly as the in-memory `Event` struct (72 bytes, little
// endian, no compiler padding — see the static_asserts in trace.hpp), so a
// loader can validate the file once and then point the analyzer's merge at
// the mapped records *in place*.  Layout:
//
//   header      magic "\x89ATSBIN\n" (8 bytes) · u32 version=1 · u32 reserved
//   regions     u64 count · per region: u8 kind · u32 name_len · name bytes
//   locations   u64 count · per location: i32 parent · u8 kind · i32 rank ·
//               i32 thread · u32 name_len · name bytes
//   comms       u64 count · per comm: u8 kind · u32 member_count ·
//               i32 members[] · u32 name_len · name bytes
//   padding     zero bytes to the next 8-byte boundary
//   events      u64 location_count · per location: u64 count ·
//               count × 72-byte Event records
//
// All integers are little-endian.  Region/location/comm ids are implicit
// (dense, in table order) — the tables *are* the string interning.  Event
// blocks stay 8-aligned because the tables are padded and 72 % 8 == 0.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "trace/trace_io.hpp"

namespace ats::trace {

/// First bytes of a binary trace file.  0x89 + "ATSBIN" + newline, same
/// rationale as PNG: never valid UTF-8 text, survives accidental text-mode
/// mangling detection.
inline constexpr char kBinaryMagic[8] = {'\x89', 'A', 'T', 'S',
                                         'B',    'I', 'N', '\n'};
inline constexpr std::uint32_t kBinaryVersion = 1;

enum class TraceFormat : std::uint8_t { kText, kBinary };

/// Peeks at the first bytes of `is` (stream position is restored) and
/// classifies the container.  Anything that does not start with the binary
/// magic is treated as text — the text loader produces the diagnostics for
/// garbage input.
TraceFormat detect_trace_format(std::istream& is);

/// Loads a binary trace from a byte buffer, zero-copy: when the buffer is
/// 8-aligned and every record validates, the returned Trace's per-location
/// event spans point straight into `data` (kept alive via the shared_ptr).
/// Misaligned buffers and — in lenient mode — buffers with defective
/// records fall back to copying the surviving records.  Mirrors
/// load_trace(): lenient mode collects diagnostics, strict throws
/// TraceError at the first defect.
LoadResult load_trace_binary(std::shared_ptr<const std::string> data,
                             const LoadOptions& options = {});

/// mmaps `path` and loads it zero-copy (the mapping is owned by the
/// returned Trace).  Falls back to reading the file into memory when mmap
/// is unavailable.  Throws TraceError when the file cannot be opened.
LoadResult load_trace_binary_file(const std::string& path,
                                  const LoadOptions& options = {});

/// Convenience for tools: sniffs the magic of `path` and dispatches to the
/// binary (mmap) or text loader.  Throws TraceError when the file cannot be
/// opened.
LoadResult load_trace_auto_file(const std::string& path,
                                const LoadOptions& options = {});

/// Streaming variant: reads all of `is` into a buffer, then loads it.
LoadResult load_trace_binary(std::istream& is,
                             const LoadOptions& options = {});

}  // namespace ats::trace
