// Text (de)serialisation of traces.
//
// Format: line-oriented, whitespace-separated, names always last on the
// line (so they may contain spaces).  Header "ATS-TRACE 1".  This lets test
// programs dump traces that the standalone analyzer and report tools read
// back — the same decoupling a real tool chain (EPILOG trace -> EXPERT) has.
#include <istream>
#include <ostream>
#include <sstream>

#include "trace/trace.hpp"

namespace ats::trace {

namespace {
constexpr const char* kMagic = "ATS-TRACE";
constexpr int kVersion = 1;
}  // namespace

void Trace::save(std::ostream& os) const {
  os << kMagic << ' ' << kVersion << '\n';
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const RegionInfo& r = regions_.info(static_cast<RegionId>(i));
    os << "region " << r.id << ' ' << to_string(r.kind) << ' ' << r.name
       << '\n';
  }
  for (const auto& l : locations_) {
    os << "loc " << l.id << ' ' << l.parent << ' '
       << (l.kind == LocKind::kProcess ? "process" : "thread") << ' '
       << l.rank << ' ' << l.thread << ' ' << l.name << '\n';
  }
  for (const auto& c : comms_) {
    os << "comm " << c.id << ' '
       << (c.kind == CommKind::kMpiComm ? "mpi" : "team") << ' '
       << c.members.size();
    for (LocId m : c.members) os << ' ' << m;
    os << ' ' << c.name << '\n';
  }
  for (const auto& v : per_loc_) {
    for (const Event& e : v) {
      switch (e.type) {
        case EventType::kEnter:
          os << "E " << e.loc << ' ' << e.t.ns() << ' ' << e.region << '\n';
          break;
        case EventType::kExit:
          os << "X " << e.loc << ' ' << e.t.ns() << ' ' << e.region << '\n';
          break;
        case EventType::kSend:
          os << "S " << e.loc << ' ' << e.t.ns() << ' ' << e.peer << ' '
             << e.tag << ' ' << e.comm << ' ' << e.bytes << '\n';
          break;
        case EventType::kRecv:
          os << "R " << e.loc << ' ' << e.t.ns() << ' ' << e.peer << ' '
             << e.tag << ' ' << e.comm << ' ' << e.bytes << '\n';
          break;
        case EventType::kCollEnd:
          os << "C " << e.loc << ' ' << e.t.ns() << ' ' << e.enter_t.ns()
             << ' ' << e.comm << ' ' << e.seq << ' ' << to_string(e.op) << ' '
             << e.root << ' ' << e.bytes << ' ' << e.bytes_out << '\n';
          break;
        case EventType::kLockAcquire:
          os << "LA " << e.loc << ' ' << e.t.ns() << ' ' << e.peer << '\n';
          break;
        case EventType::kLockRelease:
          os << "LR " << e.loc << ' ' << e.t.ns() << ' ' << e.peer << '\n';
          break;
      }
    }
  }
}

namespace {

/// Reads the rest of the line (after leading space) as a free-form name.
std::string read_name(std::istringstream& ls) {
  std::string name;
  std::getline(ls, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  return name;
}

}  // namespace

Trace Trace::load(std::istream& is) {
  Trace t;
  std::string line;
  if (!std::getline(is, line)) throw TraceError("empty trace stream");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    ls >> magic >> version;
    if (magic != kMagic || version != kVersion) {
      throw TraceError("bad trace header: " + line);
    }
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "region") {
      RegionId id;
      std::string kind;
      ls >> id >> kind;
      const std::string name = read_name(ls);
      const RegionId got = t.regions_.intern(name,
                                             region_kind_from_string(kind));
      if (got != id) throw TraceError("region ids out of order in trace");
    } else if (kw == "loc") {
      LocationInfo li;
      std::string kind;
      ls >> li.id >> li.parent >> kind >> li.rank >> li.thread;
      li.kind = (kind == "process") ? LocKind::kProcess : LocKind::kThread;
      li.name = read_name(ls);
      t.add_location(std::move(li));
    } else if (kw == "comm") {
      CommId id;
      std::string kind;
      std::size_t n = 0;
      ls >> id >> kind >> n;
      std::vector<LocId> members(n);
      for (auto& m : members) ls >> m;
      const std::string name = read_name(ls);
      const CommId got = t.add_comm(
          kind == "mpi" ? CommKind::kMpiComm : CommKind::kOmpTeam,
          std::move(members), name);
      if (got != id) throw TraceError("comm ids out of order in trace");
    } else if (kw == "E" || kw == "X") {
      LocId loc;
      std::int64_t ns;
      RegionId region;
      ls >> loc >> ns >> region;
      if (kw == "E") {
        t.enter(loc, VTime(ns), region);
      } else {
        t.exit(loc, VTime(ns), region);
      }
    } else if (kw == "S" || kw == "R") {
      LocId loc;
      std::int64_t ns;
      std::int32_t peer, tag;
      CommId comm;
      std::int64_t bytes;
      ls >> loc >> ns >> peer >> tag >> comm >> bytes;
      if (kw == "S") {
        t.send(loc, VTime(ns), peer, tag, comm, bytes);
      } else {
        t.recv(loc, VTime(ns), peer, tag, comm, bytes);
      }
    } else if (kw == "C") {
      LocId loc;
      std::int64_t ns, enter_ns, seq, bin, bout;
      CommId comm;
      std::string op;
      std::int32_t root;
      ls >> loc >> ns >> enter_ns >> comm >> seq >> op >> root >> bin >> bout;
      t.coll_end(loc, VTime(ns), VTime(enter_ns), comm, seq,
                 coll_op_from_string(op), root, bin, bout);
    } else if (kw == "LA" || kw == "LR") {
      LocId loc;
      std::int64_t ns;
      std::int32_t lock;
      ls >> loc >> ns >> lock;
      if (kw == "LA") {
        t.lock_acquire(loc, VTime(ns), lock);
      } else {
        t.lock_release(loc, VTime(ns), lock);
      }
    } else {
      throw TraceError("unknown trace record: " + line);
    }
    if (ls.fail()) throw TraceError("malformed trace record: " + line);
  }
  return t;
}

}  // namespace ats::trace
