// Text (de)serialisation of traces.
//
// Format: line-oriented, whitespace-separated, names always last on the
// line (so they may contain spaces).  Header "ATS-TRACE 1".  This lets test
// programs dump traces that the standalone analyzer and report tools read
// back — the same decoupling a real tool chain (EPILOG trace -> EXPERT) has.
#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>

#include "trace/trace.hpp"

namespace ats::trace {

namespace {
constexpr const char* kMagic = "ATS-TRACE";
constexpr int kVersion = 1;

/// Appends whitespace-separated fields plus a newline to `out` without
/// touching the stream: number -> string conversions go through
/// std::to_string and land in one growing buffer.
void put(std::string& out) { out += '\n'; }

template <typename Head, typename... Tail>
void put(std::string& out, const Head& head, const Tail&... tail) {
  if constexpr (std::is_same_v<Head, std::string> ||
                std::is_convertible_v<Head, const char*>) {
    out += head;
  } else {
    out += std::to_string(head);
  }
  if constexpr (sizeof...(tail) > 0) out += ' ';
  put(out, tail...);
}

}  // namespace

void Trace::save(std::ostream& os) const {
  // Serialise into one pre-reserved buffer and hand the stream a single
  // batched write: per-event operator<< calls (7+ per event) dominated the
  // serialisation profile.  ~48 bytes covers the longest event line.
  std::string out;
  out.reserve(64 + 48 * (regions_.size() + locations_.size() +
                         comms_.size() + event_count()));
  put(out, kMagic, kVersion);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const RegionInfo& r = regions_.info(static_cast<RegionId>(i));
    put(out, "region", r.id, to_string(r.kind), r.name);
  }
  for (const auto& l : locations_) {
    put(out, "loc", l.id, l.parent,
        l.kind == LocKind::kProcess ? "process" : "thread", l.rank, l.thread,
        l.name);
  }
  for (const auto& c : comms_) {
    out += "comm ";
    out += std::to_string(c.id);
    out += c.kind == CommKind::kMpiComm ? " mpi " : " team ";
    out += std::to_string(c.members.size());
    for (LocId m : c.members) {
      out += ' ';
      out += std::to_string(m);
    }
    out += ' ';
    out += c.name;
    out += '\n';
  }
  for (const auto& v : per_loc_) {
    for (const Event& e : v) {
      switch (e.type) {
        case EventType::kEnter:
          put(out, "E", e.loc, e.t.ns(), e.region);
          break;
        case EventType::kExit:
          put(out, "X", e.loc, e.t.ns(), e.region);
          break;
        case EventType::kSend:
          put(out, "S", e.loc, e.t.ns(), e.peer, e.tag, e.comm, e.bytes);
          break;
        case EventType::kRecv:
          put(out, "R", e.loc, e.t.ns(), e.peer, e.tag, e.comm, e.bytes);
          break;
        case EventType::kCollEnd:
          put(out, "C", e.loc, e.t.ns(), e.enter_t.ns(), e.comm, e.seq,
              to_string(e.op), e.root, e.bytes, e.bytes_out);
          break;
        case EventType::kLockAcquire:
          put(out, "LA", e.loc, e.t.ns(), e.peer);
          break;
        case EventType::kLockRelease:
          put(out, "LR", e.loc, e.t.ns(), e.peer);
          break;
      }
    }
  }
  // Round-trip size assertion: one line per record.  Region/location/comm
  // names are the only free-form fields and they never contain newlines, so
  // a line-count mismatch means a serialisation bug that load() would
  // misparse.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n'));
  const std::size_t expected = 1 + regions_.size() + locations_.size() +
                               comms_.size() + event_count();
  if (lines != expected) {
    throw TraceError("trace serialisation produced " + std::to_string(lines) +
                     " records, expected " + std::to_string(expected));
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

namespace {

/// Reads the rest of the line (after leading space) as a free-form name.
std::string read_name(std::istringstream& ls) {
  std::string name;
  std::getline(ls, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  return name;
}

}  // namespace

Trace Trace::load(std::istream& is) {
  Trace t;
  std::string line;
  if (!std::getline(is, line)) throw TraceError("empty trace stream");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    ls >> magic >> version;
    if (magic != kMagic || version != kVersion) {
      throw TraceError("bad trace header: " + line);
    }
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "region") {
      RegionId id;
      std::string kind;
      ls >> id >> kind;
      const std::string name = read_name(ls);
      const RegionId got = t.regions_.intern(name,
                                             region_kind_from_string(kind));
      if (got != id) throw TraceError("region ids out of order in trace");
    } else if (kw == "loc") {
      LocationInfo li;
      std::string kind;
      ls >> li.id >> li.parent >> kind >> li.rank >> li.thread;
      li.kind = (kind == "process") ? LocKind::kProcess : LocKind::kThread;
      li.name = read_name(ls);
      t.add_location(std::move(li));
    } else if (kw == "comm") {
      CommId id;
      std::string kind;
      std::size_t n = 0;
      ls >> id >> kind >> n;
      std::vector<LocId> members(n);
      for (auto& m : members) ls >> m;
      const std::string name = read_name(ls);
      const CommId got = t.add_comm(
          kind == "mpi" ? CommKind::kMpiComm : CommKind::kOmpTeam,
          std::move(members), name);
      if (got != id) throw TraceError("comm ids out of order in trace");
    } else if (kw == "E" || kw == "X") {
      LocId loc;
      std::int64_t ns;
      RegionId region;
      ls >> loc >> ns >> region;
      if (kw == "E") {
        t.enter(loc, VTime(ns), region);
      } else {
        t.exit(loc, VTime(ns), region);
      }
    } else if (kw == "S" || kw == "R") {
      LocId loc;
      std::int64_t ns;
      std::int32_t peer, tag;
      CommId comm;
      std::int64_t bytes;
      ls >> loc >> ns >> peer >> tag >> comm >> bytes;
      if (kw == "S") {
        t.send(loc, VTime(ns), peer, tag, comm, bytes);
      } else {
        t.recv(loc, VTime(ns), peer, tag, comm, bytes);
      }
    } else if (kw == "C") {
      LocId loc;
      std::int64_t ns, enter_ns, seq, bin, bout;
      CommId comm;
      std::string op;
      std::int32_t root;
      ls >> loc >> ns >> enter_ns >> comm >> seq >> op >> root >> bin >> bout;
      t.coll_end(loc, VTime(ns), VTime(enter_ns), comm, seq,
                 coll_op_from_string(op), root, bin, bout);
    } else if (kw == "LA" || kw == "LR") {
      LocId loc;
      std::int64_t ns;
      std::int32_t lock;
      ls >> loc >> ns >> lock;
      if (kw == "LA") {
        t.lock_acquire(loc, VTime(ns), lock);
      } else {
        t.lock_release(loc, VTime(ns), lock);
      }
    } else {
      throw TraceError("unknown trace record: " + line);
    }
    if (ls.fail()) throw TraceError("malformed trace record: " + line);
  }
  return t;
}

}  // namespace ats::trace
