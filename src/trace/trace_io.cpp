// Text (de)serialisation of traces.
//
// Format: line-oriented, whitespace-separated, names always last on the
// line (so they may contain spaces).  Header "ATS-TRACE 1".  The full
// record grammar, ordering guarantees and strict-vs-lenient parse rules are
// specified in docs/TRACE_FORMAT.md; load_trace() below implements that
// contract with per-record recovery, so a truncated or corrupted file
// degrades into diagnostics instead of aborting the whole load.
#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>

#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace ats::trace {

namespace {
constexpr const char* kMagic = "ATS-TRACE";
constexpr int kVersion = 1;

/// Appends whitespace-separated fields plus a newline to `out` without
/// touching the stream: number -> string conversions go through
/// std::to_string and land in one growing buffer.
void put(std::string& out) { out += '\n'; }

template <typename Head, typename... Tail>
void put(std::string& out, const Head& head, const Tail&... tail) {
  if constexpr (std::is_same_v<Head, std::string> ||
                std::is_convertible_v<Head, const char*>) {
    out += head;
  } else {
    out += std::to_string(head);
  }
  if constexpr (sizeof...(tail) > 0) out += ' ';
  put(out, tail...);
}

}  // namespace

void Trace::save(std::ostream& os) const {
  // Serialise into one pre-reserved buffer and hand the stream a single
  // batched write: per-event operator<< calls (7+ per event) dominated the
  // serialisation profile.  ~48 bytes covers the longest event line.
  std::string out;
  out.reserve(64 + 48 * (regions_.size() + locations_.size() +
                         comms_.size() + event_count()));
  put(out, kMagic, kVersion);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const RegionInfo& r = regions_.info(static_cast<RegionId>(i));
    put(out, "region", r.id, to_string(r.kind), r.name);
  }
  for (const auto& l : locations_) {
    put(out, "loc", l.id, l.parent,
        l.kind == LocKind::kProcess ? "process" : "thread", l.rank, l.thread,
        l.name);
  }
  for (const auto& c : comms_) {
    out += "comm ";
    out += std::to_string(c.id);
    out += c.kind == CommKind::kMpiComm ? " mpi " : " team ";
    out += std::to_string(c.members.size());
    for (LocId m : c.members) {
      out += ' ';
      out += std::to_string(m);
    }
    out += ' ';
    out += c.name;
    out += '\n';
  }
  // for_each_chunk_of streams spilled segments back from disk in recording
  // order and hands resident/mapped buffers over directly, so the same loop
  // serialises in-memory, mmap-loaded and spilled traces.
  for (std::size_t l = 0; l < locations_.size(); ++l) {
    for_each_chunk_of(
        static_cast<LocId>(l), [&](const Event* ev, std::size_t n) {
          for (const Event* e = ev; e != ev + n; ++e) {
            switch (e->type) {
              case EventType::kEnter:
                put(out, "E", e->loc, e->t.ns(), e->region);
                break;
              case EventType::kExit:
                put(out, "X", e->loc, e->t.ns(), e->region);
                break;
              case EventType::kSend:
                put(out, "S", e->loc, e->t.ns(), e->peer, e->tag, e->comm,
                    e->bytes);
                break;
              case EventType::kRecv:
                put(out, "R", e->loc, e->t.ns(), e->peer, e->tag, e->comm,
                    e->bytes);
                break;
              case EventType::kCollEnd:
                put(out, "C", e->loc, e->t.ns(), e->enter_t.ns(), e->comm,
                    e->seq, to_string(e->op), e->root, e->bytes, e->bytes_out);
                break;
              case EventType::kLockAcquire:
                put(out, "LA", e->loc, e->t.ns(), e->peer);
                break;
              case EventType::kLockRelease:
                put(out, "LR", e->loc, e->t.ns(), e->peer);
                break;
              case EventType::kCollBegin:
                put(out, "B", e->loc, e->t.ns(), e->comm, e->seq,
                    to_string(e->op), e->root, e->tag, e->region);
                break;
            }
          }
        });
  }
  // Round-trip size assertion: one line per record.  Region/location/comm
  // names are the only free-form fields and they never contain newlines, so
  // a line-count mismatch means a serialisation bug that load() would
  // misparse.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n'));
  const std::size_t expected = 1 + regions_.size() + locations_.size() +
                               comms_.size() + event_count();
  if (lines != expected) {
    throw TraceError("trace serialisation produced " + std::to_string(lines) +
                     " records, expected " + std::to_string(expected));
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

// ----------------------------------------------------------------- loading

const char* to_string(DiagnosticKind k) {
  switch (k) {
    case DiagnosticKind::kBadHeader: return "bad-header";
    case DiagnosticKind::kUnknownRecord: return "unknown-record";
    case DiagnosticKind::kMalformedRecord: return "malformed-record";
    case DiagnosticKind::kUnknownLocation: return "unknown-location";
    case DiagnosticKind::kUnknownRegion: return "unknown-region";
    case DiagnosticKind::kUnknownComm: return "unknown-comm";
    case DiagnosticKind::kIdOrder: return "id-order";
    case DiagnosticKind::kBadEnum: return "bad-enum";
    case DiagnosticKind::kTruncated: return "truncated";
    case DiagnosticKind::kCount_: break;
  }
  return "?";
}

namespace {

/// Format-document section cited by each diagnostic kind.
const char* spec_section(DiagnosticKind k) {
  switch (k) {
    case DiagnosticKind::kBadHeader: return "§2";
    case DiagnosticKind::kUnknownRecord: return "§3";
    case DiagnosticKind::kIdOrder: return "§5";
    case DiagnosticKind::kTruncated: return "§6";
    default: return "§3-§4";
  }
}

/// Thrown internally while parsing one record; converted to a diagnostic
/// (lenient) or a TraceError (strict) by the load loop.
struct ParseFail {
  DiagnosticKind kind;
  int column;  // 1-based, 0 unknown
  std::string message;
};

/// Field cursor over one record line.  Numbers parse via from_chars so a
/// malformed field reports the exact 1-based column where parsing stopped
/// instead of an opaque stream failure.
class Fields {
 public:
  explicit Fields(const std::string& line) : s_(line) {}

  int column() const { return static_cast<int>(pos_) + 1; }

  void skip_space() {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
  }

  template <typename T>
  T num(const char* what) {
    skip_space();
    T value{};
    const char* begin = s_.data() + pos_;
    const char* end = s_.data() + s_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || (ptr != end && *ptr != ' ')) {
      throw ParseFail{DiagnosticKind::kMalformedRecord, column(),
                      std::string("bad ") + what + " field"};
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return value;
  }

  std::string word(const char* what) {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ') ++pos_;
    if (pos_ == start) {
      throw ParseFail{DiagnosticKind::kMalformedRecord, column(),
                      std::string("missing ") + what + " field"};
    }
    return s_.substr(start, pos_ - start);
  }

  /// The rest of the line (after one separating space) as a free-form name.
  std::string rest_name() {
    if (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
    return s_.substr(pos_);
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

class Loader {
 public:
  Loader(std::istream& is, const LoadOptions& opt) : is_(is), opt_(opt) {}

  LoadResult run() {
    header();
    std::string line;
    while (getline_tracked(line)) {
      ++lineno_;
      if (line.empty()) continue;
      try {
        record(line);
        ++res_.records_ok;
      } catch (const ParseFail& f) {
        // A parse failure on a final line that the stream cut short is the
        // signature of a truncated file, not of a malformed record.
        const bool truncated = last_line_incomplete_ &&
                               f.kind == DiagnosticKind::kMalformedRecord;
        fail(truncated ? DiagnosticKind::kTruncated : f.kind, f.column,
             truncated ? "stream ends inside this record" : f.message);
      } catch (const TraceError& e) {
        // Trace-model rejection (dense-id violation, kind re-intern, ...).
        fail(DiagnosticKind::kIdOrder, 0, e.what());
      }
    }
    return std::move(res_);
  }

 private:
  /// getline that also records whether the line was terminated by '\n'
  /// (a missing final newline marks a possibly truncated stream).
  bool getline_tracked(std::string& line) {
    if (!std::getline(is_, line)) return false;
    last_line_incomplete_ = is_.eof();
    return true;
  }

  [[noreturn]] void throw_strict(const ParseDiagnostic& d) {
    throw TraceError(d.str());
  }

  /// Registers a diagnostic for the current line and drops the record.
  void fail(DiagnosticKind kind, int column, std::string message) {
    ParseDiagnostic d;
    d.kind = kind;
    d.line = lineno_;
    d.column = column;
    d.message = std::move(message);
    if (opt_.strict) throw_strict(d);
    ++res_.records_dropped;
    if (res_.diagnostics.size() < opt_.max_diagnostics) {
      res_.diagnostics.push_back(std::move(d));
    }
  }

  void header() {
    std::string line;
    ++lineno_;
    if (!getline_tracked(line)) {
      fail(DiagnosticKind::kBadHeader, 0, "empty trace stream");
      return;
    }
    try {
      Fields f(line);
      const std::string magic = f.word("magic");
      const int version = f.num<int>("version");
      if (magic != kMagic || version != kVersion) {
        fail(DiagnosticKind::kBadHeader, 1,
             "bad trace header '" + line + "', expected '" +
                 std::string(kMagic) + " " + std::to_string(kVersion) + "'");
        return;
      }
      res_.header_ok = true;
    } catch (const ParseFail& f2) {
      fail(DiagnosticKind::kBadHeader, f2.column,
           "bad trace header '" + line + "'");
    }
  }

  void check_loc(LocId loc, int column) {
    if (loc < 0 ||
        static_cast<std::size_t>(loc) >= res_.trace.location_count()) {
      throw ParseFail{DiagnosticKind::kUnknownLocation, column,
                      "location " + std::to_string(loc) +
                          " was never declared"};
    }
  }

  void check_comm(CommId comm, int column) {
    if (comm < 0 ||
        static_cast<std::size_t>(comm) >= res_.trace.comm_count()) {
      throw ParseFail{DiagnosticKind::kUnknownComm, column,
                      "comm " + std::to_string(comm) + " was never declared"};
    }
  }

  void record(const std::string& line) {
    Fields f(line);
    const std::string kw = f.word("keyword");
    Trace& t = res_.trace;
    if (kw == "region") {
      const RegionId id = f.num<RegionId>("region id");
      const int kind_col = f.column();
      const std::string kind = f.word("region kind");
      RegionKind rk;
      try {
        rk = region_kind_from_string(kind);
      } catch (const TraceError&) {
        throw ParseFail{DiagnosticKind::kBadEnum, kind_col,
                        "unknown region kind '" + kind + "'"};
      }
      const std::string name = f.rest_name();
      const RegionId got = t.regions().intern(name, rk);
      if (got != id) {
        throw ParseFail{DiagnosticKind::kIdOrder, 1,
                        "region id " + std::to_string(id) +
                            " out of dense order (interned as " +
                            std::to_string(got) + ")"};
      }
    } else if (kw == "loc") {
      LocationInfo li;
      li.id = f.num<LocId>("location id");
      li.parent = f.num<LocId>("parent id");
      const int kind_col = f.column();
      const std::string kind = f.word("location kind");
      if (kind == "process") {
        li.kind = LocKind::kProcess;
      } else if (kind == "thread") {
        li.kind = LocKind::kThread;
      } else {
        throw ParseFail{DiagnosticKind::kBadEnum, kind_col,
                        "unknown location kind '" + kind + "'"};
      }
      li.rank = f.num<std::int32_t>("rank");
      li.thread = f.num<std::int32_t>("thread");
      li.name = f.rest_name();
      t.add_location(std::move(li));  // TraceError -> kIdOrder via run()
    } else if (kw == "comm") {
      const CommId id = f.num<CommId>("comm id");
      const int kind_col = f.column();
      const std::string kind = f.word("comm kind");
      CommKind ck;
      if (kind == "mpi") {
        ck = CommKind::kMpiComm;
      } else if (kind == "team") {
        ck = CommKind::kOmpTeam;
      } else {
        throw ParseFail{DiagnosticKind::kBadEnum, kind_col,
                        "unknown comm kind '" + kind + "'"};
      }
      const auto n = f.num<std::int64_t>("member count");
      // The member list lives on this line; a count the line cannot hold is
      // corrupt (and guards the pre-allocation against absurd sizes).
      if (n < 0 || static_cast<std::size_t>(n) > line.size()) {
        throw ParseFail{DiagnosticKind::kMalformedRecord, f.column(),
                        "implausible member count " + std::to_string(n)};
      }
      std::vector<LocId> members(static_cast<std::size_t>(n));
      for (auto& m : members) m = f.num<LocId>("member");
      for (LocId m : members) check_loc(m, kind_col);
      const std::string name = f.rest_name();
      const CommId got = t.add_comm(ck, std::move(members), name);
      if (got != id) {
        throw ParseFail{DiagnosticKind::kIdOrder, 1,
                        "comm id " + std::to_string(id) +
                            " out of dense order (added as " +
                            std::to_string(got) + ")"};
      }
    } else if (kw == "E" || kw == "X") {
      const int loc_col = f.column();
      const LocId loc = f.num<LocId>("location");
      const auto ns = f.num<std::int64_t>("timestamp");
      const int region_col = f.column();
      const RegionId region = f.num<RegionId>("region");
      check_loc(loc, loc_col);
      if (region < 0 ||
          static_cast<std::size_t>(region) >= t.regions().size()) {
        throw ParseFail{DiagnosticKind::kUnknownRegion, region_col,
                        "region " + std::to_string(region) +
                            " was never declared"};
      }
      if (kw == "E") {
        t.enter(loc, VTime(ns), region);
      } else {
        t.exit(loc, VTime(ns), region);
      }
    } else if (kw == "S" || kw == "R") {
      const int loc_col = f.column();
      const LocId loc = f.num<LocId>("location");
      const auto ns = f.num<std::int64_t>("timestamp");
      const auto peer = f.num<std::int32_t>("peer");
      const auto tag = f.num<std::int32_t>("tag");
      const int comm_col = f.column();
      const CommId comm = f.num<CommId>("comm");
      const auto bytes = f.num<std::int64_t>("bytes");
      check_loc(loc, loc_col);
      check_comm(comm, comm_col);
      if (kw == "S") {
        t.send(loc, VTime(ns), peer, tag, comm, bytes);
      } else {
        t.recv(loc, VTime(ns), peer, tag, comm, bytes);
      }
    } else if (kw == "C") {
      const int loc_col = f.column();
      const LocId loc = f.num<LocId>("location");
      const auto ns = f.num<std::int64_t>("timestamp");
      const auto enter_ns = f.num<std::int64_t>("enter timestamp");
      const int comm_col = f.column();
      const CommId comm = f.num<CommId>("comm");
      const auto seq = f.num<std::int64_t>("seq");
      const int op_col = f.column();
      const std::string op = f.word("collective op");
      const auto root = f.num<std::int32_t>("root");
      const auto bin = f.num<std::int64_t>("bytes in");
      const auto bout = f.num<std::int64_t>("bytes out");
      CollOp cop;
      try {
        cop = coll_op_from_string(op);
      } catch (const TraceError&) {
        throw ParseFail{DiagnosticKind::kBadEnum, op_col,
                        "unknown collective op '" + op + "'"};
      }
      check_loc(loc, loc_col);
      check_comm(comm, comm_col);
      t.coll_end(loc, VTime(ns), VTime(enter_ns), comm, seq, cop, root, bin,
                 bout);
    } else if (kw == "B") {
      const int loc_col = f.column();
      const LocId loc = f.num<LocId>("location");
      const auto ns = f.num<std::int64_t>("timestamp");
      const int comm_col = f.column();
      const CommId comm = f.num<CommId>("comm");
      const auto seq = f.num<std::int64_t>("seq");
      const int op_col = f.column();
      const std::string op = f.word("collective op");
      const auto root = f.num<std::int32_t>("root");
      const auto rop = f.num<std::int32_t>("reduce op");
      const int region_col = f.column();
      const RegionId region = f.num<RegionId>("region");
      CollOp cop;
      try {
        cop = coll_op_from_string(op);
      } catch (const TraceError&) {
        throw ParseFail{DiagnosticKind::kBadEnum, op_col,
                        "unknown collective op '" + op + "'"};
      }
      check_loc(loc, loc_col);
      check_comm(comm, comm_col);
      if (region < 0 ||
          static_cast<std::size_t>(region) >= t.regions().size()) {
        throw ParseFail{DiagnosticKind::kUnknownRegion, region_col,
                        "region " + std::to_string(region) +
                            " was never declared"};
      }
      t.coll_begin(loc, VTime(ns), comm, seq, cop, root, rop, region);
    } else if (kw == "LA" || kw == "LR") {
      const int loc_col = f.column();
      const LocId loc = f.num<LocId>("location");
      const auto ns = f.num<std::int64_t>("timestamp");
      const auto lock = f.num<std::int32_t>("lock id");
      check_loc(loc, loc_col);
      if (kw == "LA") {
        t.lock_acquire(loc, VTime(ns), lock);
      } else {
        t.lock_release(loc, VTime(ns), lock);
      }
    } else {
      throw ParseFail{DiagnosticKind::kUnknownRecord, 1,
                      "unknown trace record '" + kw + "'"};
    }
  }

  std::istream& is_;
  LoadOptions opt_;
  LoadResult res_;
  int lineno_ = 0;
  bool last_line_incomplete_ = false;
};

}  // namespace

std::string ParseDiagnostic::str() const {
  std::string out = binary ? "trace[bin]:record " : "trace:";
  out += std::to_string(line);
  if (column > 0) out += ":" + std::to_string(column);
  out += ": ";
  out += to_string(kind);
  out += ": ";
  out += message;
  out += " (see docs/TRACE_FORMAT.md ";
  out += binary ? "§7" : spec_section(kind);
  out += ")";
  return out;
}

LoadResult load_trace(std::istream& is, const LoadOptions& options) {
  Loader loader(is, options);
  return loader.run();
}

Trace Trace::load(std::istream& is) {
  LoadOptions opt;
  opt.strict = true;
  return std::move(load_trace(is, opt).trace);
}

}  // namespace ats::trace
