// Robust trace loading: the programmatic face of the on-disk contract.
//
// docs/TRACE_FORMAT.md specifies the text format; this header specifies how
// a reader is allowed to fail.  Every way a record can be unusable has a
// DiagnosticKind, every diagnostic carries the 1-based line (and, where
// known, column) it was raised at, and the loader runs in one of two modes:
//
//   strict  — the first diagnostic aborts the load with a TraceError whose
//             message embeds line:column and cites the format document.
//             This is what Trace::load() does.
//   lenient — unusable records are dropped, the diagnostic is collected,
//             and loading continues; the caller gets whatever survived plus
//             the full damage report.  This is what a production tool does
//             with a truncated or corrupted trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace ats::trace {

/// Everything that can be wrong with a trace file, per record.  The golden
/// tests in tests/trace_io_diagnostics_test.cpp exercise each kind once.
enum class DiagnosticKind : std::uint8_t {
  kBadHeader,        ///< missing/foreign magic line or unsupported version
  kUnknownRecord,    ///< line starts with an unknown keyword
  kMalformedRecord,  ///< a field failed to parse or is missing
  kUnknownLocation,  ///< record references a location never declared
  kUnknownRegion,    ///< enter/exit references a region never declared
  kUnknownComm,      ///< message/collective references an unknown comm
  kIdOrder,          ///< region/loc/comm declared out of dense id order
  kBadEnum,          ///< unknown region kind, location kind, or coll op
  kTruncated,        ///< the stream ends inside the final record
  kCount_,           // sentinel
};

inline constexpr std::size_t kDiagnosticKindCount =
    static_cast<std::size_t>(DiagnosticKind::kCount_);

const char* to_string(DiagnosticKind k);

/// One recoverable defect found while loading a trace stream.  The same
/// kinds cover both formats: for the binary container (TRACE_FORMAT.md §7)
/// `binary` is set, `line` counts *records* instead of text lines, and
/// `column` holds the byte offset of the defect when known.
struct ParseDiagnostic {
  DiagnosticKind kind = DiagnosticKind::kMalformedRecord;
  int line = 0;    ///< 1-based line (text) or record ordinal (binary)
  int column = 0;  ///< 1-based column (text) / byte offset (binary); 0 unknown
  bool binary = false;  ///< raised by the binary loader; str() cites §7
  std::string message;

  /// "trace:12:7: malformed-record: ... (see docs/TRACE_FORMAT.md §4)"
  std::string str() const;
};

struct LoadOptions {
  /// Throw TraceError at the first diagnostic instead of recovering.
  bool strict = false;
  /// Lenient mode: stop *storing* diagnostics past this count (records are
  /// still counted in LoadResult::records_dropped, so the totals stay
  /// honest on pathological inputs).
  std::size_t max_diagnostics = 256;
};

struct LoadResult {
  Trace trace;
  std::vector<ParseDiagnostic> diagnostics;
  std::size_t records_ok = 0;       ///< records applied to the trace
  std::size_t records_dropped = 0;  ///< records skipped with a diagnostic
  bool header_ok = false;

  /// True when every record of the stream was usable.
  bool ok() const { return header_ok && records_dropped == 0; }
};

/// Loads a serialised trace with per-record fault recovery.  Never throws
/// in lenient mode (the default); in strict mode throws TraceError carrying
/// the first diagnostic.
LoadResult load_trace(std::istream& is, const LoadOptions& options = {});

}  // namespace ats::trace
