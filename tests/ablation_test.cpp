// Ablation tests for the design choices DESIGN.md §6 calls out:
//  * eager vs rendezvous protocol threshold — late receiver only exists
//    under rendezvous;
//  * analyzer reporting threshold — models tools with different
//    sensitivities (paper §3.1: "automatic performance tools have
//    different thresholds/sensitivities");
//  * virtual vs busy work modes produce the same virtual-time behaviour.
#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "test_util.hpp"

namespace ats {
namespace {

using core::PropCtx;

analyze::AnalysisResult run_large_send(std::size_t eager_threshold) {
  mpi::MpiRunOptions opt;
  opt.nprocs = 2;
  opt.cost = testutil::clean_mpi_cost();
  opt.cost.eager_threshold = eager_threshold;
  auto result = mpi::run_mpi(opt, [](mpi::Proc& p) {
    std::vector<double> buf(1024);  // 8 KiB message
    if (p.world_rank() == 0) {
      p.send(buf.data(), 1024, mpi::Datatype::kDouble, 1, 0,
             p.comm_world());
    } else {
      p.sim().advance(VDur::millis(25));  // the receiver is late
      p.recv(buf.data(), 1024, mpi::Datatype::kDouble, 0, 0,
             p.comm_world());
    }
  });
  return analyze::analyze(result.trace);
}

TEST(ProtocolAblation, RendezvousExposesLateReceiver) {
  // 8 KiB > 4 KiB threshold: rendezvous, the sender blocks 25ms.
  const auto result = run_large_send(4 * 1024);
  EXPECT_EQ(result.cube.total(analyze::PropertyId::kLateReceiver),
            VDur::millis(25));
}

TEST(ProtocolAblation, EagerHidesLateReceiver) {
  // 8 KiB < 64 KiB threshold: eager, the sender never blocks.
  const auto result = run_large_send(64 * 1024);
  EXPECT_EQ(result.cube.total(analyze::PropertyId::kLateReceiver),
            VDur::zero());
  // And the late receiver costs nobody anything: no late sender either.
  EXPECT_EQ(result.cube.total(analyze::PropertyId::kLateSender),
            VDur::zero());
}

TEST(ProtocolAblation, SsendIgnoresThreshold) {
  // The late_receiver property function uses ssend, so it works for any
  // threshold — that is why the catalog entry is robust.
  gen::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.mpi_cost.eager_threshold = 1 << 30;  // everything would be eager
  const auto& def = gen::Registry::instance().find("late_receiver");
  const auto tr = gen::run_single_property(def, def.positive, cfg);
  const auto result = analyze::analyze(tr);
  const auto dom = result.dominant();
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(dom->prop, analyze::PropertyId::kLateReceiver);
}

TEST(ThresholdAblation, SensitivityControlsReporting) {
  // A fixed-severity property (~n%) crosses in and out of visibility as
  // the analyzer threshold sweeps — the "tool sensitivity" knob.
  gen::RunConfig cfg;
  cfg.nprocs = 4;
  gen::ParamMap pm;
  pm.set("basework", "0.05");
  pm.set("extrawork", "0.01");  // mild injection
  const auto tr = gen::run_single_property("late_sender", pm, cfg);

  analyze::AnalyzerOptions sensitive;
  sensitive.threshold = 0.001;
  const auto r1 = analyze::analyze(tr, sensitive);
  EXPECT_TRUE(r1.dominant().has_value());

  analyze::AnalyzerOptions insensitive;
  insensitive.threshold = 0.5;
  const auto r2 = analyze::analyze(tr, insensitive);
  EXPECT_FALSE(r2.dominant().has_value());

  // Severity itself is threshold independent (only reporting changes).
  EXPECT_EQ(r1.cube.total(analyze::PropertyId::kLateSender),
            r2.cube.total(analyze::PropertyId::kLateSender));
}

TEST(WorkModeAblation, BusyAndVirtualAgreeOnVirtualTime) {
  // The busy loop burns host CPU but must advance virtual time exactly
  // like the virtual mode, so traces are mode independent.
  auto run_mode = [](core::WorkMode mode) {
    mpi::MpiRunOptions opt;
    opt.nprocs = 2;
    opt.cost = testutil::clean_mpi_cost();
    auto result = mpi::run_mpi(opt, [&](mpi::Proc& p) {
      PropCtx ctx = core::PropCtx::from(p);
      ctx.work.mode = mode;
      if (mode == core::WorkMode::kBusy) {
        ctx.work.busy_iters_per_sec = 1e8;  // nominal; exactness not needed
        ctx.work.array_elems = 1 << 8;
      }
      core::late_sender(ctx, 0.0005, 0.001, 2, p.comm_world());
    });
    return result.makespan;
  };
  EXPECT_EQ(run_mode(core::WorkMode::kVirtual),
            run_mode(core::WorkMode::kBusy));
}

}  // namespace
}  // namespace ats
