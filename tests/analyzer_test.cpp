// Unit tests for the analyzer on hand-crafted and small generated traces:
// call-path profile construction, message matching, collective grouping,
// severity attribution, ranking.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "test_util.hpp"

namespace ats::analyze {
namespace {

using core::PropCtx;
using testutil::run_mpi_traced;
using testutil::run_prop;

trace::Trace handmade_two_region_trace() {
  trace::Trace t;
  trace::LocationInfo li;
  li.id = 0;
  li.kind = trace::LocKind::kProcess;
  li.rank = 0;
  li.name = "rank 0";
  t.add_location(std::move(li));
  const auto outer = t.regions().intern("outer", trace::RegionKind::kUser);
  const auto inner = t.regions().intern("inner", trace::RegionKind::kWork);
  t.enter(0, VTime(0), outer);
  t.enter(0, VTime(100), inner);
  t.exit(0, VTime(400), inner);
  t.enter(0, VTime(500), inner);
  t.exit(0, VTime(600), inner);
  t.exit(0, VTime(1000), outer);
  return t;
}

TEST(Profile, BuildsCallTreeWithTimes) {
  const auto result = analyze(handmade_two_region_trace());
  const auto& prof = result.profile;
  // root -> outer -> inner
  ASSERT_EQ(prof.node_count(), 3u);
  const NodeId outer = prof.node(kRootNode).children.at(0);
  const NodeId inner = prof.node(outer).children.at(0);
  EXPECT_EQ(prof.inclusive(outer, 0), VDur::nanos(1000));
  EXPECT_EQ(prof.inclusive(inner, 0), VDur::nanos(400));
  EXPECT_EQ(prof.exclusive(outer, 0), VDur::nanos(600));
  EXPECT_EQ(prof.visits(outer, 0), 1u);
  EXPECT_EQ(prof.visits(inner, 0), 2u);
}

TEST(Profile, PathStringsAreReadable) {
  const auto result = analyze(handmade_two_region_trace());
  const auto& prof = result.profile;
  const NodeId outer = prof.node(kRootNode).children.at(0);
  const NodeId inner = prof.node(outer).children.at(0);
  trace::Trace t = handmade_two_region_trace();
  EXPECT_EQ(prof.path_string(inner, t), "outer > inner");
  EXPECT_EQ(prof.name_of(kRootNode, t), "<root>");
}

TEST(Profile, UnbalancedExitThrows) {
  trace::Trace t;
  trace::LocationInfo li;
  li.id = 0;
  li.kind = trace::LocKind::kProcess;
  li.rank = 0;
  li.name = "x";
  t.add_location(std::move(li));
  const auto a = t.regions().intern("a", trace::RegionKind::kUser);
  const auto b = t.regions().intern("b", trace::RegionKind::kUser);
  t.enter(0, VTime(0), a);
  t.exit(0, VTime(10), b);
  EXPECT_THROW(analyze(t), TraceError);
}

TEST(Profile, UnclosedRegionsAreClosedAtTraceEnd) {
  trace::Trace t;
  trace::LocationInfo li;
  li.id = 0;
  li.kind = trace::LocKind::kProcess;
  li.rank = 0;
  li.name = "x";
  t.add_location(std::move(li));
  const auto a = t.regions().intern("a", trace::RegionKind::kUser);
  const auto w = t.regions().intern("w", trace::RegionKind::kWork);
  t.enter(0, VTime(0), a);
  t.enter(0, VTime(100), w);
  t.exit(0, VTime(300), w);
  // 'a' never exits; the last event is at 300.
  const auto result = analyze(t);
  const NodeId na = result.profile.node(kRootNode).children.at(0);
  EXPECT_EQ(result.profile.inclusive(na, 0), VDur::nanos(300));
}

TEST(Analyzer, TotalTimeSumsLocationSpans) {
  const auto result = analyze(handmade_two_region_trace());
  EXPECT_EQ(result.total_time, VDur::nanos(1000));
}

TEST(Analyzer, EmptyTraceIsHarmless) {
  trace::Trace t;
  const auto result = analyze(t);
  EXPECT_EQ(result.total_time, VDur::zero());
  EXPECT_TRUE(result.findings.empty());
  EXPECT_FALSE(result.dominant().has_value());
}

TEST(Analyzer, LateSenderSeverityIsExact) {
  // Rank 0 works 50ms then sends; rank 1 receives immediately.
  // Late-sender wait at the receiver == 50ms (clean cost model).
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 0) {
      p.sim().advance(VDur::millis(50));
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
    } else {
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
    }
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kLateSender), VDur::millis(50));
  // Attributed to rank 1 (the receiver), at the MPI_Recv call path.
  const auto nodes = result.cube.nodes_of(PropertyId::kLateSender);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(result.profile.name_of(nodes[0], tr), "MPI_Recv");
  const auto locs = result.cube.locations_of(PropertyId::kLateSender,
                                             nodes[0]);
  EXPECT_EQ(locs[0], VDur::zero());
  EXPECT_EQ(locs[1], VDur::millis(50));
}

TEST(Analyzer, PunctualSenderYieldsNoLateSender) {
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 0) {
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
    } else {
      p.sim().advance(VDur::millis(20));
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
    }
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kLateSender), VDur::zero());
}

TEST(Analyzer, LateReceiverSeverityIsExact) {
  // Rendezvous send blocked 30ms waiting for the receiver.
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 0) {
      p.ssend(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
    } else {
      p.sim().advance(VDur::millis(30));
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
    }
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kLateReceiver), VDur::millis(30));
  const auto nodes = result.cube.nodes_of(PropertyId::kLateReceiver);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(result.profile.name_of(nodes[0], tr), "MPI_Ssend");
  // Attributed to the *sender*, rank 0.
  const auto locs = result.cube.locations_of(PropertyId::kLateReceiver,
                                             nodes[0]);
  EXPECT_EQ(locs[0], VDur::millis(30));
  EXPECT_EQ(locs[1], VDur::zero());
}

TEST(Analyzer, WaitAtBarrierPerRankWaits) {
  const auto tr = run_mpi_traced(3, [](mpi::Proc& p) {
    p.sim().advance(VDur::millis(10 * p.world_rank()));
    p.barrier(p.comm_world());
  });
  const auto result = analyze(tr);
  // Waits: rank0 20ms, rank1 10ms, rank2 0.
  EXPECT_EQ(result.cube.total(PropertyId::kWaitAtBarrier), VDur::millis(30));
  const auto nodes = result.cube.nodes_of(PropertyId::kWaitAtBarrier);
  ASSERT_EQ(nodes.size(), 1u);
  const auto locs =
      result.cube.locations_of(PropertyId::kWaitAtBarrier, nodes[0]);
  EXPECT_EQ(locs[0], VDur::millis(20));
  EXPECT_EQ(locs[1], VDur::millis(10));
  EXPECT_EQ(locs[2], VDur::zero());
}

TEST(Analyzer, LateBroadcastAttributesOnlyNonRoots) {
  const auto tr = run_mpi_traced(4, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 1) p.sim().advance(VDur::millis(40));
    p.bcast(&v, 1, mpi::Datatype::kInt32, 1, p.comm_world());
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kLateBroadcast),
            VDur::millis(120));  // 3 non-roots x 40ms
  const auto nodes = result.cube.nodes_of(PropertyId::kLateBroadcast);
  ASSERT_EQ(nodes.size(), 1u);
  const auto locs =
      result.cube.locations_of(PropertyId::kLateBroadcast, nodes[0]);
  EXPECT_EQ(locs[1], VDur::zero());  // root does not wait
  EXPECT_EQ(locs[0], VDur::millis(40));
}

TEST(Analyzer, EarlyReduceAttributesOnlyRoot) {
  const auto tr = run_mpi_traced(4, [](mpi::Proc& p) {
    int v = 1, out = 0;
    if (p.world_rank() != 2) p.sim().advance(VDur::millis(25));
    p.reduce(&v, &out, 1, mpi::Datatype::kInt32, mpi::ReduceOp::kSum, 2,
             p.comm_world());
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kEarlyReduce), VDur::millis(25));
  const auto nodes = result.cube.nodes_of(PropertyId::kEarlyReduce);
  const auto locs =
      result.cube.locations_of(PropertyId::kEarlyReduce, nodes.at(0));
  EXPECT_EQ(locs[2], VDur::millis(25));
  EXPECT_EQ(locs[0], VDur::zero());
}

TEST(Analyzer, NxNWaitForAlltoall) {
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    std::vector<int> s(2, 0), r(2, 0);
    if (p.world_rank() == 0) p.sim().advance(VDur::millis(15));
    p.alltoall(s.data(), 1, r.data(), 1, mpi::Datatype::kInt32,
               p.comm_world());
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kWaitAtNxN), VDur::millis(15));
}

TEST(Analyzer, InitFinalizeWaitsClassifiedAsOverhead) {
  // One rank reaches MPI_Finalize 30ms late: the other's wait must land in
  // init/finalize overhead, not in "wait at barrier".
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    if (p.world_rank() == 0) p.sim().advance(VDur::millis(30));
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kWaitAtBarrier), VDur::zero());
  EXPECT_GE(result.cube.total(PropertyId::kInitFinalizeOverhead),
            VDur::millis(30));
}

TEST(Analyzer, MpiTimeClassesAreDisjointAndCover) {
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 0) {
      p.sim().advance(VDur::millis(5));
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
    } else {
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
    }
    p.sim().advance(VDur::millis(2 * p.world_rank()));
    p.barrier(p.comm_world());
  });
  const auto result = analyze(tr);
  const VDur mpi_total = result.cube.total(PropertyId::kMpi);
  const VDur parts = result.cube.total(PropertyId::kMpiP2P) +
                     result.cube.total(PropertyId::kMpiCollective) +
                     result.cube.total(PropertyId::kMpiMgmt);
  EXPECT_EQ(mpi_total, parts);
  EXPECT_GT(result.cube.total(PropertyId::kMpiP2P), VDur::zero());
  EXPECT_GT(result.cube.total(PropertyId::kMpiCollective), VDur::zero());
}

TEST(Analyzer, FindingsAreRankedBySeverity) {
  // Inject a big barrier wait and a small late sender.
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 0) {
      p.sim().advance(VDur::millis(5));
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
    } else {
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
    }
    if (p.world_rank() == 0) p.sim().advance(VDur::millis(100));
    p.barrier(p.comm_world());
  });
  const auto result = analyze(tr);
  const auto dom = result.dominant();
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(dom->prop, PropertyId::kWaitAtBarrier);
  // Both findings present, barrier first.
  bool saw_ls = false;
  for (const auto& f : result.findings) {
    if (f.prop == PropertyId::kLateSender) saw_ls = true;
  }
  EXPECT_TRUE(saw_ls);
}

TEST(Analyzer, ThresholdSuppressesSmallFindings) {
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 0) {
      p.sim().advance(VDur::micros(10));  // tiny imbalance
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
    } else {
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
    }
    p.sim().advance(VDur::seconds(1));  // long balanced phase
    p.barrier(p.comm_world());
  });
  AnalyzerOptions strict;
  strict.threshold = 0.01;
  const auto result = analyze(tr, strict);
  EXPECT_FALSE(result.dominant().has_value());
  AnalyzerOptions loose;
  loose.threshold = 1e-7;
  const auto result2 = analyze(tr, loose);
  EXPECT_TRUE(result2.dominant().has_value());
}

TEST(Analyzer, WrongOrderMessagesDetected) {
  // Sender emits tag 2 then tag 1; receiver wants tag 1 first and waits for
  // it while the tag-2 message is already available.
  const auto tr = run_mpi_traced(2, [](mpi::Proc& p) {
    int v = 0;
    if (p.world_rank() == 0) {
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 2, p.comm_world());
      p.sim().advance(VDur::millis(10));
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 1, p.comm_world());
    } else {
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 1, p.comm_world());
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 2, p.comm_world());
    }
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kLateSenderWrongOrder),
            VDur::millis(10));
  EXPECT_EQ(result.cube.total(PropertyId::kLateSender), VDur::zero());
}

TEST(Analyzer, SeverityCubeBasics) {
  SeverityCube cube(2);
  cube.add(PropertyId::kLateSender, 3, 0, VDur::millis(5));
  cube.add(PropertyId::kLateSender, 3, 0, VDur::millis(2));
  cube.add(PropertyId::kLateSender, 4, 1, VDur::millis(1));
  EXPECT_EQ(cube.at(PropertyId::kLateSender, 3, 0), VDur::millis(7));
  EXPECT_EQ(cube.at(PropertyId::kLateSender, 3, 1), VDur::zero());
  EXPECT_EQ(cube.node_total(PropertyId::kLateSender, 3), VDur::millis(7));
  EXPECT_EQ(cube.total(PropertyId::kLateSender), VDur::millis(8));
  EXPECT_EQ(cube.nodes_of(PropertyId::kLateSender),
            (std::vector<NodeId>{3, 4}));
  // Zero and negative adds are ignored.
  cube.add(PropertyId::kLateSender, 9, 0, VDur::zero());
  EXPECT_EQ(cube.nodes_of(PropertyId::kLateSender).size(), 2u);
}

TEST(PropertyTree, HierarchyIsWellFormed) {
  EXPECT_EQ(property_info(PropertyId::kLateSender).parent,
            PropertyId::kMpiP2P);
  EXPECT_EQ(property_info(PropertyId::kLateSenderWrongOrder).parent,
            PropertyId::kLateSender);
  EXPECT_EQ(property_depth(PropertyId::kTotal), 0);
  EXPECT_EQ(property_depth(PropertyId::kLateSenderWrongOrder), 4);
  // Pre-order covers every property exactly once.
  EXPECT_EQ(property_preorder().size(), kPropertyCount);
}

TEST(PropertyTree, NamesAreUnique) {
  std::set<std::string> names;
  for (PropertyId p : property_preorder()) {
    EXPECT_TRUE(names.insert(property_name(p)).second)
        << "duplicate name " << property_name(p);
  }
}

TEST(Analyzer, IdleThreadsSeverityIsSerialTimeTimesWorkers) {
  // 30ms of serial master work between two 10ms parallel regions on a
  // 4-thread team: idle threads = 30ms x 3 workers = 90ms.
  const auto tr = testutil::run_prop_omp([](core::PropCtx& ctx) {
    auto region = [&] {
      omp::parallel(*ctx.sim, ctx.omp_rt(), 4, [&](omp::OmpCtx& o) {
        core::do_work(o.sim(), *ctx.trace, ctx.work, 0.01);
      });
    };
    region();
    core::do_work(ctx, 0.03);
    region();
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kOmpIdleThreads),
            VDur::millis(90));
}

TEST(Analyzer, NoIdleThreadsWhenAllTimeIsParallel) {
  const auto tr = testutil::run_prop_omp([](core::PropCtx& ctx) {
    omp::parallel(*ctx.sim, ctx.omp_rt(), 4, [&](omp::OmpCtx& o) {
      core::do_work(o.sim(), *ctx.trace, ctx.work, 0.05);
    });
  });
  const auto result = analyze(tr);
  EXPECT_EQ(result.cube.total(PropertyId::kOmpIdleThreads), VDur::zero());
}

TEST(Analyzer, MpiTimeDoesNotCountAsIdleThreads) {
  // Master communicates 40ms between regions: that is MPI time, not idle
  // serial computation.
  const auto tr = testutil::run_prop_hybrid(2, [](core::PropCtx& ctx) {
    mpi::Proc& p = ctx.mpi_proc();
    omp::parallel(*ctx.sim, ctx.omp_rt(), 4, [&](omp::OmpCtx& o) {
      core::do_work(o.sim(), *ctx.trace, ctx.work, 0.01);
    });
    int v = 0;
    if (p.world_rank() == 0) {
      p.sim().advance(VDur::millis(40));
      p.send(&v, 1, mpi::Datatype::kInt32, 1, 0, p.comm_world());
    } else {
      p.recv(&v, 1, mpi::Datatype::kInt32, 0, 0, p.comm_world());
    }
  });
  const auto result = analyze(tr);
  // Rank 0's 40ms is plain serial work (advance outside a region) but the
  // receiver's wait is MPI region time and must NOT appear as idle
  // threads; allow only rank 0's serial part.
  const auto locs = result.cube.locations_of(PropertyId::kOmpIdleThreads,
                                             kRootNode);
  ASSERT_EQ(locs.size(), tr.location_count());
  EXPECT_EQ(locs[1], VDur::zero());  // rank 1 waited inside MPI_Recv
}

TEST(AnalyzerEdge, LockEventOutsideSyncRegionIsIgnored) {
  trace::Trace t;
  trace::LocationInfo li;
  li.id = 0;
  li.kind = trace::LocKind::kProcess;
  li.rank = 0;
  li.name = "x";
  t.add_location(std::move(li));
  const auto work = t.regions().intern("w", trace::RegionKind::kWork);
  t.enter(0, VTime(0), work);
  t.lock_acquire(0, VTime(50), 1);
  t.lock_release(0, VTime(80), 1);
  t.exit(0, VTime(100), work);
  const auto result = analyze(t);
  EXPECT_EQ(result.cube.total(PropertyId::kOmpLockContention), VDur::zero());
}

TEST(AnalyzerEdge, TruncatedCollectiveGroupIsTolerated) {
  // Only one of two members' coll_end records made it into the trace
  // (e.g. the trace was cut off): no waits, no crash.
  trace::Trace t;
  for (int i = 0; i < 2; ++i) {
    trace::LocationInfo li;
    li.id = i;
    li.kind = trace::LocKind::kProcess;
    li.rank = i;
    li.name = "rank " + std::to_string(i);
    t.add_location(std::move(li));
  }
  const auto comm = t.add_comm(trace::CommKind::kMpiComm, {0, 1}, "w");
  const auto reg = t.regions().intern("MPI_Barrier",
                                      trace::RegionKind::kMpiColl);
  t.enter(0, VTime(0), reg);
  t.coll_end(0, VTime(10), VTime(0), comm, 0, trace::CollOp::kBarrier,
             trace::kNone, 0, 0);
  t.exit(0, VTime(10), reg);
  const auto result = analyze(t);
  EXPECT_EQ(result.cube.total(PropertyId::kWaitAtBarrier), VDur::zero());
}

TEST(AnalyzerEdge, RecvWithoutAnySendIsParkedNotFatal) {
  trace::Trace t;
  for (int i = 0; i < 2; ++i) {
    trace::LocationInfo li;
    li.id = i;
    li.kind = trace::LocKind::kProcess;
    li.rank = i;
    li.name = "rank " + std::to_string(i);
    t.add_location(std::move(li));
  }
  const auto comm = t.add_comm(trace::CommKind::kMpiComm, {0, 1}, "w");
  const auto reg = t.regions().intern("MPI_Recv",
                                      trace::RegionKind::kMpiP2P);
  t.enter(1, VTime(0), reg);
  t.recv(1, VTime(30), 0, 0, comm, 8);  // no matching send record at all
  t.exit(1, VTime(30), reg);
  EXPECT_NO_THROW(analyze(t));
}

TEST(AnalyzerEdge, LocationWithNoEventsContributesNothing) {
  trace::Trace t;
  for (int i = 0; i < 2; ++i) {
    trace::LocationInfo li;
    li.id = i;
    li.kind = trace::LocKind::kProcess;
    li.rank = i;
    li.name = "rank " + std::to_string(i);
    t.add_location(std::move(li));
  }
  const auto work = t.regions().intern("w", trace::RegionKind::kWork);
  t.enter(0, VTime(0), work);
  t.exit(0, VTime(100), work);
  // Location 1 is silent.
  const auto result = analyze(t);
  EXPECT_EQ(result.total_time, VDur::nanos(100));
}

TEST(Analyzer, AnalysisOfSavedAndReloadedTraceMatches) {
  const auto tr = run_mpi_traced(3, [](mpi::Proc& p) {
    p.sim().advance(VDur::millis(5 * p.world_rank()));
    p.barrier(p.comm_world());
  });
  std::stringstream ss;
  tr.save(ss);
  const trace::Trace reloaded = trace::Trace::load(ss);
  const auto a = analyze(tr);
  const auto b = analyze(reloaded);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.cube.total(PropertyId::kWaitAtBarrier),
            b.cube.total(PropertyId::kWaitAtBarrier));
  EXPECT_EQ(a.findings.size(), b.findings.size());
}

}  // namespace
}  // namespace ats::analyze
