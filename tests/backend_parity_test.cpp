// Backend parity: the fiber and thread execution backends must be
// observationally indistinguishable — bit-identical traces, EngineStats,
// end times and deadlock/hang dumps (DESIGN.md §9).  Every scheduling
// decision lives above the backend, so any divergence here is a bug in
// the handoff mechanics, not a tolerable platform difference.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "gen/registry.hpp"
#include "mpisim/world.hpp"
#include "simt/engine.hpp"

namespace {

using namespace ats;
using simt::EngineBackend;

// True when a fiber request actually yields fibers (false under TSan,
// where the engine silently falls back to threads and parity against the
// thread backend is trivially true).
bool fibers_available() {
  return simt::resolve_backend(EngineBackend::kFiber) ==
         EngineBackend::kFiber;
}

std::string trace_bytes(const trace::Trace& tr) {
  std::ostringstream os;
  tr.save(os);
  return os.str();
}

TEST(BackendParity, EngineReportsRequestedBackend) {
  simt::EngineOptions opt;
  opt.backend = EngineBackend::kThread;
  EXPECT_EQ(simt::Engine(opt).backend(), EngineBackend::kThread);
  if (!fibers_available()) GTEST_SKIP() << "fibers compiled out";
  opt.backend = EngineBackend::kFiber;
  EXPECT_EQ(simt::Engine(opt).backend(), EngineBackend::kFiber);
}

// --- registry slice: every completing property function ------------------

class RegistryParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryParityTest, PositiveConfigTraceIsBitIdentical) {
  if (!fibers_available()) GTEST_SKIP() << "fibers compiled out";
  const auto& def = gen::Registry::instance().find(GetParam());
  gen::RunConfig cfg;
  cfg.nprocs = def.min_procs > 4 ? def.min_procs : 4;

  cfg.engine.backend = EngineBackend::kFiber;
  const std::string fiber =
      trace_bytes(gen::run_single_property(def, def.positive, cfg));
  cfg.engine.backend = EngineBackend::kThread;
  const std::string thread =
      trace_bytes(gen::run_single_property(def, def.positive, cfg));
  EXPECT_EQ(fiber, thread);
}

INSTANTIATE_TEST_SUITE_P(
    AllProperties, RegistryParityTest,
    ::testing::ValuesIn(gen::Registry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      return pinfo.param;
    });

// --- stats, makespan and fault injection ---------------------------------

mpi::MpiRunResult stencil_run(EngineBackend backend, bool with_faults) {
  mpi::MpiRunOptions opt;
  opt.engine.backend = backend;
  opt.nprocs = 4;
  if (with_faults) {
    opt.faults.stall(2, VTime::zero() + VDur::millis(1), VDur::millis(3));
  }
  return mpi::run_mpi(opt, [](mpi::Proc& p) {
    const int np = p.comm_world().size();
    const int rank = p.world_rank();
    int v = rank;
    for (int step = 0; step < 8; ++step) {
      p.sim().advance(VDur::micros(100 * (rank + 1)));
      const int right = (rank + 1) % np;
      const int left = (rank + np - 1) % np;
      if (rank % 2 == 0) {
        p.send(&v, 1, mpi::Datatype::kInt32, right, 0, p.comm_world());
        p.recv(&v, 1, mpi::Datatype::kInt32, left, 0, p.comm_world());
      } else {
        p.recv(&v, 1, mpi::Datatype::kInt32, left, 0, p.comm_world());
        p.send(&v, 1, mpi::Datatype::kInt32, right, 0, p.comm_world());
      }
      p.barrier(p.comm_world());
    }
  });
}

TEST(BackendParity, StencilStatsAndMakespanMatch) {
  if (!fibers_available()) GTEST_SKIP() << "fibers compiled out";
  const auto fiber = stencil_run(EngineBackend::kFiber, false);
  const auto thread = stencil_run(EngineBackend::kThread, false);
  EXPECT_EQ(trace_bytes(fiber.trace), trace_bytes(thread.trace));
  EXPECT_EQ(fiber.makespan, thread.makespan);
  EXPECT_EQ(fiber.stats.spawns, thread.stats.spawns);
  EXPECT_EQ(fiber.stats.yields, thread.stats.yields);
  EXPECT_EQ(fiber.stats.blocks, thread.stats.blocks);
  EXPECT_EQ(fiber.stats.wakes, thread.stats.wakes);
}

TEST(BackendParity, RankFaultInjectionMatches) {
  if (!fibers_available()) GTEST_SKIP() << "fibers compiled out";
  const auto fiber = stencil_run(EngineBackend::kFiber, true);
  const auto thread = stencil_run(EngineBackend::kThread, true);
  EXPECT_EQ(trace_bytes(fiber.trace), trace_bytes(thread.trace));
  EXPECT_EQ(fiber.makespan, thread.makespan);
  EXPECT_EQ(fiber.fault_report.str(), thread.fault_report.str());
}

// --- pathological entries: identical failure classes and dumps -----------

std::string run_expecting_failure(const std::string& name,
                                  EngineBackend backend, int nprocs,
                                  VDur vt_limit, std::uint64_t yield_limit) {
  const auto& def = gen::Registry::instance().find(name);
  gen::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.engine.backend = backend;
  cfg.engine.virtual_time_limit = vt_limit;
  cfg.engine.yield_limit = yield_limit;
  try {
    gen::run_single_property(def, def.positive, cfg);
  } catch (const DeadlockError& e) {
    return std::string("DeadlockError: ") + e.what();
  } catch (const HangError& e) {
    return std::string("HangError: ") + e.what();
  }
  return "no failure";
}

TEST(BackendParity, DeadlockDumpIsBitIdentical) {
  if (!fibers_available()) GTEST_SKIP() << "fibers compiled out";
  const auto fiber = run_expecting_failure(
      "pathological_deadlock", EngineBackend::kFiber, 2, VDur::zero(), 0);
  const auto thread = run_expecting_failure(
      "pathological_deadlock", EngineBackend::kThread, 2, VDur::zero(), 0);
  EXPECT_NE(fiber.find("DeadlockError"), std::string::npos) << fiber;
  EXPECT_EQ(fiber, thread);
}

TEST(BackendParity, HangDumpIsBitIdentical) {
  if (!fibers_available()) GTEST_SKIP() << "fibers compiled out";
  const auto fiber =
      run_expecting_failure("pathological_hang", EngineBackend::kFiber, 1,
                            VDur::millis(50), 0);
  const auto thread =
      run_expecting_failure("pathological_hang", EngineBackend::kThread, 1,
                            VDur::millis(50), 0);
  EXPECT_NE(fiber.find("virtual-time budget"), std::string::npos) << fiber;
  EXPECT_EQ(fiber, thread);
}

TEST(BackendParity, LivelockDumpIsBitIdentical) {
  if (!fibers_available()) GTEST_SKIP() << "fibers compiled out";
  const auto fiber =
      run_expecting_failure("pathological_livelock", EngineBackend::kFiber,
                            1, VDur::zero(), 5000);
  const auto thread =
      run_expecting_failure("pathological_livelock", EngineBackend::kThread,
                            1, VDur::zero(), 5000);
  EXPECT_NE(fiber.find("yield budget"), std::string::npos) << fiber;
  EXPECT_EQ(fiber, thread);
}

}  // namespace
