// Unit tests for the collective-correctness verification layer
// (docs/DEFECTS.md): one test per DefectKind driven through the registry's
// defect program family, a hand-built trace for the kind no program family
// member can produce deterministically (unfinished collective), the
// zero-false-positive guarantee on structurally sound programs, and
// fiber/thread backend parity of the defect output.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "gen/registry.hpp"
#include "report/cube_view.hpp"
#include "trace/trace.hpp"

namespace ats {
namespace {

using analyze::AnalysisResult;
using analyze::AnalyzerOptions;
using analyze::DefectKind;
using analyze::StructuralDefect;
using gen::RunOutcome;

/// Runs one defect-family entry at `nprocs` and analyses the salvaged
/// trace leniently (it ends mid-operation whenever the runtime aborts).
struct DefectRun {
  gen::SalvagedRun run;
  AnalysisResult analysis;
};

DefectRun run_defect(const std::string& name, int nprocs,
                     simt::EngineBackend backend = simt::EngineBackend::kFiber) {
  const gen::PropertyDef& def = gen::Registry::instance().find(name);
  gen::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.engine.backend = backend;
  cfg.engine.virtual_time_limit = VDur::seconds(120.0);
  cfg.engine.yield_limit = 2'000'000;
  gen::SalvagedRun run = gen::run_single_property_salvaged(def, def.positive, cfg);
  AnalyzerOptions aopt;
  aopt.lenient = true;
  AnalysisResult analysis = analyze::analyze(run.trace, aopt);
  return DefectRun{std::move(run), std::move(analysis)};
}

const StructuralDefect* find_kind(const AnalysisResult& r, DefectKind kind) {
  const auto it =
      std::find_if(r.defects.begin(), r.defects.end(),
                   [&](const StructuralDefect& d) { return d.kind == kind; });
  return it == r.defects.end() ? nullptr : &*it;
}

// ------------------------------------------------------ one test per kind

TEST(CollCheck, OperationMismatchIsReported) {
  const DefectRun r = run_defect("defect_collective_op_mismatch", 4);
  EXPECT_EQ(r.run.outcome, RunOutcome::kMpiError);
  const StructuralDefect* d =
      find_kind(r.analysis, DefectKind::kOperationMismatch);
  ASSERT_NE(d, nullptr) << report::render_defects(r.analysis, r.run.trace);
  // The runtime aborts at the second arriver, so at least the two
  // conflicting participants (one allreduce, one barrier) are on record.
  ASSERT_GE(d->participants.size(), 2u);
  const bool has_allreduce =
      std::any_of(d->participants.begin(), d->participants.end(),
                  [](const auto& p) { return p.op == trace::CollOp::kAllreduce; });
  const bool has_barrier =
      std::any_of(d->participants.begin(), d->participants.end(),
                  [](const auto& p) { return p.op == trace::CollOp::kBarrier; });
  EXPECT_TRUE(has_allreduce && has_barrier);
}

TEST(CollCheck, MissingCallIsReportedWithTheSkippingRanks) {
  const DefectRun r = run_defect("defect_conditional_collective", 4);
  EXPECT_EQ(r.run.outcome, RunOutcome::kDeadlock);
  const StructuralDefect* d = find_kind(r.analysis, DefectKind::kMissingCall);
  ASSERT_NE(d, nullptr) << report::render_defects(r.analysis, r.run.trace);
  // Even ranks call the barrier, odd ranks skip it.
  std::vector<int> called;
  for (const auto& p : d->participants) called.push_back(p.comm_rank);
  EXPECT_EQ(called, (std::vector<int>{0, 2}));
  EXPECT_EQ(d->missing, (std::vector<int>{1, 3}));
}

TEST(CollCheck, RootMismatchIsReported) {
  const DefectRun r = run_defect("defect_collective_root_mismatch", 4);
  EXPECT_EQ(r.run.outcome, RunOutcome::kMpiError);
  const StructuralDefect* d = find_kind(r.analysis, DefectKind::kRootMismatch);
  ASSERT_NE(d, nullptr) << report::render_defects(r.analysis, r.run.trace);
  ASSERT_GE(d->participants.size(), 2u);
  EXPECT_NE(d->participants[0].root, d->participants[1].root);
}

TEST(CollCheck, ReduceOpMismatchIsReportedFromACompletedRun) {
  // The runtime cannot see this one: the collective completes normally and
  // only the checker notices the disagreement — the PARCOACH-style case.
  const DefectRun r = run_defect("defect_reduce_op_mismatch", 4);
  EXPECT_EQ(r.run.outcome, RunOutcome::kOk);
  const StructuralDefect* d =
      find_kind(r.analysis, DefectKind::kReduceOpMismatch);
  ASSERT_NE(d, nullptr) << report::render_defects(r.analysis, r.run.trace);
  ASSERT_EQ(d->participants.size(), 4u);
  for (const auto& p : d->participants) {
    EXPECT_TRUE(p.completed);
    EXPECT_EQ(trace::reduce_op_name(p.rop),
              p.comm_rank % 2 == 0 ? std::string("min") : std::string("max"));
  }
}

TEST(CollCheck, SplitColorDefectIsReportedPerSubCommunicator) {
  const DefectRun r = run_defect("defect_split_comm_color", 4);
  EXPECT_EQ(r.run.outcome, RunOutcome::kDeadlock);
  // One missing-call defect per parity sub-communicator; the world-level
  // split itself is sound and must not be flagged.
  std::size_t missing = 0;
  for (const auto& d : r.analysis.defects) {
    EXPECT_EQ(d.kind, DefectKind::kMissingCall);
    EXPECT_NE(r.run.trace.comm(d.comm).name, "MPI_COMM_WORLD");
    ++missing;
  }
  EXPECT_EQ(missing, 2u);
}

TEST(CollCheck, UnfinishedCollectiveIsReported) {
  // No generator program can end with "everyone called, someone never
  // finished" deterministically, so this kind is pinned on a hand-built
  // trace: both ranks record the call, only rank 0 records completion.
  trace::Trace t;
  for (int i = 0; i < 2; ++i) {
    trace::LocationInfo li;
    li.id = i;
    li.rank = i;
    li.name = "rank " + std::to_string(i);
    t.add_location(std::move(li));
  }
  const trace::CommId world =
      t.add_comm(trace::CommKind::kMpiComm, {0, 1}, "MPI_COMM_WORLD");
  const trace::RegionId reg =
      t.regions().intern("MPI_Barrier", trace::RegionKind::kMpiColl);
  for (trace::LocId loc = 0; loc < 2; ++loc) {
    t.enter(loc, VTime(100), reg);
    t.coll_begin(loc, VTime(100), world, 0, trace::CollOp::kBarrier,
                 trace::kNone, trace::kNone, reg);
  }
  t.coll_end(0, VTime(200), VTime(100), world, 0, trace::CollOp::kBarrier,
             trace::kNone, 0, 0);
  t.exit(0, VTime(200), reg);

  AnalyzerOptions aopt;
  aopt.lenient = true;
  const AnalysisResult r = analyze::analyze(t, aopt);
  const StructuralDefect* d =
      find_kind(r, DefectKind::kUnfinishedCollective);
  ASSERT_NE(d, nullptr) << report::render_defects(r, t);
  ASSERT_EQ(d->participants.size(), 2u);
  EXPECT_TRUE(d->participants[0].completed);
  EXPECT_FALSE(d->participants[1].completed);
  EXPECT_TRUE(d->missing.empty());
}

// ------------------------------------------------- report-layer contracts

TEST(CollCheck, ReportsCiteCommRanksAndCallIndex) {
  const DefectRun r = run_defect("defect_conditional_collective", 4);
  const std::string text = report::render_defects(r.analysis, r.run.trace);
  EXPECT_NE(text.find("missing-call"), std::string::npos) << text;
  EXPECT_NE(text.find("MPI_COMM_WORLD"), std::string::npos) << text;
  EXPECT_NE(text.find("call #"), std::string::npos) << text;
  EXPECT_NE(text.find("never called"), std::string::npos) << text;

  const std::string csv = report::defect_csv(r.analysis, r.run.trace);
  EXPECT_NE(csv.find("kind,comm,call_index,rank,loc,op,root,reduce_op,status"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find(",missing"), std::string::npos) << csv;
}

TEST(CollCheck, DefectsNeverTouchTheSeverityCube) {
  // Structural defects are reported alongside the severity tree, never
  // inside it: disabling the checker must not change a single severity.
  const gen::PropertyDef& def =
      gen::Registry::instance().find("defect_reduce_op_mismatch");
  gen::RunConfig cfg;
  cfg.nprocs = 4;
  const gen::SalvagedRun run =
      gen::run_single_property_salvaged(def, def.positive, cfg);
  ASSERT_EQ(run.outcome, RunOutcome::kOk);
  AnalyzerOptions with;
  AnalyzerOptions without;
  without.check_collectives = false;
  const AnalysisResult a = analyze::analyze(run.trace, with);
  const AnalysisResult b = analyze::analyze(run.trace, without);
  EXPECT_FALSE(a.defects.empty());
  EXPECT_TRUE(b.defects.empty());
  EXPECT_EQ(report::severity_csv(a, run.trace),
            report::severity_csv(b, run.trace));
}

// ------------------------------------------------------- false positives

TEST(CollCheck, CleanRegistryProgramsProduceNoDefects) {
  const auto& reg = gen::Registry::instance();
  for (const std::string& name : reg.names()) {
    const gen::PropertyDef& def = reg.find(name);
    gen::RunConfig cfg;
    cfg.nprocs = std::max(def.min_procs, 4);
    const trace::Trace tr = gen::run_single_property(def, def.positive, cfg);
    const AnalysisResult r = analyze::analyze(tr);
    EXPECT_TRUE(r.defects.empty())
        << name << ": " << report::render_defects(r, tr);
  }
}

// --------------------------------------------------------- backend parity

TEST(CollCheck, BackendsAgreeOnDefectOutput) {
  for (const std::string& name : gen::Registry::instance().defect_names()) {
    const DefectRun fib = run_defect(name, 4, simt::EngineBackend::kFiber);
    const DefectRun thr = run_defect(name, 4, simt::EngineBackend::kThread);
    EXPECT_EQ(fib.run.outcome, thr.run.outcome) << name;
    std::ostringstream ft, tt;
    fib.run.trace.save(ft);
    thr.run.trace.save(tt);
    EXPECT_EQ(ft.str(), tt.str()) << name << ": salvaged traces differ";
    EXPECT_EQ(report::render_defects(fib.analysis, fib.run.trace),
              report::render_defects(thr.analysis, thr.run.trace))
        << name;
    EXPECT_EQ(report::defect_csv(fib.analysis, fib.run.trace),
              report::defect_csv(thr.analysis, thr.run.trace))
        << name;
  }
}

}  // namespace
}  // namespace ats
